"""Unit tests for the compiled execution engine (repro.interp.compile)."""
from __future__ import annotations

import numpy as np
import pytest

from repro import proc_from_source
from repro.interp import (
    CompileError,
    InterpError,
    check_equiv,
    compile_proc,
    compiled_source,
    make_random_args,
    run_proc,
)


def _both(proc, size_env, seed=0):
    """Run ``proc`` under both backends on identical inputs; return (compiled,
    interp) argument dicts."""
    a1 = make_random_args(proc, size_env, seed=seed)
    a2 = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in a1.items()}
    run_proc(proc, backend="compiled", **a1)
    run_proc(proc, backend="interp", **a2)
    return a1, a2


# ---------------------------------------------------------------------------
# Vectorisation
# ---------------------------------------------------------------------------


def test_saxpy_vectorises_and_is_bit_identical():
    p = proc_from_source(
        """
def saxpy(n: size, alpha: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += alpha * x[i]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and eng.fallback_stmts == 0
    assert "range(" not in eng.source  # the loop is gone entirely
    a1, a2 = _both(p, {"n": 10_000})
    assert np.array_equal(a1["y"], a2["y"])  # elementwise map: exact


def test_gemm_inner_loop_vectorises():
    p = proc_from_source(
        """
def gemm(M: size, N: size, K: size, A: f32[M, K] @ DRAM, B: f32[K, N] @ DRAM, C: f32[M, N] @ DRAM):
    for k in seq(0, K):
        for i in seq(0, M):
            for j in seq(0, N):
                C[i, j] += A[i, k] * B[k, j]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1
    a1, a2 = _both(p, {"M": 17, "N": 23, "K": 11})
    assert np.array_equal(a1["C"], a2["C"])


def test_scalar_expansion_rot_kernel():
    # xi is a loop-local scalar read after x is overwritten: the vectoriser
    # must materialise a copy, not keep a live view
    p = proc_from_source(
        """
def rot(n: size, c: f32, s: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        xi: f32 @ DRAM
        xi = x[i]
        x[i] = c * xi + s * y[i]
        y[i] = c * y[i] - s * xi
"""
    )
    assert compile_proc(p).vector_loops == 1
    a1, a2 = _both(p, {"n": 513, "c": 0.8, "s": 0.6})
    assert np.array_equal(a1["x"], a2["x"]) and np.array_equal(a1["y"], a2["y"])


def test_invariant_reduction_becomes_sum():
    p = proc_from_source(
        """
def dot(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, result: f32[1] @ DRAM):
    for i in seq(0, n):
        result[0] += x[i] * y[i]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and ".sum(" in eng.source
    a1, a2 = _both(p, {"n": 65536})
    assert np.allclose(a1["result"], a2["result"], rtol=1e-4)


def test_loop_carried_dependence_not_vectorised():
    # prefix sum: y[i] reads y[i - 1] + 1 — must stay a scalar loop
    p = proc_from_source(
        """
def scan(n: size, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i + 1] = y[i] + 1.0
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 0 and "range(" in eng.source
    a1 = make_random_args(p, {"n": 64})
    a1["y"] = np.zeros(65, dtype=np.float32)
    a2 = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in a1.items()}
    run_proc(p, backend="compiled", **a1)
    run_proc(p, backend="interp", **a2)
    assert np.array_equal(a1["y"], a2["y"])


def test_diagonal_access_not_vectorised():
    # the iterator in two dimensions of one access is not a slice — naive
    # per-dimension slicing would write an n x n block instead of a diagonal
    p = proc_from_source(
        """
def diag(n: size, A: f32[n, n] @ DRAM):
    for i in seq(0, n):
        A[i, i] = 1.0
"""
    )
    assert compile_proc(p).vector_loops == 0
    a1, a2 = _both(p, {"n": 6})
    assert np.array_equal(a1["A"], a2["A"])
    assert a1["A"][0, 1] != 1.0  # off-diagonal untouched

    q = proc_from_source(
        """
def rdiag(n: size, A: f32[n, n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = A[i, i]
"""
    )
    b1, b2 = _both(q, {"n": 6})
    assert np.array_equal(b1["y"], b2["y"])


def test_invariant_scalar_temp_reduction_not_summed():
    # t holds a loop-invariant *scalar*: the sum-reduction lowering must not
    # emit .sum() on it (the reduction adds t once per iteration)
    p = proc_from_source(
        """
def inv(n: size, alpha: f32, s: f32[1] @ DRAM):
    for i in seq(0, n):
        t: f32 @ DRAM
        t = alpha
        s[0] += t
"""
    )
    a1 = {"n": 5, "alpha": 2.0, "s": np.zeros(1, dtype=np.float32)}
    a2 = {"n": 5, "alpha": 2.0, "s": np.zeros(1, dtype=np.float32)}
    run_proc(p, backend="compiled", **a1)
    run_proc(p, backend="interp", **a2)
    assert np.allclose(a1["s"], a2["s"])
    assert np.allclose(a1["s"], [10.0])


def test_window_alias_blocks_unsafe_vectorisation():
    # t aliases x through a window; the shifted copy has a loop-carried
    # dependence that a per-symbol analysis would miss
    p = proc_from_source(
        """
def shift(n: size, x: f32[n] @ DRAM):
    t = x[0:n]
    for i in seq(0, n - 1):
        x[i + 1] = t[i]
"""
    )
    assert compile_proc(p).vector_loops == 0
    a1 = {"n": 8, "x": np.arange(8, dtype=np.float32)}
    a2 = {"n": 8, "x": np.arange(8, dtype=np.float32)}
    run_proc(p, backend="compiled", **a1)
    run_proc(p, backend="interp", **a2)
    assert np.array_equal(a1["x"], a2["x"])


def test_window_reads_alone_still_vectorise():
    p = proc_from_source(
        """
def wread(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    t = x[0:n]
    for i in seq(0, n):
        y[i] = t[i] + x[i]
"""
    )
    assert compile_proc(p).vector_loops == 1
    a1, a2 = _both(p, {"n": 100})
    assert np.array_equal(a1["y"], a2["y"])


def test_extern_vectorises_via_numpy_equivalent():
    p = proc_from_source(
        """
def asum(n: size, x: f32[n] @ DRAM, result: f32[1] @ DRAM):
    for i in seq(0, n):
        result[0] += fabs(x[i])
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and "np.abs" in eng.source
    a1, a2 = _both(p, {"n": 4096})
    assert np.allclose(a1["result"], a2["result"], rtol=1e-4)


# ---------------------------------------------------------------------------
# Out-of-bounds behaviour (negative-index regression, satellite task)
# ---------------------------------------------------------------------------


def test_negative_index_rejected_by_both_backends():
    p = proc_from_source(
        """
def neg(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i - 1]
"""
    )
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


def test_negative_index_rejected_in_scalar_compiled_path():
    # i / 2 defeats the affine analysis, so this exercises the guarded
    # scalar lowering rather than the slice guard
    p = proc_from_source(
        """
def neg2(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i / 2 - 1]
"""
    )
    assert compile_proc(p).vector_loops == 0
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


def test_negative_window_rejected_by_both_backends():
    p = proc_from_source(
        """
def negw(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n / 4):
        w = x[4 * i - 1:4 * i + 3]
        for j in seq(0, 4):
            y[4 * i + j] = w[j]
"""
    )
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


def test_upper_out_of_bounds_rejected_by_both_backends():
    p = proc_from_source(
        """
def over(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i + 1]
"""
    )
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


# ---------------------------------------------------------------------------
# Fallback, caching, differential mode
# ---------------------------------------------------------------------------


def test_scheduled_kernel_compiles_calls_recursively():
    from repro.blas import LEVEL1_KERNELS, optimize_level_1
    from repro.machines import AVX2

    opt = optimize_level_1(LEVEL1_KERNELS["saxpy"], "i", "f32", AVX2, 2)
    eng = compile_proc(opt)
    # @instr calls lower to compiled callees, not interpreter fallbacks
    assert eng.fallback_stmts == 0
    assert check_equiv(LEVEL1_KERNELS["saxpy"], opt, {"n": 4096})


def test_compile_cache_hits_and_distinguishes_procs():
    p = proc_from_source(
        """
def cached(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = x[i] * 2.0
"""
    )
    assert compile_proc(p) is compile_proc(p)
    q = proc_from_source(
        """
def cached(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = x[i] * 3.0
"""
    )
    assert compile_proc(p) is not compile_proc(q)


def test_cache_distinguishes_argument_types():
    # struct_hash skips FnArg types, but codegen depends on them: a `size`
    # argument elides the negative-index guard an `index` argument needs
    src = """
def typed(k: {T}, y: f32[8] @ DRAM):
    y[k] = 1.0
"""
    p_size = proc_from_source(src.format(T="size"))
    p_index = proc_from_source(src.format(T="index"))
    assert compile_proc(p_size) is not compile_proc(p_index)
    y = np.zeros(8, dtype=np.float32)
    with pytest.raises(InterpError):
        run_proc(p_index, backend="compiled", k=-1, y=y)
    assert not y.any()


def test_differential_backend_runs_and_agrees(gemv):
    args = make_random_args(gemv, {"M": 16, "N": 16})
    run_proc(gemv, backend="differential", **args)


def test_unknown_backend_rejected(gemv):
    args = make_random_args(gemv, {"M": 8, "N": 8})
    with pytest.raises(InterpError):
        run_proc(gemv, backend="no-such-engine", **args)


def test_config_state_shared_between_compiled_and_fallback():
    # Gemmini-style config writes execute through the compiled lowering and
    # must observe one shared config dict per run
    from repro.gemmini import make_matmul_kernel, schedule_matmul_gemmini

    kernel = make_matmul_kernel(K=16)
    sched = schedule_matmul_gemmini(kernel)
    N = M = 16
    mk = lambda: (
        np.random.default_rng(0).integers(-3, 4, size=(N, 16)).astype(np.int32),
        np.random.default_rng(1).integers(-3, 4, size=(16, M)).astype(np.int32),
    )
    A, B = mk()
    C1 = np.zeros((N, M), dtype=np.int32)
    C2 = np.zeros((N, M), dtype=np.int32)
    run_proc(sched, backend="compiled", N=N, M=M, scale=1.0, A=A, B=B, C=C1, config_state={})
    run_proc(sched, backend="interp", N=N, M=M, scale=1.0, A=A, B=B, C=C2, config_state={})
    assert np.array_equal(C1, C2)


def test_compiled_source_is_inspectable(axpy):
    src = compiled_source(axpy)
    assert src.startswith("def __kernel(")


# ---------------------------------------------------------------------------
# Cross-procedure inlining + outer-loop vectorisation (ISSUE 3 tentpole)
# ---------------------------------------------------------------------------


def _vadd4():
    return proc_from_source(
        """
def vadd4(dst: [f32][4] @ DRAM, a: [f32][4] @ DRAM, b: [f32][4] @ DRAM):
    for i in seq(0, 4):
        dst[i] = a[i] + b[i]
"""
    )


def test_inliner_folds_chunked_call_loop_to_one_statement():
    caller = proc_from_source(
        """
def chunks(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for io in seq(0, n / 4):
        vadd4(y[4 * io:4 * io + 4], x[4 * io:4 * io + 4], y[4 * io:4 * io + 4])
""",
        {"vadd4": _vadd4()},
    )
    eng = compile_proc(caller, inline=True)
    assert eng.inlined_calls == 1 and eng.vector_loops == 1 and eng.fallback_stmts == 0
    assert "range(" not in eng.source and "](__ctx" not in eng.source
    a1, a2 = _both(caller, {"n": 103})  # non-multiple: tail elements untouched
    assert np.array_equal(a1["y"], a2["y"])


def test_inline_knob_forced_off_keeps_call_path_and_agrees():
    caller = proc_from_source(
        """
def chunks(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for io in seq(0, n / 4):
        vadd4(y[4 * io:4 * io + 4], x[4 * io:4 * io + 4], y[4 * io:4 * io + 4])
""",
        {"vadd4": _vadd4()},
    )
    on = compile_proc(caller, inline=True)
    off = compile_proc(caller, inline=False)
    assert on is not off  # the knob is part of the cache key
    assert off.inlined_calls == 0 and "](__ctx" in off.source
    args = make_random_args(caller, {"n": 64})
    run_proc(caller, backend="differential", inline=False, **args)
    run_proc(caller, backend="differential", inline=True, **make_random_args(caller, {"n": 64}))


def test_inline_env_knob(monkeypatch):
    from repro.interp import clear_compile_cache

    caller = proc_from_source(
        """
def chunks(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for io in seq(0, n / 4):
        vadd4(y[4 * io:4 * io + 4], x[4 * io:4 * io + 4], y[4 * io:4 * io + 4])
""",
        {"vadd4": _vadd4()},
    )
    monkeypatch.setenv("REPRO_EXEC_INLINE", "0")
    clear_compile_cache()
    assert compile_proc(caller).inlined_calls == 0
    monkeypatch.setenv("REPRO_EXEC_INLINE", "1")
    assert compile_proc(caller).inlined_calls == 1


def test_scheduled_saxpy_has_no_per_chunk_python_calls():
    # the ISSUE-3 acceptance shape: the scheduled kernel compiles to
    # whole-array statements — no Python-level call and no loop per chunk
    from repro.blas import LEVEL1_KERNELS, optimize_level_1
    from repro.machines import AVX2

    sched = optimize_level_1(LEVEL1_KERNELS["saxpy"], "i", "f32", AVX2, 2)
    eng = compile_proc(sched, inline=True)
    assert eng.inlined_calls > 0 and eng.fallback_stmts == 0
    assert "](__ctx" not in eng.source  # zero per-chunk Python calls
    assert "range(" not in eng.source  # zero Python-level loops
    args = make_random_args(sched, {"n": 65536})
    run_proc(sched, backend="differential", **args)


def test_inliner_declines_scalar_cell_window_actual():
    # a window of a scalar cell (the interpreter's 0-d reshape(1) special
    # case) is not an inlinable tensor actual: the call path must survive
    callee = proc_from_source(
        """
def bump(dst: [f32][1] @ DRAM):
    dst[0] += 1.0
"""
    )
    caller = proc_from_source(
        """
def cellpass(y: f32[4] @ DRAM):
    acc: f32 @ DRAM
    acc = 0.0
    bump(acc[0:1])
    y[0] = acc
""",
        {"bump": callee},
    )
    eng = compile_proc(caller, inline=True)
    assert eng.inlined_calls == 0
    a1, a2 = _both(caller, {})
    assert np.array_equal(a1["y"], a2["y"])
    assert a1["y"][0] == 1.0


def test_inliner_declines_scalar_actual_aliasing_written_tensor():
    # the interpreter evaluates alpha = y[0] ONCE at call time; textual
    # substitution would re-read y[0] after the callee overwrites it
    scale = proc_from_source(
        """
def scale4(dst: [f32][4] @ DRAM, alpha: f32):
    for i in seq(0, 4):
        dst[i] = dst[i] * alpha
"""
    )
    caller = proc_from_source(
        """
def aliased(y: f32[4] @ DRAM):
    scale4(y[0:4], y[0])
""",
        {"scale4": scale},
    )
    eng = compile_proc(caller, inline=True)
    assert eng.inlined_calls == 0  # declined: actual reads a written base
    a1 = {"y": np.arange(2.0, 6.0, dtype=np.float32)}
    a2 = {"y": a1["y"].copy()}
    run_proc(caller, backend="compiled", **a1)
    run_proc(caller, backend="interp", **a2)
    assert np.array_equal(a1["y"], a2["y"])


def test_outer_vectorizer_rejects_lane_shifted_temp_dependence():
    # w[i+1] = w[i] propagates sequentially lane by lane; the folded
    # whole-array copy would not — the loop must stay scalar
    lanes = proc_from_source(
        """
def laneshift(dst: [f32][4] @ DRAM, src: [f32][4] @ DRAM):
    w: f32[5] @ DRAM
    w[0] = src[0]
    for i in seq(0, 4):
        w[i + 1] = w[i]
    for i in seq(0, 4):
        dst[i] = w[i + 1]
"""
    )
    caller = proc_from_source(
        """
def propagate(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for io in seq(0, n / 4):
        laneshift(y[4 * io:4 * io + 4], x[4 * io:4 * io + 4])
""",
        {"laneshift": lanes},
    )
    eng = compile_proc(caller, inline=True)
    assert "range(" in eng.source  # the chunk loop must stay scalar
    a1, a2 = _both(caller, {"n": 16})
    assert np.array_equal(a1["y"], a2["y"])


def test_inliner_declines_short_window_extent():
    # the interpreter errors on a callee access past the window VIEW even
    # when it stays inside the base buffer; a composed (inlined) access
    # would not — the inliner must prove the extent covers the callee shape
    vadd = _vadd4()
    short = proc_from_source(
        """
def shortwin(y: f32[8] @ DRAM, x: f32[8] @ DRAM):
    vadd4(y[0:2], x[0:4], y[0:4])
""",
        {"vadd4": vadd},
    )
    eng = compile_proc(short, inline=True)
    assert eng.inlined_calls == 0
    for backend in ("interp", "compiled"):
        args = make_random_args(short, {})
        with pytest.raises(InterpError):
            run_proc(short, backend=backend, **args)

    neg = proc_from_source(
        """
def negwin(m: size, y: f32[8] @ DRAM, x: f32[8] @ DRAM):
    vadd4(y[0:m - 8], x[0:4], y[0:4])
""",
        {"vadd4": vadd},
    )
    assert compile_proc(neg, inline=True).inlined_calls == 0
    for backend in ("interp", "compiled"):
        args = make_random_args(neg, {"m": 4})
        with pytest.raises(InterpError):
            run_proc(neg, backend=backend, **args)


def test_outer_vectorizer_scales_lane_invariant_reduction():
    # each chunk adds x[io] once per LANE: the folded sum must carry the
    # lane-count multiplicity
    p = proc_from_source(
        """
def lanesum(n: size, x: f32[n] @ DRAM, acc: f32[1] @ DRAM):
    for io in seq(0, n):
        for ii in seq(0, 4):
            acc[0] += x[io]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and "range(" not in eng.source
    a1, a2 = _both(p, {"n": 97})
    assert np.allclose(a1["acc"], a2["acc"], rtol=1e-4)
    # against zeroed accumulators the sum must carry the x4 multiplicity
    acc = np.zeros(1, dtype=np.float32)
    run_proc(p, backend="compiled", n=8, x=np.ones(8, dtype=np.float32), acc=acc)
    assert acc[0] == 32.0


def test_outer_vectorizer_trip1_leaf_loop_broadcasts_correctly():
    # a trip-1 leaf loop yields (chunks, 1) regions; they must flatten to
    # (chunks,) before composing with chunk-axis operands, or the product
    # broadcasts to (chunks, chunks) and the reduction silently explodes
    p = proc_from_source(
        """
def t1(n: size, x: f32[2 * n] @ DRAM, y: f32[n] @ DRAM, out: f32[1] @ DRAM):
    for io in seq(0, n):
        for ii in seq(0, 1):
            out[0] += x[2 * io + ii] * y[io]
"""
    )
    # inline=False keeps the trip-1 loop (the inliner's collapse never runs)
    eng = compile_proc(p, inline=False)
    assert eng.vector_loops == 1 and "range(" not in eng.source
    x = np.arange(12, dtype=np.float32)
    o1 = np.zeros(1, np.float32)
    o2 = np.zeros(1, np.float32)
    run_proc(p, backend="compiled", inline=False, n=6, x=x, y=np.ones(6, np.float32), out=o1)
    run_proc(p, backend="interp", n=6, x=x.copy(), y=np.ones(6, np.float32), out=o2)
    assert np.allclose(o1, o2) and o1[0] == 30.0


def test_outer_vectorizer_rejects_same_loop_conflicting_writes():
    # two writes in ONE leaf loop interleave per lane sequentially; folding
    # runs statement 1 for all lanes first, reversing the write order on
    # overlapping lanes — must fall back
    wr2 = proc_from_source(
        """
def wr2(dst: [f32][8] @ DRAM, s1: [f32][8] @ DRAM, s2: [f32][8] @ DRAM):
    for i in seq(0, 3):
        dst[i] = s1[i]
        dst[2 * i] = s2[i]
"""
    )
    caller = proc_from_source(
        """
def ww(n: size, y: f32[n] @ DRAM, a: f32[n] @ DRAM, b: f32[n] @ DRAM):
    for io in seq(0, n / 8):
        wr2(y[8 * io:8 * io + 8], a[8 * io:8 * io + 8], b[8 * io:8 * io + 8])
""",
        {"wr2": wr2},
    )
    eng = compile_proc(caller, inline=True)
    assert "range(" in eng.source  # the chunk loop must stay scalar
    a1, a2 = _both(caller, {"n": 16})
    assert np.array_equal(a1["y"], a2["y"])


def test_outer_vectorizer_rejects_chunk_carried_dependence():
    shift = proc_from_source(
        """
def vshift(dst: [f32][4] @ DRAM, src: [f32][4] @ DRAM):
    for i in seq(0, 4):
        dst[i] = src[i]
"""
    )
    # chunk io reads the last element chunk io-1 wrote: folding the outer
    # loop would read stale data, so the loop must stay a Python loop
    caller = proc_from_source(
        """
def carried(n: size, y: f32[n] @ DRAM):
    for io in seq(0, n / 4 - 1):
        vshift(y[4 * io + 4:4 * io + 8], y[4 * io + 1:4 * io + 5])
""",
        {"vshift": shift},
    )
    eng = compile_proc(caller, inline=True)
    assert eng.inlined_calls == 1
    assert "range(" in eng.source  # outer loop survives
    a1, a2 = _both(caller, {"n": 32})
    assert np.array_equal(a1["y"], a2["y"])


def test_outer_vectorizer_invariant_reduction_sums_over_chunks():
    fma = proc_from_source(
        """
def vfma4(dst: [f32][4] @ DRAM, a: [f32][4] @ DRAM, b: [f32][4] @ DRAM):
    for i in seq(0, 4):
        dst[i] += a[i] * b[i]
"""
    )
    caller = proc_from_source(
        """
def dotchunks(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, acc: f32[4] @ DRAM):
    for io in seq(0, n / 4):
        vfma4(acc[0:4], x[4 * io:4 * io + 4], y[4 * io:4 * io + 4])
""",
        {"vfma4": fma},
    )
    eng = compile_proc(caller, inline=True)
    assert eng.inlined_calls == 1 and "range(" not in eng.source
    assert ".sum(axis=0" in eng.source
    a1, a2 = _both(caller, {"n": 4096})
    assert np.allclose(a1["acc"], a2["acc"], rtol=1e-4)


# ---------------------------------------------------------------------------
# Masked-guard and tail-peel lowering (satellite)
# ---------------------------------------------------------------------------


def test_masked_guard_lowers_to_clipped_slice():
    p = proc_from_source(
        """
def maskstore(n: size, vw: size, base: index, bound: size, dst: f32[n] @ DRAM, src: f32[n] @ DRAM):
    for i in seq(0, vw):
        if base + i < bound:
            dst[i] = src[i]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and eng.fallback_stmts == 0
    assert "range(" not in eng.source and "min(" in eng.source
    for base, bound in ((0, 8), (0, 3), (5, 3), (3, 100), (0, 0)):
        a1 = make_random_args(p, {"n": 8, "vw": 8, "base": base, "bound": bound})
        a2 = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in a1.items()}
        run_proc(p, backend="compiled", **a1)
        run_proc(p, backend="interp", **a2)
        assert np.array_equal(a1["dst"], a2["dst"]), (base, bound)


def test_lower_bound_guard_peels_prefix():
    p = proc_from_source(
        """
def tailset(n: size, start: size, y: f32[n] @ DRAM):
    for i in seq(0, n):
        if i >= start:
            y[i] = 1.0
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and "max(" in eng.source
    for start in (0, 3, 8, 100):
        a1 = make_random_args(p, {"n": 8, "start": start})
        a2 = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in a1.items()}
        run_proc(p, backend="compiled", **a1)
        run_proc(p, backend="interp", **a2)
        assert np.array_equal(a1["y"], a2["y"]), start


def test_masked_reduction_clips_sum_range():
    p = proc_from_source(
        """
def maskdot(n: size, bound: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, result: f32[1] @ DRAM):
    for i in seq(0, n):
        if i < bound:
            result[0] += x[i] * y[i]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and ".sum(" in eng.source
    for bound in (0, 7, 64, 10_000):
        a1 = make_random_args(p, {"n": 64, "bound": bound})
        a2 = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in a1.items()}
        run_proc(p, backend="compiled", **a1)
        run_proc(p, backend="interp", **a2)
        assert np.allclose(a1["result"], a2["result"], rtol=1e-4), bound


def test_value_dependent_guard_still_falls_back():
    # a guard on loaded data is not affine in the iterator: scalar loop
    p = proc_from_source(
        """
def datadep(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        if x[i] < 0.5:
            y[i] = 0.0
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 0 and "range(" in eng.source
    a1, a2 = _both(p, {"n": 40})
    assert np.array_equal(a1["y"], a2["y"])
