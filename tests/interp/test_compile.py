"""Unit tests for the compiled execution engine (repro.interp.compile)."""
from __future__ import annotations

import numpy as np
import pytest

from repro import proc_from_source
from repro.interp import (
    CompileError,
    InterpError,
    check_equiv,
    compile_proc,
    compiled_source,
    make_random_args,
    run_proc,
)


def _both(proc, size_env, seed=0):
    """Run ``proc`` under both backends on identical inputs; return (compiled,
    interp) argument dicts."""
    a1 = make_random_args(proc, size_env, seed=seed)
    a2 = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in a1.items()}
    run_proc(proc, backend="compiled", **a1)
    run_proc(proc, backend="interp", **a2)
    return a1, a2


# ---------------------------------------------------------------------------
# Vectorisation
# ---------------------------------------------------------------------------


def test_saxpy_vectorises_and_is_bit_identical():
    p = proc_from_source(
        """
def saxpy(n: size, alpha: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += alpha * x[i]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and eng.fallback_stmts == 0
    assert "range(" not in eng.source  # the loop is gone entirely
    a1, a2 = _both(p, {"n": 10_000})
    assert np.array_equal(a1["y"], a2["y"])  # elementwise map: exact


def test_gemm_inner_loop_vectorises():
    p = proc_from_source(
        """
def gemm(M: size, N: size, K: size, A: f32[M, K] @ DRAM, B: f32[K, N] @ DRAM, C: f32[M, N] @ DRAM):
    for k in seq(0, K):
        for i in seq(0, M):
            for j in seq(0, N):
                C[i, j] += A[i, k] * B[k, j]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1
    a1, a2 = _both(p, {"M": 17, "N": 23, "K": 11})
    assert np.array_equal(a1["C"], a2["C"])


def test_scalar_expansion_rot_kernel():
    # xi is a loop-local scalar read after x is overwritten: the vectoriser
    # must materialise a copy, not keep a live view
    p = proc_from_source(
        """
def rot(n: size, c: f32, s: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        xi: f32 @ DRAM
        xi = x[i]
        x[i] = c * xi + s * y[i]
        y[i] = c * y[i] - s * xi
"""
    )
    assert compile_proc(p).vector_loops == 1
    a1, a2 = _both(p, {"n": 513, "c": 0.8, "s": 0.6})
    assert np.array_equal(a1["x"], a2["x"]) and np.array_equal(a1["y"], a2["y"])


def test_invariant_reduction_becomes_sum():
    p = proc_from_source(
        """
def dot(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, result: f32[1] @ DRAM):
    for i in seq(0, n):
        result[0] += x[i] * y[i]
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and ".sum(" in eng.source
    a1, a2 = _both(p, {"n": 65536})
    assert np.allclose(a1["result"], a2["result"], rtol=1e-4)


def test_loop_carried_dependence_not_vectorised():
    # prefix sum: y[i] reads y[i - 1] + 1 — must stay a scalar loop
    p = proc_from_source(
        """
def scan(n: size, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i + 1] = y[i] + 1.0
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 0 and "range(" in eng.source
    a1 = make_random_args(p, {"n": 64})
    a1["y"] = np.zeros(65, dtype=np.float32)
    a2 = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in a1.items()}
    run_proc(p, backend="compiled", **a1)
    run_proc(p, backend="interp", **a2)
    assert np.array_equal(a1["y"], a2["y"])


def test_diagonal_access_not_vectorised():
    # the iterator in two dimensions of one access is not a slice — naive
    # per-dimension slicing would write an n x n block instead of a diagonal
    p = proc_from_source(
        """
def diag(n: size, A: f32[n, n] @ DRAM):
    for i in seq(0, n):
        A[i, i] = 1.0
"""
    )
    assert compile_proc(p).vector_loops == 0
    a1, a2 = _both(p, {"n": 6})
    assert np.array_equal(a1["A"], a2["A"])
    assert a1["A"][0, 1] != 1.0  # off-diagonal untouched

    q = proc_from_source(
        """
def rdiag(n: size, A: f32[n, n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = A[i, i]
"""
    )
    b1, b2 = _both(q, {"n": 6})
    assert np.array_equal(b1["y"], b2["y"])


def test_invariant_scalar_temp_reduction_not_summed():
    # t holds a loop-invariant *scalar*: the sum-reduction lowering must not
    # emit .sum() on it (the reduction adds t once per iteration)
    p = proc_from_source(
        """
def inv(n: size, alpha: f32, s: f32[1] @ DRAM):
    for i in seq(0, n):
        t: f32 @ DRAM
        t = alpha
        s[0] += t
"""
    )
    a1 = {"n": 5, "alpha": 2.0, "s": np.zeros(1, dtype=np.float32)}
    a2 = {"n": 5, "alpha": 2.0, "s": np.zeros(1, dtype=np.float32)}
    run_proc(p, backend="compiled", **a1)
    run_proc(p, backend="interp", **a2)
    assert np.allclose(a1["s"], a2["s"])
    assert np.allclose(a1["s"], [10.0])


def test_window_alias_blocks_unsafe_vectorisation():
    # t aliases x through a window; the shifted copy has a loop-carried
    # dependence that a per-symbol analysis would miss
    p = proc_from_source(
        """
def shift(n: size, x: f32[n] @ DRAM):
    t = x[0:n]
    for i in seq(0, n - 1):
        x[i + 1] = t[i]
"""
    )
    assert compile_proc(p).vector_loops == 0
    a1 = {"n": 8, "x": np.arange(8, dtype=np.float32)}
    a2 = {"n": 8, "x": np.arange(8, dtype=np.float32)}
    run_proc(p, backend="compiled", **a1)
    run_proc(p, backend="interp", **a2)
    assert np.array_equal(a1["x"], a2["x"])


def test_window_reads_alone_still_vectorise():
    p = proc_from_source(
        """
def wread(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    t = x[0:n]
    for i in seq(0, n):
        y[i] = t[i] + x[i]
"""
    )
    assert compile_proc(p).vector_loops == 1
    a1, a2 = _both(p, {"n": 100})
    assert np.array_equal(a1["y"], a2["y"])


def test_extern_vectorises_via_numpy_equivalent():
    p = proc_from_source(
        """
def asum(n: size, x: f32[n] @ DRAM, result: f32[1] @ DRAM):
    for i in seq(0, n):
        result[0] += fabs(x[i])
"""
    )
    eng = compile_proc(p)
    assert eng.vector_loops == 1 and "np.abs" in eng.source
    a1, a2 = _both(p, {"n": 4096})
    assert np.allclose(a1["result"], a2["result"], rtol=1e-4)


# ---------------------------------------------------------------------------
# Out-of-bounds behaviour (negative-index regression, satellite task)
# ---------------------------------------------------------------------------


def test_negative_index_rejected_by_both_backends():
    p = proc_from_source(
        """
def neg(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i - 1]
"""
    )
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


def test_negative_index_rejected_in_scalar_compiled_path():
    # i / 2 defeats the affine analysis, so this exercises the guarded
    # scalar lowering rather than the slice guard
    p = proc_from_source(
        """
def neg2(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i / 2 - 1]
"""
    )
    assert compile_proc(p).vector_loops == 0
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


def test_negative_window_rejected_by_both_backends():
    p = proc_from_source(
        """
def negw(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n / 4):
        w = x[4 * i - 1:4 * i + 3]
        for j in seq(0, 4):
            y[4 * i + j] = w[j]
"""
    )
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


def test_upper_out_of_bounds_rejected_by_both_backends():
    p = proc_from_source(
        """
def over(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i + 1]
"""
    )
    for backend in ("interp", "compiled"):
        args = make_random_args(p, {"n": 8})
        with pytest.raises(InterpError):
            run_proc(p, backend=backend, **args)


# ---------------------------------------------------------------------------
# Fallback, caching, differential mode
# ---------------------------------------------------------------------------


def test_scheduled_kernel_compiles_calls_recursively():
    from repro.blas import LEVEL1_KERNELS, optimize_level_1
    from repro.machines import AVX2

    opt = optimize_level_1(LEVEL1_KERNELS["saxpy"], "i", "f32", AVX2, 2)
    eng = compile_proc(opt)
    # @instr calls lower to compiled callees, not interpreter fallbacks
    assert eng.fallback_stmts == 0
    assert check_equiv(LEVEL1_KERNELS["saxpy"], opt, {"n": 4096})


def test_compile_cache_hits_and_distinguishes_procs():
    p = proc_from_source(
        """
def cached(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = x[i] * 2.0
"""
    )
    assert compile_proc(p) is compile_proc(p)
    q = proc_from_source(
        """
def cached(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = x[i] * 3.0
"""
    )
    assert compile_proc(p) is not compile_proc(q)


def test_cache_distinguishes_argument_types():
    # struct_hash skips FnArg types, but codegen depends on them: a `size`
    # argument elides the negative-index guard an `index` argument needs
    src = """
def typed(k: {T}, y: f32[8] @ DRAM):
    y[k] = 1.0
"""
    p_size = proc_from_source(src.format(T="size"))
    p_index = proc_from_source(src.format(T="index"))
    assert compile_proc(p_size) is not compile_proc(p_index)
    y = np.zeros(8, dtype=np.float32)
    with pytest.raises(InterpError):
        run_proc(p_index, backend="compiled", k=-1, y=y)
    assert not y.any()


def test_differential_backend_runs_and_agrees(gemv):
    args = make_random_args(gemv, {"M": 16, "N": 16})
    run_proc(gemv, backend="differential", **args)


def test_unknown_backend_rejected(gemv):
    args = make_random_args(gemv, {"M": 8, "N": 8})
    with pytest.raises(InterpError):
        run_proc(gemv, backend="no-such-engine", **args)


def test_config_state_shared_between_compiled_and_fallback():
    # Gemmini-style config writes execute through the compiled lowering and
    # must observe one shared config dict per run
    from repro.gemmini import make_matmul_kernel, schedule_matmul_gemmini

    kernel = make_matmul_kernel(K=16)
    sched = schedule_matmul_gemmini(kernel)
    N = M = 16
    mk = lambda: (
        np.random.default_rng(0).integers(-3, 4, size=(N, 16)).astype(np.int32),
        np.random.default_rng(1).integers(-3, 4, size=(16, M)).astype(np.int32),
    )
    A, B = mk()
    C1 = np.zeros((N, M), dtype=np.int32)
    C2 = np.zeros((N, M), dtype=np.int32)
    run_proc(sched, backend="compiled", N=N, M=M, scale=1.0, A=A, B=B, C=C1, config_state={})
    run_proc(sched, backend="interp", N=N, M=M, scale=1.0, A=A, B=B, C=C2, config_state={})
    assert np.array_equal(C1, C2)


def test_compiled_source_is_inspectable(axpy):
    src = compiled_source(axpy)
    assert src.startswith("def __kernel(")
