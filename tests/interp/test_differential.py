"""Differential coverage: compiled engine vs. tree interpreter on identical
random inputs, for every kernel in the BLAS level-1/2 and Halide suites —
both the unscheduled object code and the scheduled versions.

``backend="differential"`` runs both engines internally and raises
:class:`DifferentialError` on any tensor divergence beyond check_equiv
tolerances, so a bare ``run_proc`` call *is* the assertion.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.blas import (
    LEVEL1_KERNELS,
    LEVEL2_KERNELS,
    all_level1_names,
    all_level2_names,
    optimize_level_1,
    optimize_level_2_general,
)
from repro.halide import make_blur, make_unsharp, schedule_blur, schedule_unsharp
from repro.interp import make_random_args, run_proc
from repro.machines import AVX2, AVX512

L1_SIZES = {"n": 173}  # deliberately not a multiple of any vector width
L2_SIZES = {"M": 40, "N": 29}


def _l2_sizes(name):
    return dict(L2_SIZES) if ("gemv" in name or "ger" in name) else {"N": 33}


def _diff(proc, size_env, seed=0, inline=None, **extra):
    args = make_random_args(proc, size_env, seed=seed)
    args.update(extra)
    run_proc(proc, backend="differential", inline=inline, **args)


# ---------------------------------------------------------------------------
# BLAS, unscheduled object code
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", all_level1_names())
def test_level1_unscheduled_differential(name):
    _diff(LEVEL1_KERNELS[name], L1_SIZES)


@pytest.mark.parametrize("name", all_level2_names())
def test_level2_unscheduled_differential(name):
    _diff(LEVEL2_KERNELS[name], _l2_sizes(name))


# ---------------------------------------------------------------------------
# BLAS, scheduled (vectorised + unrolled) versions — every kernel, both SIMD
# targets, with the compiled engine's cross-procedure inliner forced on AND
# forced off (the two compiled code paths are entirely different: inlined
# kernels run through the outer-loop vectoriser, non-inlined ones through
# recursively compiled @instr callees)
# ---------------------------------------------------------------------------

MACHINES = {"AVX2": AVX2, "AVX512": AVX512}


@pytest.fixture(scope="module", params=sorted(MACHINES))
def l1_machine_schedules(request):
    machine = MACHINES[request.param]
    out = {}
    for name, kernel in LEVEL1_KERNELS.items():
        prec = "f64" if name.startswith("d") else "f32"
        out[name] = optimize_level_1(kernel, "i", prec, machine, 2)
    return out


@pytest.fixture(scope="module", params=sorted(MACHINES))
def l2_machine_schedules(request):
    machine = MACHINES[request.param]
    out = {}
    for name, kernel in LEVEL2_KERNELS.items():
        prec = "f64" if name.startswith("d") else "f32"
        out[name] = optimize_level_2_general(kernel, "i", prec, machine, 2, 2)
    return out


@pytest.mark.parametrize("inline", [True, False], ids=["inline", "noinline"])
@pytest.mark.parametrize("name", all_level1_names())
def test_level1_scheduled_differential(name, inline, l1_machine_schedules):
    _diff(l1_machine_schedules[name], L1_SIZES, inline=inline)


@pytest.mark.parametrize("inline", [True, False], ids=["inline", "noinline"])
@pytest.mark.parametrize("name", all_level2_names())
def test_level2_scheduled_differential(name, inline, l2_machine_schedules):
    _diff(l2_machine_schedules[name], _l2_sizes(name), inline=inline)


# ---------------------------------------------------------------------------
# Halide suite
# ---------------------------------------------------------------------------

H, W = 32, 256  # the kernels assert H % 32 == 0 and W % 256 == 0


def _image_args(proc, **extra):
    args = make_random_args(proc, {"H": H, "W": W})
    args.update(extra)
    return args


def test_blur_unscheduled_differential():
    run_proc(make_blur(), backend="differential", **_image_args(make_blur()))


def test_blur_scheduled_differential():
    sched = schedule_blur(AVX512)
    run_proc(sched, backend="differential", **_image_args(sched))


def test_unsharp_unscheduled_differential():
    p = make_unsharp()
    run_proc(p, backend="differential", **_image_args(p, amount=1.5))


def test_unsharp_scheduled_differential():
    sched = schedule_unsharp(AVX512)
    run_proc(sched, backend="differential", **_image_args(sched, amount=1.5))


# ---------------------------------------------------------------------------
# Config-state comparison (Gemmini pipeline)
# ---------------------------------------------------------------------------


def test_gemmini_scheduled_differential_compares_config_state():
    from repro.gemmini import make_matmul_kernel, schedule_matmul_gemmini

    kernel = make_matmul_kernel(K=16)
    sched = schedule_matmul_gemmini(kernel)
    rng = np.random.default_rng(7)
    N = M = 16
    args = dict(
        N=N,
        M=M,
        scale=1.0,
        A=rng.integers(-3, 4, size=(N, 16)).astype(np.int32),
        B=rng.integers(-3, 4, size=(16, M)).astype(np.int32),
        C=np.zeros((N, M), dtype=np.int32),
    )
    run_proc(sched, backend="differential", config_state={}, **args)


# ---------------------------------------------------------------------------
# Differential mode actually detects divergence
# ---------------------------------------------------------------------------


def test_differential_mode_detects_divergence(monkeypatch):
    from repro.interp import DifferentialError
    from repro.interp import compile as C

    p = LEVEL1_KERNELS["sscal"]
    engine = C.compile_proc(p)
    bad = C.CompiledProc(engine.name, engine.source, lambda ctx, n, alpha, x: None, 0, 0)
    monkeypatch.setattr(C, "compile_proc", lambda _p, **_kw: bad)
    args = make_random_args(p, {"n": 16})
    with pytest.raises(DifferentialError):
        run_proc(p, backend="differential", **args)


def test_differential_mode_refuses_to_degrade(monkeypatch):
    # if the compiled leg is unavailable the cross-check must fail loudly,
    # not silently compare the interpreter against itself
    from repro.interp import CompileError, DifferentialError
    from repro.interp import compile as C

    def boom(_p, **_kw):
        raise CompileError("forced")

    monkeypatch.setattr(C, "compile_proc", boom)
    p = LEVEL1_KERNELS["sscal"]
    args = make_random_args(p, {"n": 16})
    with pytest.raises(DifferentialError):
        run_proc(p, backend="differential", **args)
    # the plain compiled backend still falls back and succeeds
    run_proc(p, backend="compiled", **make_random_args(p, {"n": 16}))
