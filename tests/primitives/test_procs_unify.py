"""Multi-procedure primitives: replace (unification), inline, call_eqv, extract."""
from __future__ import annotations

import pytest

from repro import SchedulingError, call_eqv, divide_loop, extract_subproc, inline, rename, replace, replace_all, simplify
from repro.interp import check_equiv
from repro.machines import AVX2


def test_rename(gemv):
    assert rename(gemv, "gemv_opt").name() == "gemv_opt"


def _staged_copy():
    from repro import proc_from_source

    return proc_from_source(
        "def staged(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    assert n % 8 == 0\n"
        "    for jo in seq(0, n / 8):\n"
        "        v: f32[8] @ VEC_AVX2\n"
        "        for ji in seq(0, 8):\n"
        "            v[ji] = x[8 * jo + ji]\n"
        "        for ji in seq(0, 8):\n"
        "            y[8 * jo + ji] = v[ji]\n",
        {"VEC_AVX2": AVX2.mem_type},
    )


def test_replace_with_load_instruction():
    iset = AVX2.get_instruction_set("f32")
    p = _staged_copy()
    q = replace(p, p.find_loop("ji").as_block(), iset.load)
    assert "avx2_f32_load" in str(q)
    assert check_equiv(p, q, {"n": 16})


def test_replace_all_selects_by_memory():
    iset = AVX2.get_instruction_set("f32")
    p = _staged_copy()
    q = replace_all(p, [iset.load, iset.store])
    text = str(q)
    assert "avx2_f32_load" in text and "avx2_f32_store" in text
    assert check_equiv(p, q, {"n": 24})


def test_replace_memory_mismatch_refused(copy2d):
    # a DRAM->DRAM copy must NOT unify with a register load
    iset = AVX2.get_instruction_set("f32")
    p = divide_loop(copy2d, "j", 8, ["jo", "ji"], tail="cut")
    p = simplify(p)
    q = replace_all(p, [iset.load])
    assert "avx2_f32_load" not in str(q)


def test_replace_fails_on_mismatch(gemv):
    iset = AVX2.get_instruction_set("f32")
    with pytest.raises(SchedulingError):
        replace(gemv, gemv.find_loop("j").as_block(), iset.load)


def test_inline(axpy, gemv):
    # build a caller that calls axpy on a row of A
    from repro import proc_from_source
    # extract a subproc from gemv then inline it back
    j_loop = gemv.find_loop("j")
    p, sub = extract_subproc(gemv, j_loop.as_block(), "row_update")
    assert "row_update(" in str(p)
    assert check_equiv(gemv, p, {"M": 8, "N": 8})
    q = inline(p, p.find("row_update(_)"))
    assert "row_update(" not in str(q)
    assert check_equiv(gemv, q, {"M": 8, "N": 8})


def test_call_eqv(gemv):
    j_loop = gemv.find_loop("j")
    p, sub = extract_subproc(gemv, j_loop.as_block(), "row_update")
    sub2 = rename(sub, "row_update_v2")
    q = call_eqv(p, sub, sub2)
    assert "row_update_v2(" in str(q)
    assert check_equiv(gemv, q, {"M": 8, "N": 8})
