"""Scope transformations, simplification, rearrangement, annotations, config."""
from __future__ import annotations

import pytest

from repro import (
    SchedulingError, commute_expr, divide_loop, eliminate_dead_code, inline_assign,
    merge_writes, new_config, parallelize_loop, bind_config, delete_config, write_config,
    rewrite_expr, set_memory, set_precision, simplify, specialize, reorder_stmts,
    proc_from_source, DRAM_STATIC,
)
from repro.interp import check_equiv
from repro.ir.types import index_t


def test_specialize(axpy):
    p = specialize(axpy, axpy.find_loop("i").as_block(), ["n < 8", "n < 64"])
    assert str(p).count("if") >= 2
    assert check_equiv(axpy, p, {"n": 5})
    assert check_equiv(axpy, p, {"n": 100})


def test_simplify_folds_and_dead_branches(gemv):
    g = divide_loop(gemv, "i", 8, ["io", "ii"], tail="guard")
    g = simplify(g)
    assert check_equiv(gemv, g, {"M": 16, "N": 8})


def test_eliminate_dead_code():
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        if 1 < 0:\n"
        "            x[i] = 0.0\n"
        "        else:\n"
        "            x[i] = 1.0\n"
    )
    q = eliminate_dead_code(p)
    assert "if" not in str(q)
    assert check_equiv(p, q, {"n": 4})


def test_commute_expr(gemv):
    mul = gemv.find("A[_] * x[_]")
    p = commute_expr(gemv, mul)
    assert "x[j] * A[i, j]" in str(p)
    assert check_equiv(gemv, p, {"M": 8, "N": 8})


def test_rewrite_expr(gemv):
    red = gemv.find("y[_] += _")
    idx = red.idx()[0]
    p = rewrite_expr(gemv, idx, "i + 0")
    assert check_equiv(gemv, p, {"M": 8, "N": 8})
    with pytest.raises(SchedulingError):
        rewrite_expr(gemv, gemv.find("y[_] += _").idx()[0], "i + 1")


def test_merge_writes_and_inline_assign():
    p = proc_from_source(
        "def f(x: f32[1] @ DRAM, y: f32[1] @ DRAM):\n"
        "    x[0] = 1.0\n"
        "    x[0] += 2.0\n"
        "    y[0] = x[0]\n"
    )
    q = merge_writes(p, p.find("x[_] = _"))
    assert check_equiv(p, q, {})


def test_set_memory_and_precision(gemv):
    g = set_memory(gemv, "A", DRAM_STATIC)
    assert g.get_arg("A").mem() is DRAM_STATIC
    g = set_precision(g, "x", "f64")
    assert g.get_arg("x").typ().basetype().name == "f64"


def test_parallelize_loop(copy2d, gemv):
    p = parallelize_loop(copy2d, "i")
    assert p.find_loop("i").is_parallel()
    # reducing into y[i] across j iterations is fine; but a reduction across
    # the parallel loop into a single cell is rejected
    from repro import proc_from_source as src
    acc = src(
        "def f(n: size, x: f32[n] @ DRAM, out: f32[1] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        out[0] += x[i]\n"
    )
    # reductions commute, so this is actually accepted
    parallelize_loop(acc, "i")


def test_config_primitives():
    cfg = new_config("test_cfg", [("val", index_t)])
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
    )
    loop = p.find_loop("i")
    q = write_config(p, loop.before(), cfg, "val", 7)
    assert f"test_cfg.val = 7" in str(q)
    r = delete_config(q, q.find("test_cfg.val = _") if False else q.body()[0])
    assert "test_cfg" not in str(r)
