"""Buffer-transformation primitive tests."""
from __future__ import annotations

import pytest

from repro import (
    SchedulingError, bind_expr, delete_buffer, divide_dim, expand_dim, lift_alloc,
    mult_dim, rearrange_dim, resize_dim, reuse_buffer, set_memory, simplify, sink_alloc,
    stage_mem, stage_reduction, unroll_buffer,
)
from repro.interp import check_equiv
from repro import proc_from_source


@pytest.fixture
def scratch():
    return proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        t: f32 @ DRAM\n"
        "        t = 2.0 * x[i]\n"
        "        y[i] = t + 1.0\n"
    )


def test_lift_alloc_and_expand_dim(scratch):
    p = expand_dim(scratch, "t", "n", "i")
    p = lift_alloc(p, "t")
    # the allocation now sits at the procedure top level, sized [n]
    assert "t: f32[n]" in str(p)
    assert check_equiv(scratch, p, {"n": 9})


def test_sink_alloc(scratch):
    p = expand_dim(scratch, "t", "n", "i")
    p = lift_alloc(p, "t")
    p2 = sink_alloc(p, "t")
    assert check_equiv(scratch, p2, {"n": 5})


def test_delete_buffer_requires_dead(scratch):
    with pytest.raises(SchedulingError):
        delete_buffer(scratch, "t")


def test_bind_expr(gemv):
    mul = gemv.find("A[_] * x[_]")
    p = bind_expr(gemv, mul, "prod")
    assert "prod: f32" in str(p) or "prod:" in str(p)
    assert check_equiv(gemv, p, {"M": 8, "N": 8})


def test_stage_mem_window(gemv):
    j_loop = gemv.find_loop("j")
    p = stage_mem(gemv, j_loop.as_block(), "x[0:N]", "x_tile")
    assert "x_tile: f32[N]" in str(p)
    assert check_equiv(gemv, p, {"M": 8, "N": 8})


def test_stage_mem_accum(dot):
    loop = dot.find_loop("i")
    p = stage_mem(dot, loop.as_block(), "result[0:1]", "acc", accum=True)
    assert check_equiv(dot, p, {"n": 13})


def test_stage_reduction(dot):
    loop = dot.find_loop("i")
    red = dot.find("result[_] += _")
    p = stage_reduction(dot, loop, red, "acc_v", 8)
    p = simplify(p)
    assert "acc_v: f32[8]" in str(p)
    assert check_equiv(dot, p, {"n": 21})


def test_dimension_surgery(copy2d):
    # expand/rearrange/divide/mult on a staged buffer
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    assert n % 8 == 0\n"
        "    buf: f32[n] @ DRAM\n"
        "    for i in seq(0, n):\n"
        "        buf[i] = x[i]\n"
        "    for i in seq(0, n):\n"
        "        y[i] = buf[i]\n"
    )
    q = divide_dim(p, "buf", 0, 8)
    assert check_equiv(p, q, {"n": 16})
    r = rearrange_dim(q, "buf", [1, 0])
    assert check_equiv(p, r, {"n": 16})
    s = mult_dim(r, "buf", 1, 0)
    assert check_equiv(p, s, {"n": 16})


def test_resize_dim_and_reuse_buffer():
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    a: f32[n] @ DRAM\n"
        "    b: f32[n] @ DRAM\n"
        "    for i in seq(0, n):\n"
        "        a[i] = x[i] * 2.0\n"
        "    for i in seq(0, n):\n"
        "        b[i] = a[i] + 1.0\n"
        "    for i in seq(0, n):\n"
        "        y[i] = b[i]\n"
    )
    q = reuse_buffer(p, "a", "b")
    assert check_equiv(p, q, {"n": 7})


def test_unroll_buffer():
    p = proc_from_source(
        "def f(x: f32[4] @ DRAM, y: f32[4] @ DRAM):\n"
        "    t: f32[2] @ DRAM\n"
        "    t[0] = x[0]\n"
        "    t[1] = x[1]\n"
        "    y[0] = t[0]\n"
        "    y[1] = t[1]\n"
    )
    q = unroll_buffer(p, "t", 0)
    assert "t_0" in str(q) and "t_1" in str(q)
    assert check_equiv(p, q, {})
