"""Loop-transformation primitive tests (behaviour + safety + equivalence)."""
from __future__ import annotations

import pytest

from repro import (
    SchedulingError, add_loop, cut_loop, divide_loop, fission, fuse, join_loops,
    lift_scope, mult_loops, remove_loop, reorder_loops, shift_loop, simplify, unroll_loop,
)
from repro.interp import check_equiv


@pytest.mark.parametrize("tail", ["cut", "guard", "cut_and_guard"])
def test_divide_loop_tails_preserve_semantics(axpy, tail):
    p = divide_loop(axpy, "i", 8, ["io", "ii"], tail=tail)
    assert check_equiv(axpy, p, {"n": 21})
    assert check_equiv(axpy, p, {"n": 32})


def test_divide_loop_perfect_requires_divisibility(axpy, gemv):
    with pytest.raises(SchedulingError):
        divide_loop(axpy, "i", 8, ["io", "ii"], perfect=True)
    p = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    assert check_equiv(gemv, p, {"M": 16, "N": 8})


def test_reorder_loops(copy2d, gemv):
    p = reorder_loops(copy2d, "i")
    assert str(p.body()[0].name()) == "j"
    assert check_equiv(copy2d, p, {"M": 5, "N": 7})
    # gemv's j loop reduces into y[i]; interchange is still legal
    p2 = reorder_loops(gemv, "i")
    assert check_equiv(gemv, p2, {"M": 8, "N": 8})


def test_lift_scope_tiling(gemv):
    g = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    g = divide_loop(g, "j", 8, ["jo", "ji"], perfect=True)
    g = lift_scope(g, "jo")
    from repro.cursors import ForCursor

    names = []
    cur = g.body()[0]
    while isinstance(cur, ForCursor):
        names.append(cur.name())
        body = cur.body()
        if len(body) != 1:
            break
        cur = body[0]
    assert names[:4] == ["io", "jo", "ii", "ji"]
    assert check_equiv(gemv, g, {"M": 16, "N": 16})


def test_cut_and_join():
    from repro import proc_from_source

    big = proc_from_source(
        "def f(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    assert n >= 8\n"
        "    for i in seq(0, n):\n"
        "        y[i] += a * x[i]\n"
    )
    p = cut_loop(big, "i", "4")
    assert len(p.find("for i in _: _", many=True)) == 2
    assert check_equiv(big, p, {"n": 11})
    joined = join_loops(p, p.find("for i in _: _ #0"), p.find("for i in _: _ #1"))
    assert check_equiv(big, joined, {"n": 11})


def test_cut_loop_requires_valid_cut_point(axpy):
    with pytest.raises(SchedulingError):
        cut_loop(axpy, "i", "4")  # cannot prove 4 <= n for an arbitrary size n


def test_shift_loop(axpy):
    p = shift_loop(axpy, "i", 2)
    assert check_equiv(axpy, p, {"n": 9})


def test_mult_loops(gemv):
    g = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    g = mult_loops(g, "io", "i_flat")
    g = simplify(g)
    assert check_equiv(gemv, g, {"M": 16, "N": 8})


def test_unroll_loop(gemv):
    g = divide_loop(gemv, "j", 8, ["jo", "ji"], perfect=True)
    g = unroll_loop(g, "ji")
    assert len(g.find_loop("jo").body()) == 8
    assert check_equiv(gemv, g, {"M": 8, "N": 16})


def test_unroll_requires_constant_bounds(gemv):
    with pytest.raises(SchedulingError):
        unroll_loop(gemv, "i")


def test_fission_and_fuse(copy2d):
    from repro import proc_from_source
    p0 = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
        "        y[i] = x[i] + 1.0\n"
    )
    loop = p0.find_loop("i")
    p = fission(p0, loop.body()[0].after())
    assert len(p.find("for i in _: _", many=True)) == 2
    assert check_equiv(p0, p, {"n": 9})
    refused = fuse(p, *p.find("for i in _: _", many=True))
    assert check_equiv(p0, refused, {"n": 9})


def test_fission_rejects_accumulation():
    from repro import proc_from_source
    p0 = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[1] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        y[0] += x[i]\n"
        "        x[i] = y[0]\n"
    )
    loop = p0.find_loop("i")
    with pytest.raises(SchedulingError):
        fission(p0, loop.body()[0].after())


def test_remove_and_add_loop(copy2d):
    p = add_loop(copy2d, copy2d.find_loop("i"), "rep", 3)
    assert check_equiv(copy2d, p, {"M": 4, "N": 4})
    back = remove_loop(p, "rep")
    assert check_equiv(copy2d, back, {"M": 4, "N": 4})


def test_remove_loop_rejects_reductions(gemv):
    with pytest.raises(SchedulingError):
        remove_loop(gemv, "j")
