"""Mechanics of multicore ``par``-loop execution in the compiled engine:
dispatch lowering, thread-count resolution, cache keying, stats counters,
privatized reductions, nested-dispatch serialization, and the
``thread-pool-exhausted`` degradation."""
from __future__ import annotations

import numpy as np
import pytest

from repro import proc
from repro.guard.faults import inject
from repro.interp import (
    MAX_THREADS,
    PAR_CHUNKS,
    ThreadCountError,
    clear_exec_stats,
    compile_proc,
    compiled_source,
    exec_stats,
    resolve_num_threads,
    run_proc,
)
from repro.interp.parallel import par_for
from repro.lang import *  # noqa: F401,F403
from repro.primitives import parallelize_loop


@proc
def _axpy(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]


@proc
def _scalar_acc(n: size, x: f32[n] @ DRAM, out: f32[1] @ DRAM):
    acc: f32 @ DRAM
    acc = 0.0
    for i in seq(0, n):
        acc += x[i]
    out[0] = acc


@proc
def _copy2d(M: size, N: size, src: f32[M, N] @ DRAM, dst: f32[M, N] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            dst[i, j] = src[i, j]


@pytest.fixture(autouse=True)
def _fresh_stats():
    clear_exec_stats()
    yield
    clear_exec_stats()


# ---------------------------------------------------------------------------
# Thread-count resolution
# ---------------------------------------------------------------------------


def test_explicit_threads_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_THREADS", "7")
    assert resolve_num_threads(3) == 3


def test_env_variable_resolves(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_THREADS", "5")
    assert resolve_num_threads() == 5


def test_default_is_cpu_count_clamped(monkeypatch):
    monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
    import os

    assert resolve_num_threads() == min(os.cpu_count() or 1, MAX_THREADS)


def test_counts_clamp_to_max_threads():
    assert resolve_num_threads(10_000) == MAX_THREADS


@pytest.mark.parametrize("bad", ["0", "-3", "two", "1.5"])
def test_invalid_env_values_raise_loudly(monkeypatch, bad):
    monkeypatch.setenv("REPRO_NUM_THREADS", bad)
    with pytest.raises(ThreadCountError):
        resolve_num_threads()


def test_invalid_argument_raises():
    with pytest.raises(ThreadCountError):
        resolve_num_threads(0)


# ---------------------------------------------------------------------------
# Lowering + cache keying
# ---------------------------------------------------------------------------


def test_par_loop_lowers_to_dispatch():
    p = parallelize_loop(_axpy, "i")
    src = compiled_source(p, threads=2)
    assert "_par_for(" in src
    assert compile_proc(p, threads=2).stats()["par_loops"] == 1


def test_sequential_loop_does_not_dispatch():
    src = compiled_source(_axpy, threads=2)
    assert "_par_for(" not in src
    assert compile_proc(_axpy, threads=2).stats()["par_loops"] == 0


def test_thread_count_participates_in_cache_key():
    p = parallelize_loop(_axpy, "i")
    assert compile_proc(p, threads=1) is not compile_proc(p, threads=2)
    assert compile_proc(p, threads=2) is compile_proc(p, threads=2)


def test_nested_par_loops_dispatch_only_the_outer():
    p = parallelize_loop(parallelize_loop(_copy2d, "i"), "j")
    src = compiled_source(p, threads=2)
    assert src.count("_par_for(") == 1
    assert compile_proc(p, threads=2).stats()["par_loops"] == 1


# ---------------------------------------------------------------------------
# Execution + stats
# ---------------------------------------------------------------------------


def _run_axpy(p, threads):
    rng = np.random.default_rng(0)
    n = 257
    x = rng.uniform(-1, 1, n).astype(np.float32)
    y = rng.uniform(-1, 1, n).astype(np.float32)
    want = y + np.float32(2.0) * x
    run_proc(p, n, 2.0, x, y, backend="compiled", threads=threads)
    return y, want


def test_parallel_stats_surface_through_exec_stats(tolerates):
    tolerates()
    p = parallelize_loop(_axpy, "i")
    y, want = _run_axpy(p, threads=2)
    np.testing.assert_allclose(y, want, rtol=1e-6)
    st = exec_stats()["parallel"]
    assert st["par_loops"] == 1
    assert st["chunks"] >= 2
    assert st["threads_max"] == 2
    assert st["serial_degrades"] == 0


def test_single_thread_runs_one_chunk_for_maps():
    p = parallelize_loop(_axpy, "i")
    _run_axpy(p, threads=1)
    st = exec_stats()["parallel"]
    assert st["par_loops"] == 1
    assert st["chunks"] == 1
    assert st["threads_max"] == 1


def test_privatized_scalar_reduction_is_bitwise_across_thread_counts():
    p = parallelize_loop(_scalar_acc, "i")
    rng = np.random.default_rng(3)
    n = 1003
    x = rng.uniform(-1, 1, n).astype(np.float32)
    outs = []
    for t in (1, 2, 8):
        out = np.zeros(1, np.float32)
        run_proc(p, n, x, out, backend="compiled", threads=t)
        outs.append(out.copy())
    assert np.array_equal(outs[0], outs[1])
    assert np.array_equal(outs[1], outs[2])
    ref = np.zeros(1, np.float32)
    run_proc(_scalar_acc, n, x, ref, backend="interp")
    np.testing.assert_allclose(outs[0], ref, rtol=1e-4, atol=1e-5)


def test_reduction_partition_is_fixed_regardless_of_threads():
    p = parallelize_loop(_scalar_acc, "i")
    n = 1003
    x = np.ones(n, np.float32)
    for t in (1, 8):
        clear_exec_stats()
        out = np.zeros(1, np.float32)
        run_proc(p, n, x, out, backend="compiled", threads=t)
        assert exec_stats()["parallel"]["chunks"] == PAR_CHUNKS


# ---------------------------------------------------------------------------
# Degradations
# ---------------------------------------------------------------------------


def test_thread_pool_exhausted_degrades_to_serial():
    p = parallelize_loop(_axpy, "i")
    with inject("thread-pool-exhausted", times=10):
        y, want = _run_axpy(p, threads=4)
    np.testing.assert_allclose(y, want, rtol=1e-6)
    st = exec_stats()
    assert st["parallel"]["serial_degrades"] == 1
    assert any(
        e["reason"] == "thread-pool-exhausted" and e["stage"] == "par->serial"
        for e in st["events"]
    )


def test_unlowerable_par_body_falls_back_to_sequential():
    # a whole-buffer (non-iterator-indexed, non-reduce) write inside the
    # loop cannot be routed: y[0] is overwritten by every iteration
    @proc
    def last(n: size, x: f32[n] @ DRAM, y: f32[1] @ DRAM):
        for i in seq(0, n):
            y[0] = x[i]

    from repro.core.procedure import Procedure
    from repro.ir.edit import EditSession

    # the commute check rightly rejects this loop, so stamp the pragma
    # directly to exercise the engine's own second line of defence
    session = EditSession(last)
    session.set_field(last.find_loop("i")._path, "pragma", "par")
    forced = session.finish()

    n = 64
    x = np.arange(n, dtype=np.float32)
    y = np.zeros(1, np.float32)
    run_proc(forced, n, x, y, backend="compiled", threads=4)
    assert y[0] == n - 1  # sequential semantics preserved
    st = exec_stats()
    assert st["parallel"]["par_loops"] == 0
    assert any(
        e["reason"] == "par-unlowerable" and e["stage"] == "par->seq"
        for e in st["events"]
    )


def test_nested_runtime_dispatch_is_serialized(tolerates):
    tolerates()
    # a dispatch issued from inside a worker must not resubmit to the pool
    seen = []

    def outer_body(lo, hi):
        inner = par_for(lambda l, h: seen.append((l, h)), 0, 4, 2, (), "inner")
        return inner

    par_for(outer_body, 0, 4, 2, (), "outer")
    st = exec_stats()["parallel"]
    assert st["par_loops"] >= 3  # outer + one nested dispatch per chunk
    assert st["serial_degrades"] >= 2  # every nested dispatch degraded


def test_empty_range_dispatch_is_a_noop():
    assert par_for(lambda lo, hi: pytest.fail("body ran"), 5, 5, 4, (), "x") == []
