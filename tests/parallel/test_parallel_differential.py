"""Parallel differential sweep: every BLAS level-1/2 and Halide kernel with a
legal ``parallelize_loop`` applied must reproduce the sequential results
across the compiled and C engines for thread counts 1, 2, and 8.

The determinism contract under test:

* **maps** (iterations write disjoint elements) — bit-identical to the
  sequential compiled run at every thread count;
* **reductions** (privatized accumulators) — bit-identical *across* thread
  counts (fixed partition + ordered combine) and within tolerance of the
  tree-interpreter oracle;
* **C backend** — within oracle tolerance at every thread count (OpenMP
  reduction order is implementation-defined, so the C leg only claims
  tolerance for reductions).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.effects import accesses_of
from repro.backend.native import find_cc
from repro.blas import (
    LEVEL1_KERNELS,
    LEVEL2_KERNELS,
    all_level1_names,
    all_level2_names,
)
from repro.errors import SchedulingError
from repro.halide import make_blur, make_unsharp, schedule_blur, schedule_unsharp
from repro.interp import clear_exec_stats, exec_stats, make_random_args, run_proc
from repro.ir import nodes as N
from repro.ir.build import collect_allocs, used_syms_expr
from repro.machines import AVX512
from repro.primitives import parallelize_loop

THREADS = (1, 2, 8)
L1_SIZES = {"n": 173}  # not a multiple of any vector width or chunk count
L2_SIZES = {"M": 40, "N": 29}


def _l2_sizes(name):
    return dict(L2_SIZES) if ("gemv" in name or "ger" in name) else {"N": 33}


def _outer_loop(p):
    for s in p._root.body:
        if isinstance(s, N.For):
            return s
    return None


def _parallelized(p):
    """The procedure with its outermost loop parallelized, or None when the
    safety check (rightly) declines it."""
    loop = _outer_loop(p)
    if loop is None:
        return None
    try:
        return parallelize_loop(p, loop.iter.name)
    except SchedulingError:
        return None


def _is_reduction(p):
    """Does the outermost loop accumulate into an iterator-invariant cell
    (i.e. will the engine privatize rather than share)?"""
    loop = _outer_loop(p)
    local = {a.name for a in collect_allocs(loop.body)}
    for a in accesses_of(loop.body):
        if a.buf in local or not a.is_write():
            continue
        if a.idx is None or not any(
            loop.iter in used_syms_expr(ix) for ix in a.idx
        ):
            return True
    return False


def _tensors(args):
    return {k: v for k, v in args.items() if isinstance(v, np.ndarray)}


def _run(p, size_env, backend, threads, seed=0):
    args = make_random_args(p, size_env, seed=seed)
    run_proc(p, backend=backend, threads=threads, **args)
    return _tensors(args)


def _check_compiled_matrix(seq_proc, par_proc, size_env):
    """The compiled-engine legs of the contract, plus the >0-parallel-loops
    stats assertion on the clean path."""
    oracle = _run(seq_proc, size_env, "interp", None)
    seq = _run(seq_proc, size_env, "compiled", 1)
    clear_exec_stats()
    runs = {t: _run(par_proc, size_env, "compiled", t) for t in THREADS}
    assert exec_stats()["parallel"]["par_loops"] > 0, "par loop never dispatched"

    reduction = _is_reduction(seq_proc)
    first = runs[THREADS[0]]
    for t in THREADS[1:]:
        for name, v in runs[t].items():
            assert np.array_equal(v, first[name]), (
                f"{seq_proc.name}: argument {name!r} differs between "
                f"threads={THREADS[0]} and threads={t}"
            )
    for name, v in first.items():
        if reduction:
            np.testing.assert_allclose(
                v, oracle[name], rtol=1e-4, atol=1e-5, equal_nan=True,
                err_msg=f"{seq_proc.name}: parallel reduction diverges from oracle on {name!r}",
            )
        else:
            assert np.array_equal(v, seq[name]), (
                f"{seq_proc.name}: parallel map is not bit-identical to the "
                f"sequential compiled run on {name!r}"
            )


def _check_c_matrix(seq_proc, par_proc, size_env):
    oracle = _run(seq_proc, size_env, "interp", None)
    for t in THREADS:
        got = _run(par_proc, size_env, "c", t)
        assert not exec_stats()["fallbacks"].get("codegen-declined"), (
            f"{seq_proc.name}: C backend declined the parallel kernel"
        )
        for name, v in got.items():
            np.testing.assert_allclose(
                v, oracle[name], rtol=1e-4, atol=1e-5, equal_nan=True,
                err_msg=f"{seq_proc.name}: C threads={t} diverges from oracle on {name!r}",
            )


# ---------------------------------------------------------------------------
# BLAS
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", all_level1_names())
def test_level1_parallel_differential(name):
    p = LEVEL1_KERNELS[name]
    par = _parallelized(p)
    if par is None:
        pytest.skip(f"{name}: outer loop carries dependencies")
    _check_compiled_matrix(p, par, L1_SIZES)


@pytest.mark.parametrize("name", all_level2_names())
def test_level2_parallel_differential(name):
    p = LEVEL2_KERNELS[name]
    par = _parallelized(p)
    if par is None:
        pytest.skip(f"{name}: outer loop carries dependencies")
    _check_compiled_matrix(p, par, _l2_sizes(name))


@pytest.mark.skipif(find_cc() is None, reason="no C compiler on PATH")
@pytest.mark.parametrize("name", ["saxpy", "sdot", "sasum", "sscal"])
def test_level1_parallel_c_backend(name):
    p = LEVEL1_KERNELS[name]
    par = _parallelized(p)
    assert par is not None
    _check_c_matrix(p, par, L1_SIZES)


@pytest.mark.skipif(find_cc() is None, reason="no C compiler on PATH")
@pytest.mark.parametrize("name", ["sgemv_n", "sgemv_t", "sger"])
def test_level2_parallel_c_backend(name):
    p = LEVEL2_KERNELS[name]
    par = _parallelized(p)
    assert par is not None
    _check_c_matrix(p, par, _l2_sizes(name))


# ---------------------------------------------------------------------------
# Halide (the scheduled pipelines contain a real `parallel("y")` step)
# ---------------------------------------------------------------------------

H, W = 32, 256  # the kernels assert H % 32 == 0 and W % 256 == 0
IMAGE_SIZES = {"H": H, "W": W}


def _halide_par_stats(scheduled, threads):
    args = make_random_args(scheduled, IMAGE_SIZES)
    clear_exec_stats()
    run_proc(scheduled, backend="compiled", threads=threads, **args)
    return _tensors(args), exec_stats()["parallel"]


@pytest.mark.parametrize("make, schedule", [
    (make_blur, schedule_blur),
    (make_unsharp, schedule_unsharp),
])
def test_halide_scheduled_parallel_differential(make, schedule):
    scheduled = schedule(AVX512)
    oracle = make_random_args(make(), IMAGE_SIZES)
    run_proc(make(), backend="interp", **oracle)
    oracle = _tensors(oracle)

    runs = {}
    for t in THREADS:
        got, stats = _halide_par_stats(scheduled, t)
        assert stats["par_loops"] > 0, "scheduled pipeline never dispatched its par loop"
        runs[t] = got
    first = runs[THREADS[0]]
    for t in THREADS[1:]:
        for name, v in runs[t].items():
            assert np.array_equal(v, first[name]), (
                f"argument {name!r} differs between threads={THREADS[0]} and threads={t}"
            )
    for name, v in first.items():
        np.testing.assert_allclose(
            v, oracle[name], rtol=1e-4, atol=1e-5,
            err_msg=f"scheduled pipeline diverges from oracle on {name!r}",
        )
