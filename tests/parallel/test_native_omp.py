"""OpenMP lowering in the native C backend: pragma emission, toolchain
probing, artifact-cache keying (the regression pinned by the dead-pragma fix),
and the ``omp-missing`` degradation."""
from __future__ import annotations

import numpy as np
import pytest

from repro import proc
from repro.backend.codegen import CodegenOptions, proc_to_c
from repro.backend.native import artifact_key, find_cc, openmp_supported
from repro.guard.faults import inject
from repro.interp import clear_exec_stats, exec_stats, run_proc
from repro.lang import *  # noqa: F401,F403
from repro.primitives import parallelize_loop

pytestmark = pytest.mark.skipif(find_cc() is None, reason="no C compiler on PATH")


@proc
def _axpy(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]


@proc
def _dot(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, out: f32[1] @ DRAM):
    for i in seq(0, n):
        out[0] += x[i] * y[i]


@pytest.fixture(autouse=True)
def _fresh_stats():
    clear_exec_stats()
    yield
    clear_exec_stats()


def _axpy_args(n=311, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, n).astype(np.float32)
    y = rng.uniform(-1, 1, n).astype(np.float32)
    return n, x, y, y + np.float32(2.0) * x


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------


def test_par_map_emits_parallel_for_pragma():
    p = parallelize_loop(_axpy, "i")
    src = proc_to_c(p, options=CodegenOptions(openmp=True))
    assert "#pragma omp parallel for" in src
    assert "reduction" not in src  # disjoint writes need no clause


def test_par_reduction_emits_reduction_clause():
    p = parallelize_loop(_dot, "i")
    src = proc_to_c(p, options=CodegenOptions(openmp=True))
    assert "#pragma omp parallel for" in src
    assert "reduction(+:" in src


def test_pragma_requires_openmp_option():
    # without openmp in the options the par loop compiles sequentially —
    # the pragma must never leak into a non-OpenMP build
    p = parallelize_loop(_axpy, "i")
    src = proc_to_c(p, options=CodegenOptions())
    assert "#pragma omp" not in src


def test_openmp_option_participates_in_codegen_key():
    assert CodegenOptions(openmp=True).key() != CodegenOptions().key()
    assert "-fopenmp" in CodegenOptions(openmp=True).cflags()
    assert "-fopenmp" not in CodegenOptions().cflags()


# ---------------------------------------------------------------------------
# Artifact keying (regression: a par kernel must never share a cached .so
# with its sequential twin, or a stale sequential artifact silently wins)
# ---------------------------------------------------------------------------


def test_par_kernel_artifact_key_differs_from_sequential_twin():
    if not openmp_supported(find_cc()):
        pytest.skip("toolchain lacks -fopenmp: both twins compile sequentially")
    assert artifact_key(parallelize_loop(_axpy, "i")) != artifact_key(_axpy)


def test_artifact_key_tracks_omp_availability():
    par = parallelize_loop(_axpy, "i")
    with_omp = artifact_key(par)
    with inject("omp-missing", times=10):
        without = artifact_key(par)
    if openmp_supported(find_cc()):
        assert with_omp != without
    else:
        assert with_omp == without


# ---------------------------------------------------------------------------
# The toolchain probe
# ---------------------------------------------------------------------------


def test_probe_is_memoized_per_compiler():
    cc = find_cc()
    first = openmp_supported(cc)
    assert openmp_supported(cc) is first


def test_probe_rejects_broken_compiler():
    assert openmp_supported("/nonexistent/cc") is False


# ---------------------------------------------------------------------------
# Execution + the omp-missing degradation
# ---------------------------------------------------------------------------


def test_c_backend_runs_par_kernel_correctly():
    p = parallelize_loop(_axpy, "i")
    for t in (1, 2, 8):
        n, x, y, want = _axpy_args(seed=t)
        run_proc(p, n, 2.0, x, y, backend="c", threads=t)
        np.testing.assert_allclose(y, want, rtol=1e-6)


def test_omp_missing_degrades_to_sequential_c_with_event():
    p = parallelize_loop(_axpy, "i")
    n, x, y, want = _axpy_args()
    with inject("omp-missing", times=10):
        run_proc(p, n, 2.0, x, y, backend="c", threads=4)
    np.testing.assert_allclose(y, want, rtol=1e-6)
    assert any(
        e["reason"] == "omp-missing" and e["stage"] == "c-par->c-seq"
        for e in exec_stats()["events"]
    )
