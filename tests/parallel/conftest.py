"""Parallel-suite fixtures.

The chaos CI rows re-run this suite with ``REPRO_FAULTS`` forcing a fault
process-wide.  Most tests absorb that — degradation preserves results by
design — but a few assert *exact* dispatch statistics that a permanently
armed fault legitimately changes.  Those declare their tolerance with the
same ``tolerates`` idiom the guard suite uses and skip under anything else.
"""

from __future__ import annotations

import pytest

from repro.guard import faults


@pytest.fixture
def tolerates():
    """``tolerates("thread-pool-exhausted", ...)`` — skip when any *other*
    env fault is armed (this test's exact-stats assertions can't absorb a
    permanently forced degradation)."""

    def check(*names):
        extra = sorted(set(faults.env_faults()) - set(names))
        if extra:
            pytest.skip(f"armed env fault(s) {', '.join(extra)} conflict with this test")

    return check
