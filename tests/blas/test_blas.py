"""BLAS library tests: every kernel keeps its semantics after scheduling."""
from __future__ import annotations

import numpy as np
import pytest

from repro.blas import (
    LEVEL1_KERNELS, LEVEL2_KERNELS, all_level1_names, level1_reference, level2_reference,
    optimize_level_1, optimize_level_2_general, schedule_sgemm, sgemm_micro_kernel,
)
from repro.interp import check_equiv, make_random_args, run_proc
from repro.machines import AVX2, AVX512

LEVEL1_FAST = ["sasum", "saxpy", "sdot", "sscal", "scopy", "daxpy", "ddot", "sdsdot"]
LEVEL2_FAST = ["sgemv_n", "sgemv_t", "sger", "dsymv_l", "ssyr_u", "strmv_lnn", "dtrmv_utn"]


@pytest.mark.parametrize("name", LEVEL1_FAST)
def test_level1_schedules_preserve_semantics(name):
    kernel = LEVEL1_KERNELS[name]
    prec = "f64" if name.startswith("d") and name != "dsdot" else "f32"
    opt = optimize_level_1(kernel, "i", prec, AVX2, 2)
    # sizes far beyond the old toy n=45: the compiled engine makes large
    # equivalence checks cheap (1029 exercises the remainder loops too)
    assert check_equiv(kernel, opt, {"n": 1029})
    assert check_equiv(kernel, opt, {"n": 8})


def test_level1_object_code_matches_numpy():
    kernel = LEVEL1_KERNELS["saxpy"]
    args = make_random_args(kernel, {"n": 33})
    expect = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in args.items()}
    run_proc(kernel, **args)
    level1_reference("saxpy", expect)
    assert np.allclose(args["y"], expect["y"], rtol=1e-5)


@pytest.mark.parametrize("name", LEVEL2_FAST)
def test_level2_schedules_preserve_semantics(name):
    kernel = LEVEL2_KERNELS[name]
    prec = "f64" if name.startswith("d") else "f32"
    opt = optimize_level_2_general(kernel, "i", prec, AVX2, 2, 2)
    sizes = {"M": 128, "N": 123} if ("gemv" in name or "ger" in name) else {"N": 128}
    assert check_equiv(kernel, opt, sizes)


@pytest.mark.parametrize("name", ["sgemv_n", "ssymv_u", "strmv_unn"])
def test_level2_object_code_matches_numpy(name):
    kernel = LEVEL2_KERNELS[name]
    sizes = {"M": 9, "N": 11} if "gemv" in name else {"N": 10}
    args = make_random_args(kernel, sizes)
    expect = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in args.items()}
    run_proc(kernel, **args)
    level2_reference(name, expect)
    out = "y" if ("gemv" in name or "symv" in name or "trmv" in name) else "A"
    assert np.allclose(args[out], expect[out], rtol=1e-4, atol=1e-5)


def test_kernel_counts():
    # the library covers the paper's kernel families across two precisions
    assert len(LEVEL1_KERNELS) >= 18
    assert len(LEVEL2_KERNELS) >= 34


def test_sgemm_micro_kernel_avx512():
    from repro.blas import SGEMM
    uk = sgemm_micro_kernel(AVX512, M_r=2, N_r_vecs=1, precision="f32")
    ref = SGEMM.partial_eval(M=2, N=16)
    assert "fma" in str(uk)
    assert check_equiv(ref, uk, {"K": 192})


def test_schedule_sgemm_equivalent():
    from repro.blas import SGEMM
    p = schedule_sgemm(AVX2, M_blk=8, N_blk=16, K_blk=8, M_r=2, N_r_vecs=1)
    # 64x64x64 (the ISSUE-2 scale target) plus a ragged shape for edge loops
    assert check_equiv(SGEMM, p, {"M": 64, "N": 64, "K": 64})
    assert check_equiv(SGEMM, p, {"M": 12, "N": 20, "K": 9})
