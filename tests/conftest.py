"""Shared fixtures: small object-code kernels used across the test suite."""

from __future__ import annotations

import pytest

from repro import proc
from repro.lang import *  # noqa: F401,F403


@proc
def _gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    assert N % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]


@proc
def _axpy(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]


@proc
def _dot(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, result: f32[1] @ DRAM):
    for i in seq(0, n):
        result[0] += x[i] * y[i]


@proc
def _copy2d(M: size, N: size, src: f32[M, N] @ DRAM, dst: f32[M, N] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            dst[i, j] = src[i, j]


@proc
def _stages(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    tmp: f32[n] @ DRAM
    for i in seq(0, n):
        tmp[i] = 2.0 * x[i]
    for i in seq(0, n):
        y[i] = tmp[i] + 1.0


@pytest.fixture
def gemv():
    return _gemv


@pytest.fixture
def axpy():
    return _axpy


@pytest.fixture
def dot():
    return _dot


@pytest.fixture
def copy2d():
    return _copy2d


@pytest.fixture
def stages():
    return _stages
