"""Trace serialization → replay round-trips, warnings, and the replay cache."""

from __future__ import annotations

import json

import pytest

from repro import Procedure, divide_loop, proc
from repro.api import (
    ReplayCache,
    ReplayError,
    S,
    Trace,
    knob,
    lift_op,
    replay,
)
from repro.api import seq as sq
from repro.api.trace import state_hash
from repro.blas import LEVEL1_KERNELS, level1_schedule, optimize_level_1
from repro.halide import blur_schedule, make_blur, schedule_blur
from repro.ir.build import structurally_equal
from repro.lang import *  # noqa: F401,F403
from repro.machines import AVX2


def _eq(a: Procedure, b: Procedure) -> bool:
    return structurally_equal(a._root, b._root, match_sym_names=True)


@proc
def _gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    assert N % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]


@proc
def _stages(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    tmp: f32[n] @ DRAM
    for i in seq(0, n):
        tmp[i] = 2.0 * x[i]
    for i in seq(0, n):
        y[i] = tmp[i] + 1.0


TILE = sq(
    S.divide_loop("i", knob("ti", 8), ["io", "ii"], perfect=True),
    S.divide_loop("j", knob("tj", 8), ["jo", "ji"], perfect=True),
    S.lift_scope("jo"),
)


# ---------------------------------------------------------------------------
# trace structure + JSON round-trip
# ---------------------------------------------------------------------------


def test_trace_records_resolved_args_and_edits():
    _, trace = TILE.apply_traced(_gemv, ti=4)
    assert [e.primitive for e in trace.applied()] == ["divide_loop", "divide_loop", "lift_scope"]
    assert trace.applied()[0].args[1] == 4  # knob resolved to its bound value
    assert trace.total_edits() >= 3
    assert trace.replayable()
    assert trace.summary() == {"divide_loop": 2, "lift_scope": 1}


def test_trace_json_round_trip_preserves_everything():
    _, trace = TILE.apply_traced(_gemv)
    js = trace.to_json()
    json.loads(js)  # valid JSON
    back = Trace.from_json(js)
    assert back.fingerprint == trace.fingerprint
    assert back.initial == trace.initial and back.final == trace.final
    assert [e.to_dict() for e in back.entries] == [e.to_dict() for e in trace.entries]


def test_simple_replay_round_trip():
    p1, trace = TILE.apply_traced(_gemv)
    p2 = replay(Trace.from_json(trace.to_json()), _gemv)
    assert _eq(p1, p2)


def test_replay_rejects_mismatched_starting_proc():
    _, trace = TILE.apply_traced(_gemv)
    with pytest.raises(ReplayError, match="not structurally identical"):
        replay(trace, _stages)


def test_replay_unknown_primitive_raises():
    _, trace = TILE.apply_traced(_gemv)
    trace.applied()[0].primitive = "no_such_primitive"
    with pytest.raises(ReplayError, match="no_such_primitive"):
        replay(trace, _gemv)


# ---------------------------------------------------------------------------
# the acceptance pipelines: blur + BLAS
# ---------------------------------------------------------------------------


def test_blur_trace_replays_to_structurally_equal_proc():
    sched = blur_schedule()
    p1, trace = sched.apply_traced(make_blur())
    assert trace.replayable()
    p2 = replay(Trace.from_json(trace.to_json()), make_blur())
    assert _eq(p1, p2)


def test_blur_legacy_shim_still_matches_schedule_value():
    assert _eq(schedule_blur(), make_blur() >> blur_schedule())


def test_level1_trace_replays_and_prunes_discarded_work():
    sched = level1_schedule(machine=AVX2)
    p1, trace = sched.apply_traced(LEVEL1_KERNELS["saxpy"])
    assert _eq(p1, optimize_level_1(LEVEL1_KERNELS["saxpy"], "i", "f32", AVX2, 2))
    p2 = replay(Trace.from_json(trace.to_json()), LEVEL1_KERNELS["saxpy"])
    assert _eq(p1, p2)


def test_level1_knob_sweep_changes_interleave():
    sched = level1_schedule(machine=AVX2)
    a = sched.apply(LEVEL1_KERNELS["sdot"])
    b = sched.apply(LEVEL1_KERNELS["sdot"], interleave=4)
    assert not _eq(a, b)


# ---------------------------------------------------------------------------
# forwarded-cursor invalidation warnings
# ---------------------------------------------------------------------------


def test_trace_surfaces_cursor_invalidations_as_warnings():
    def grab_then_invalidate(p):
        # hold a cursor to an inserted pass, delete it, then forward the
        # stale cursor — library code that silently drops the invalidation
        # must still leave a structured warning in the trace
        from repro.primitives import delete_pass, insert_pass

        p = insert_pass(p, p.find_loop("i").body().before())
        c = p.find_loop("i").body()[0]
        p = delete_pass(p)
        fwd = p.forward(c)  # invalidated: records a warning
        assert not fwd.is_valid()
        return p

    sched = lift_op(grab_then_invalidate)()
    _, trace = sched.apply_traced(_stages)
    warns = trace.warnings()
    assert warns, "expected a cursor-invalidated warning in the trace"
    assert warns[0].detail["event"] == "cursor-invalidated"
    assert warns[0].detail["proc"] == "_stages"


# ---------------------------------------------------------------------------
# replay cache
# ---------------------------------------------------------------------------


def test_cache_hits_on_identical_proc_and_knobs():
    cache = ReplayCache()
    a = TILE.apply(_gemv, cache=cache)
    b = TILE.apply(_gemv, cache=cache)
    assert a is b
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}


def test_cache_distinguishes_knob_values():
    cache = ReplayCache()
    TILE.apply(_gemv, cache=cache)
    TILE.apply(_gemv, {"ti": 4}, cache=cache)
    assert cache.hits == 0 and cache.misses == 2 and len(cache) == 2


def test_cache_hit_survives_edit_epochs_and_fresh_structural_twins():
    cache = ReplayCache()
    TILE.apply(_gemv, cache=cache)
    # bump the global edit epoch with unrelated scheduling work
    divide_loop(_stages, "i", 2, ["io", "ii"], tail="cut")
    # a freshly parsed, structurally identical gemv still hits
    from repro.frontend.decorators import proc_from_source

    twin = proc_from_source(
        """
def _gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    assert N % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]
"""
    )
    out = TILE.apply(twin, cache=cache)
    assert cache.hits == 1
    assert _eq(out, TILE.apply(_gemv))


def test_cache_returns_trace_alongside_proc():
    cache = ReplayCache()
    p1, t1 = TILE.apply_traced(_gemv, cache=cache)
    p2, t2 = TILE.apply_traced(_gemv, cache=cache)
    assert p1 is p2 and t1 is t2
    assert t2.final == state_hash(p2)
