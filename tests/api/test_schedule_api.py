"""The first-class Schedule API: lifting, knobs, combinators, fluency."""

from __future__ import annotations

import pytest

from repro import Procedure, divide_loop, lift_scope, proc, unroll_loop
from repro.api import (
    HERE,
    S,
    at,
    here,
    innermost_loops,
    knob,
    lift_op,
    or_else,
    repeat_until_fail,
    try_,
)
from repro.api import seq as sq
from repro.api.knobs import KnobError
from repro.errors import InvalidCursorError, SchedulingError
from repro.ir.build import structurally_equal
from repro.lang import *  # noqa: F401,F403


def _eq(a: Procedure, b: Procedure) -> bool:
    return structurally_equal(a._root, b._root, match_sym_names=True)


@proc
def _gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    assert N % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]


@proc
def _nest4(A: f32[4, 4] @ DRAM):
    for i in seq(0, 4):
        for j in seq(0, 4):
            A[i, j] = 2.0 * A[i, j]


TILE = sq(
    S.divide_loop("i", knob("ti", 8), ["io", "ii"], perfect=True),
    S.divide_loop("j", knob("tj", 8), ["jo", "ji"], perfect=True),
    S.lift_scope("jo"),
)


# ---------------------------------------------------------------------------
# lifting + fluency
# ---------------------------------------------------------------------------


def test_lifted_primitive_matches_direct_call():
    lifted = _gemv >> S.divide_loop("i", 8, ["io", "ii"], perfect=True)
    direct = divide_loop(_gemv, "i", 8, ["io", "ii"], perfect=True)
    assert _eq(lifted, direct)


def test_namespace_covers_registry_and_suggests_near_misses():
    assert "divide_loop" in dir(S)
    assert "tile2D" in dir(S)  # registered library op
    with pytest.raises(AttributeError, match="divide_loop"):
        S.divide_looop  # noqa: B018


def test_procedure_apply_and_rshift_agree():
    assert _eq(_gemv.apply(TILE), _gemv >> TILE)


def test_rshift_rejects_non_schedule_operands():
    with pytest.raises(TypeError):
        _gemv >> _nest4  # two Procedures must not recurse through .apply
    with pytest.raises(TypeError, match="expected a Schedule"):
        _gemv.apply(_nest4)


def test_seq_matches_hand_threading():
    p = divide_loop(_gemv, "i", 8, ["io", "ii"], perfect=True)
    p = divide_loop(p, "j", 8, ["jo", "ji"], perfect=True)
    p = lift_scope(p, "jo")
    assert _eq(_gemv >> TILE, p)


def test_lift_op_wraps_library_functions():
    from repro.stdlib.tiling import tile2D

    t = lift_op(tile2D)("i", "j", ["io", "ii"], ["jo", "ji"], 8, 8)
    assert _eq(_gemv >> t, _gemv >> TILE)


# ---------------------------------------------------------------------------
# knobs
# ---------------------------------------------------------------------------


def test_knob_defaults_and_overrides():
    assert _eq(TILE.apply(_gemv), TILE.apply(_gemv, ti=8, tj=8))
    small = TILE.apply(_gemv, {"ti": 4, "tj": 4})
    assert not _eq(small, TILE.apply(_gemv))
    # keyword spelling is equivalent to the dict spelling
    assert _eq(small, TILE.apply(_gemv, ti=4, tj=4))


def test_knob_sweep_produces_distinct_variants():
    variants = [TILE.apply(_gemv, ti=t, tj=t) for t in (2, 4, 8)]
    for i in range(len(variants)):
        for j in range(i + 1, len(variants)):
            assert not _eq(variants[i], variants[j])


def test_knob_without_default_must_be_bound():
    s = S.divide_loop("i", knob("mystery"), ["io", "ii"], perfect=True)
    with pytest.raises(KnobError, match="mystery"):
        s.apply(_gemv)
    # knob-configuration mistakes must escape recovery combinators
    with pytest.raises(KnobError, match="mystery"):
        try_(s).apply(_gemv)
    assert _eq(s.apply(_gemv, mystery=8), _gemv >> S.divide_loop("i", 8, ["io", "ii"], perfect=True))


def test_knob_choices_validated():
    s = S.divide_loop("i", knob("t", 8, choices=(4, 8)), ["io", "ii"], perfect=True)
    with pytest.raises(KnobError, match="choices"):
        s.apply(_gemv, t=3)


def test_schedule_reports_its_knobs():
    names = {k.name for k in TILE.knobs()}
    assert names == {"ti", "tj"}
    assert TILE.knob_defaults() == {"ti": 8, "tj": 8}


def test_unknown_knob_names_are_rejected():
    with pytest.raises(KnobError, match=r"unknown knob.*tI.*did you mean"):
        TILE.apply(_gemv, tI=4)
    with pytest.raises(KnobError, match="no knobs"):
        S.divide_loop("i", 8, ["io", "ii"], perfect=True).apply(_gemv, tile=4)


def test_repeat_until_fail_terminates_on_non_failing_noop_inner():
    # simplify never raises and changes nothing here: structural-progress
    # detection must stop the loop after one round
    out = _gemv >> repeat_until_fail(S.simplify())
    assert _eq(out, _gemv)


def test_fingerprint_stable_for_rebuilt_here_navigations():
    def build():
        return at("i", S.divide_loop(HERE, 8, ["io", "ii"], perfect=True))

    assert build().fingerprint() == build().fingerprint()

    def build_nav():
        return at("i", S.insert_pass(here(lambda c: c.body().before())))

    assert build_nav().fingerprint() == build_nav().fingerprint()


def test_fingerprint_distinguishes_structure_and_knobs():
    assert TILE.fingerprint({"ti": 8}) == TILE.fingerprint({"ti": 8})
    assert TILE.fingerprint({"ti": 8}) != TILE.fingerprint({"ti": 4})
    other = sq(S.divide_loop("i", knob("ti", 8), ["io", "ii"], perfect=True))
    assert TILE.fingerprint() != other.fingerprint()


# ---------------------------------------------------------------------------
# try_ / or_else recovery semantics
# ---------------------------------------------------------------------------


def test_try_swallows_failure_and_returns_input():
    s = try_(S.divide_loop("i", 7, ["io", "ii"], perfect=True))
    out, trace = s.apply_traced(_gemv)
    assert out is _gemv
    kinds = [e.kind for e in trace.entries]
    assert "recovered" in kinds
    assert not trace.applied()


def test_or_else_applies_fallback_after_failure():
    s = or_else(
        S.divide_loop("i", 7, ["io", "ii"], perfect=True),
        S.divide_loop("i", 8, ["io", "ii"], perfect=True),
    )
    out, trace = s.apply_traced(_gemv)
    assert _eq(out, divide_loop(_gemv, "i", 8, ["io", "ii"], perfect=True))
    # the failed branch was rolled back out of the applied set
    assert [e.primitive for e in trace.applied()] == ["divide_loop"]


def test_pipe_operator_is_or_else():
    s = S.divide_loop("nope", 8, ["a", "b"]) | S.divide_loop("i", 8, ["io", "ii"], perfect=True)
    assert _eq(_gemv >> s, divide_loop(_gemv, "i", 8, ["io", "ii"], perfect=True))


def test_try_rolls_back_partial_progress_of_a_seq():
    # first step of the branch succeeds, second fails: the branch result is
    # discarded and the trace must not list the partial work as applied
    branch = sq(
        S.divide_loop("i", 8, ["io", "ii"], perfect=True),
        S.divide_loop("j", 7, ["jo", "ji"], perfect=True),
    )
    out, trace = try_(branch).apply_traced(_gemv)
    assert out is _gemv
    assert not trace.applied()


# ---------------------------------------------------------------------------
# repeat / at / traversals
# ---------------------------------------------------------------------------


def test_repeat_until_fail_drains_all_sites():
    tiled = _gemv >> TILE
    # io is already outermost: the first iteration fails, repeat stops cleanly
    out = tiled >> repeat_until_fail(S.lift_scope("io"))
    assert _eq(out, tiled)
    # jo can be hoisted exactly once more (past io), then the repeat stops
    out2, trace = repeat_until_fail(S.lift_scope("jo")).apply_traced(tiled)
    assert _eq(out2, lift_scope(tiled, "jo"))
    assert [e.primitive for e in trace.applied()] == ["lift_scope"]


def test_repeat_until_fail_makes_progress_then_stops():
    p = _nest4
    s = repeat_until_fail(S.unroll_loop(here(lambda c: c)), max_iters=1)
    # anchored form: unroll the innermost loop once
    out = p >> at("j", s)
    direct = unroll_loop(p, "j")
    assert _eq(out, direct)


def test_at_binds_here_for_inner_steps():
    out = _gemv >> at("j", S.divide_loop(HERE, 8, ["jo", "ji"], perfect=True))
    assert _eq(out, divide_loop(_gemv, "j", 8, ["jo", "ji"], perfect=True))


def test_at_accepts_callable_targets():
    out = _gemv >> at(lambda p: p.find_loop("i"), S.divide_loop(HERE, 8, ["io", "ii"], perfect=True))
    assert _eq(out, divide_loop(_gemv, "i", 8, ["io", "ii"], perfect=True))


def test_here_outside_focus_raises():
    with pytest.raises(SchedulingError, match="HERE"):
        _gemv >> S.divide_loop(HERE, 8, ["io", "ii"])


def test_innermost_loops_traversal():
    out = _nest4 >> innermost_loops(S.unroll_loop(HERE))
    assert _eq(out, unroll_loop(_nest4, "j"))


def test_traversal_skips_failing_sites():
    # dividing by 3 fails on both loops (4 % 3 != 0, perfect): no change
    out, trace = innermost_loops(
        S.divide_loop(HERE, 3, ["a", "b"], perfect=True)
    ).apply_traced(_nest4)
    assert _eq(out, _nest4)
    assert not trace.applied()


# ---------------------------------------------------------------------------
# error-message satellites
# ---------------------------------------------------------------------------


def test_errors_name_the_failing_primitive():
    with pytest.raises(SchedulingError) as exc:
        divide_loop(_gemv, "i", 7, ["io", "ii"], perfect=True)
    assert exc.value.primitive == "divide_loop"
    assert str(exc.value).startswith("divide_loop")


def test_find_loop_suggests_near_misses():
    with pytest.raises(InvalidCursorError, match=r"no loop 'jo'; did you mean 'j'"):
        _gemv.find_loop("jo")


def test_find_loop_suggestion_lists_candidates():
    tiled = _gemv >> TILE
    with pytest.raises(InvalidCursorError, match="did you mean"):
        tiled.find_loop("jii")


def test_kind_mismatch_errors_carry_source_location():
    with pytest.raises(SchedulingError, match=r"at: "):
        lift_scope(_gemv, "y[_] += _")
