"""Knob edge cases the autotuner leans on (ISSUE 5 satellite).

The tuner sweeps knob environments through ``Schedule.apply`` with a shared
replay cache; these tests pin the api-level contracts that make that safe:
configuration mistakes surface as :class:`KnobError` out of *any* combinator
nesting, and cache accounting across a sweep is exact.
"""

from __future__ import annotations

import pytest

from repro.api import (
    KnobError,
    ReplayCache,
    S,
    at,
    innermost_loops,
    knob,
    or_else,
    repeat_until_fail,
    seq,
    topdown,
    try_,
)
from repro.cursors.cursor import ForCursor


def _divide(k):
    return S.divide_loop("j", k, ["jo", "ji"], perfect=True)


def test_knob_error_escapes_every_recovery_combinator(gemv):
    unbound = _divide(knob("mystery", choices=(4, 8)))
    for wrapped in (
        try_(unbound),
        or_else(unbound, S.simplify()),
        repeat_until_fail(unbound),
        seq(S.simplify(), try_(unbound)),
    ):
        with pytest.raises(KnobError):
            wrapped.apply(gemv, mystery=3)  # 3 is outside the choices


def test_knob_error_escapes_traversals(gemv):
    # traversal combinators skip sites where the inner schedule *fails to
    # schedule*; a mis-bound knob is not a site failure and must propagate
    bad = at("j", S.divide_loop(knob("which"), 4, ["jo", "ji"]))
    topdown(S.simplify()).apply(gemv)  # sanity: the traversal itself is fine
    with pytest.raises(KnobError):
        innermost_loops(
            S.divide_loop("j", knob("w", 8, choices=(8,)), ["jo", "ji"], perfect=True)
        ).apply(gemv, w=16)
    with pytest.raises(KnobError):
        bad.apply(gemv)


def test_sweep_cache_accounting_is_exact(gemv):
    cache = ReplayCache()
    sched = _divide(knob("w", 8, choices=(2, 4, 8)))
    for w in (2, 4, 8):  # cold sweep: three distinct fingerprints
        sched.apply(gemv, {"w": w}, cache=cache)
    assert cache.stats() == {"hits": 0, "misses": 3, "entries": 3}
    for w in (2, 4, 8):  # warm sweep: every candidate hits
        sched.apply(gemv, {"w": w}, cache=cache)
    assert cache.stats() == {"hits": 3, "misses": 3, "entries": 3}
    # a fresh value outside the cache misses without disturbing the rest
    with pytest.raises(KnobError):
        sched.apply(gemv, {"w": 16}, cache=cache)
    assert cache.stats()["entries"] == 3


def test_sweep_over_single_point_and_empty_spaces(gemv):
    # the degenerate sweeps the tuner generates: one point, or none (defaults)
    sched = _divide(knob("w", 8))
    cache = ReplayCache()
    only = sched.apply(gemv, {"w": 8}, cache=cache)
    default = sched.apply(gemv, cache=cache)  # empty env == defaults
    assert str(only) == str(default)
    assert cache.hits == 1  # identical fingerprints: the default apply hit
