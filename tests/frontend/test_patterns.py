"""Pattern-matching tests (find / find_loop)."""
from __future__ import annotations

import pytest

from repro import InvalidCursorError
from repro.cursors import AllocCursor, BlockCursor, ExprCursor, ForCursor, ReduceCursor


def test_find_loop_by_name(gemv):
    c = gemv.find_loop("i")
    assert isinstance(c, ForCursor) and c.name() == "i"
    assert gemv.find_loop("j").name() == "j"


def test_find_by_pattern_equals_find_loop(gemv):
    assert gemv.find("for i in _: _") == gemv.find_loop("i")


def test_find_reduce_and_expr(gemv):
    red = gemv.find("y[_] += _")
    assert isinstance(red, ReduceCursor)
    mul = gemv.find("A[_] * x[_]")
    assert isinstance(mul, ExprCursor)
    assert str(mul) == "A[i, j] * x[j]"


def test_find_alloc(stages):
    alloc = stages.find("tmp: _")
    assert isinstance(alloc, AllocCursor) and alloc.name() == "tmp"


def test_find_many_and_occurrence(stages):
    loops = stages.find("for i in _: _", many=True)
    assert len(loops) == 2
    second = stages.find("for i in _: _ #1")
    assert second == loops[1]


def test_find_program_order(stages):
    # the first assignment in program order writes tmp, the second writes y
    writes = stages.find("_ = _", many=True)
    assert writes[0].name() == "tmp"
    assert writes[1].name() == "y"


def test_find_no_match_raises(gemv):
    with pytest.raises(InvalidCursorError):
        gemv.find("for zz in _: _")
    assert gemv.find("for zz in _: _", many=True) == []


def test_find_within_cursor_scope(gemv):
    outer = gemv.find_loop("i")
    inner = outer.find_loop("j")
    assert isinstance(inner, ForCursor)
    with pytest.raises(InvalidCursorError):
        inner.find_loop("i")  # the i loop is not inside the j loop


def test_parse_pattern_is_memoised(gemv):
    # every Procedure.find re-parses its pattern string; the lru_cache must
    # hand back the identical parse (matching only ever reads the ast nodes)
    from repro.frontend.pattern import parse_pattern

    assert parse_pattern("for i in _: _") is parse_pattern("for i in _: _")
    # cached parses keep matching correctly across different procedures
    assert gemv.find("y[_] += _") is not None
    assert gemv.find("y[_] += _") is not None
