"""Front-end parser tests: argument types, statements, expressions, errors."""
from __future__ import annotations

import pytest

from repro import ParseError, proc_from_source
from repro.ir import Alloc, Assign, For, If, Reduce, TensorType, WindowStmt


def test_parse_gemv(gemv):
    root = gemv._root
    assert root.name == "_gemv"
    assert [a.name.name for a in root.args] == ["M", "N", "A", "x", "y"]
    assert isinstance(root.args[2].typ, TensorType)
    assert len(root.preds) == 2
    assert isinstance(root.body[0], For)


def test_parse_window_argument():
    p = proc_from_source(
        "def f(n: size, x: [f32][n] @ DRAM):\n    for i in seq(0, n):\n        x[i] = 1.0\n"
    )
    assert p._root.args[1].typ.is_window


def test_parse_alloc_if_and_else():
    p = proc_from_source(
        """
def f(n: size, x: f32[n] @ DRAM):
    t: f32 @ DRAM
    for i in seq(0, n):
        if i < 4:
            x[i] = 0.0
        else:
            x[i] = 1.0
"""
    )
    body = p._root.body
    assert isinstance(body[0], Alloc)
    loop = body[1]
    assert isinstance(loop.body[0], If)
    assert len(loop.body[0].orelse) == 1


def test_parse_reduce_vs_assign():
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM):\n    for i in seq(0, n):\n        x[i] += 1.0\n"
    )
    assert isinstance(p._root.body[0].body[0], Reduce)


def test_parse_errors():
    with pytest.raises(ParseError):
        proc_from_source("def f(n): pass\n")  # missing annotation
    with pytest.raises(ParseError):
        proc_from_source("def f(n: size):\n    for i in range(0, n):\n        pass\n")
    with pytest.raises(ParseError):
        proc_from_source("def f(n: size, x: f32[n] @ DRAM):\n    x[0] -= 1.0\n")
    with pytest.raises(ParseError):
        proc_from_source("def f(n: size, x: f32[n] @ DRAM):\n    y[0] = 1.0\n")


def test_parse_extern_and_stride():
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        y[i] = fabs(x[i]) + stride(x, 0)\n"
    )
    text = str(p)
    assert "fabs(x[i])" in text and "stride(x, 0)" in text


def test_string_annotations_supported():
    p = proc_from_source(
        "def f(n: 'size', x: 'f32[n] @ DRAM'):\n    for i in seq(0, n):\n        x[i] = 0.0\n"
    )
    assert p._root.args[1].typ.is_tensor_or_window()
