"""Cross-module integration tests: interpreter, backend, perf model, metrics,
machines, Halide and Gemmini pipelines."""
from __future__ import annotations

import numpy as np
import pytest

from repro import proc_from_source
from repro.backend import backend_check, compile_to_c
from repro.blas import LEVEL1_KERNELS, optimize_level_1, kernel_flops_bytes
from repro.gemmini import make_matmul_kernel, schedule_matmul_gemmini, schedule_matmul_gemmini_exo_style
from repro.halide import make_blur, make_unsharp, schedule_blur, schedule_unsharp
from repro.interp import check_equiv, run_proc
from repro.machines import AVX2, AVX512, GEMMINI
from repro.metrics import count_loc, function_loc, generated_c_loc
from repro.perf import AVX2_SPEC, AVX512_SPEC, GEMMINI_SPEC, CostModel, library_model


def test_interpreter_runs_gemv(gemv):
    A = np.arange(8 * 8, dtype=np.float32).reshape(8, 8)
    x = np.ones(8, dtype=np.float32)
    y = np.zeros(8, dtype=np.float32)
    run_proc(gemv, M=8, N=8, A=A, x=x, y=y)
    assert np.allclose(y, A @ x)


def test_interpreter_checks_preconditions(gemv):
    from repro.interp import InterpError
    with pytest.raises(InterpError):
        run_proc(gemv, M=7, N=8, A=np.zeros((7, 8)), x=np.zeros(8), y=np.zeros(7))


def test_codegen_produces_c(axpy):
    opt = optimize_level_1(LEVEL1_KERNELS["saxpy"], "i", "f32", AVX2, 2)
    c = compile_to_c([opt])
    assert "void saxpy" in c
    assert "_mm256_fmadd_ps" in c
    assert count_loc(c) > 10
    backend_check(opt)


def test_cost_model_rewards_vectorisation():
    kernel = LEVEL1_KERNELS["sdot"]
    opt = optimize_level_1(kernel, "i", "f32", AVX2, 2)
    cm = CostModel(AVX2_SPEC)
    scalar = cm.runtime_cycles(kernel, {"n": 4096})
    vector = cm.runtime_cycles(opt, {"n": 4096})
    assert vector < scalar


def test_baseline_models_shape():
    mkl = library_model("MKL", 256)
    small = mkl.runtime_cycles(AVX2_SPEC, flops=2 * 16, bytes_moved=3 * 16 * 4)
    large = mkl.runtime_cycles(AVX2_SPEC, flops=2 * 10**6, bytes_moved=3 * 10**6 * 4)
    assert small < large
    # overhead dominates at small sizes
    assert small > 100


def test_machines():
    assert AVX2.vec_width("f32") == 8 and AVX2.vec_width("f64") == 4
    assert AVX512.vec_width("f32") == 16
    assert AVX512.supports_predication
    assert len(AVX2.get_instructions("f32")) >= 8
    assert GEMMINI.tile == 16


def test_metrics_loc():
    assert count_loc("x = 1\n\n# comment\ny = 2\n") == 2
    assert function_loc(optimize_level_1) > 5


def test_metrics_loc_multiline_docstrings():
    # regression: a closing triple-quote that ends a text line (rather than
    # standing alone) used to leave the counter stuck inside the docstring,
    # zeroing the count for everything after it (bench_fig06c tripped this)
    src = 'def f():\n    """doc line one\n    doc line two."""\n    return 1\n'
    assert count_loc(src) == 2
    src2 = '"""module doc\nspanning lines\n"""\nx = 1\n\n\ndef g():\n    pass\n'
    assert count_loc(src2) == 3
    # code sharing a line with the closing quotes still counts
    src3 = 'x = 1\n"""doc\ndoc"""; y = 2\nz = 3\n'
    assert count_loc(src3) == 3


def test_halide_blur_schedule_correct():
    blur = make_blur()
    sched = schedule_blur(AVX512)
    H, W = 32, 256
    inp = np.random.rand(H + 2, W + 2).astype(np.float32)
    out1 = np.zeros((H, W), dtype=np.float32)
    out2 = np.zeros((H, W), dtype=np.float32)
    run_proc(blur, H=H, W=W, inp=inp, out=out1)
    run_proc(sched, H=H, W=W, inp=inp, out=out2)
    assert np.allclose(out1, out2, rtol=1e-4)


def test_halide_unsharp_schedule_correct():
    unsharp = make_unsharp()
    sched = schedule_unsharp(AVX512)
    H, W = 32, 256
    inp = np.random.rand(H + 2, W + 2).astype(np.float32)
    out1 = np.zeros((H, W), dtype=np.float32)
    out2 = np.zeros((H, W), dtype=np.float32)
    run_proc(unsharp, H=H, W=W, amount=1.5, inp=inp, out=out1)
    run_proc(sched, H=H, W=W, amount=1.5, inp=inp, out=out2)
    assert np.allclose(out1, out2, rtol=1e-3, atol=1e-4)


def test_gemmini_schedule_correct_and_uses_instructions():
    kernel = make_matmul_kernel(K=32)
    sched = schedule_matmul_gemmini(kernel)
    N = M = 32
    A = np.random.randint(-3, 4, size=(N, 32)).astype(np.int32)
    B = np.random.randint(-3, 4, size=(32, M)).astype(np.int32)
    C1 = np.zeros((N, M), dtype=np.int32)
    C2 = np.zeros((N, M), dtype=np.int32)
    run_proc(kernel, N=N, M=M, scale=1.0, A=A, B=B, C=C1, config_state={})
    run_proc(sched, N=N, M=M, scale=1.0, A=A, B=B, C=C2, config_state={})
    assert np.allclose(C1, C2)
    assert "do_matmul_acc_i8" in str(sched)


def test_gemmini_exo_vs_exo2_same_code():
    k = make_matmul_kernel(K=32)
    a = schedule_matmul_gemmini(k)
    b = schedule_matmul_gemmini_exo_style(k)
    cm = CostModel(GEMMINI_SPEC)
    ra = cm.runtime_cycles(a, {"N": 64, "M": 64})
    rb = cm.runtime_cycles(b, {"N": 64, "M": 64})
    assert abs(ra - rb) / rb < 0.05  # Figure 6: ratio ≈ 1.0


def test_flops_bytes_counts():
    f, b = kernel_flops_bytes("saxpy", {"n": 100})
    assert f == 200 and b == 1200
    f, b = kernel_flops_bytes("sgemv_n", {"M": 10, "N": 20})
    assert f == 400
