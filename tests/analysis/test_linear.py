"""Linear-analysis tests: simplification, proving, divisibility."""
from __future__ import annotations

from repro.analysis import FactEnv, const_value, exprs_equal, prove, prove_divisible, simplify_expr
from repro.frontend.parser import parse_expr_fragment
from repro.ir import expr_str


def _e(gemv, s):
    return parse_expr_fragment(s, gemv._root)


def test_constant_folding(gemv):
    assert const_value(_e(gemv, "3 * 4 + 2")) == 14
    assert const_value(_e(gemv, "(7 + 9) / 8")) == 2
    assert const_value(_e(gemv, "17 % 8")) == 1


def test_collect_terms(gemv):
    e = simplify_expr(_e(gemv, "M + M + 0 * N"))
    assert expr_str(e) == "2 * M"
    e = simplify_expr(_e(gemv, "(M + N) - N"))
    assert expr_str(e) == "M"


def test_divmod_simplification(gemv):
    env = FactEnv.from_proc(gemv._root)
    # i in [0, 8) makes (8*q + i) % 8 == i and (8*q + i)/8 == q
    from repro.ir import Sym
    q, i = Sym("q"), Sym("i")
    env.add_range(i, 0, 7)
    env.add_range(q, 0, 100)
    from repro.frontend.parser import parse_expr_fragment
    e = parse_expr_fragment("(8 * M + N) % 8", gemv._root)
    # N has no range facts, so this must NOT fold
    assert expr_str(simplify_expr(e, env)) != "N"


def test_prove_comparisons(gemv):
    env = FactEnv.from_proc(gemv._root)
    assert prove(_e(gemv, "M >= 0"), env) is True      # sizes are positive
    assert prove(_e(gemv, "M < 0"), env) is False
    assert prove(_e(gemv, "M > 100"), env) is None      # unknown
    assert prove(_e(gemv, "M % 8 == 0"), env) is True   # from the assertion


def test_prove_divisible(gemv):
    env = FactEnv.from_proc(gemv._root)
    assert prove_divisible(_e(gemv, "M"), 8, env)
    assert prove_divisible(_e(gemv, "M"), 4, env)       # 8 | M implies 4 | M? (8k divisible by 4)
    assert not prove_divisible(_e(gemv, "M + 1"), 8, env)
    assert prove_divisible(_e(gemv, "16 * N"), 8, env)


def test_exprs_equal(gemv):
    assert exprs_equal(_e(gemv, "M + N"), _e(gemv, "N + M"))
    assert exprs_equal(_e(gemv, "2 * M"), _e(gemv, "M + M"))
    assert not exprs_equal(_e(gemv, "M"), _e(gemv, "N"))
