"""Effect / dependence analysis tests."""
from __future__ import annotations

from repro.analysis import (
    FactEnv, accesses_of, is_idempotent, loop_iterations_commute, read_buffers,
    stmts_commute, written_buffers,
)


def test_accesses_and_buffers(gemv):
    loop = gemv.find_loop("i")._node()
    accs = accesses_of([loop])
    bufs = {a.buf.name for a in accs}
    assert {"A", "x", "y"} <= bufs
    assert {b.name for b in written_buffers([loop])} == {"y"}
    assert "x" in {b.name for b in read_buffers([loop])}


def test_stmts_commute(stages):
    loops = [c._node() for c in stages.find("for i in _: _", many=True)]
    # the second loop reads tmp written by the first: they do not commute
    assert not stmts_commute(loops[0], loops[1])


def test_loop_iterations_commute(gemv, copy2d, dot):
    # gemv's i loop writes y[i]: iterations commute
    assert loop_iterations_commute(gemv.find_loop("i")._node(), FactEnv.from_proc(gemv._root))
    # copy2d inner loop: iterations commute
    assert loop_iterations_commute(copy2d.find_loop("j")._node(), FactEnv.from_proc(copy2d._root))
    # dot's loop is a pure reduction: commutes
    assert loop_iterations_commute(dot.find_loop("i")._node(), FactEnv.from_proc(dot._root))


def test_prefix_sum_does_not_commute():
    from repro import proc_from_source
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        x[i + 1] = x[i] + 1.0\n"
    )
    assert not loop_iterations_commute(p.find_loop("i")._node(), FactEnv.from_proc(p._root))


def test_is_idempotent(gemv, copy2d):
    copy_body = copy2d.find_loop("j")._node().body
    assert is_idempotent(copy_body)
    gemv_body = gemv.find_loop("j")._node().body
    assert not is_idempotent(gemv_body)  # reductions are not idempotent
