"""Persistent compiled-artifact cache: warm hits, corruption recovery,
cc-missing fallback, cross-process key stability and option-change eviction."""
from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.backend import native
from repro.backend.codegen import CodegenOptions
from repro.blas import LEVEL1_KERNELS, optimize_level_1
from repro.interp import interpreter, make_random_args, run_proc
from repro.machines import AVX2

needs_cc = pytest.mark.skipif(native.find_cc() is None, reason="no C compiler on PATH")


@pytest.fixture
def cache(tmp_path, monkeypatch):
    """A private, empty artifact cache with fresh counters."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    native.clear_memo()
    native.reset_cache_stats()
    yield tmp_path
    native.clear_memo()
    native.reset_cache_stats()


def _saxpy():
    return optimize_level_1(LEVEL1_KERNELS["saxpy"], "i", "f32", AVX2, 2)


def _run_native(proc, seed=0):
    args = make_random_args(proc, {"n": 173}, seed=seed)
    native.compile_native(proc._root if hasattr(proc, "_root") else proc)(args)
    return args


@needs_cc
def test_cold_then_warm_disk_hit(cache):
    sched = _saxpy()
    _run_native(sched)
    assert native.cache_stats()["compiles"] == 1
    assert native.cache_stats()["disk_hits"] == 0

    # same process, memo satisfies the second build
    _run_native(sched)
    assert native.cache_stats()["memo_hits"] == 1

    # simulate a new process: drop the memo, keep the disk artifacts
    native.clear_memo()
    _run_native(sched)
    stats = native.cache_stats()
    assert stats["compiles"] == 1  # no recompile
    assert stats["disk_hits"] == 1


@needs_cc
def test_warm_run_matches_interpreter(cache):
    sched = _saxpy()
    _run_native(sched)
    native.clear_memo()
    got = _run_native(sched, seed=3)
    ref = make_random_args(sched, {"n": 173}, seed=3)
    run_proc(sched, backend="interp", **ref)
    np.testing.assert_allclose(got["y"], ref["y"], rtol=1e-5, atol=1e-6)


@needs_cc
def test_corrupt_artifact_evicted_and_rebuilt(cache):
    # plant a truncated .so at the key's slot *before* any load, as if a
    # previous process died mid-download or the disk filled up
    sched = _saxpy()
    root = sched._root if hasattr(sched, "_root") else sched
    key = native.artifact_key(root)
    with open(cache / f"{key}.so", "wb") as f:
        f.write(b"\x7fELF not really")

    got = _run_native(sched, seed=5)
    stats = native.cache_stats()
    assert stats["corrupt_evicted"] == 1
    assert stats["disk_hits"] == 0
    assert stats["compiles"] == 1  # rebuilt after eviction

    ref = make_random_args(sched, {"n": 173}, seed=5)
    run_proc(sched, backend="interp", **ref)
    np.testing.assert_allclose(got["y"], ref["y"], rtol=1e-5, atol=1e-6)


def test_cc_missing_records_fallback_event(cache, monkeypatch, axpy):
    from repro.interp import clear_exec_stats, exec_stats

    monkeypatch.setattr(native, "find_cc", lambda: None)
    clear_exec_stats()
    args = make_random_args(axpy, {"n": 64}, seed=1)
    expect = args["y"] + args["a"] * args["x"]

    run_proc(axpy, backend="c", **args)
    np.testing.assert_allclose(args["y"], expect, rtol=1e-6)

    # the degradation is recorded as a structured event, not a warning
    stats = exec_stats()
    assert stats["fallbacks"].get("cc-missing") == 1
    (ev,) = [e for e in stats["events"] if e["reason"] == "cc-missing"]
    assert ev["stage"] == "c->compiled" and ev["proc"] == "_axpy"

    # every degraded call is counted — no once-per-process suppression
    args2 = make_random_args(axpy, {"n": 64}, seed=2)
    run_proc(axpy, backend="c", **args2)
    assert exec_stats()["fallbacks"]["cc-missing"] == 2
    clear_exec_stats()


@needs_cc
def test_artifact_key_stable_across_processes(cache):
    sched = _saxpy()
    root = sched._root if hasattr(sched, "_root") else sched
    here = native.artifact_key(root)

    script = (
        "from repro.blas import LEVEL1_KERNELS, optimize_level_1\n"
        "from repro.machines import AVX2\n"
        "from repro.backend.native import artifact_key\n"
        "s = optimize_level_1(LEVEL1_KERNELS['saxpy'], 'i', 'f32', AVX2, 2)\n"
        "print(artifact_key(s._root if hasattr(s, '_root') else s))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
    )
    there = out.stdout.strip()
    assert here == there


@needs_cc
def test_option_change_misses_and_prune_evicts_stale(cache, monkeypatch):
    sched = _saxpy()
    root = sched._root if hasattr(sched, "_root") else sched
    plain = CodegenOptions()
    noinstr = CodegenOptions(intrinsics=False)
    assert native.artifact_key(root, plain) != native.artifact_key(root, noinstr)

    # a changed codegen option is a different key → fresh compile, and with a
    # cache bound of one entry the stale artifact is evicted on the way out
    monkeypatch.setattr(native, "MAX_CACHE_ENTRIES", 1)
    native.compile_native(root, plain)
    native.compile_native(root, noinstr)
    stats = native.cache_stats()
    assert stats["compiles"] == 2
    assert stats["pruned"] == 1
    assert len([f for f in os.listdir(cache) if f.endswith(".so")]) == 1
