"""Direct ``backend="c"`` coverage: every BLAS level-1/2 kernel and the Halide
pipelines, unscheduled and scheduled for both SIMD targets, must agree with
the tree interpreter when executed as compiled native code."""
from __future__ import annotations

import numpy as np
import pytest

from repro.backend.native import find_cc
from repro.blas import (
    LEVEL1_KERNELS,
    LEVEL2_KERNELS,
    all_level1_names,
    all_level2_names,
    optimize_level_1,
    optimize_level_2_general,
)
from repro.halide import make_blur, make_unsharp, schedule_blur, schedule_unsharp
from repro.interp import make_random_args, run_proc
from repro.machines import AVX2, AVX512

pytestmark = pytest.mark.skipif(find_cc() is None, reason="no C compiler on PATH")

L1_SIZES = {"n": 173}  # not a multiple of any vector width: exercises tails
L2_SIZES = {"M": 40, "N": 29}
MACHINES = {"AVX2": AVX2, "AVX512": AVX512}


def _l2_sizes(name):
    return dict(L2_SIZES) if ("gemv" in name or "ger" in name) else {"N": 33}


def _check_c_vs_interp(proc, size_env, seed=0, **extra):
    """Run natively and on the tree interpreter; every tensor must agree."""
    c_args = make_random_args(proc, size_env, seed=seed)
    c_args.update(extra)
    ref_args = make_random_args(proc, size_env, seed=seed)
    ref_args.update(extra)

    run_proc(proc, backend="c", **c_args)
    run_proc(proc, backend="interp", **ref_args)
    for name, ref in ref_args.items():
        if isinstance(ref, np.ndarray):
            np.testing.assert_allclose(
                c_args[name], ref, rtol=1e-4, atol=1e-5, equal_nan=True,
                err_msg=f"argument {name!r} diverges between C and interpreter",
            )


@pytest.mark.parametrize("name", all_level1_names())
def test_level1_unscheduled_c(name):
    _check_c_vs_interp(LEVEL1_KERNELS[name], L1_SIZES)


@pytest.mark.parametrize("name", all_level2_names())
def test_level2_unscheduled_c(name):
    _check_c_vs_interp(LEVEL2_KERNELS[name], _l2_sizes(name))


@pytest.fixture(scope="module", params=sorted(MACHINES))
def l1_schedules(request):
    machine = MACHINES[request.param]
    return {
        name: optimize_level_1(kernel, "i", "f64" if name.startswith("d") else "f32", machine, 2)
        for name, kernel in LEVEL1_KERNELS.items()
    }


@pytest.fixture(scope="module", params=sorted(MACHINES))
def l2_schedules(request):
    machine = MACHINES[request.param]
    return {
        name: optimize_level_2_general(
            kernel, "i", "f64" if name.startswith("d") else "f32", machine, 2, 2
        )
        for name, kernel in LEVEL2_KERNELS.items()
    }


@pytest.mark.parametrize("name", all_level1_names())
def test_level1_scheduled_c(name, l1_schedules):
    _check_c_vs_interp(l1_schedules[name], L1_SIZES)


@pytest.mark.parametrize("name", all_level2_names())
def test_level2_scheduled_c(name, l2_schedules):
    _check_c_vs_interp(l2_schedules[name], _l2_sizes(name))


# ---------------------------------------------------------------------------
# Halide suite
# ---------------------------------------------------------------------------

H, W = 32, 256


def test_blur_unscheduled_c():
    _check_c_vs_interp(make_blur(), {"H": H, "W": W})


@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_blur_scheduled_c(machine):
    _check_c_vs_interp(schedule_blur(MACHINES[machine]), {"H": H, "W": W})


def test_unsharp_unscheduled_c():
    _check_c_vs_interp(make_unsharp(), {"H": H, "W": W}, amount=1.5)


@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_unsharp_scheduled_c(machine):
    _check_c_vs_interp(schedule_unsharp(MACHINES[machine]), {"H": H, "W": W}, amount=1.5)


# ---------------------------------------------------------------------------
# Graceful decline: a Gemmini schedule uses configuration state the C backend
# does not model, so backend="c" records a fallback event and the NumPy
# engine takes over — results still correct.
# ---------------------------------------------------------------------------


def test_gemmini_declines_but_stays_correct():
    from repro.gemmini import schedule_matmul_gemmini
    from repro.guard import faults
    from repro.interp import clear_exec_stats, exec_stats

    if "cc-missing" in faults.env_faults():
        pytest.skip("armed cc-missing fault preempts the codegen-declined reason")

    sched = schedule_matmul_gemmini(tile=16)
    sizes = {n: 32 for n in ("M", "N", "K") if any(a.name.name == n for a in sched._root.args)}
    c_args = make_random_args(sched, sizes)
    ref_args = make_random_args(sched, sizes)

    clear_exec_stats()
    run_proc(sched, backend="c", **c_args)
    assert exec_stats()["fallbacks"].get("codegen-declined") == 1
    clear_exec_stats()
    run_proc(sched, backend="interp", **ref_args)
    for name, ref in ref_args.items():
        if isinstance(ref, np.ndarray):
            np.testing.assert_allclose(c_args[name], ref, rtol=1e-4, atol=1e-5)
