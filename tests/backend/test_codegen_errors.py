"""CodegenError typing: unlowerable constructs are rejected *before* any C is
emitted, with the offending statement's printed source and procedure name."""
from __future__ import annotations

import pytest

from repro import proc
from repro.backend.codegen import CodegenError, emit_unit, proc_to_c
from repro.errors import BackendError, ExoError
from repro.gemmini import schedule_matmul_gemmini
from repro.lang import *  # noqa: F401,F403


def test_codegen_error_is_backend_error():
    assert issubclass(CodegenError, BackendError)
    assert issubclass(CodegenError, ExoError)


def test_codegen_error_carries_location_and_proc():
    err = CodegenError("nope", proc_name="foo", location="x[i] = 1.0")
    assert err.proc_name == "foo"
    assert err.location == "x[i] = 1.0"
    assert "nope" in str(err)
    assert "x[i] = 1.0" in str(err)
    assert "'foo'" in str(err)


def test_gemmini_config_state_declines_with_location():
    sched = schedule_matmul_gemmini(tile=16)
    with pytest.raises(CodegenError) as exc_info:
        emit_unit(sched._root if hasattr(sched, "_root") else sched)
    err = exc_info.value
    assert err.proc_name is not None
    assert err.location is not None
    # the location is the printed surface syntax of the offending statement
    assert "config" in err.location
    assert err.location in str(err)


def test_float_modulo_rejected():
    @proc
    def fmod_proc(n: size, x: f32[n] @ DRAM):
        for i in seq(0, n):
            x[i] = x[i] % 2.0

    with pytest.raises(CodegenError) as exc_info:
        proc_to_c(fmod_proc._root if hasattr(fmod_proc, "_root") else fmod_proc)
    assert exc_info.value.proc_name == "fmod_proc"
