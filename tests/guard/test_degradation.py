"""The backend degradation ladder and its structured telemetry.

Every rung is exercised by injecting the fault that forces it and checking
three things: the call still returns correct results, a structured
:class:`FallbackEvent` records what happened, and retries fire where the
failure is transient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import native
from repro.guard import inject, retry_stats
from repro.interp import (
    VALID_BACKENDS,
    InterpError,
    clear_exec_stats,
    exec_stats,
    make_random_args,
    resolve_backend,
    run_proc,
)

needs_cc = pytest.mark.skipif(native.find_cc() is None, reason="no C compiler on PATH")


def _axpy_args(axpy, seed=0):
    args = make_random_args(axpy, {"n": 96}, seed=seed)
    expect = args["y"] + args["a"] * args["x"]
    return args, expect


# ---------------------------------------------------------------------------
# cc-missing: c -> compiled, under every entry point (satellite c)
# ---------------------------------------------------------------------------


def test_cc_missing_under_run_proc(cache, axpy, tolerates):
    tolerates("cc-missing")
    with inject("cc-missing"):
        args, expect = _axpy_args(axpy, seed=1)
        run_proc(axpy, backend="c", **args)
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)
    stats = exec_stats()
    assert stats["fallbacks"] == {"cc-missing": 1}
    (ev,) = stats["events"]
    assert ev["stage"] == "c->compiled" and ev["reason"] == "cc-missing"


def test_cc_missing_under_differential_backend(cache, axpy, tolerates):
    tolerates("cc-missing")
    with inject("cc-missing"):
        args, expect = _axpy_args(axpy, seed=2)
        run_proc(axpy, backend="differential", **args)  # still cross-checks
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)
    stats = exec_stats()
    assert stats["fallbacks"] == {"cc-missing": 1}
    (ev,) = stats["events"]
    assert ev["stage"] == "differential-c-leg"


def test_cc_missing_under_tuner_spec(cache, tolerates):
    tolerates("cc-missing")
    from repro.tune import evaluate_spec

    with inject("cc-missing"):
        out = evaluate_spec(
            {
                "proc": "repro.blas:LEVEL1_KERNELS",
                "proc_args": ["saxpy"],
                "schedule": "repro.blas:level1_schedule",
                "config": {"interleave": 2},
                "size_env": {"n": 512},
                "repeats": 1,
                "backend": "c",
            }
        )
    # the sweep measures on the NumPy engine instead of dying
    assert out["status"] == "ok" and out["time_s"] > 0
    assert exec_stats()["fallbacks"].get("cc-missing", 0) >= 1


# ---------------------------------------------------------------------------
# transient faults are retried with backoff
# ---------------------------------------------------------------------------


@needs_cc
def test_cc_transient_is_retried_and_recovers(cache, axpy, tolerates):
    tolerates()
    with inject("cc-transient", times=1):
        args, expect = _axpy_args(axpy, seed=3)
        run_proc(axpy, backend="c", **args)
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)
    assert retry_stats() == {"cc-invoke": 1}
    assert exec_stats()["fallbacks"] == {}  # recovered: no degradation


@needs_cc
def test_cc_transient_exhaustion_degrades_gracefully(cache, axpy, tolerates):
    tolerates("cc-transient")
    with inject("cc-transient"):  # every attempt fails
        args, expect = _axpy_args(axpy, seed=4)
        run_proc(axpy, backend="c", **args)
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)
    assert retry_stats()["cc-invoke"] == 2  # 3 attempts, 2 retries
    assert exec_stats()["fallbacks"] == {"native-unavailable": 1}


@needs_cc
def test_publish_race_is_retried_and_recovers(cache, axpy, tolerates):
    tolerates()
    with inject("publish-race", times=1):
        args, expect = _axpy_args(axpy, seed=5)
        run_proc(axpy, backend="c", **args)
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)
    assert retry_stats() == {"artifact-publish": 1}
    assert exec_stats()["fallbacks"] == {}


# ---------------------------------------------------------------------------
# artifact-corrupt: evict and rebuild
# ---------------------------------------------------------------------------


@needs_cc
def test_corrupt_artifact_is_evicted_and_rebuilt(cache, axpy, tolerates):
    tolerates()
    root = axpy._root if hasattr(axpy, "_root") else axpy
    native.compile_native(root)
    assert native.cache_stats()["compiles"] == 1

    native.clear_memo()  # simulate a fresh process hitting the disk cache
    with inject("artifact-corrupt", times=1):
        kernel = native.compile_native(root)
    stats = native.cache_stats()
    assert stats["corrupt_evicted"] == 1
    assert stats["compiles"] == 2  # rebuilt, not surfaced to the caller

    args, expect = _axpy_args(axpy, seed=6)
    kernel({k: v for k, v in args.items()})
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------------
# the keystone chaos property
# ---------------------------------------------------------------------------


def test_correctness_survives_any_armed_fault(cache, axpy, fast_guard):
    """Deliberately tolerates *every* fault: whatever REPRO_FAULTS forces,
    the public entry point returns correct results and never raises — this is
    the one test the chaos CI job must run (not skip) in every configuration.
    """
    for seed in (10, 11, 12):
        args, expect = _axpy_args(axpy, seed=seed)
        run_proc(axpy, backend="c", **args)
        np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------------
# backend validation (satellite b)
# ---------------------------------------------------------------------------


def test_invalid_backend_kwarg_is_rejected_up_front(axpy):
    args = make_random_args(axpy, {"n": 8}, seed=0)
    with pytest.raises(InterpError, match=r"invalid execution backend 'numpyy'"):
        run_proc(axpy, backend="numpyy", **args)


def test_invalid_env_backend_names_its_source(monkeypatch, axpy):
    from repro.interp import interpreter

    monkeypatch.setenv("REPRO_EXEC_BACKEND", "native")
    monkeypatch.setattr(interpreter, "_default_backend", None)
    args = make_random_args(axpy, {"n": 8}, seed=0)
    with pytest.raises(InterpError, match="REPRO_EXEC_BACKEND"):
        run_proc(axpy, **args)
    monkeypatch.setattr(interpreter, "_default_backend", None)


def test_resolve_backend_lists_the_valid_set():
    with pytest.raises(InterpError) as err:
        resolve_backend("jit")
    for name in VALID_BACKENDS:
        assert name in str(err.value)
    assert resolve_backend(None) in VALID_BACKENDS
    assert resolve_backend("interp") == "interp"
