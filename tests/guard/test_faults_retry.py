"""Fault-injection framework and retry semantics (repro.guard.faults/retry)."""

from __future__ import annotations

import pytest

from repro.guard import (
    VALID_FAULTS,
    FaultError,
    active_faults,
    env_faults,
    inject,
    is_active,
    reset_retry_stats,
    retry_stats,
    should_fire,
    with_retry,
)


def test_unknown_fault_names_are_rejected_loudly():
    with pytest.raises(FaultError, match="valid faults are"):
        should_fire("no-such-fault")
    with pytest.raises(FaultError):
        is_active("cc_missing")  # underscores are not the spelling
    with pytest.raises(FaultError):
        with inject("kernel-sigsegv"):
            pass


def test_env_faults_are_validated_and_memoised(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "cc-missing, kernel-hang")
    assert env_faults() == {"cc-missing", "kernel-hang"}
    assert env_faults() is env_faults()  # memoised per raw value
    monkeypatch.setenv("REPRO_FAULTS", "cc-missign")
    with pytest.raises(FaultError, match="cc-missign"):
        env_faults()
    monkeypatch.setenv("REPRO_FAULTS", "")
    assert env_faults() == frozenset()


def test_inject_times_budget_and_nesting(tolerates):
    tolerates(*(VALID_FAULTS - {"cc-transient"}))
    assert not should_fire("cc-transient")
    with inject("cc-transient", times=2):
        assert is_active("cc-transient")
        assert should_fire("cc-transient")
        assert should_fire("cc-transient")
        assert not should_fire("cc-transient")  # budget spent
        with inject("cc-transient"):  # unlimited while nested
            assert should_fire("cc-transient")
            assert should_fire("cc-transient")
        assert not should_fire("cc-transient")  # outer (spent) arming restored
    assert not is_active("cc-transient")


def test_active_faults_unions_env_and_injected(monkeypatch, tolerates):
    tolerates()
    monkeypatch.setenv("REPRO_FAULTS", "publish-race")
    with inject("cc-missing"):
        assert active_faults() == {"publish-race", "cc-missing"}
    assert "cc-missing" not in active_faults()


def test_fault_names_match_the_documented_set():
    assert VALID_FAULTS == {
        "cc-missing",
        "cc-transient",
        "artifact-corrupt",
        "kernel-segfault",
        "kernel-hang",
        "worker-crash",
        "publish-race",
        "partial-write",
        "lock-timeout",
        "kill-mid-publish",
        "omp-missing",
        "thread-pool-exhausted",
    }


def test_with_retry_recovers_from_transient_failures():
    reset_retry_stats()
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise OSError("transient")
        return "done"

    assert with_retry(flaky, base_delay_s=0.001, label="flaky-op") == "done"
    assert len(calls) == 3
    assert retry_stats() == {"flaky-op": 2}


def test_with_retry_exhausts_and_propagates():
    def always():
        raise OSError("permanent")

    with pytest.raises(OSError, match="permanent"):
        with_retry(always, attempts=3, base_delay_s=0.001, label="perm")
    assert retry_stats()["perm"] == 2  # attempts - 1 retries, then give up


def test_with_retry_does_not_retry_deterministic_errors():
    calls = []

    def broken():
        calls.append(1)
        raise ValueError("compile error, not transient")

    with pytest.raises(ValueError):
        with_retry(broken, base_delay_s=0.001)
    assert len(calls) == 1
