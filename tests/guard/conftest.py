"""Shared fixtures for the hardened-execution-layer (repro.guard) suite.

These tests double as the chaos suite: the CI chaos job re-runs them with
each fault forced through ``REPRO_FAULTS``.  Tests that assert *clean-path*
behaviour (exact event counts, successful validation) therefore declare the
env faults they tolerate and skip under any other — a forced fault must make
the degradation tests bite, not make unrelated assertions flake.
"""

from __future__ import annotations

import pytest

from repro.backend import native
from repro.guard import faults, reset_retry_stats
from repro.interp import clear_exec_stats


@pytest.fixture(autouse=True)
def clean_guard_state():
    """Every test starts and ends with empty event/guard/retry counters."""
    clear_exec_stats()
    reset_retry_stats()
    yield
    clear_exec_stats()
    reset_retry_stats()


@pytest.fixture
def cache(tmp_path, monkeypatch):
    """A private, empty native-artifact cache with fresh counters."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    native.clear_memo()
    native.reset_cache_stats()
    yield tmp_path
    native.clear_memo()
    native.reset_cache_stats()


@pytest.fixture
def tolerates():
    """``tolerates("cc-missing", ...)`` — skip when any *other* env fault is
    armed (chaos runs force faults this test's assertions can't absorb)."""

    def check(*names):
        extra = sorted(set(faults.env_faults()) - set(names))
        if extra:
            pytest.skip(f"armed env fault(s) {', '.join(extra)} conflict with this test")

    return check


@pytest.fixture
def fast_guard(monkeypatch):
    """A short watchdog so hang tests finish in well under a second."""
    monkeypatch.setenv("REPRO_GUARD_TIMEOUT", "0.4")
