"""Tuner hardening: candidate timeouts, worker crashes, and the poison list."""

from __future__ import annotations

import pytest

from repro.api import S, knob
from repro.guard import inject
from repro.tune import (
    Leaderboard,
    Measurement,
    ScheduleRunner,
    TuneError,
    Tuner,
    config_key,
    evaluate_parallel,
)
from repro.tune.space import Param, Space


def test_candidate_timeout_scores_timeout_not_stall(axpy, tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "publish-race")
    runner = ScheduleRunner(
        axpy, S.simplify(), {"n": 2_000_000}, repeats=100, timeout_s=0.05
    )
    m = runner.evaluate({})
    assert m.status == "timeout"
    assert "wall-clock" in m.error
    assert m.score == float("inf")

    # the alarm is fully disarmed afterwards: a fast candidate still times
    fast = ScheduleRunner(axpy, S.simplify(), {"n": 64}, repeats=1, timeout_s=30)
    assert fast.evaluate({}).ok


def test_runner_rejects_bad_timeouts_and_backends(axpy):
    from repro.interp import InterpError

    with pytest.raises(TuneError, match="timeout_s"):
        ScheduleRunner(axpy, S.simplify(), {"n": 8}, timeout_s=0)
    with pytest.raises(InterpError, match="ScheduleRunner"):
        ScheduleRunner(axpy, S.simplify(), {"n": 8}, backend="native")


def test_worker_crash_fault_is_contained_by_parallel_evaluation(tolerates):
    tolerates("worker-crash")
    # REPRO_FAULTS (not inject) because the fault must fire in the *worker*
    # process, which does not inherit in-process injected state
    import os

    env_before = os.environ.get("REPRO_FAULTS")
    os.environ["REPRO_FAULTS"] = "worker-crash"
    try:
        ms = evaluate_parallel(
            {
                "proc": "repro.blas:LEVEL1_KERNELS",
                "proc_args": ["saxpy"],
                "schedule": "repro.blas:level1_schedule",
                "size_env": {"n": 256},
                "repeats": 1,
            },
            [{"interleave": 1}, {"interleave": 2}],
            max_workers=2,
        )
    finally:
        if env_before is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = env_before
    assert len(ms) == 2
    assert all(m.status == "crash" for m in ms)
    assert all(m.score == float("inf") for m in ms)


def test_poison_listed_configs_are_skipped_on_warm_start(axpy, tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "publish-race")
    sched = S.divide_loop("i", knob("w", 8, choices=(2, 4, 8)), ["io", "ii"])
    space = Space(Param("w", (2, 4, 8)))
    lb = Leaderboard()
    tuner = Tuner(axpy, sched, space, {"n": 256}, repeats=1, leaderboard=lb)
    lb.record(tuner.key, Measurement({"w": 4}, status="crash", error="SIGSEGV"))

    result = tuner.tune(search="grid")
    assert result.skipped == [{"w": 4}]
    assert all(m.config != {"w": 4} for m in result.measurements)
    assert result.best.ok

    # the poisoned entry survives the tune: a later warm start still skips it
    assert config_key({"w": 4}) in lb.poisoned(tuner.key)


def test_poisoned_default_is_reported_synthetically_not_rerun(axpy, tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "publish-race")
    sched = S.divide_loop("i", knob("w", 8, choices=(2, 4, 8)), ["io", "ii"])
    space = Space(Param("w", (2, 4, 8)))
    lb = Leaderboard()
    tuner = Tuner(axpy, sched, space, {"n": 256}, repeats=1, leaderboard=lb)
    lb.record(tuner.key, Measurement({"w": 8}, status="timeout", error="hung"))

    result = tuner.tune(search="grid")
    assert result.default.status == "crash"
    assert "poison-listed" in result.default.error
    assert all(m.config != {"w": 8} for m in result.measurements)


def test_all_candidates_poisoned_is_a_loud_error(axpy, tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "publish-race")
    sched = S.divide_loop("i", knob("w", 8, choices=(2, 4, 8)), ["io", "ii"])
    space = Space(Param("w", (2, 4, 8)))
    lb = Leaderboard()
    tuner = Tuner(axpy, sched, space, {"n": 256}, repeats=1, leaderboard=lb)
    for w in (2, 4, 8):
        lb.record(tuner.key, Measurement({"w": w}, status="crash", error="boom"))
    with pytest.raises(TuneError, match="poison-listed"):
        tuner.tune(search="grid")
