"""First-run quarantine: crashes and hangs in native kernels must never take
down or wedge the host process (repro.guard.quarantine + repro.backend.native).
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.backend import native
from repro.guard import GuardReport, guard_stats, inject, run_guarded
from repro.interp import exec_stats, make_random_args, run_proc

needs_cc = pytest.mark.skipif(native.find_cc() is None, reason="no C compiler on PATH")
needs_fork = pytest.mark.skipif(not hasattr(os, "fork"), reason="no fork on this platform")


# ---------------------------------------------------------------------------
# run_guarded in isolation
# ---------------------------------------------------------------------------


@needs_fork
def test_clean_run_reports_ok_and_discards_child_writes(tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "worker-crash", "publish-race")
    buf = np.zeros(4)

    def kernel():
        buf[:] = 1.0  # copy-on-write: must stay invisible to the parent

    report = run_guarded(kernel, timeout_s=10)
    assert report.status == "ok" and report.forked
    assert np.all(buf == 0.0)
    assert guard_stats()["ok"] == 1


@needs_fork
def test_segfaulting_child_is_reported_not_fatal(tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "worker-crash",
              "publish-race", "kernel-segfault")

    def kernel():
        os.kill(os.getpid(), signal.SIGSEGV)

    report = run_guarded(kernel, timeout_s=10)
    assert report.status == "crash"
    assert report.signal == signal.SIGSEGV
    assert "SIGSEGV" in report.error
    assert guard_stats()["crash"] == 1


@needs_fork
def test_hanging_child_is_killed_by_the_watchdog(tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "worker-crash",
              "publish-race", "kernel-hang")
    t0 = time.perf_counter()
    report = run_guarded(lambda: time.sleep(3600), timeout_s=0.3)
    elapsed = time.perf_counter() - t0
    assert report.status == "timeout"
    assert elapsed < 5.0  # killed promptly, nowhere near the hour
    assert guard_stats()["timeout"] == 1


@needs_fork
def test_python_exception_in_child_is_an_error_not_a_crash(tolerates):
    tolerates("cc-missing", "cc-transient", "artifact-corrupt", "worker-crash", "publish-race")

    def kernel():
        raise ValueError("deterministic bug")

    report = run_guarded(kernel, timeout_s=10)
    assert report.status == "error"
    assert "ValueError" in report.error and "deterministic bug" in report.error


# ---------------------------------------------------------------------------
# acceptance: a hostile native kernel, driven through the public run_proc
# ---------------------------------------------------------------------------


def _axpy_args(axpy, seed=0):
    args = make_random_args(axpy, {"n": 96}, seed=seed)
    expect = args["y"] + args["a"] * args["x"]
    return args, expect


@needs_cc
@needs_fork
def test_segfaulting_kernel_degrades_poisons_and_stays_correct(cache, axpy, tolerates):
    tolerates()
    with inject("kernel-segfault", times=1):
        args, expect = _axpy_args(axpy, seed=1)
        run_proc(axpy, backend="c", **args)  # the host survives this line
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)

    stats = exec_stats()
    assert stats["guard"]["crash"] == 1
    (ev,) = [e for e in stats["events"] if e["reason"] == "kernel-segfault"]
    assert ev["stage"] == "c->compiled" and ev["artifact_key"]

    # the artifact is poisoned on disk: the next call must not re-enter the
    # guard (or even dlopen the artifact) — it degrades immediately
    assert native.artifact_status(ev["artifact_key"], str(cache)) == "poisoned"
    args2, expect2 = _axpy_args(axpy, seed=2)
    run_proc(axpy, backend="c", **args2)
    np.testing.assert_allclose(args2["y"], expect2, rtol=1e-4, atol=1e-5)
    stats2 = exec_stats()
    assert stats2["guard"]["guarded_runs"] == 1  # no guard re-entry
    assert stats2["fallbacks"]["poisoned-artifact"] == 1


@needs_cc
@needs_fork
def test_hanging_kernel_degrades_poisons_and_stays_correct(cache, axpy, fast_guard, tolerates):
    tolerates()
    t0 = time.perf_counter()
    with inject("kernel-hang", times=1):
        args, expect = _axpy_args(axpy, seed=3)
        run_proc(axpy, backend="c", **args)  # the host does not wedge here
    elapsed = time.perf_counter() - t0
    assert elapsed < 10.0
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)

    stats = exec_stats()
    assert stats["guard"]["timeout"] == 1
    (ev,) = [e for e in stats["events"] if e["reason"] == "kernel-hang"]
    assert native.artifact_status(ev["artifact_key"], str(cache)) == "poisoned"

    # poisoned: later calls skip the guard and degrade immediately
    args2, expect2 = _axpy_args(axpy, seed=4)
    run_proc(axpy, backend="c", **args2)
    np.testing.assert_allclose(args2["y"], expect2, rtol=1e-4, atol=1e-5)
    assert exec_stats()["guard"]["guarded_runs"] == 1


@needs_cc
@needs_fork
def test_clean_first_run_validates_and_skips_the_guard_afterwards(cache, axpy, tolerates):
    tolerates()
    args, expect = _axpy_args(axpy, seed=5)
    run_proc(axpy, backend="c", **args)
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)
    assert exec_stats()["guard"] == {
        "guarded_runs": 1, "ok": 1, "crash": 0, "timeout": 0, "error": 0,
    }
    key = native.artifact_key(axpy._root if hasattr(axpy, "_root") else axpy)
    assert native.artifact_status(key, str(cache)) == "validated"

    # warm calls go straight in-process: no new guarded runs, no fallbacks
    for seed in (6, 7):
        argsN, expectN = _axpy_args(axpy, seed=seed)
        run_proc(axpy, backend="c", **argsN)
        np.testing.assert_allclose(argsN["y"], expectN, rtol=1e-4, atol=1e-5)
    stats = exec_stats()
    assert stats["guard"]["guarded_runs"] == 1
    assert stats["fallbacks"] == {}


@needs_cc
def test_guard_can_be_disabled(cache, axpy, monkeypatch, tolerates):
    tolerates()
    monkeypatch.setenv("REPRO_GUARD", "off")
    args, expect = _axpy_args(axpy, seed=8)
    run_proc(axpy, backend="c", **args)
    np.testing.assert_allclose(args["y"], expect, rtol=1e-4, atol=1e-5)
    assert exec_stats()["guard"]["guarded_runs"] == 0
