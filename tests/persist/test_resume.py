"""Resumable tuning: the checkpoint journal, and the ISSUE 8 acceptance
test — a SIGKILLed tuner restarts and re-measures only unfinished configs."""

from __future__ import annotations

import multiprocessing

from repro.api import S, knob, seq
from repro.guard.faults import inject
from repro.persist import Journal
from repro.tune import Param, Space, Tuner
from repro.tune.results import config_key

mp_fork = multiprocessing.get_context("fork")


def _sched():
    return seq(
        S.divide_loop("i", 16, ["io", "ii"]),
        S.divide_loop("ii", knob("w", 8, choices=(2, 4, 8)), ["iio", "iii"]),
    )


def _space():
    return Space(Param("w", (2, 4, 8)))


def _tuner(axpy, checkpoint):
    return Tuner(axpy, _sched(), _space(), {"n": 64}, repeats=1, checkpoint=checkpoint)


def _count_evals(tuner):
    """Instrument the runner: how many configs actually get measured."""
    measured = []
    orig = tuner.runner.evaluate

    def spy(config, repeats=None):
        measured.append(dict(config))
        return orig(config, repeats=repeats)

    tuner.runner.evaluate = spy
    return measured


def test_completed_run_journals_every_measurement(axpy, tmp_path):
    ckpt = str(tmp_path / "tune.jsonl")
    result = _tuner(axpy, ckpt).tune("grid")
    recs = Journal(ckpt).entries()
    assert len(recs) == len(result.measurements) == 3  # w in {2,4,8}
    assert all(rec["key"] == result.key for rec in recs)
    assert {r["measurement"]["config"]["w"] for r in recs} == {2, 4, 8}


def test_restarting_a_finished_tune_re_measures_nothing(axpy, tmp_path):
    ckpt = str(tmp_path / "tune.jsonl")
    first = _tuner(axpy, ckpt).tune("grid")
    second_tuner = _tuner(axpy, ckpt)
    measured = _count_evals(second_tuner)
    second = second_tuner.tune("grid")
    assert measured == []  # the whole sweep came from the journal
    assert len(second.resumed) == 3 and second.measurements == []
    assert second.best_config == first.best_config
    assert second.to_dict()["resumed"] == 3


def test_a_torn_final_journal_line_only_repeats_that_config(axpy, tmp_path):
    ckpt = str(tmp_path / "tune.jsonl")
    _tuner(axpy, ckpt).tune("grid")
    # tear the last line, as a crash mid-append would
    raw = open(ckpt, "rb").read().rstrip(b"\n")
    cut = raw.rfind(b"\n")  # keep everything up to the final line's start
    with open(ckpt, "wb") as f:
        f.write(raw[: cut + 1 + (len(raw) - cut) // 2])
    j = Journal(ckpt)
    intact = j.entries()
    assert j.torn == 1 and len(intact) == 2
    tuner = _tuner(axpy, ckpt)
    measured = _count_evals(tuner)
    result = tuner.tune("grid")
    assert len(measured) == 1  # exactly the torn config, nothing else
    done = {r["measurement"]["config"]["w"] for r in intact}
    assert measured[0]["w"] not in done
    assert len(result.resumed) == 2


def test_checkpoints_are_scoped_by_board_key(axpy, gemv, tmp_path):
    # one journal file shared across different tunes never cross-pollutes
    ckpt = str(tmp_path / "tune.jsonl")
    _tuner(axpy, ckpt).tune("grid")
    sched = seq(S.divide_loop("i", knob("w", 8, choices=(4, 8)), ["io", "ii"]))
    other = Tuner(gemv, sched, Space(Param("w", (4, 8))), {"M": 16, "N": 8},
                  repeats=1, checkpoint=ckpt)
    measured = _count_evals(other)
    other.tune("grid")
    assert len(measured) == 2  # axpy's journal entries did not count for gemv


def _victim(axpy, ckpt, skip_n):
    # child process: die at the (skip_n+1)-th journal append, mid-tune.
    # kill-mid-publish SIGKILLs *this* process — that is the point.
    with inject("kill-mid-publish", skip=skip_n):
        _tuner(axpy, ckpt).tune("grid")


def test_sigkilled_tuner_resumes_only_unfinished_configs(axpy, tmp_path):
    """ISSUE 8 acceptance: kill -9 a tuner mid-run; the restart restores the
    journaled measurements and re-measures only what the journal misses."""
    ckpt = str(tmp_path / "tune.jsonl")
    victim = mp_fork.Process(target=_victim, args=(axpy, ckpt, 1))
    victim.start()
    victim.join(120)
    assert victim.exitcode == -9  # died by SIGKILL at the persist site

    journaled = Journal(ckpt).entries()
    done = {config_key(r["measurement"]["config"]) for r in journaled}
    assert 1 <= len(done) < 3  # it really was mid-run: some done, not all

    tuner = _tuner(axpy, ckpt)
    measured = _count_evals(tuner)
    result = tuner.tune("grid")
    # exactly the complement was re-measured — no journaled config re-ran
    assert {config_key(c) for c in measured} == {
        config_key(tuner._full({"w": w})) for w in (2, 4, 8)
    } - done
    assert {config_key(m.config) for m in result.resumed} == done
    assert result.best.ok
    assert len(result.resumed) + len(result.measurements) == 3
