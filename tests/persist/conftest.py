"""Shared fixtures for the persistence-layer (repro.persist) suite.

These tests are part of the chaos matrix, but with a stricter discipline
than ``tests/guard``: nearly every persist test performs in-process
``write_record``/``Journal.append``/``FileLock.acquire`` calls, so an
environment-armed fault hits *the pytest process itself* — ``partial-write``
tears the fixtures a test is about to read back, and ``kill-mid-publish``
SIGKILLs the test runner outright.  The autouse guard below therefore skips
every test under any armed env fault unless the test declares it with
``@pytest.mark.chaos_tolerates("<fault>", ...)`` — the declaration means
"my assertions are exactly about that degradation, fire away".

Coverage of ``kill-mid-publish`` does not depend on env arming at all: the
kill-harness and resume tests fork a victim process and arm the fault via
``inject()`` *inside the child*, so only the victim dies.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.guard import faults
from repro.guard.events import clear_fallback_events

#: fork start method: children inherit injected fault state and closures —
#: exactly what the kill harness needs (and the only method that lets a
#: Process target be a test-local function)
mp_fork = multiprocessing.get_context("fork")


@pytest.fixture(autouse=True)
def _chaos_guard(request):
    """Skip under any env-armed fault the test does not explicitly tolerate."""
    armed = set(faults.env_faults())
    marker = request.node.get_closest_marker("chaos_tolerates")
    tolerated = set(marker.args) if marker else set()
    extra = sorted(armed - tolerated)
    if extra:
        pytest.skip(
            f"armed env fault(s) {', '.join(extra)} would fire inside the "
            "pytest process; this test does not tolerate them"
        )


@pytest.fixture(autouse=True)
def _clean_events():
    """Fallback-event counters start and end empty (the lock-contention
    degradation tests assert exact event contents)."""
    clear_fallback_events()
    yield
    clear_fallback_events()


@pytest.fixture
def run_victim():
    """``run_victim(fn, *args)`` — fork ``fn`` as a child process, wait for
    it, and return its exit code (negative = killed by that signal).  The
    child runs the test-local function with inherited state; a victim that
    arms ``kill-mid-publish`` dies with ``-SIGKILL`` (-9)."""

    def run(fn, *args, timeout_s: float = 60.0):
        p = mp_fork.Process(target=fn, args=args)
        p.start()
        p.join(timeout_s)
        if p.is_alive():  # pragma: no cover - hang safety net
            p.kill()
            p.join()
            pytest.fail(f"victim {fn.__name__} hung past {timeout_s}s")
        return p.exitcode

    return run


@pytest.fixture
def repo_python_env():
    """Environment for spawning real worker subprocesses: ``src`` on
    PYTHONPATH, no inherited fault arming."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    return env
