"""The advisory inter-process lock: real cross-process exclusion, bounded
timeouts, crash release, and the lock-timeout fault."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.guard import faults
from repro.guard.faults import inject
from repro.persist import FileLock, LockTimeout, locking_available
from repro.persist.store import PersistError

mp_fork = multiprocessing.get_context("fork")

pytestmark = pytest.mark.skipif(
    not locking_available(), reason="no fcntl on this platform"
)


def _hold(path, hold_s, barrier):
    with FileLock(path, timeout_s=5.0):
        barrier.set()  # tell the parent the lock is truly held
        time.sleep(hold_s)


def test_cross_process_exclusion_times_out_then_succeeds(tmp_path):
    path = str(tmp_path / "board.json.lock")
    acquired = mp_fork.Event()
    holder = mp_fork.Process(target=_hold, args=(path, 1.0, acquired))
    holder.start()
    try:
        assert acquired.wait(5.0)
        # bounded: a held lock fails fast, it does not hang the caller
        t0 = time.monotonic()
        with pytest.raises(LockTimeout, match="another process holds it"):
            FileLock(path, timeout_s=0.15).acquire()
        assert time.monotonic() - t0 < 1.0
        # and once the holder releases, a patient waiter gets in
        with FileLock(path, timeout_s=5.0):
            pass
    finally:
        holder.join()
    assert holder.exitcode == 0


def _hold_forever(path, barrier):
    FileLock(path, timeout_s=5.0).acquire()
    barrier.set()
    time.sleep(60)  # never released voluntarily; the parent SIGKILLs us


def test_sigkilled_holder_releases_the_lock(tmp_path):
    """The reason this is flock and not a pidfile: the kernel drops the lock
    with the process, so a ``kill -9``'d tuner never wedges future tunes."""
    path = str(tmp_path / "board.json.lock")
    acquired = mp_fork.Event()
    holder = mp_fork.Process(target=_hold_forever, args=(path, acquired))
    holder.start()
    try:
        assert acquired.wait(5.0)
        os.kill(holder.pid, 9)
        holder.join(5.0)
        with FileLock(path, timeout_s=2.0):
            pass  # acquirable promptly after the holder died
    finally:
        if holder.is_alive():  # pragma: no cover
            holder.kill()
            holder.join()


def test_context_manager_releases_and_is_reacquirable(tmp_path):
    path = str(tmp_path / "x.lock")
    lock = FileLock(path, timeout_s=1.0)
    with lock:
        assert lock.held
    assert not lock.held
    with lock:  # same object, second acquisition
        assert lock.held


def test_not_reentrant(tmp_path):
    lock = FileLock(str(tmp_path / "x.lock"), timeout_s=1.0)
    with lock:
        with pytest.raises(PersistError, match="not reentrant"):
            lock.acquire()


def test_holder_never_unlinks_the_lock_file(tmp_path):
    # deleting the lock file races with a waiter that already opened it —
    # the holder must leave it in place (fsck sweeps idle leftovers)
    path = str(tmp_path / "x.lock")
    with FileLock(path, timeout_s=1.0):
        assert os.path.exists(path)
    assert os.path.exists(path)


def test_nonpositive_timeout_is_rejected(tmp_path):
    with pytest.raises(PersistError, match="timeout_s"):
        FileLock(str(tmp_path / "x.lock"), timeout_s=0)


@pytest.mark.chaos_tolerates("lock-timeout")
def test_lock_timeout_fault_fires_immediately(tmp_path):
    path = str(tmp_path / "x.lock")
    t0 = time.monotonic()
    with inject("lock-timeout", times=1):
        with pytest.raises(LockTimeout, match="fault: lock-timeout"):
            FileLock(path, timeout_s=30.0).acquire()
    assert time.monotonic() - t0 < 1.0  # no real waiting happened
    if "lock-timeout" not in faults.env_faults():
        with FileLock(path, timeout_s=1.0):  # fault consumed; lock is healthy
            pass
