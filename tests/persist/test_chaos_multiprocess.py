"""Multi-process chaos: N workers hammer one leaderboard path while some of
them run with persist faults armed in their environment.  Torn publishes and
wedged locks must degrade — quarantine, fallback-to-memory — without ever
feeding decoded garbage into any worker's board, and ``repro_fsck --repair``
must bring the directory back to health afterwards."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings

from repro.tune.results import Leaderboard

KEY = "deadbeef/chaos-fp/machine"

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
FSCK = os.path.join(REPO_ROOT, "tools", "repro_fsck.py")

_WORKER = """
import json, sys, warnings
sys.path.insert(0, {src!r})
warnings.simplefilter("ignore", RuntimeWarning)   # quarantine/contention noise
from repro.tune.results import Leaderboard
from repro.tune.runner import Measurement

worker = int(sys.argv[1])
path = sys.argv[2]
written = []
for i in range(3):
    board = Leaderboard(path, lock_timeout_s=20.0)
    m = Measurement({{"w": worker, "i": i}}, time_s=0.001 * (worker + 1) + i,
                    repeats=1, status="ok")
    board.record({key!r}, m)
    board.save()
    written.append(m.to_dict())
print(json.dumps(written))
"""


def test_chaos_fleet_degrades_without_corrupting_anyone(tmp_path, repo_python_env):
    """8 workers: six clean, one publishing torn records (``partial-write``),
    one whose every lock acquisition times out (``lock-timeout``)."""
    path = str(tmp_path / "board.json")
    src = repo_python_env["PYTHONPATH"].split(os.pathsep)[0]
    script = _WORKER.format(src=src, key=KEY)

    fault_of = {6: "partial-write", 7: "lock-timeout"}
    procs = {}
    for w in range(8):
        env = dict(repo_python_env)
        if w in fault_of:
            env["REPRO_FAULTS"] = fault_of[w]
        procs[w] = subprocess.Popen(
            [sys.executable, "-c", script, str(w), path],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )

    written = {}
    for w, p in procs.items():
        out, err = p.communicate(timeout=120)
        # nobody crashes: faults degrade, they do not kill workers
        assert p.returncode == 0, f"worker {w}: {err.decode()}"
        written[w] = json.loads(out.decode())

    # the final board is either a valid record or detected-corrupt (the
    # torn-publisher may have won the last save); never decoded garbage
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        final = Leaderboard(path)
    want = {
        (m["config"]["w"], m["config"]["i"]): m["time_s"]
        for ms in written.values()
        for m in ms
    }
    for e in final.entries(KEY):
        k = (e["config"]["w"], e["config"]["i"])
        # every surviving entry is exactly one some worker measured
        assert want[k] == e["time_s"]
        assert k[0] != 7  # the lock-timeout worker's saves stayed in memory

    # the doctor puts the directory back together: quarantine what is torn,
    # sweep orphans, then report healthy
    subprocess.run(
        [sys.executable, FSCK, "--repair", "--tmp-age", "0", str(tmp_path)],
        env=repo_python_env,
        capture_output=True,
        timeout=60,
    )
    clean = subprocess.run(
        [sys.executable, FSCK, "--tmp-age", "0", str(tmp_path)],
        env=repo_python_env,
        capture_output=True,
        timeout=60,
    )
    assert clean.returncode == 0, clean.stdout.decode()


def test_clean_fleet_plus_fsck_reports_healthy(tmp_path, repo_python_env):
    """Without faults the same fleet leaves a store fsck finds spotless on
    the first pass — the crash-litter findings above really come from the
    armed faults, not from normal operation."""
    path = str(tmp_path / "board.json")
    src = repo_python_env["PYTHONPATH"].split(os.pathsep)[0]
    script = _WORKER.format(src=src, key=KEY)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(w), path],
            env=repo_python_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        for w in range(4)
    ]
    for p in procs:
        p.communicate(timeout=120)
        assert p.returncode == 0
    check = subprocess.run(
        [sys.executable, FSCK, "--tmp-age", "0", str(tmp_path)],
        env=repo_python_env,
        capture_output=True,
        timeout=60,
    )
    assert check.returncode == 0, check.stdout.decode()
    assert len(Leaderboard(path).entries(KEY)) == 12
