"""The checksummed atomic record store: round trips, torn-write detection,
quarantine, and the concurrent-staging discipline."""

from __future__ import annotations

import os
import threading

import pytest

from repro.guard.faults import inject
from repro.persist import (
    TRAILER_PREFIX,
    CorruptRecordError,
    quarantine_file,
    read_record,
    write_record,
    write_text_atomic,
)


def test_round_trip_and_trailer(tmp_path):
    path = str(tmp_path / "rec.json")
    payload = {"version": 1, "nested": {"a": [1, 2, 3]}, "t": "text"}
    write_record(path, payload)
    assert read_record(path) == payload
    lines = open(path).read().rstrip("\n").splitlines()
    assert lines[-1].startswith(TRAILER_PREFIX)
    # nothing left behind: no staging temp, no fixed .tmp sibling
    assert sorted(os.listdir(tmp_path)) == ["rec.json"]


def test_legacy_plain_json_still_loads(tmp_path):
    # the pre-persist-layer formats were raw JSON with no trailer
    path = str(tmp_path / "legacy.json")
    with open(path, "w") as f:
        f.write('{"version": 1, "boards": {}}')
    assert read_record(path) == {"version": 1, "boards": {}}


def test_flipped_byte_is_detected(tmp_path):
    path = str(tmp_path / "rec.json")
    write_record(path, {"v": 1})
    raw = bytearray(open(path, "rb").read())
    i = raw.index(b"1")
    raw[i : i + 1] = b"2"  # a plausible-looking JSON mutation, not garbage
    with open(path, "wb") as f:
        f.write(raw)
    with pytest.raises(CorruptRecordError, match="sha256"):
        read_record(path)


def test_truncation_is_detected(tmp_path):
    path = str(tmp_path / "rec.json")
    write_record(path, {"v": 1, "pad": "x" * 200})
    raw = open(path, "rb").read()
    with open(path, "wb") as f:
        f.write(raw[: len(raw) // 2])
    with pytest.raises(CorruptRecordError):
        read_record(path)


def test_non_json_garbage_is_detected_not_decoded(tmp_path):
    path = str(tmp_path / "rec.json")
    with open(path, "wb") as f:
        f.write(b"\x00\xffnot json at all")
    with pytest.raises(CorruptRecordError, match="not valid JSON"):
        read_record(path)


def test_missing_file_raises_oserror_not_corrupt(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_record(str(tmp_path / "absent.json"))


def test_quarantine_is_content_addressed_and_preserves_evidence(tmp_path):
    path = str(tmp_path / "bad.json")
    with open(path, "w") as f:
        f.write("torn bytes")
    dest = quarantine_file(path)
    assert dest and os.path.basename(dest).startswith("bad.json.corrupt-")
    assert not os.path.exists(path)
    assert open(dest).read() == "torn bytes"
    # re-detecting identical corruption collapses to the same evidence file
    with open(path, "w") as f:
        f.write("torn bytes")
    assert quarantine_file(path) == dest


def test_quarantine_of_a_vanished_file_returns_none(tmp_path):
    assert quarantine_file(str(tmp_path / "gone.json")) is None


@pytest.mark.chaos_tolerates("partial-write")
def test_partial_write_fault_publishes_a_torn_detectable_record(tmp_path):
    path = str(tmp_path / "rec.json")
    with inject("partial-write", times=1):
        write_record(path, {"v": 1, "pad": "y" * 500})
    with pytest.raises(CorruptRecordError):
        read_record(path)
    # the reader's protocol: preserve the evidence, start fresh
    dest = quarantine_file(path)
    assert dest and os.path.exists(dest) and not os.path.exists(path)


def test_overwrite_is_atomic_old_or_new(tmp_path):
    path = str(tmp_path / "rec.json")
    write_record(path, {"gen": 0})
    with inject("partial-write", times=1):
        write_record(path, {"gen": 1, "pad": "z" * 300})
    # the torn write replaced the record and must be *detected*; a reader
    # never silently decodes a hybrid of generations
    with pytest.raises(CorruptRecordError):
        read_record(path)


def test_concurrent_writers_on_one_path_never_collide(tmp_path):
    """Regression for the fixed-``.tmp``-sibling scheme: two writers staging
    at ``<path>.tmp`` raced (one ``os.replace`` wins, the other's staging
    file is gone → ``FileNotFoundError``).  ``mkstemp`` staging makes N
    concurrent writers safe: last publish wins, every intermediate state is
    a complete record, nothing is left behind."""
    path = str(tmp_path / "shared.json")
    errors = []

    def hammer(worker):
        try:
            for i in range(25):
                write_record(path, {"worker": worker, "i": i}, fsync=False)
        except BaseException as err:  # noqa: BLE001 - collect everything
            errors.append(err)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    final = read_record(path)
    assert final["i"] == 24  # some worker's last write, fully intact
    assert sorted(os.listdir(tmp_path)) == ["shared.json"]  # no .tmp orphans


def test_write_text_atomic_round_trip(tmp_path):
    path = str(tmp_path / "kernel.c")
    write_text_atomic(path, "int main(void) { return 0; }\n")
    assert open(path).read() == "int main(void) { return 0; }\n"
    assert sorted(os.listdir(tmp_path)) == ["kernel.c"]


def test_write_record_creates_parent_directories(tmp_path):
    path = str(tmp_path / "a" / "b" / "rec.json")
    write_record(path, {"v": 1}, fsync=False)
    assert read_record(path) == {"v": 1}
