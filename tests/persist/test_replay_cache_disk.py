"""The replay cache: true-LRU recency (the get() refresh regression) and
the persistent content-addressed disk tier."""

from __future__ import annotations

import glob
import os

from repro.api import ReplayCache, S
from repro.api.trace import state_hash
from repro.interp import check_equiv


def _sched():
    return S.divide_loop("i", 8, ["io", "ii"])


# -- true LRU ----------------------------------------------------------------


def test_get_refreshes_recency_so_hot_entries_survive(axpy):
    """Regression: eviction used to be FIFO-by-insertion — ``get`` never
    refreshed recency, so the *hottest* entry was evicted first whenever it
    was also the oldest insert."""
    cache = ReplayCache(maxsize=2)
    cache.put(axpy, "fp-a", axpy, None)
    cache.put(axpy, "fp-b", axpy, None)
    assert cache.get(axpy, "fp-a") is not None  # touch a: now b is the LRU
    cache.put(axpy, "fp-c", axpy, None)         # evicts b, not a
    assert cache.get(axpy, "fp-a") is not None
    assert cache.get(axpy, "fp-b") is None
    assert cache.get(axpy, "fp-c") is not None


def test_put_of_an_existing_key_refreshes_too(axpy):
    cache = ReplayCache(maxsize=2)
    cache.put(axpy, "fp-a", axpy, None)
    cache.put(axpy, "fp-b", axpy, None)
    cache.put(axpy, "fp-a", axpy, None)  # re-put: a becomes most recent
    cache.put(axpy, "fp-c", axpy, None)
    assert cache.get(axpy, "fp-b") is None
    assert cache.get(axpy, "fp-a") is not None


# -- the persistent tier -----------------------------------------------------


def test_disk_tier_hits_across_cache_instances(axpy, tmp_path):
    """A fresh cache object (= a fresh process: the key digests are
    process-stable) replays the stored trace instead of re-scheduling."""
    warm = ReplayCache(path=str(tmp_path))
    p1 = _sched().apply(axpy, cache=warm)
    assert warm.stats()["disk_writes"] == 1

    cold = ReplayCache(path=str(tmp_path))  # empty memory, same directory
    p2 = _sched().apply(axpy, cache=cold)
    s = cold.stats()
    assert s["disk_hits"] == 1 and s["hits"] == 1 and s["disk_errors"] == 0
    # the replayed result is the same transformation of the same kernel
    assert state_hash(p2) == state_hash(p1)
    assert check_equiv(axpy, p2, {"n": 64})
    # and now it is in memory: the next apply never touches the disk again
    _sched().apply(axpy, cache=cold)
    assert cold.stats()["disk_hits"] == 1 and cold.stats()["hits"] == 2


def test_records_are_sharded_and_content_addressed(axpy, tmp_path):
    cache = ReplayCache(path=str(tmp_path))
    _sched().apply(axpy, cache=cache)
    rec = cache.record_path(axpy, _sched().fingerprint())
    assert os.path.exists(rec)
    # sharded by the leading byte of the procedure digest
    assert os.path.basename(os.path.dirname(rec)) == state_hash(axpy)[:2]


def test_corrupt_disk_record_is_quarantined_and_recomputed(axpy, tmp_path):
    warm = ReplayCache(path=str(tmp_path))
    p1 = _sched().apply(axpy, cache=warm)
    rec = warm.record_path(axpy, _sched().fingerprint())
    with open(rec, "w") as f:
        f.write('{"version": 1, "trace": ')  # torn mid-write

    cold = ReplayCache(path=str(tmp_path))
    p2 = _sched().apply(axpy, cache=cold)
    s = cold.stats()
    assert s["disk_errors"] == 1 and s["disk_hits"] == 0 and s["misses"] == 1
    assert glob.glob(f"{rec}.corrupt-*")  # evidence preserved
    assert state_hash(p2) == state_hash(p1)  # recomputed correctly...
    assert s["disk_writes"] == 1  # ...and republished as a good record
    assert ReplayCache(path=str(tmp_path)).get(axpy, _sched().fingerprint()) is not None


def test_memory_only_cache_never_touches_disk(axpy):
    cache = ReplayCache()
    _sched().apply(axpy, cache=cache)
    assert "disk_hits" not in cache.stats()  # the documented memory-only shape
