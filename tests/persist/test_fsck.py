"""The repro_fsck doctor: finding classification, repair actions, purge."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

from repro.persist import FileLock, Journal, read_record, write_record

_TOOL = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "tools", "repro_fsck.py")
)
_spec = importlib.util.spec_from_file_location("repro_fsck", _TOOL)
fsck = importlib.util.module_from_spec(_spec)
sys.modules["repro_fsck"] = fsck  # dataclasses resolve annotations via here
_spec.loader.exec_module(fsck)


def _kinds(findings):
    return sorted(f.kind for f in findings)


@pytest.fixture
def damaged(tmp_path):
    """One directory exhibiting every damage class the doctor knows."""
    write_record(str(tmp_path / "good.json"), {"version": 1})
    with open(tmp_path / "bad.json", "w") as f:
        f.write('{"a": 1}\n#sha256:deadbeef')
    with open(tmp_path / ".stage-abc123.tmp", "w") as f:
        f.write("staged junk")
    open(tmp_path / "board.json.lock", "w").close()
    with open(tmp_path / "kernel.meta.json", "w") as f:
        f.write('{"v": 1}')  # no kernel.so next to it
    j = Journal(str(tmp_path / "ckpt.jsonl"))
    j.append({"a": 1})
    j.append({"b": 2})
    with open(tmp_path / "ckpt.jsonl", "a") as f:
        f.write('{"c": 3} #0000000000000000\n')
    return tmp_path


def test_scan_classifies_every_damage_class(damaged):
    findings = fsck.scan([str(damaged)], tmp_age_s=0)
    assert _kinds(findings) == [
        "corrupt-record",
        "lock-idle",
        "orphan-sidecar",
        "orphan-tmp",
        "torn-journal",
    ]
    assert all(f.repaired is None for f in findings)  # scan never mutates


def test_clean_record_and_paired_sidecar_pass(tmp_path):
    write_record(str(tmp_path / "k.meta.json"), {"v": 1})
    open(tmp_path / "k.so", "wb").close()
    assert fsck.scan([str(tmp_path)], tmp_age_s=0) == []


def test_exit_codes(damaged, tmp_path, capsys):
    assert fsck.main([str(damaged), "--tmp-age", "0"]) == 1
    clean = tmp_path / "empty"
    clean.mkdir()
    assert fsck.main([str(clean)]) == 0
    out = capsys.readouterr().out
    assert "problem(s)" in out


def test_repair_then_rescan_is_clean(damaged):
    repaired = fsck.scan([str(damaged)], tmp_age_s=0, repair=True)
    assert all(f.repaired for f in repaired if f.is_problem)
    again = fsck.scan([str(damaged)], tmp_age_s=0)
    assert not any(f.is_problem for f in again)
    # repair preserved evidence (quarantine) and the journal's intact entries
    assert any(f.kind == "quarantine-evidence" for f in again)
    assert Journal(str(damaged / "ckpt.jsonl")).entries() == [{"a": 1}, {"b": 2}]
    # and the good record was untouched
    assert read_record(str(damaged / "good.json")) == {"version": 1}


def test_purge_sweeps_evidence_and_idle_locks(damaged):
    fsck.scan([str(damaged)], tmp_age_s=0, repair=True)
    fsck.scan([str(damaged)], tmp_age_s=0, purge=True)
    left = sorted(os.listdir(damaged))
    assert left == ["ckpt.jsonl", "good.json"]


def test_held_lock_is_reported_and_never_purged(tmp_path):
    path = str(tmp_path / "board.json.lock")
    with FileLock(path, timeout_s=1.0):
        findings = fsck.scan([str(tmp_path)], purge=True)
        assert _kinds(findings) == ["lock-held"]
        assert os.path.exists(path)  # purge refused to touch a live lock


def test_fresh_tmp_files_are_not_flagged(tmp_path):
    open(tmp_path / ".stage-live.tmp", "w").close()
    assert fsck.scan([str(tmp_path)], tmp_age_s=3600) == []


def test_missing_path_is_informational(tmp_path):
    findings = fsck.scan([str(tmp_path / "nope")])
    assert _kinds(findings) == ["missing-path"]
    assert not findings[0].is_problem


def test_single_file_target(damaged):
    findings = fsck.scan([str(damaged / "bad.json")])
    assert _kinds(findings) == ["corrupt-record"]


# -- service state (sockets and request journals) ----------------------------


def _bind_socket(path):
    import socket

    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.bind(str(path))
    return s


def test_stale_socket_is_a_repairable_problem(tmp_path):
    sock = tmp_path / "service.sock"
    _bind_socket(sock).close()  # the file remains, nothing listens
    findings = fsck.scan([str(tmp_path)])
    assert _kinds(findings) == ["stale-socket"]
    assert findings[0].is_problem
    fsck.scan([str(tmp_path)], repair=True)
    assert not sock.exists()


def test_live_socket_is_informational_and_never_touched(tmp_path):
    sock = tmp_path / "service.sock"
    srv = _bind_socket(sock)
    srv.listen(1)
    try:
        findings = fsck.scan([str(tmp_path)], repair=True, purge=True)
        assert _kinds(findings) == ["socket-live"]
        assert not findings[0].is_problem
        assert sock.exists()
    finally:
        srv.close()


def test_orphaned_request_journal_is_informational_purged_only(tmp_path):
    j = Journal(str(tmp_path / "requests.jsonl"))
    j.append({"id": "r1", "request": "ping", "outcome": "ok"})
    findings = fsck.scan([str(tmp_path)])
    assert _kinds(findings) == ["orphan-request-journal"]
    assert not findings[0].is_problem
    # --repair keeps it (observability data); --purge sweeps it
    fsck.scan([str(tmp_path)], repair=True)
    assert (tmp_path / "requests.jsonl").exists()
    fsck.scan([str(tmp_path)], purge=True)
    assert not (tmp_path / "requests.jsonl").exists()


def test_request_journal_with_socket_sibling_is_not_an_orphan(tmp_path):
    j = Journal(str(tmp_path / "requests.jsonl"))
    j.append({"id": "r1", "request": "ping", "outcome": "ok"})
    srv = _bind_socket(tmp_path / "service.sock")
    srv.listen(1)
    try:
        kinds = _kinds(fsck.scan([str(tmp_path)]))
        assert "orphan-request-journal" not in kinds
    finally:
        srv.close()
