"""Concurrent leaderboards: merge-on-save semantics, the N-process
zero-lost-writes acceptance test, the fixed-``.tmp`` race regression, and
the lock-contention degradation path."""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import warnings

import pytest

from repro.guard import faults
from repro.guard.events import fallback_events
from repro.guard.faults import inject
from repro.persist import FileLock, read_record
from repro.tune.results import Leaderboard, _merge_entry
from repro.tune.runner import Measurement

KEY = "deadbeef/sched-fp/test-machine"


def _ok(w, t):
    return Measurement({"w": w}, time_s=t, repeats=1, status="ok")


# -- merge rules -------------------------------------------------------------


def test_merge_keeps_the_minimum_ok_time():
    a = _ok(1, 0.5).to_dict()
    b = _ok(1, 0.2).to_dict()
    assert _merge_entry(a, b)["time_s"] == 0.2
    assert _merge_entry(b, a)["time_s"] == 0.2


def test_merge_poison_wins_over_ok():
    ok = _ok(1, 0.2).to_dict()
    crash = Measurement({"w": 1}, status="crash", error="boom").to_dict()
    assert _merge_entry(ok, crash)["status"] == "crash"
    assert _merge_entry(crash, ok)["status"] == "crash"


def test_merge_ok_beats_plain_error():
    ok = _ok(1, 0.2).to_dict()
    err = Measurement({"w": 1}, status="error", error="refused").to_dict()
    assert _merge_entry(ok, err)["status"] == "ok"
    assert _merge_entry(err, ok)["status"] == "ok"


def test_merge_boards_recomputes_the_champion(tmp_path):
    board = Leaderboard()
    board.record(KEY, _ok(1, 0.5))
    other = Leaderboard()
    other.record(KEY, _ok(2, 0.1))
    board.merge(other.to_dict()["boards"])
    assert board.best(KEY)["config"] == {"w": 2}
    assert len(board.entries(KEY)) == 2


def test_two_boards_saving_to_one_path_lose_nothing(tmp_path):
    """The single-process distillation of merge-on-save: both boards loaded
    an empty file, both save — the second save must merge, not clobber."""
    path = str(tmp_path / "board.json")
    a = Leaderboard(path)
    b = Leaderboard(path)
    a.record(KEY, _ok(1, 0.5))
    b.record(KEY, _ok(2, 0.3))
    a.save()
    b.save()  # b never saw a's measurement in memory
    final = Leaderboard(path)
    assert {e["config"]["w"] for e in final.entries(KEY)} == {1, 2}
    assert final.best(KEY)["config"] == {"w": 2}


# -- the acceptance test: N=8 processes, zero lost writes --------------------

_WORKER = """
import sys
sys.path.insert(0, {src!r})
from repro.tune.results import Leaderboard
from repro.tune.runner import Measurement

worker = int(sys.argv[1])
path = sys.argv[2]
key = {key!r}
for i in range(5):
    board = Leaderboard(path, lock_timeout_s=30.0)   # fresh load each round
    m = Measurement({{"w": worker, "i": i}}, time_s=0.001 * (worker + 1) + i,
                    repeats=1, status="ok")
    board.record(key, m)
    board.save()                                     # interleaves with 7 peers
"""


def test_eight_concurrent_tuners_lose_zero_measurements(tmp_path, repo_python_env):
    """ISSUE 8 acceptance: 8 processes hammer one board path, each saving 5
    distinct measurements mid-stream; the final board equals the union."""
    path = str(tmp_path / "board.json")
    src = repo_python_env["PYTHONPATH"].split(os.pathsep)[0]
    script = _WORKER.format(src=src, key=KEY)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(w), path],
            env=repo_python_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        for w in range(8)
    ]
    for p in procs:
        out, err = p.communicate(timeout=120)
        assert p.returncode == 0, err.decode()
    final = Leaderboard(path)
    got = {(e["config"]["w"], e["config"]["i"]): e["time_s"] for e in final.entries(KEY)}
    want = {(w, i): 0.001 * (w + 1) + i for w in range(8) for i in range(5)}
    assert got == want  # every one of the 40 measurements survived
    assert final.best(KEY)["config"] == {"w": 0, "i": 0}
    # and the on-disk record is one intact checksummed file, no staging junk
    assert read_record(path)["version"] == 1
    leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
    assert leftovers == []


def test_threaded_saves_never_race_on_a_staging_name(tmp_path):
    """Regression for the old fixed-``<path>.tmp`` sibling: concurrent saves
    collided on the staging name and crashed with FileNotFoundError."""
    path = str(tmp_path / "board.json")
    errors = []

    def hammer(worker):
        try:
            for i in range(10):
                board = Leaderboard(path, lock_timeout_s=30.0)
                board.record(KEY, _ok(worker * 100 + i, 0.1 + worker))
                board.save()
        except BaseException as err:  # noqa: BLE001
            errors.append(err)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    final = Leaderboard(path)
    assert len(final.entries(KEY)) == 80  # all 8x10 distinct configs merged


# -- lock-contention degradation ---------------------------------------------


def test_wedged_lock_degrades_to_memory_with_a_fallback_event(tmp_path):
    path = str(tmp_path / "board.json")
    board = Leaderboard(path, lock_timeout_s=0.15)
    board.record(KEY, _ok(1, 0.5))
    wedge = FileLock(f"{path}.lock", timeout_s=5.0).acquire()
    try:
        with pytest.warns(RuntimeWarning, match="in memory only"):
            board.save()
    finally:
        wedge.release()
    assert not os.path.exists(path)  # nothing was published
    events = fallback_events(reason="lock-contention")
    assert len(events) == 1
    assert events[0].proc == "board.json"
    assert events[0].stage == "persist->memory"
    # the measurements stayed on the object: the next save publishes them
    board.save()
    assert Leaderboard(path).best(KEY)["config"] == {"w": 1}


@pytest.mark.chaos_tolerates("lock-timeout")
def test_lock_timeout_fault_exercises_the_same_path(tmp_path):
    path = str(tmp_path / "board.json")
    board = Leaderboard(path)
    board.record(KEY, _ok(1, 0.5))
    with inject("lock-timeout", times=1):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            board.save()
    assert not os.path.exists(path)
    assert fallback_events(reason="lock-contention")
    if "lock-timeout" not in faults.env_faults():
        board.save()  # fault consumed: publishes fine
        assert Leaderboard(path).best(KEY) is not None
