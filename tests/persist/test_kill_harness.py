"""The kill -9 harness: fork a victim, SIGKILL it at a persist site, and
prove every store reloads to the *old or new* state — never a torn hybrid."""

from __future__ import annotations

import glob
import multiprocessing
import os

import pytest

from repro.guard.faults import inject
from repro.persist import Journal, read_record, write_record
from repro.tune.results import Leaderboard
from repro.tune.runner import Measurement

mp_fork = multiprocessing.get_context("fork")


def _run_victim(fn, *args):
    p = mp_fork.Process(target=fn, args=args)
    p.start()
    p.join(60)
    assert not p.is_alive(), f"victim {fn.__name__} hung"
    return p.exitcode


# -- the record store --------------------------------------------------------


def _record_victim(path, kill_at):
    # publish generations 0, 1, 2, ... until the fault kills us mid-publish
    with inject("kill-mid-publish", skip=kill_at):
        for gen in range(kill_at + 5):
            write_record(path, {"gen": gen})
    os._exit(0)  # pragma: no cover - the fault must have fired


@pytest.mark.parametrize("kill_at", [0, 1, 3])
def test_record_survives_sigkill_mid_publish(tmp_path, kill_at):
    path = str(tmp_path / "rec.json")
    assert _run_victim(_record_victim, path, kill_at) == -9
    if kill_at == 0:
        # killed before the very first publish: no record, and that is a
        # *readable* absence, not a torn file
        assert not os.path.exists(path)
    else:
        # exactly the last completed generation — old state, fully intact
        assert read_record(path) == {"gen": kill_at - 1}
    # the victim died holding a staged temp: crash litter, never published
    orphans = glob.glob(str(tmp_path / ".stage-*.tmp"))
    assert len(orphans) <= 1


# -- the journal -------------------------------------------------------------


def _journal_victim(path, kill_at):
    j = Journal(path)
    with inject("kill-mid-publish", skip=kill_at):
        for i in range(kill_at + 5):
            j.append({"i": i})
    os._exit(0)  # pragma: no cover


@pytest.mark.parametrize("kill_at", [0, 2])
def test_journal_survives_sigkill_mid_append(tmp_path, kill_at):
    path = str(tmp_path / "log.jsonl")
    assert _run_victim(_journal_victim, path, kill_at) == -9
    j = Journal(path)
    got = j.entries()
    # the kill fires after the line's write() — the prefix through the fatal
    # append is intact, nothing after it exists, nothing is torn
    assert got == [{"i": i} for i in range(kill_at + 1)]
    assert j.torn == 0


# -- the leaderboard ---------------------------------------------------------

KEY = "deadbeef/fp/machine"


def _board_victim(path):
    board = Leaderboard(path)
    board.record(KEY, Measurement({"w": 1}, time_s=0.5, repeats=1))
    board.record(KEY, Measurement({"w": 2}, time_s=0.3, repeats=1))
    board.save()  # publish #1 completes
    board.record(KEY, Measurement({"w": 3}, time_s=0.1, repeats=1))
    with inject("kill-mid-publish"):
        board.save()  # publish #2 dies before os.replace
    os._exit(0)  # pragma: no cover


def test_leaderboard_reloads_to_the_last_published_state(tmp_path):
    path = str(tmp_path / "board.json")
    assert _run_victim(_board_victim, path) == -9
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any corruption warning = failure
        board = Leaderboard(path)
    assert {e["config"]["w"] for e in board.entries(KEY)} == {1, 2}
    assert board.best(KEY)["config"] == {"w": 2}
    assert not glob.glob(str(tmp_path / "*.corrupt-*"))  # nothing was torn


# -- partial writes (the other half of crash damage) -------------------------


@pytest.mark.chaos_tolerates("partial-write")
def test_partial_board_save_is_quarantined_on_reload(tmp_path):
    path = str(tmp_path / "board.json")
    board = Leaderboard(path)
    board.record(KEY, Measurement({"w": 1}, time_s=0.5, repeats=1))
    with inject("partial-write", times=1):
        board.save()
    with pytest.warns(RuntimeWarning, match="corrupt"):
        reloaded = Leaderboard(path)
    assert reloaded.boards == {}  # fresh start, not decoded nonsense
    assert glob.glob(str(tmp_path / "board.json.corrupt-*"))  # evidence kept
