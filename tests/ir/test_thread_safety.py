"""Concurrency regression tests for the epoch-free caching scheme.

The schedule service applies schedules on a thread pool, so every shared
structure it leans on is hammered here from real threads: concurrent
``Procedure`` edits (structural-hash memos, the compile cache, the rewrite
counters), the per-procedure edit epochs that replaced the old process-global
epoch, and the exact lock-guarded telemetry counters
(``exec_stats()`` / ``retry_stats()``)."""

from __future__ import annotations

import threading

import pytest

from repro.api import S, knob, seq
from repro.api.trace import state_hash
from repro.guard.events import clear_fallback_events, fallback_counts, record_fallback
from repro.guard.retry import reset_retry_stats, retry_stats, with_retry
from repro.interp import exec_stats
from repro.primitives import counter


def _run_threads(n, fn):
    errors = []
    barrier = threading.Barrier(n)

    def wrapped(i):
        try:
            barrier.wait()
            fn(i)
        except Exception as exc:  # noqa: BLE001
            errors.append((i, exc))

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors


# -- concurrent Procedure edits ----------------------------------------------


def test_concurrent_edits_of_one_procedure_are_race_free(axpy):
    """8 threads × 25 rounds of divide+unroll on the SAME base Procedure.

    Procedures are immutable values: every thread must get the exact result
    a single-threaded run gets, no torn trees, no cross-thread memo damage."""
    sched = lambda w: seq(  # noqa: E731
        S.divide_loop("i", 16, ["io", "ii"]),
        S.divide_loop("ii", w, ["iio", "iii"]),
        S.unroll_loop("iii"),
    )
    expected = {w: state_hash(sched(w).apply(axpy, {})) for w in (2, 4, 8)}

    def work(i):
        w = (2, 4, 8)[i % 3]
        for _ in range(25):
            out = sched(w).apply(axpy, {})
            assert state_hash(out) == expected[w]
            # the base is never perturbed by other threads' edits
            assert axpy.edit_epoch() == 0

    _run_threads(8, work)


def test_concurrent_knobbed_schedules_with_scoped_counters(axpy):
    """count_rewrites scopes are thread-local: a scope sees exactly its own
    thread's rewrites even while 7 other threads schedule concurrently."""
    sched = seq(
        S.divide_loop("i", 16, ["io", "ii"]),
        S.divide_loop("ii", knob("w", 4, choices=(2, 4, 8)), ["iio", "iii"]),
    )
    with counter.count_rewrites() as reference:
        sched.apply(axpy, {"w": 4})
    per_run = reference.total
    assert per_run > 0

    def work(i):
        for _ in range(10):
            with counter.count_rewrites() as scope:
                sched.apply(axpy, {"w": (2, 4, 8)[i % 3]})
            assert scope.total == per_run, (scope.total, per_run)

    _run_threads(8, work)


def test_edit_epochs_are_per_procedure(axpy, gemv):
    """Editing one procedure never perturbs another's epoch — the property
    the old process-global epoch could not provide."""
    assert axpy.edit_epoch() == 0 and gemv.edit_epoch() == 0
    out1, trace1 = S.divide_loop("i", 16, ["io", "ii"]).apply_traced(axpy, {})
    assert out1.edit_epoch() > 0
    assert axpy.edit_epoch() == 0  # the parent is untouched
    assert gemv.edit_epoch() == 0  # unrelated procedures are untouched

    # a derived procedure's epoch grows monotonically with further edits
    out2 = S.unroll_loop("ii").apply(out1, {})
    assert out2.edit_epoch() > out1.edit_epoch()


def test_structural_hash_memo_is_stable_across_threads(axpy):
    """state_hash answers must agree from every thread (the permanent
    ``_shash_cache`` memo can be filled by racing threads — same value)."""
    results = [None] * 8

    def work(i):
        results[i] = state_hash(axpy)

    _run_threads(8, work)
    assert len(set(results)) == 1


# -- exact telemetry counters ------------------------------------------------


def test_fallback_counts_are_exact_under_threaded_hammering():
    clear_fallback_events()
    try:
        per_thread, n = 500, 8

        def work(i):
            for _ in range(per_thread):
                record_fallback("p", "c->compiled", "stress-test")

        _run_threads(n, work)
        assert fallback_counts() == {"stress-test": per_thread * n}
        assert exec_stats()["fallbacks"] == {"stress-test": per_thread * n}
    finally:
        clear_fallback_events()


def test_retry_stats_are_exact_under_threaded_hammering():
    reset_retry_stats()
    try:
        per_thread, n = 100, 8

        def work(i):
            for _ in range(per_thread):
                attempts = [0]

                def flaky():
                    attempts[0] += 1
                    if attempts[0] == 1:
                        raise OSError("transient")
                    return "ok"

                assert (
                    with_retry(flaky, attempts=2, base_delay_s=0, label="stress") == "ok"
                )

        _run_threads(n, work)
        # exactly one retried attempt per with_retry call
        assert retry_stats() == {"stress": per_thread * n}
    finally:
        reset_retry_stats()


def test_global_rewrite_counter_is_exact_under_threads(axpy):
    counter.reset_global_count()
    try:
        with counter.count_rewrites() as ref:
            S.divide_loop("i", 16, ["io", "ii"]).apply(axpy, {})
        per_apply = ref.total
        counter.reset_global_count()
        per_thread, n = 20, 8

        def work(i):
            for _ in range(per_thread):
                S.divide_loop("i", 16, ["io", "ii"]).apply(axpy, {})

        _run_threads(n, work)
        assert counter.global_rewrite_count() == per_apply * per_thread * n
    finally:
        counter.reset_global_count()


# -- the compile cache -------------------------------------------------------


def test_concurrent_compilation_of_the_same_procedure(axpy):
    """Racing threads may both compile (the lock covers the map, not the
    compile) but every thread must get a working, consistent executable."""
    import numpy as np

    from repro.interp import run_proc

    def work(i):
        rng = np.random.default_rng(i)
        x = rng.standard_normal(64, dtype=np.float32)
        y = rng.standard_normal(64, dtype=np.float32)
        expect = y + 2.0 * x
        run_proc(axpy, n=64, a=np.float32(2.0), x=x, y=y)
        np.testing.assert_allclose(y, expect, rtol=1e-5)

    _run_threads(8, work)


def test_no_global_edit_epoch_remains():
    """The refactor's contract: no process-global mutation epoch anywhere in
    the IR layer (per-procedure epochs only)."""
    import repro.ir.nodes as nodes

    assert not hasattr(nodes, "mutation_epoch")
    assert not hasattr(nodes, "bump_mutation_epoch")
    assert not hasattr(nodes, "_mutation_epoch")
    assert hasattr(nodes, "edit_epoch") and hasattr(nodes, "set_edit_epoch")


# -- multicore par-loop execution under client concurrency -------------------


def test_concurrent_parallel_execution_keeps_exact_stats(axpy):
    """8 client threads each execute a compiled par kernel with threads=2:
    the par_for dispatches nest client concurrency over worker concurrency
    and the telemetry counters must stay exact (no lost or double counts)."""
    import numpy as np

    from repro.interp import clear_exec_stats, exec_stats, run_proc
    from repro.primitives import parallelize_loop

    par = parallelize_loop(axpy, "i")
    per_thread, n_threads = 5, 8
    clear_exec_stats()
    try:

        def work(i):
            rng = np.random.default_rng(i)
            for _ in range(per_thread):
                x = rng.standard_normal(257, dtype=np.float32)
                y = rng.standard_normal(257, dtype=np.float32)
                expect = y + np.float32(2.0) * x
                run_proc(par, n=257, a=np.float32(2.0), x=x, y=y,
                         backend="compiled", threads=2)
                np.testing.assert_allclose(y, expect, rtol=1e-5)

        _run_threads(n_threads, work)
        st = exec_stats()["parallel"]
        assert st["par_loops"] == per_thread * n_threads
        # client threads are top-level dispatchers, never nested workers
        assert st["serial_degrades"] == 0
    finally:
        clear_exec_stats()


def test_eight_clients_schedule_and_execute_par_kernels(tmp_path):
    """The full stack under contention: 8 clients hit one schedule service
    (whose workers apply blur's ``parallel("y")`` schedule) while each client
    simultaneously executes multicore par kernels in-process.  Zero lost
    replies, identical scheduled hashes, exact request counters, and every
    numeric result correct."""
    import asyncio
    import threading as _threading
    import time as _time

    import numpy as np

    from repro.interp import clear_exec_stats, exec_stats, run_proc
    from repro.primitives import parallelize_loop
    from repro.service import ScheduleService, ServiceClient

    service = ScheduleService(state_dir=str(tmp_path / "state"), scheduling_workers=4)
    loop = asyncio.new_event_loop()

    def serve():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start())
        loop.run_until_complete(service.serve_forever())
        loop.run_until_complete(asyncio.sleep(0.05))
        loop.close()

    server_thread = _threading.Thread(target=serve, daemon=True)
    server_thread.start()
    deadline = _time.monotonic() + 10
    while service._server is None:
        assert _time.monotonic() < deadline, "service did not start"
        _time.sleep(0.01)

    BLUR = {"ref": "repro.halide:make_blur"}
    BLUR_SCHED = {"ref": "repro.halide:blur_schedule"}

    from repro import proc_from_source

    dotp = parallelize_loop(
        proc_from_source(
            "def dot_stress(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, out: f32[1] @ DRAM):\n"
            "    for i in seq(0, n):\n"
            "        out[0] += x[i] * y[i]\n"
        ),
        "i",
    )

    n = 8
    results, errors = [None] * n, []
    clear_exec_stats()
    try:

        def worker(i):
            try:
                rng = np.random.default_rng(i)
                x = rng.uniform(-1, 1, 501).astype(np.float32)
                y = rng.uniform(-1, 1, 501).astype(np.float32)
                with ServiceClient(service.address()) as c:
                    sched = c.schedule(proc=BLUR, schedule=BLUR_SCHED)
                    outs = []
                    for t in (1, 2):
                        out = np.zeros(1, np.float32)
                        run_proc(dotp, 501, x, y, out, backend="compiled", threads=t)
                        outs.append(out[0])
                # reductions are bit-identical across thread counts even
                # while the service's workers contend for the pool
                assert outs[0] == outs[1], outs
                results[i] = sched["state_hash"]
            except Exception as exc:  # noqa: BLE001
                errors.append((i, exc))

        threads = [_threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert all(r is not None for r in results), "lost replies"
        assert len(set(results)) == 1, "clients saw divergent schedules"
        with ServiceClient(service.address()) as c:
            stats = c.stats()
        assert stats["requests"]["schedule"] == n
        assert stats["errors"] == 0
        st = exec_stats()["parallel"]
        assert st["par_loops"] == n * 2  # two thread settings per client
    finally:
        try:
            with ServiceClient(service.address(), timeout_s=5) as c:
                c.shutdown()
        except OSError:
            pass
        server_thread.join(timeout=10)
        clear_exec_stats()
