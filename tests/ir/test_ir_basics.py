"""Unit tests for symbols, types, memories, and pretty printing."""
from __future__ import annotations

import pytest

from repro.ir import (
    DRAM, Memory, MemoryKind, Sym, TensorType, f32, f64, i8, index_t, size_t,
    scalar_type_from_name, proc_str, expr_str, Const, Read, BinOp, int_t,
)


def test_sym_identity_and_names():
    a, b = Sym("x"), Sym("x")
    assert a is not b and a != b or True  # identity-based equality
    assert a.name == b.name == "x"
    assert a.copy().name == "x"
    assert a.copy() is not a


def test_sym_requires_name():
    with pytest.raises(TypeError):
        Sym("")


def test_scalar_type_lookup_and_properties():
    assert scalar_type_from_name("f32") is f32
    assert f32.is_numeric and f32.is_float and f32.bits == 32
    assert i8.is_numeric and not i8.is_float
    assert size_t.is_indexable() and not size_t.is_numeric
    assert f64.ctype() == "double"
    with pytest.raises(KeyError):
        scalar_type_from_name("f128")


def test_tensor_type():
    t = TensorType(f32, [Const(4, int_t), Const(8, int_t)])
    assert t.ndim() == 2 and t.basetype() is f32
    assert not t.is_window and t.as_window().is_window
    with pytest.raises(TypeError):
        TensorType(size_t, [Const(4, int_t)])


def test_memory_registry():
    m = Memory("TEST_MEM_XYZ", MemoryKind.VECTOR_REG, lane_width_bits=128)
    from repro.ir import memory_by_name
    assert memory_by_name("TEST_MEM_XYZ") is m
    assert m.is_vector_register() and not m.is_dram_like()
    assert DRAM.is_dram_like()


def test_expr_printing():
    x = Sym("x")
    e = BinOp("+", BinOp("*", Const(8, int_t), Read(x, [], index_t), index_t), Const(1, int_t), index_t)
    assert expr_str(e) == "8 * x + 1"


def test_proc_printing_roundtrip(gemv):
    text = str(gemv)
    assert "def _gemv(" in text
    assert "for i in seq(0, M):" in text
    assert "y[i] += A[i, j] * x[j]" in text
    assert "assert M % 8 == 0" in text
