"""Unit tests for the transactional edit engine (repro.ir.edit.EditSession)."""
from __future__ import annotations

import pytest

from repro import proc_from_source
from repro.cursors import is_invalid
from repro.ir import nodes as N
from repro.ir.edit import EditSession


@pytest.fixture
def p0():
    return proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
        "    for i in seq(0, n):\n"
        "        y[i] = 2.0\n"
    )


def test_insert_and_delete(p0):
    first = p0.find("for i in _: _")
    session = EditSession(p0)
    session.insert_stmts(first.after(), [N.Pass()])
    p = session.finish()
    assert "pass" in str(p)
    assert p.atomic_edit_count() == 1

    pass_cur = p.find("pass")
    session = EditSession(p)
    session.delete(pass_cur)
    p2 = session.finish()
    assert "pass" not in str(p2)
    # the statement after the deleted pass forwards back one slot
    second = p.find("for i in _: _", many=True)[1]
    assert p2.forward(second).is_valid()


def test_replace_forwards_inner(p0):
    loop = p0.find("for i in _: _")
    stmt = loop.body()[0]
    new_loop = N.For(
        loop.iter_sym(),
        N.Const(0, None),
        N.Const(4, None),
        [s for s in loop._node().body],
        "seq",
    )
    session = EditSession(p0)
    session.replace(loop, [new_loop], lambda off, rest: (off, rest))
    p = session.finish()
    fwd = p.forward(stmt)
    assert fwd.is_valid() and "x[i] = 1.0" in str(fwd)


def test_wrap(p0):
    loop = p0.find("for i in _: _")
    cond = N.BinOp(">", N.Read(p0._root.args[0].name, [], None), N.Const(0, None), None)

    session = EditSession(p0)
    session.wrap(loop, lambda stmts: N.If(cond, stmts, []))
    p = session.finish()
    assert "if n > 0:" in str(p)
    # the wrapped loop forwards into the wrapper's body
    fwd = p.forward(loop)
    assert fwd.is_valid() and "x[i] = 1.0" in str(fwd)


def test_move(p0):
    loops = p0.find("for i in _: _", many=True)
    session = EditSession(p0)
    # move the first loop after the second (post-removal gap index 1)
    session.move(loops[0], ((), "body", 1))
    p = session.finish()
    body = p._root.body
    assert "y[i]" in str(p.forward(loops[1]))
    assert "x[i]" in str(p.forward(loops[0]))
    assert body[0].body[0].name.name == "y"


def test_replace_expr_and_set_field(p0):
    rhs = p0.find("for i in _: _").body()[0].rhs()
    session = EditSession(p0)
    session.replace_expr(rhs, N.Const(7.0, None))
    session.set_field(p0.find("for i in _: _")._path, "pragma", "par")
    p = session.finish()
    assert "x[i] = 7.0" in str(p)
    assert p._root.body[0].pragma == "par"
    assert p.atomic_edit_count() == 2


def test_mid_session_cursor_forwarding(p0):
    """Cursors from the base procedure stay usable after earlier edits in the
    same session — the session forwards them through its partial trace."""
    first, second = p0.find("for i in _: _", many=True)
    session = EditSession(p0)
    session.insert_stmts(first.before(), [N.Pass()])
    # `second` was captured before the insertion shifted indices
    session.delete(second)
    p = session.finish()
    assert "y[i]" not in str(p)
    assert "pass" in str(p) and "x[i]" in str(p)


def test_finish_is_single_shot(p0):
    session = EditSession(p0)
    session.insert_stmts(((), "body", 0), [N.Pass()])
    session.finish()
    with pytest.raises(RuntimeError):
        session.finish()
    with pytest.raises(RuntimeError):
        session.insert_stmts(((), "body", 0), [N.Pass()])


def test_edit_trace_recorded_in_provenance(p0):
    session = EditSession(p0)
    session.insert_stmts(((), "body", 0), [N.Pass()])
    session.delete(((), "body", 0, 1))
    p = session.finish()
    trace = p.edit_trace()
    assert trace is not None and len(trace) == 2
    assert p.atomic_edit_count() == 2
    assert p0.edit_trace() is None and p0.atomic_edit_count() == 0


def test_atomic_edit_counter_scope(p0):
    from repro import divide_loop
    from repro.primitives import count_rewrites

    with count_rewrites() as ctr:
        divide_loop(p0, "i", 2, ["io", "ii"], tail="guard")
    assert ctr.total == 1
    assert ctr.atomic_edits >= 1
    assert ctr.atomic_by_primitive.get("divide_loop", 0) >= 1


def test_invalidated_mid_session_cursor_raises(p0):
    from repro.errors import InvalidCursorError

    first = p0.find("for i in _: _")
    stmt = first.body()[0]
    session = EditSession(p0)
    session.delete(first)
    with pytest.raises(InvalidCursorError):
        session.delete(stmt)
