"""Search-space construction and sampling (repro.tune.space)."""

from __future__ import annotations

import pytest

from repro.tune import GridSampler, Param, RandomSampler, Space, TuneError, successive_halving


def test_param_choices_and_ranges():
    assert Param("vec", (4, 8, 16)).values == (4, 8, 16)
    assert Param.range("i", 1, 5).values == (1, 2, 3, 4)
    assert Param.range("i", 0, 10, 3).values == (0, 3, 6, 9)
    assert Param.pow2("t", 16, 128).values == (16, 32, 64, 128)
    assert Param.pow2("t", 3, 13).values == (3, 6, 12)


def test_param_rejects_malformed_domains():
    with pytest.raises(TuneError):
        Param("x", ())
    with pytest.raises(TuneError):
        Param("x", (1, 1))
    with pytest.raises(TuneError):
        Param("", (1,))
    with pytest.raises(TuneError):
        Param.pow2("x", 0, 8)


def test_space_size_and_points():
    sp = Space(Param("a", (1, 2, 3)), Param("b", ("x", "y")))
    assert sp.size() == 6
    assert sp.names() == ["a", "b"]
    pts = [sp.point(i) for i in range(6)]
    assert pts == list(GridSampler().sample(sp))
    assert pts[0] == {"a": 1, "b": "x"}
    assert pts[-1] == {"a": 3, "b": "y"}
    with pytest.raises(TuneError):
        sp.point(6)


def test_space_from_mapping_and_kwargs():
    assert Space({"a": (1, 2)}).size() == 2
    assert Space(a=(1, 2), b=(3,)).size() == 2
    with pytest.raises(TuneError):
        Space(Param("a", (1,)), a=(2,))  # duplicate name


def test_empty_space_is_the_single_defaults_candidate():
    sp = Space()
    assert sp.size() == 1
    assert list(GridSampler().sample(sp)) == [{}]


def test_random_sampler_distinct_and_reproducible():
    sp = Space(a=range(10), b=range(10))
    a = list(RandomSampler(n=7, seed=3).sample(sp))
    b = list(RandomSampler(n=7, seed=3).sample(sp))
    assert a == b
    assert len({tuple(sorted(c.items())) for c in a}) == 7
    # n >= size degenerates to the grid
    small = Space(a=(1, 2))
    assert list(RandomSampler(n=99).sample(small)) == list(GridSampler().sample(small))


def test_successive_halving_prunes_to_the_winner():
    costs = {1: 5.0, 2: 1.0, 3: 4.0, 4: 2.0}
    evaluated = []

    def evaluate(cfgs, budget):
        evaluated.append((budget, [c["x"] for c in cfgs]))
        return [costs[c["x"]] for c in cfgs]

    best, rounds = successive_halving(
        [{"x": k} for k in costs], evaluate, min_budget=1, max_budget=4
    )
    assert best == {"x": 2}
    # budget doubles, pool halves
    assert [b for b, _ in evaluated] == [1, 2, 4]
    assert [len(xs) for _, xs in evaluated] == [4, 2, 1]


def test_successive_halving_prunes_failures_and_rejects_all_failed():
    best, _ = successive_halving(
        [{"x": 1}, {"x": 2}],
        lambda cfgs, b: [float("inf") if c["x"] == 1 else 1.0 for c in cfgs],
    )
    assert best == {"x": 2}
    with pytest.raises(TuneError):
        successive_halving([{"x": 1}], lambda cfgs, b: [float("inf")] * len(cfgs))
    with pytest.raises(TuneError):
        successive_halving([], lambda cfgs, b: [])
