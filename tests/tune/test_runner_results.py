"""Candidate evaluation and the persisted leaderboard (repro.tune)."""

from __future__ import annotations

import pytest

from repro.api import KnobError, ReplayCache, S, knob, seq
from repro.tune import (
    Leaderboard,
    Measurement,
    ScheduleRunner,
    TuneError,
    board_key,
    config_key,
    evaluate_parallel,
    evaluate_spec,
    machine_id,
    split_prefix,
)


def _knobbed_seq():
    """divide twice: a knob-free prefix step and a knobbed suffix step."""
    return seq(
        S.divide_loop("i", 16, ["io", "ii"]),
        S.divide_loop("ii", knob("w", 8, choices=(2, 4, 8)), ["iio", "iii"]),
    )


def test_split_prefix_cuts_before_the_first_swept_step():
    sched = _knobbed_seq()
    prefix, suffix = split_prefix(sched, ["w"])
    assert prefix is not None and len(prefix.steps) == 1
    assert len(suffix.steps) == 1
    # nothing to split when the sweep hits the first step or no knob is swept
    assert split_prefix(sched, [])[0] is None
    assert split_prefix(sched.steps[1], ["w"])[0] is None
    first_knobbed = seq(S.divide_loop("i", knob("w", 8), ["io", "ii"]), S.simplify())
    assert split_prefix(first_knobbed, ["w"])[0] is None


def test_runner_times_and_shares_the_prefix(axpy):
    cache = ReplayCache()
    runner = ScheduleRunner(
        axpy, _knobbed_seq(), {"n": 256}, repeats=1, cache=cache, swept=["w"]
    )
    ms = runner.evaluate_many([{"w": 2}, {"w": 4}, {"w": 8}])
    assert all(m.ok and m.time_s > 0 for m in ms)
    assert all(m.compile_stats is not None for m in ms)
    # the knob-free prefix ran once and hit for the two later candidates
    assert cache.hits >= 2


def test_runner_prunes_scheduling_failures_but_raises_knob_errors(axpy):
    # unroll_loop needs a constant-bound loop; 'i' runs to symbolic n
    runner = ScheduleRunner(axpy, S.unroll_loop("i"), {"n": 64}, repeats=1)
    m = runner.evaluate({})
    assert not m.ok and m.status == "error" and m.error
    assert m.score == float("inf")

    knobbed = ScheduleRunner(axpy, _knobbed_seq(), {"n": 256}, repeats=1)
    with pytest.raises(KnobError):
        knobbed.evaluate({"w": 3})  # 3 is outside the knob's declared choices


def test_runner_prunes_runtime_failures_too():
    # scheduling succeeds, but the kernel's precondition fails at run time:
    # the candidate must score as an error, not abort the tune
    from repro.api import S
    from repro.frontend.decorators import proc_from_source

    p = proc_from_source(
        "def g(n: size, x: f32[n] @ DRAM):\n"
        "    assert n % 16 == 0\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
    )
    m = ScheduleRunner(p, S.simplify(), {"n": 30}, repeats=1).evaluate({})
    assert not m.ok and m.status == "error"
    assert m.score == float("inf")


def test_runner_rejects_non_schedule_inputs(axpy):
    with pytest.raises(TuneError):
        ScheduleRunner(axpy, object(), {"n": 8})
    with pytest.raises(TuneError):
        ScheduleRunner(object(), S.simplify(), {"n": 8})


def test_measurement_roundtrip():
    m = Measurement({"w": 4}, time_s=0.5, repeats=3, compile_stats={"vector_loops": 1})
    assert Measurement.from_dict(m.to_dict()).to_dict() == m.to_dict()
    bad = Measurement({"w": 2}, status="error", error="nope")
    assert not bad.ok and bad.score == float("inf")


def test_leaderboard_records_minima_and_persists(tmp_path, axpy):
    path = tmp_path / "board.json"
    lb = Leaderboard(str(path))
    key = board_key(axpy, _knobbed_seq())
    lb.record(key, Measurement({"w": 4}, time_s=2.0, repeats=1))
    lb.record(key, Measurement({"w": 4}, time_s=1.0, repeats=1))  # improves
    lb.record(key, Measurement({"w": 4}, time_s=3.0, repeats=1))  # ignored
    lb.record(key, Measurement({"w": 8}, status="error", error="x"))
    lb.save()

    fresh = Leaderboard(str(path))
    assert fresh.best(key)["config"] == {"w": 4}
    assert fresh.best(key)["time_s"] == 1.0
    assert fresh.stats(key) == {
        "configs": 2,
        "ok": 1,
        "errors": 1,
        "poisoned": 0,
        "best": fresh.best(key),
    }
    # the machine id is baked into the key
    assert key.endswith(machine_id())


def test_leaderboard_quarantines_corrupt_and_future_files(tmp_path):
    # a truncated write from a killed tune must not brick every future tune:
    # the bad file is renamed aside (evidence preserved) and the board starts
    # fresh, with a warning
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.warns(RuntimeWarning, match="corrupt"):
        lb = Leaderboard(str(bad))
    assert lb.boards == {}
    assert not bad.exists()
    quarantined = list(tmp_path.glob("bad.json.corrupt-*"))
    assert len(quarantined) == 1
    assert quarantined[0].read_text() == "{not json"

    future = tmp_path / "future.json"
    future.write_text('{"version": 99, "boards": {}}')
    with pytest.warns(RuntimeWarning, match="version"):
        lb = Leaderboard(str(future))
    assert lb.boards == {}
    assert list(tmp_path.glob("future.json.corrupt-*"))

    # the fresh board saves over the old path normally afterwards
    lb.record("k", Measurement({"w": 2}, time_s=1.0, repeats=1))
    lb.save()
    assert Leaderboard(str(future)).best("k")["config"] == {"w": 2}


def test_leaderboard_poison_list():
    lb = Leaderboard()
    lb.record("k", Measurement({"w": 4}, time_s=1.0, repeats=1))
    lb.record("k", Measurement({"w": 8}, status="crash", error="SIGSEGV"))
    lb.record("k", Measurement({"w": 2}, status="timeout", error="hung"))
    lb.record("k", Measurement({"w": 16}, status="error", error="refused"))
    assert lb.poisoned("k") == {config_key({"w": 8}), config_key({"w": 2})}
    assert lb.is_poisoned("k", {"w": 8}) and not lb.is_poisoned("k", {"w": 16})
    assert lb.stats("k")["poisoned"] == 2

    # a crash overrides an earlier ok for the same config — and evicts it
    # from the championship
    assert lb.best("k")["config"] == {"w": 4}
    lb.record("k", Measurement({"w": 4}, status="crash", error="boom"))
    assert lb.is_poisoned("k", {"w": 4})
    assert lb.best("k") is None


def test_evaluate_spec_builds_from_importable_references():
    out = evaluate_spec(
        {
            "proc": "repro.blas:LEVEL1_KERNELS",
            "proc_args": ["saxpy"],
            "schedule": "repro.blas:level1_schedule",
            "config": {"interleave": 2},
            "size_env": {"n": 1024},
            "repeats": 1,
        }
    )
    assert out["status"] == "ok" and out["time_s"] > 0

    knob_err = evaluate_spec(
        {
            "proc": "repro.blas:LEVEL1_KERNELS",
            "proc_args": ["saxpy"],
            "schedule": "repro.blas:level1_schedule",
            "config": {"no_such_knob": 1},
            "size_env": {"n": 64},
            "repeats": 1,
        }
    )
    assert knob_err["status"] == "knob-error"


def test_board_key_is_stable_across_processes(axpy):
    # the persisted leaderboard's whole point: the key must not depend on
    # per-process hash randomization
    import os
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    key = board_key(axpy, _knobbed_seq(), "M")
    code = (
        "import sys; sys.path.insert(0, 'tests')\n"
        "from conftest import _axpy\n"
        "from repro.api import S, knob, seq\n"
        "from repro.tune import board_key\n"
        "s = seq(S.divide_loop('i', 16, ['io', 'ii']),\n"
        "        S.divide_loop('ii', knob('w', 8, choices=(2, 4, 8)), ['iio', 'iii']))\n"
        "print(board_key(_axpy, s, 'M'))\n"
    )
    for seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=str(repo / "src"))
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, cwd=str(repo), env=env,
        )
        assert out.stdout.strip() == key


def test_evaluate_parallel_survives_a_worker_crash():
    # a candidate that kills its worker outright (os._exit) must cost only
    # its own measurement, not the sweep
    ms = evaluate_parallel(
        {"proc": "os:_exit", "proc_args": [3], "schedule": "repro.blas:level1_schedule"},
        [{"interleave": 1}, {"interleave": 2}],
        max_workers=2,
    )
    assert len(ms) == 2
    assert all(m.status == "crash" and "crashed" in m.error for m in ms)
    assert all(m.score == float("inf") for m in ms)


def test_evaluate_parallel_isolates_candidates_and_reraises_knob_errors():
    base = {
        "proc": "repro.blas:LEVEL1_KERNELS",
        "proc_args": ["saxpy"],
        "schedule": "repro.blas:level1_schedule",
        "size_env": {"n": 1024},
        "repeats": 1,
    }
    ms = evaluate_parallel(base, [{"interleave": 1}, {"interleave": 2}], max_workers=2)
    assert [m.config for m in ms] == [{"interleave": 1}, {"interleave": 2}]
    assert all(m.ok for m in ms)
    with pytest.raises(KnobError):
        evaluate_parallel(base, [{"bogus": 1}], max_workers=1)
