"""The end-to-end tuner: search strategies, warm starts, knob edge cases."""

from __future__ import annotations

import pytest

from repro.api import KnobError, ReplayCache, S, knob, seq
from repro.interp import check_equiv
from repro.tune import Leaderboard, Param, Space, TuneError, Tuner, autotune


def _sched():
    return seq(
        S.divide_loop("i", 16, ["io", "ii"]),
        S.divide_loop("ii", knob("w", 8, choices=(2, 4, 8)), ["iio", "iii"]),
    )


def _space():
    return Space(Param("w", (2, 4, 8)))


def test_grid_tune_finds_a_best_config_and_counts_cache_hits(axpy):
    cache = ReplayCache()
    tuner = Tuner(axpy, _sched(), _space(), {"n": 256}, repeats=1, cache=cache)
    result = tuner.tune("grid")
    assert result.best.ok
    assert result.best_config["w"] in (2, 4, 8)
    # the defaults always compete, so tuned can never lose to them
    assert result.best.time_s <= result.default.time_s
    assert result.speedup_vs_default() >= 1.0
    # replay-cache hit counting across the sweep: the knob-free prefix is
    # applied once and hit by every other candidate
    assert result.cache_stats["hits"] >= 2
    assert result.cache_stats == cache.stats()
    # the tuned procedure still computes the same function
    assert check_equiv(axpy, tuner.runner.scheduled(result.best_config), {"n": 256})


def test_empty_space_degenerates_to_measuring_the_defaults(axpy):
    result = Tuner(axpy, _sched(), Space(), {"n": 64}, repeats=1).tune("grid")
    assert len(result.measurements) == 1
    assert result.best.config == result.default.config == {"w": 8}
    assert result.speedup_vs_default() == 1.0


def test_single_point_space(axpy):
    result = Tuner(axpy, _sched(), Space(Param("w", (4,))), {"n": 64}, repeats=1).tune("grid")
    # two candidates: the defaults (w=8) and the single point (w=4)
    assert len(result.measurements) == 2
    assert {m.config["w"] for m in result.measurements} == {4, 8}


def test_invalid_choice_mid_sweep_raises_knob_error(axpy):
    # 3 is not among the knob's declared choices: the sweep must blow up,
    # not score the candidate as a prunable failure
    space = Space(Param("w", (2, 3, 4)))
    with pytest.raises(KnobError):
        Tuner(axpy, _sched(), space, {"n": 64}, repeats=1).tune("grid")


def test_unknown_space_param_raises_knob_error_up_front(axpy):
    with pytest.raises(KnobError, match="does not declare"):
        Tuner(axpy, _sched(), Space(Param("nope", (1, 2))), {"n": 64})


def test_scheduling_failures_are_pruned_not_fatal(gemv):
    # gemv asserts M % 8 == 0, so perfect division by 8 is provable and by 7
    # is not: the w=7 candidate fails scheduling and must be pruned while the
    # sweep carries on to the w=8 winner
    sched = seq(S.divide_loop("i", knob("w", 8), ["io", "ii"], perfect=True))
    result = Tuner(
        gemv, sched, Space(Param("w", (7, 8))), {"M": 16, "N": 8}, repeats=1
    ).tune("grid")
    assert result.best.ok and result.best_config == {"w": 8}
    failed = [m for m in result.measurements if not m.ok]
    assert len(failed) == 1 and failed[0].config == {"w": 7}


def test_all_candidates_failing_is_a_tune_error(axpy):
    # perfect division of the symbolic n is never provable: every candidate
    # fails scheduling, which the tuner reports as a TuneError
    sched = seq(S.divide_loop("i", knob("w", 8), ["io", "ii"], perfect=True))
    with pytest.raises(TuneError, match="no successful measurement"):
        Tuner(axpy, sched, Space(Param("w", (7, 8))), {"n": 64}, repeats=1).tune("grid")


def test_halving_reports_the_defaults_own_best_run(axpy):
    # the default config may be measured at several budgets; `default` must
    # be its own minimum so best vs default compares within one pool
    result = Tuner(axpy, _sched(), _space(), {"n": 256}, repeats=3).tune(
        "halving", min_budget=1
    )
    default_runs = [
        m for m in result.measurements if m.ok and m.config == result.default.config
    ]
    assert result.default.time_s == min(m.time_s for m in default_runs)
    assert result.best.time_s <= result.default.time_s


def test_halving_search_reevaluates_survivors_through_the_cache(axpy):
    cache = ReplayCache()
    tuner = Tuner(axpy, _sched(), _space(), {"n": 256}, repeats=2, cache=cache)
    result = tuner.tune("halving", min_budget=1)
    assert result.best.ok
    assert result.rounds, "halving must report its rounds"
    budgets = [r["budget"] for r in result.rounds]
    assert budgets == sorted(budgets)
    # the surviving configs re-applied the full schedule: guaranteed hits
    assert result.cache_stats["hits"] > 0


def test_random_search_bounds_the_candidate_count(axpy):
    space = Space(Param("w", (2, 4, 8)))
    result = Tuner(axpy, _sched(), space, {"n": 64}, repeats=1).tune("random", n=2, seed=1)
    # n sampled points + defaults (minus dedup overlap)
    assert 2 <= len(result.measurements) <= 3


def test_leaderboard_warm_start_seeds_the_candidates(tmp_path, axpy):
    path = str(tmp_path / "board.json")
    first = Tuner(axpy, _sched(), _space(), {"n": 256}, repeats=1,
                  leaderboard=Leaderboard(path)).tune("grid")

    warm = Tuner(axpy, _sched(), _space(), {"n": 256}, repeats=1,
                 leaderboard=Leaderboard(path))
    cands = warm.candidates("grid")
    # defaults first, then the persisted champion (deduplicated if they agree)
    assert cands[0] == {"w": 8}
    assert first.best_config in cands[:2]
    # and the champion's presence survives a fresh tune
    again = warm.tune("grid")
    assert again.best.ok


def test_autotune_one_call(axpy):
    result = autotune(axpy, _sched(), Space(Param("w", (4, 8))), {"n": 64}, repeats=1)
    assert result.best.ok and len(result.measurements) >= 2
