"""Forwarding composition across long primitive chains.

A cursor captured against version 0 and forwarded to version N must land on
the same node a fresh ``find`` locates in version N — for every chain of
primitives, since the edit engine derives each step's forwarding function from
the same atomic edits that produced the rewritten AST.  Deliberate
invalidation cases (deleted statements) must forward to ``InvalidCursor``.
"""
from __future__ import annotations

import pytest

from repro import (
    bind_expr,
    delete_buffer,
    delete_pass,
    divide_loop,
    fission,
    inline_assign,
    insert_pass,
    lift_scope,
    proc_from_source,
    reorder_loops,
    reorder_stmts,
    stage_mem,
    unroll_loop,
)
from repro.cursors import InvalidCursor, is_invalid


def _fresh_matches(p, pattern):
    return p.find(pattern, many=True)


def _assert_lands_on_fresh(p, fwd, pattern):
    """The forwarded cursor must coincide with one of the cursors a fresh
    pattern search locates in the new version."""
    assert fwd.is_valid(), f"cursor for {pattern!r} was unexpectedly invalidated"
    fresh = _fresh_matches(p, pattern)
    assert any(fwd == c for c in fresh), (
        f"forwarded cursor for {pattern!r} does not match any fresh find:\n"
        f"  forwarded: {fwd!r}\n  fresh: {fresh!r}"
    )


# ---------------------------------------------------------------------------
# chains on gemv: divide -> reorder -> stage (bind_expr) -> unroll ...
# ---------------------------------------------------------------------------

# each entry is (steps applied in order, landmark patterns that survive the
# chain); the landmarks are captured as cursors on v0 and the forwarded
# cursors are checked against a fresh find on vN
GEMV_CHAINS = [
    # divide -> reorder
    (
        [
            lambda p: divide_loop(p, "i", 8, ["io", "ii"], perfect=True),
            lambda p: reorder_loops(p, "ii"),
        ],
        ["y[_] += _", "for j in _: _"],
    ),
    # divide -> reorder -> stage -> unroll (the running example of the issue)
    (
        [
            lambda p: divide_loop(p, "i", 8, ["io", "ii"], perfect=True),
            lambda p: reorder_loops(p, "ii"),
            lambda p: bind_expr(p, "x[_]", "x_tmp"),
            lambda p: unroll_loop(p, "ii"),
        ],
        ["y[_] += _", "for j in _: _"],
    ),
    # double divide -> lift (interchange); the j loop itself is divided away
    (
        [
            lambda p: divide_loop(p, "i", 8, ["io", "ii"], perfect=True),
            lambda p: divide_loop(p, "j", 8, ["jo", "ji"], perfect=True),
            lambda p: lift_scope(p, "jo"),
        ],
        ["y[_] += _"],
    ),
    # divides with guard tails (statements nest under new Ifs)
    (
        [
            lambda p: divide_loop(p, "i", 4, ["io", "ii"], tail="guard"),
            lambda p: divide_loop(p, "j", 4, ["jo", "ji"], tail="guard"),
        ],
        ["y[_] += _"],
    ),
    # stage through a temporary (the reduction is redirected), then tile the
    # staged loop; the enclosing i loop is the stable landmark
    (
        [
            lambda p: stage_mem(p, "for j in _: _", "y[i]", "y_tmp"),
            lambda p: divide_loop(p, "j", 8, ["jo", "ji"], perfect=True),
        ],
        ["for i in _: _"],
    ),
]


@pytest.mark.parametrize("chain,landmarks", GEMV_CHAINS, ids=range(len(GEMV_CHAINS)))
def test_gemv_chain_forwarding_matches_fresh_find(gemv, chain, landmarks):
    cursors = {pat: gemv.find(pat) for pat in landmarks}
    p = gemv
    for step in chain:
        p = step(p)
    for pat, c0 in cursors.items():
        fwd = p.forward(c0)
        _assert_lands_on_fresh(p, fwd, pat)


def test_chain_forwarding_is_transitive(gemv):
    """Forwarding v0 -> vN directly equals forwarding v0 -> vk -> vN."""
    c0 = gemv.find("y[_] += _")
    p1 = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    c1 = p1.forward(c0)
    p2 = reorder_loops(p1, "ii")
    p3 = bind_expr(p2, "x[_]", "x_tmp")
    direct = p3.forward(c0)
    stepped = p3.forward(c1)
    assert direct == stepped


def test_expression_cursor_forwarding(gemv):
    ax = gemv.find("A[_] * x[_]")
    p = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    p = divide_loop(p, "j", 8, ["jo", "ji"], perfect=True)
    fwd = p.forward(ax)
    _assert_lands_on_fresh(p, fwd, "A[_] * x[_]")


def test_block_and_gap_cursor_forwarding(stages):
    loops = stages.find("for i in _: _", many=True)
    block = loops[0].expand()  # the whole top-level body as a block
    gap = loops[0].after()
    p = divide_loop(stages, "i", 4, ["io", "ii"], tail="guard")
    fwd_block = p.forward(block)
    fwd_gap = p.forward(gap)
    assert fwd_block.is_valid() and len(fwd_block) == len(block)
    assert fwd_gap.is_valid()
    # the gap still separates the two (now divided) loops
    assert fwd_gap.stmt_before().is_valid() and fwd_gap.stmt_after().is_valid()


def test_fission_then_tile_forwarding():
    p0 = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
        "        y[i] = x[i]\n"
    )
    first = p0.find("x[_] = _")
    second = p0.find("y[_] = _")
    p = fission(p0, first.after())
    p = divide_loop(p, "i", 4, ["io", "ii"], tail="guard")
    _assert_lands_on_fresh(p, p.forward(first), "x[_] = _")
    _assert_lands_on_fresh(p, p.forward(second), "y[_] = _")


# ---------------------------------------------------------------------------
# deliberate invalidation
# ---------------------------------------------------------------------------


def test_deleted_pass_invalidates_cursor(gemv):
    loop = gemv.find_loop("j")
    p = insert_pass(gemv, loop.body().before())
    pass_cur = p.find("pass")
    p2 = delete_pass(p)
    fwd = p2.forward(pass_cur)
    assert isinstance(fwd, InvalidCursor) and is_invalid(fwd)
    # the other landmarks survive the deletion
    _assert_lands_on_fresh(p2, p2.forward(loop), "for j in _: _")


def test_inlined_assign_invalidates_cursor():
    p0 = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM):\n"
        "    t: f32 @ DRAM\n"
        "    t = 2.0\n"
        "    for i in seq(0, n):\n"
        "        x[i] = t\n"
    )
    assign = p0.find("t = _")
    p = inline_assign(p0, assign)
    assert is_invalid(p.forward(assign))


def test_deleted_buffer_invalidates_cursor():
    p0 = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM):\n"
        "    dead: f32 @ DRAM\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
    )
    alloc = p0.find("dead: _")
    p = delete_buffer(p0, alloc)
    assert is_invalid(p.forward(alloc))


def test_reorder_stmts_swaps_cursors():
    p0 = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
        "    for i in seq(0, n):\n"
        "        y[i] = 2.0\n"
    )
    a, b = p0.find("for i in _: _", many=True)
    p = reorder_stmts(p0, a, b)
    fa, fb = p.forward(a), p.forward(b)
    assert "x[i] = 1.0" in str(fa) and "y[i] = 2.0" in str(fb)
    # chains keep composing after the swap
    p2 = divide_loop(p, fa, 2, ["io", "ii"], tail="guard")
    fa2 = p2.forward(a)
    assert fa2.is_valid() and "x[" in str(fa2) and "y[" not in str(fa2)
