"""Property-based tests (hypothesis) on core invariants."""
from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import divide_loop, simplify
from repro.analysis import FactEnv, linearize, linear_to_expr, simplify_expr
from repro.frontend.parser import parse_expr_fragment
from repro.interp import run_proc
from repro.ir import expr_str


def _axpy():
    from repro import proc_from_source
    return proc_from_source(
        "def axpy_prop(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        y[i] += a * x[i]\n"
    )


AXPY = _axpy()


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 64), factor=st.integers(1, 9),
       tail=st.sampled_from(["cut", "guard", "cut_and_guard"]))
def test_divide_loop_always_preserves_semantics(n, factor, tail):
    p = divide_loop(AXPY, "i", factor, ["io", "ii"], tail=tail)
    rng = np.random.default_rng(n * 31 + factor)
    x = rng.uniform(-1, 1, n).astype(np.float32)
    y0 = rng.uniform(-1, 1, n).astype(np.float32)
    y1, y2 = y0.copy(), y0.copy()
    run_proc(AXPY, n=n, a=0.5, x=x, y=y1)
    run_proc(p, n=n, a=0.5, x=x, y=y2)
    assert np.allclose(y1, y2, rtol=1e-5)


_EXPR_ENV = {"M": st.integers(0, 100), "N": st.integers(0, 100)}


@settings(max_examples=40, deadline=None)
@given(a=st.integers(-5, 5), b=st.integers(-5, 5), c=st.integers(1, 6),
       m=st.integers(0, 50), n=st.integers(0, 50))
def test_simplify_preserves_value(a, b, c, m, n):
    from repro import proc_from_source
    gemv = proc_from_source(
        "def g(M: size, N: size, A: f32[M, N] @ DRAM):\n    for i in seq(0, M):\n        A[i, 0] = 0.0\n"
    )
    src = f"({a} * M + {b} * N + {c}) * 2 + (M + N) - M"
    e = parse_expr_fragment(src, gemv._root)
    simplified = simplify_expr(e, FactEnv.from_proc(gemv._root))

    def ev(expr, env):
        from repro.interp.interpreter import _Interp
        it = _Interp()
        syms = {arg.name.name: arg.name for arg in gemv._root.args}
        return it.eval_expr(expr, {syms["M"]: m, syms["N"]: n})

    assert ev(e, None) == ev(simplified, None)


@settings(max_examples=30, deadline=None)
@given(m=st.integers(1, 40), n=st.integers(1, 40))
def test_linearize_roundtrip(m, n):
    from repro import proc_from_source
    g = proc_from_source(
        "def g(M: size, N: size, A: f32[M, N] @ DRAM):\n    for i in seq(0, M):\n        A[i, 0] = 0.0\n"
    )
    e = parse_expr_fragment("3 * M + 2 * N + M * N + 7", g._root)
    rebuilt = linear_to_expr(linearize(e))
    from repro.interp.interpreter import _Interp
    it = _Interp()
    syms = {arg.name.name: arg.name for arg in g._root.args}
    env = {syms["M"]: m, syms["N"]: n}
    assert it.eval_expr(e, env) == it.eval_expr(rebuilt, env)
