"""Property-based tests for ``par``-loop legality and determinism.

Randomized affine loop nests are drawn from two families:

* **known-legal** — same-affine-index maps (possibly with shifted *reads*)
  and pure ``+=`` reductions.  ``parallelize_loop`` must accept them and the
  parallel compiled run must match the sequential oracle at every thread
  count (bit-identical across thread counts for reductions).
* **known-illegal** — cross-iteration RAW (scan), invariant-cell overwrite
  (WAW), and shifted-write WAR nests.  ``parallelize_loop`` must reject
  every one; safety is an analysis property, never a runtime accident.
"""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import proc_from_source
from repro.errors import SchedulingError
from repro.interp import run_proc
from repro.primitives import parallelize_loop

_uid = [0]


def _mk(body_lines, sig):
    """A fresh procedure from a generated body (unique name per draw)."""
    _uid[0] += 1
    src = f"def prop_{_uid[0]}({sig}):\n" + "".join(
        f"    {ln}\n" for ln in body_lines
    )
    return proc_from_source(src)


def _vec_args(n, seed, extra=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, n + extra).astype(np.float32)
    y = rng.uniform(-1, 1, n + extra).astype(np.float32)
    return x, y


# ---------------------------------------------------------------------------
# Legal family: maps
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(3, 97),
    c=st.integers(-4, 4),
    shift=st.integers(0, 2),
    threads=st.sampled_from([2, 8]),
)
def test_affine_maps_parallelize_and_match_sequential(n, c, shift, threads):
    # y[i] = x[i - shift] * c + y[i]  over seq(shift, n): the write index is
    # the iterator itself, reads may lag behind it — always race-free
    p = _mk(
        [
            f"for i in seq({shift}, n):",
            f"    y[i] = x[i - {shift}] * {float(c)} + y[i]",
        ],
        "n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM",
    )
    par = parallelize_loop(p, "i")

    x, y_seq = _vec_args(n, seed=n * 131 + c)
    y_par = y_seq.copy()
    run_proc(p, n, x, y_seq, backend="compiled", threads=1)
    run_proc(par, n, x, y_par, backend="compiled", threads=threads)
    assert np.array_equal(y_par, y_seq), "parallel map diverged from sequential"


@settings(max_examples=15, deadline=None)
@given(m=st.integers(2, 24), n=st.integers(2, 24), threads=st.sampled_from([2, 8]))
def test_nested_affine_maps_parallelize_on_the_outer_loop(m, n, threads):
    p = _mk(
        [
            "for i in seq(0, M):",
            "    for j in seq(0, N):",
            "        B[i, j] = A[i, j] * 2.0 + 1.0",
        ],
        "M: size, N: size, A: f32[M, N] @ DRAM, B: f32[M, N] @ DRAM",
    )
    par = parallelize_loop(p, "i")
    rng = np.random.default_rng(m * 31 + n)
    A = rng.uniform(-1, 1, (m, n)).astype(np.float32)
    B_seq = np.zeros((m, n), np.float32)
    B_par = np.zeros((m, n), np.float32)
    run_proc(p, m, n, A, B_seq, backend="compiled", threads=1)
    run_proc(par, m, n, A, B_par, backend="compiled", threads=threads)
    assert np.array_equal(B_par, B_seq)


# ---------------------------------------------------------------------------
# Legal family: pure reductions
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 211), seed=st.integers(0, 999))
def test_pure_reductions_are_bitwise_across_thread_counts(n, seed):
    p = _mk(
        [
            "for i in seq(0, n):",
            "    out[0] += x[i] * y[i]",
        ],
        "n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, out: f32[1] @ DRAM",
    )
    par = parallelize_loop(p, "i")
    x, y = _vec_args(n, seed)

    outs = []
    for t in (1, 2, 8):
        out = np.zeros(1, np.float32)
        run_proc(par, n, x, y, out, backend="compiled", threads=t)
        outs.append(out[0])
    assert outs[0] == outs[1] == outs[2], (
        f"reduction not deterministic across thread counts: {outs}"
    )

    ref = np.zeros(1, np.float32)
    run_proc(p, n, x, y, ref, backend="interp")
    np.testing.assert_allclose(outs[0], ref[0], rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------------
# Illegal family: the analysis must reject, deterministically
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(lag=st.integers(1, 3))
def test_scan_raw_dependence_is_rejected(lag):
    p = _mk(
        [
            f"for i in seq({lag}, n):",
            f"    y[i] = y[i - {lag}] + x[i]",
        ],
        "n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM",
    )
    with pytest.raises(SchedulingError, match="carry dependencies"):
        parallelize_loop(p, "i")


@settings(max_examples=10, deadline=None)
@given(idx=st.integers(0, 3))
def test_invariant_overwrite_waw_is_rejected(idx):
    p = _mk(
        [
            "for i in seq(0, n):",
            f"    y[{idx}] = x[i]",
        ],
        "n: size, x: f32[n] @ DRAM, y: f32[4] @ DRAM",
    )
    with pytest.raises(SchedulingError, match="carry dependencies"):
        parallelize_loop(p, "i")


@settings(max_examples=10, deadline=None)
@given(lead=st.integers(1, 3))
def test_shifted_write_war_dependence_is_rejected(lead):
    p = _mk(
        [
            "for i in seq(0, n):",
            f"    y[i] = x[i] + y[i + {lead}]",
        ],
        f"n: size, x: f32[n] @ DRAM, y: f32[n + {lead}] @ DRAM",
    )
    with pytest.raises(SchedulingError, match="carry dependencies"):
        parallelize_loop(p, "i")


def test_rejected_nests_still_run_sequentially():
    # legality is about the annotation, not executability: the plain nest
    # keeps working in every engine
    p = _mk(
        [
            "for i in seq(1, n):",
            "    y[i] = y[i - 1] + x[i]",
        ],
        "n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM",
    )
    n = 37
    x, y = _vec_args(n, seed=7)
    y_ref = y.copy()
    run_proc(p, n, x, y, backend="compiled")
    for i in range(1, n):
        y_ref[i] = y_ref[i - 1] + x[i]
    np.testing.assert_allclose(y, y_ref, rtol=1e-6)
