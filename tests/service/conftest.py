"""Service test fixtures: one in-process server per test, on a Unix socket
in a temp state directory, driven by blocking clients from the test thread."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.service import ScheduleService, ServiceClient


class ServerHarness:
    """Runs a :class:`ScheduleService` on a dedicated event-loop thread."""

    def __init__(self, state_dir: str, **kw):
        self.service = ScheduleService(state_dir=state_dir, **kw)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 10
        while self.service._server is None:
            if time.monotonic() > deadline:
                raise RuntimeError("service did not start")
            time.sleep(0.01)

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.service.start())
        self._loop.run_until_complete(self.service.serve_forever())
        # let pending transport-close callbacks run before the loop dies
        self._loop.run_until_complete(asyncio.sleep(0.05))
        self._loop.close()

    @property
    def address(self) -> str:
        return self.service.address()

    def client(self, **kw) -> ServiceClient:
        return ServiceClient(self.address, **kw)

    def stop(self):
        if self._thread.is_alive():
            try:
                with self.client(timeout_s=5) as c:
                    c.shutdown()
            except OSError:
                pass
            self._thread.join(timeout=10)


@pytest.fixture
def server(tmp_path):
    h = ServerHarness(str(tmp_path / "state"), scheduling_workers=4, timing_workers=2)
    try:
        yield h
    finally:
        h.stop()


@pytest.fixture
def make_server(tmp_path):
    """Factory for tests that manage server lifetime themselves."""
    made = []

    def factory(name="state", **kw):
        h = ServerHarness(str(tmp_path / name), **kw)
        made.append(h)
        return h

    yield factory
    for h in made:
        h.stop()
