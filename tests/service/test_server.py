"""Integration tests of the schedule service: warm cache answers, trace
replay, request coalescing, multi-client correctness, streamed tune progress,
and the observability surface."""

from __future__ import annotations

import threading

import pytest

from repro.api.knobs import KnobError
from repro.errors import ParseError
from repro.service import protocol as P

SAXPY = {"ref": "repro.blas:LEVEL1_KERNELS", "args": ["saxpy"]}
LEVEL1 = {"ref": "repro.blas:level1_schedule"}
BLUR = {"ref": "repro.halide:make_blur"}
BLUR_SCHED = {"ref": "repro.halide:blur_schedule"}

SCALE_SRC = (
    "def scale(n: size, x: f32[n]):\n"
    "    for i in seq(0, n):\n"
    "        x[i] = x[i] * 2.0\n"
)


def test_ping_and_stats_shape(server):
    with server.client() as c:
        assert c.ping()["pong"] is True
        stats = c.stats()
        for key in ("requests", "errors", "coalesced", "inflight", "queue_depth",
                    "latency_ms", "replay_cache", "native_cache", "guard", "retries"):
            assert key in stats, key


def test_schedule_miss_then_hit(server):
    with server.client() as c:
        out1 = c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 2})
        out2 = c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 2})
    assert out1["cache"] == "miss"
    assert out2["cache"] in ("hit", "coalesced")
    assert out1["state_hash"] == out2["state_hash"]
    assert out1["trace"] == out2["trace"]
    assert out1["proc_name"] == "saxpy"
    assert isinstance(out1["edit_epoch"], int) and out1["edit_epoch"] > 0


def test_distinct_knobs_are_distinct_entries(server):
    with server.client() as c:
        a = c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 2})
        b = c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 4})
    assert a["cache"] == b["cache"] == "miss"
    assert a["state_hash"] != b["state_hash"]


def test_trace_replay_reproduces_the_schedule(server):
    with server.client() as c:
        out = c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 2})
        replayed = c.replay_trace(proc=SAXPY, trace=out["trace"])
    assert replayed["cache"] == "replay"
    assert replayed["state_hash"] == out["state_hash"]


def test_schedule_from_source_and_parse_errors(server):
    empty_trace = {"version": 1, "schedule": None, "fingerprint": None,
                   "proc": "scale", "initial": None, "final": None, "entries": []}
    with server.client() as c:
        out = c.schedule(proc={"source": SCALE_SRC}, schedule={"trace": empty_trace})
        assert out["proc_name"] == "scale"
        bad_dsl = "def broken(n: size, x: f32[n]):\n    for i in range(n):\n        x[i] = 0.0\n"
        with pytest.raises(ParseError):
            c.schedule(proc={"source": bad_dsl}, schedule={"trace": empty_trace})
        with pytest.raises(SyntaxError):
            c.schedule(proc={"source": "def broken(:\n"}, schedule={"trace": empty_trace})
        # the connection survives the failed request
        assert c.ping()["pong"] is True


def test_remote_knob_error_is_a_knob_error_here(server):
    with server.client() as c:
        # warm the cache first: unknown knobs must fail even when their
        # defaulted fingerprint would hit a cached entry
        c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 2})
        with pytest.raises(KnobError) as err:
            c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"bogus": 1})
    assert "bogus" in str(err.value)


def test_streamed_schedule_emits_one_event_per_trace_entry(server):
    events = []
    with server.client() as c:
        out = c.schedule(
            proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 2},
            stream=True, on_event=events.append,
        )
    entries = out["trace"]["entries"]
    assert len(events) == len(entries) > 0
    assert [e["entry"] for e in events] == entries
    assert all(e["kind"] == "trace-entry" for e in events)


def test_eight_concurrent_clients_zero_lost_or_torn_replies(server):
    n = 8
    results, errors = [None] * n, []
    barrier = threading.Barrier(n)

    def worker(i):
        try:
            with server.client() as c:
                barrier.wait()
                mine = []
                for k in (1, 2, 4):
                    mine.append(c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": k}))
                mine.append(c.stats())
                results[i] = mine
        except Exception as exc:  # noqa: BLE001
            errors.append((i, exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    assert all(r is not None for r in results)
    # every client saw the same scheduled result for the same knobs
    for k_idx in range(3):
        hashes = {r[k_idx]["state_hash"] for r in results}
        assert len(hashes) == 1
    with server.client() as c:
        stats = c.stats()
    assert stats["requests"]["schedule"] == n * 3
    assert stats["errors"] == 0


def test_identical_inflight_requests_coalesce(server):
    n = 8
    results, errors = [None] * n, []
    barrier = threading.Barrier(n)

    def worker(i):
        try:
            with server.client() as c:
                barrier.wait()
                # a cold, heavy request: blur's full tiling+vectorization
                results[i] = c.schedule(proc=BLUR, schedule=BLUR_SCHED)
        except Exception as exc:  # noqa: BLE001
            errors.append((i, exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    assert len({r["state_hash"] for r in results}) == 1
    with server.client() as c:
        stats = c.stats()
    # at least one follower shared the leader's computation
    assert stats["coalesced"] > 0
    assert stats["coalesced"] == sum(1 for r in results if r["cache"] == "coalesced")


def test_tune_streams_measurements_and_reports_the_best(server):
    spec = {
        "proc": "repro.blas:LEVEL1_KERNELS",
        "proc_args": ["saxpy"],
        "schedule": "repro.blas:level1_schedule",
        "size_env": {"n": 256},
        "repeats": 1,
    }
    events = []
    with server.client(timeout_s=300) as c:
        out = c.tune(spec=spec, configs=[{"interleave": 1}, {"interleave": 2}],
                     stream=True, on_event=events.append)
    assert out["ok"] == 2 and out["failed"] == 0
    assert len(events) == 2
    assert [e["index"] for e in events] == [0, 1]
    assert out["best"] is not None and out["best"]["status"] == "ok"
    assert out["warm"] is not None and out["warm"]["key"]


def test_tune_knob_errors_cost_only_their_candidate(server):
    spec = {
        "proc": "repro.blas:LEVEL1_KERNELS",
        "proc_args": ["saxpy"],
        "schedule": "repro.blas:level1_schedule",
        "size_env": {"n": 256},
        "repeats": 1,
    }
    with server.client(timeout_s=300) as c:
        out = c.tune(spec=spec, configs=[{"interleave": 1}, {"no_such": 9}])
    assert out["ok"] == 1 and out["failed"] == 1
    statuses = sorted(m["status"] for m in out["measurements"])
    assert statuses == ["knob-error", "ok"]


def test_malformed_frames_get_an_error_response_not_a_hangup(server):
    with server.client() as c:
        c._sock.sendall(b"this is not json\n")
        line = c._rfile.readline()
        msg = P.decode_message(line)
        assert msg["ok"] is False and msg["error"]["kind"] == "ProtocolError"
        # and the connection still works
        assert c.ping()["pong"] is True


def test_latency_percentiles_and_hit_rate_appear_in_stats(server):
    with server.client() as c:
        for _ in range(3):
            c.schedule(proc=SAXPY, schedule=LEVEL1, knobs={"interleave": 2})
        stats = c.stats()
    lat = stats["latency_ms"]
    assert lat["count"] >= 3
    assert lat["p50"] is not None and lat["p95"] is not None and lat["p50"] <= lat["p95"]
    rc = stats["replay_cache"]
    assert rc["hits"] >= 2 and rc["misses"] >= 1


def test_shutdown_unlinks_the_socket_and_journals_requests(tmp_path, make_server):
    import os

    state = tmp_path / "state"
    h = make_server()
    sock = h.address
    with h.client() as c:
        c.ping()
        c.shutdown()
    h._thread.join(timeout=10)
    assert not os.path.exists(sock)
    journal = state / "requests.jsonl"
    assert journal.exists()
    lines = [l for l in journal.read_text().splitlines() if l.strip()]
    assert len(lines) >= 2  # ping + shutdown
