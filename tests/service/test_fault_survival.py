"""The service under fire: a subprocess server with an armed
``kernel-segfault`` fault must survive native-backed tune measurements (the
guarded first run dies, the degradation ladder answers) and keep serving."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.backend import native
from repro.service import ServiceClient

REPO = Path(__file__).resolve().parents[2]

needs_cc = pytest.mark.skipif(native.find_cc() is None, reason="no C compiler on PATH")
needs_fork = pytest.mark.skipif(not hasattr(os, "fork"), reason="no fork on this platform")


def _start_server(state_dir: str, *, faults: str = "") -> subprocess.Popen:
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        PYTHONUNBUFFERED="1",
    )
    if faults:
        env["REPRO_FAULTS"] = faults
    else:
        env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--state-dir", state_dir, "--quiet"],
        env=env,
        cwd=str(REPO),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()  # "repro-service listening on <addr>"
    assert "listening on" in line, line
    return proc


@needs_cc
@needs_fork
def test_injected_segfault_degrades_the_measurement_not_the_server(tmp_path):
    state = str(tmp_path / "state")
    proc = _start_server(state, faults="kernel-segfault")
    try:
        sock = os.path.join(state, "service.sock")
        with ServiceClient(sock, timeout_s=300) as c:
            out = c.tune(
                spec={
                    "proc": "repro.blas:LEVEL1_KERNELS",
                    "proc_args": ["saxpy"],
                    "schedule": "repro.blas:level1_schedule",
                    "size_env": {"n": 256},
                    "repeats": 1,
                    "backend": "c",
                },
                configs=[{"interleave": 1}],
            )
            # the native first run segfaulted in its quarantine; the ladder
            # degraded the measurement to a working engine — it still succeeds
            assert out["ok"] == 1 and out["failed"] == 0

            # and the server is alive and accounting afterwards
            stats = c.stats()
            assert stats["requests"]["tune"] == 1
            assert stats["errors"] == 0
            c.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_subprocess_server_round_trips_schedules(tmp_path):
    state = str(tmp_path / "state")
    proc = _start_server(state)
    try:
        sock = os.path.join(state, "service.sock")
        with ServiceClient(sock, timeout_s=120) as c:
            a = c.schedule(
                proc={"ref": "repro.blas:LEVEL1_KERNELS", "args": ["saxpy"]},
                schedule={"ref": "repro.blas:level1_schedule"},
                knobs={"interleave": 2},
            )
            b = c.schedule(
                proc={"ref": "repro.blas:LEVEL1_KERNELS", "args": ["saxpy"]},
                schedule={"ref": "repro.blas:level1_schedule"},
                knobs={"interleave": 2},
            )
            assert a["cache"] == "miss" and b["cache"] == "hit"
            assert a["state_hash"] == b["state_hash"]
            c.shutdown()
        assert proc.wait(timeout=30) == 0
        # clean exit removed the socket; the journal remains for fsck
        assert not os.path.exists(sock)
        assert os.path.exists(os.path.join(state, "requests.jsonl"))
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # killed-over state (socket without listener) is what fsck repairs;
    # simulate it and let the doctor confirm
    stale = tmp_path / "stale"
    stale.mkdir()
    import socket as _socket

    s = _socket.socket(_socket.AF_UNIX)
    s.bind(str(stale / "service.sock"))
    s.close()
    fsck = subprocess.run(
        [sys.executable, str(REPO / "tools" / "repro_fsck.py"), str(stale)],
        capture_output=True,
        text=True,
    )
    assert fsck.returncode == 1 and "STALE SOCKET" in fsck.stdout
    subprocess.run(
        [sys.executable, str(REPO / "tools" / "repro_fsck.py"), "--repair", str(stale)],
        capture_output=True,
        text=True,
        check=False,
    )
    assert not os.path.exists(stale / "service.sock")
