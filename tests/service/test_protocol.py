"""Wire-format round-trips: every payload the service exchanges must survive
client → server → client byte-identically, and every error must come back as
the exception class that was raised remotely."""

from __future__ import annotations

import json

import pytest

from repro.api import S, knob, seq
from repro.api.knobs import KnobError
from repro.api.serialize import ReplayError
from repro.errors import (
    BackendError,
    CodegenError,
    ExoError,
    InvalidCursorError,
    ParseError,
    SchedulingError,
)
from repro.service import protocol as P


def roundtrip(msg: dict) -> dict:
    return P.decode_message(P.encode_message(msg))


def wire_stable(msg: dict) -> bool:
    """Canonical encoding is a fixed point: re-encoding a decoded message
    reproduces the exact bytes."""
    line = P.encode_message(msg)
    return P.encode_message(P.decode_message(line)) == line


# -- framing -----------------------------------------------------------------


def test_messages_roundtrip_byte_identically():
    cases = [
        {"id": "r1", "type": "ping", "v": 1},
        P.request("r2", "stats"),
        P.response("r3", {"pong": True, "nested": {"a": [1, 2, {"b": None}]}}),
        P.event("r4", {"kind": "measurement", "index": 0, "total": 3}),
        {"id": None, "type": "response", "ok": False, "error": {"kind": "X", "message": "m"}},
        {"unicode": "λx → ∀y", "num": 1.5, "neg": -7},
    ]
    for msg in cases:
        assert roundtrip(msg) == msg
        assert wire_stable(msg)


def test_encoding_is_canonical_regardless_of_key_order():
    a = {"b": 1, "a": 2, "nested": {"z": 0, "y": 1}}
    b = {"nested": {"y": 1, "z": 0}, "a": 2, "b": 1}
    assert P.encode_message(a) == P.encode_message(b)


def test_malformed_frames_raise_protocol_error():
    for line in [b"not json\n", b"[1, 2]\n", b'"a string"\n', b"\xff\xfe\n", b"42\n"]:
        with pytest.raises(P.ProtocolError):
            P.decode_message(line)


def test_oversized_frames_are_rejected():
    with pytest.raises(P.ProtocolError):
        P.decode_message(b"x" * (P.MAX_MESSAGE_BYTES + 1))


def test_request_constructor_rejects_unknown_types():
    with pytest.raises(P.ProtocolError):
        P.request("r1", "bogus")


# -- traces and tune specs ---------------------------------------------------


def test_trace_payload_survives_the_wire_byte_identically(axpy):
    sched = seq(
        S.divide_loop("i", 16, ["io", "ii"]),
        S.divide_loop("ii", knob("w", 4, choices=(2, 4, 8)), ["iio", "iii"]),
    )
    _, trace = sched.apply_traced(axpy, {"w": 8})
    msg = P.request("r1", "schedule", proc={"ref": "x:y"}, schedule={"trace": trace.to_dict()})
    assert wire_stable(msg)
    back = roundtrip(msg)
    assert back["schedule"]["trace"] == trace.to_dict()


def test_tune_spec_payload_survives_the_wire_byte_identically():
    spec = {
        "proc": "repro.blas:LEVEL1_KERNELS",
        "proc_args": ["saxpy"],
        "schedule": "repro.blas:level1_schedule",
        "size_env": {"n": 65536},
        "repeats": 3,
        "backend": "c",
        "timeout_s": 1.5,
    }
    msg = P.request("r1", "tune", spec=spec, configs=[{"interleave": 2}, {"interleave": 4}])
    assert wire_stable(msg)
    assert roundtrip(msg)["spec"] == spec


# -- error payloads ----------------------------------------------------------


def test_every_registered_error_decodes_to_its_own_class():
    for name, cls in P.ERROR_REGISTRY.items():
        try:
            exc = cls(f"synthetic {name}")
        except Exception:
            pytest.fail(f"{name} not constructible from a message")
        payload = P.encode_error(exc)
        assert payload["kind"] == name
        back = P.decode_error(payload)
        assert type(back) is cls
        assert name == "KeyError" or f"synthetic {name}" in str(back)


def test_error_payloads_are_wire_stable():
    for cls in (SchedulingError, KnobError, ParseError, ValueError):
        msg = P.error_response("r9", cls("boom"))
        assert wire_stable(msg)
        assert roundtrip(msg) == msg


def test_scheduling_error_preserves_primitive_across_the_wire(axpy):
    # a real failing primitive, not a synthetic attribute
    with pytest.raises(SchedulingError) as err:
        S.divide_loop("i", 7, ["io", "ii"], perfect=True).apply(axpy, {})
    original = err.value
    assert original.primitive is not None
    back = P.decode_error(P.encode_error(original))
    assert type(back) is SchedulingError
    assert back.primitive == original.primitive
    assert str(back) == str(original)


def test_knob_error_preserves_primitive_and_message():
    exc = KnobError("unknown knob(s) 'bogus'")
    exc.primitive = "divide_loop"
    back = P.decode_error(P.encode_error(exc))
    assert type(back) is KnobError
    assert back.primitive == "divide_loop"


def test_location_and_proc_name_fields_survive():
    exc = CodegenError("no lowering for reduce")
    exc.location = "blur.c:42"
    exc.proc_name = "blur"
    back = P.decode_error(P.encode_error(exc))
    assert (back.location, back.proc_name) == ("blur.c:42", "blur")


def test_unknown_error_kind_falls_back_to_remote_service_error():
    back = P.decode_error({"kind": "SomethingNovel", "message": "m"})
    assert isinstance(back, P.RemoteServiceError)
    assert back.kind == "SomethingNovel"
    assert "m" in str(back)


def test_error_payload_shape_is_stable():
    # every encode_error payload carries the same five keys, so client-side
    # consumers can rely on the shape without defensive lookups
    for exc in (ExoError("a"), InvalidCursorError("b"), BackendError("c"), ReplayError("d")):
        assert sorted(P.encode_error(exc)) == [
            "kind",
            "location",
            "message",
            "primitive",
            "proc_name",
        ]


def test_error_response_roundtrips_through_full_frames():
    exc = SchedulingError("divide_loop: loop not found")
    line = P.encode_message(P.error_response("r1", exc))
    msg = P.decode_message(line)
    assert msg["ok"] is False
    back = P.decode_error(msg["error"])
    assert type(back) is SchedulingError and "divide_loop" in str(back)
    assert P.encode_message(msg) == line
