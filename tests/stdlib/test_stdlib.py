"""User-level scheduling library tests: combinators, inspection, tiling, vectorize, ELEVATE."""
from __future__ import annotations

import pytest

from repro import SchedulingError, divide_loop, lift_alloc, proc_from_source
from repro.interp import check_equiv
from repro.machines import AVX2
from repro.stdlib import (
    CSE, fma_rule, general_tile2D, get_inner_loop, hoist_stmt, infer_bounds, interleave_loop,
    is_invalid, lift, lrn, repeat, round_loop, seq, tile2D, try_else, unroll_and_jam,
    vectorize, auto_stage_mem, filter_c,
)


def test_tile2D_and_general_tile2D(gemv):
    t = tile2D(gemv, "i", "j", ["io", "ii"], ["jo", "ji"], 8, 8)
    assert check_equiv(gemv, t, {"M": 16, "N": 16})
    # general_tile2D falls back to guarded tiling for non-divisible sizes
    axpy2d = proc_from_source(
        "def k(M: size, N: size, A: f32[M, N] @ DRAM):\n"
        "    for i in seq(0, M):\n"
        "        for j in seq(0, N):\n"
        "            A[i, j] = A[i, j] * 2.0\n"
    )
    g = general_tile2D(axpy2d, "i", "j", ["io", "ii"], ["jo", "ji"], 8, 8)
    assert check_equiv(axpy2d, g, {"M": 13, "N": 11})


def test_higher_order_combinators(gemv):
    # repeat(lift_alloc) lifts an allocation as far as possible, then stops
    p = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        t: f32 @ DRAM\n"
        "        t = x[i]\n"
        "        x[i] = t + 1.0\n"
    )
    alloc = p.find("t: _")
    res = repeat(lift_alloc)(p, alloc)
    q = res[0] if isinstance(res, tuple) else res
    assert str(q).splitlines()[1].strip().startswith("t:")  # now at the top level

    # try_else falls back when the first op fails
    def fails(p, c):
        raise SchedulingError("nope")

    def succeeds(p, c):
        return p, c

    out = try_else(fails, succeeds)(p, alloc)
    assert out[0] is p


def test_filter_and_is_invalid(gemv):
    from repro.cursors import InvalidCursor
    cursors = [gemv.find_loop("i"), InvalidCursor(gemv), gemv.find_loop("j")]
    kept = filter_c(~is_invalid)(gemv, cursors)
    assert len(kept) == 2


def test_lrn_traversal(gemv):
    kinds = [type(c).__name__ for c in lrn(gemv.find_loop("i"))]
    assert kinds == ["ReduceCursor", "ForCursor"]


def test_infer_bounds(gemv):
    io = divide_loop(gemv, "j", 8, ["jo", "ji"], perfect=True)
    b = infer_bounds(io, io.find_loop("ji"), "x")
    from repro.ir import expr_str
    assert expr_str(b.lo[0]) == "8 * jo"
    assert "8 * jo + 8" in expr_str(b.hi[0]) or "8 + 8 * jo" in expr_str(b.hi[0])


def test_get_inner_loop(gemv):
    assert get_inner_loop(gemv, gemv.find_loop("i")).name() == "j"


def test_round_loop(axpy):
    p = round_loop(axpy, "i", 8)
    assert check_equiv(axpy, p, {"n": 13})
    assert "if" in str(p)


def test_unroll_and_jam(gemv):
    p = unroll_and_jam(gemv, "i", 2)
    assert check_equiv(gemv, p, {"M": 8, "N": 8})


def test_auto_stage_mem(gemv):
    p, (alloc, load, block, store) = auto_stage_mem(gemv, gemv.find_loop("j"), "x", "x_reg", rc=True)
    assert alloc.is_valid()
    assert check_equiv(gemv, p, {"M": 8, "N": 8})


def test_vectorize_axpy_and_dot(axpy, dot):
    instrs = AVX2.get_instructions("f32")
    v = vectorize(axpy, "i", 8, "f32", AVX2.mem_type, instrs, rules=[fma_rule])
    assert "avx2_f32_fma" in str(v)
    assert check_equiv(axpy, v, {"n": 37})

    vd = vectorize(dot, "i", 8, "f32", AVX2.mem_type, instrs, rules=[fma_rule])
    assert "avx2_f32_fma" in str(vd)
    assert check_equiv(dot, vd, {"n": 53})


def test_vectorize_without_fma_rule(axpy):
    instrs = AVX2.get_instructions("f32")
    v = vectorize(axpy, "i", 8, "f32", AVX2.mem_type, instrs, rules=[])
    # staging without the FMA rule produces an explicit multiply (Figure 4b)
    assert "avx2_f32_mul" in str(v) or "avx2_f32_add" in str(v)
    assert check_equiv(axpy, v, {"n": 24})


def test_cse(gemv):
    p = unroll_and_jam(gemv, "i", 2)
    q = CSE(p, p.find_loop("j").body(), "f32")
    assert check_equiv(gemv, q, {"M": 8, "N": 8})
