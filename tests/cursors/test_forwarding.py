"""Cursor forwarding across scheduling operations (the branching time model)."""
from __future__ import annotations

import pytest

from repro import InvalidCursorError, divide_loop, fission, lift_scope, reorder_stmts, unroll_loop
from repro.cursors import ForCursor, InvalidCursor


def test_forward_untouched_cursor(gemv):
    # a cursor to the j loop survives dividing the i loop (Section 5.1's example)
    j = gemv.find_loop("j")
    g = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    fwd = g.forward(j)
    assert isinstance(fwd, ForCursor) and fwd.name() == "j"


def test_forward_into_divided_loop(gemv):
    red = gemv.find("y[_] += _")
    g = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    fwd = g.forward(red)
    assert fwd.is_valid()
    assert "y[" in str(fwd)


def test_forward_through_two_steps(gemv):
    red = gemv.find("y[_] += _")
    g = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    g = divide_loop(g, "j", 8, ["jo", "ji"], perfect=True)
    g = lift_scope(g, "jo")
    fwd = g.forward(red)
    assert fwd.is_valid() and "y[" in str(fwd)


def test_forward_same_proc_is_identity(gemv):
    c = gemv.find_loop("i")
    assert gemv.forward(c) == c


def test_forward_requires_lineage(gemv, axpy):
    c = gemv.find_loop("i")
    with pytest.raises(InvalidCursorError):
        axpy.forward(c)


def test_forward_after_reorder_stmts():
    from repro import proc_from_source

    p0 = proc_from_source(
        "def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):\n"
        "    for i in seq(0, n):\n"
        "        x[i] = 1.0\n"
        "    for i in seq(0, n):\n"
        "        y[i] = 2.0\n"
    )
    first, second = p0.find("for i in _: _", many=True)
    p = reorder_stmts(p0, first, second)
    fwd_first, fwd_second = p.forward(first), p.forward(second)
    assert fwd_first.is_valid() and fwd_second.is_valid()
    # the cursors track the statements across the swap
    assert "x[i] = 1.0" in str(fwd_first)
    assert "y[i] = 2.0" in str(fwd_second)


def test_forward_after_fission(copy2d):
    inner = copy2d.find_loop("j")
    stmt = inner.body()[0]
    p = divide_loop(copy2d, "j", 4, ["jo", "ji"], tail="guard")
    fwd = p.forward(stmt)
    assert fwd.is_valid()


def test_invalidated_by_unroll(gemv):
    g = divide_loop(gemv, "i", 8, ["io", "ii"], perfect=True)
    ii = g.find_loop("ii")
    g2 = unroll_loop(divide_loop(g, "ii", 8, ["iio", "iii"], perfect=True), "iii")
    # forwarding still produces *some* valid reference (heuristic forwarding)
    fwd = g2.forward(ii)
    assert fwd is not None
