"""Regression: the ``find_loop`` near-miss suggestion walk must stay behind
the surfaced-failure branch (ISSUE 5 satellite).

``to_loop_cursor`` and ``at(...)`` probe ``find_loop`` first and fall back to
pattern search; library code probes optional loops in ``try/except``.  Before
the fix, every one of those *recovered* probes walked the whole procedure and
ran difflib to build a suggestion nobody would ever read.  The walk now runs
lazily, only when the error message is actually rendered.
"""

from __future__ import annotations

import pytest

from repro.cursors import cursor as cursor_mod
from repro.cursors.cursor import ForCursor, LoopNotFoundError
from repro.errors import InvalidCursorError


@pytest.fixture
def walk_counter(monkeypatch):
    calls = []
    real = cursor_mod._loop_names_below

    def counting(proc, base_path):
        calls.append((proc, tuple(base_path)))
        return real(proc, base_path)

    monkeypatch.setattr(cursor_mod, "_loop_names_below", counting)
    return calls


def test_successful_find_loop_never_walks(gemv, walk_counter):
    assert isinstance(gemv.find_loop("i"), ForCursor)
    assert walk_counter == []


def test_combinator_recovery_does_not_pay_for_suggestions(gemv, walk_counter):
    # try_ swallows the failed unroll (no loop 'zz' exists) and returns the
    # procedure unchanged: a success path end to end, no suggestion walk
    from repro.api import S, try_

    out = try_(S.unroll_loop("zz")).apply(gemv)
    assert str(out) == str(gemv)
    assert walk_counter == []


def test_caught_and_discarded_failures_do_not_walk(gemv, walk_counter):
    # the try/except probing idiom used throughout the libraries
    try:
        gemv.find_loop("no_such_loop")
    except InvalidCursorError:
        pass
    assert walk_counter == []


def test_rendered_failure_still_suggests_near_misses(gemv, walk_counter):
    with pytest.raises(InvalidCursorError) as excinfo:
        gemv.find_loop("jo")
    assert isinstance(excinfo.value, LoopNotFoundError)
    assert walk_counter == []  # nothing rendered yet
    msg = str(excinfo.value)
    assert "no loop 'jo'" in msg and "did you mean" in msg and "'j'" in msg
    assert len(walk_counter) == 1
    # rendering is memoised: a second str() does not re-walk
    str(excinfo.value)
    assert len(walk_counter) == 1


def test_lazy_error_survives_pickling(gemv):
    # the walk cannot cross a process boundary: pickling renders the message
    import pickle

    with pytest.raises(InvalidCursorError) as excinfo:
        gemv.find_loop("jo")
    revived = pickle.loads(pickle.dumps(excinfo.value))
    assert isinstance(revived, InvalidCursorError)
    assert "did you mean" in str(revived)


def test_occurrence_selector_failure_keeps_the_precise_message(gemv):
    with pytest.raises(InvalidCursorError, match="occurrence"):
        try:
            gemv.find_loop("i #5")
        except InvalidCursorError as err:
            assert "occurrence" in str(err)  # name exists: no bogus suggestion
            raise
