"""Cursor navigation and inspection."""
from __future__ import annotations

import pytest

from repro import InvalidCursorError
from repro.cursors import (
    BlockCursor, ForCursor, GapCursor, InvalidCursor, LiteralCursor, ReduceCursor, is_invalid,
)


def test_parent_next_prev(gemv, stages):
    i_loop = gemv.find_loop("i")
    j_loop = gemv.find_loop("j")
    assert j_loop.parent() == i_loop
    with pytest.raises(InvalidCursorError):
        i_loop.parent()

    first, second = stages.find("for i in _: _", many=True)
    assert first.next() == second
    assert second.prev() == first
    assert isinstance(second.next(), InvalidCursor)
    assert is_invalid(second.next())


def test_gaps_and_blocks(stages):
    alloc = stages.find("tmp: _")
    g_before, g_after = alloc.before(), alloc.after()
    assert isinstance(g_before, GapCursor) and isinstance(g_after, GapCursor)
    assert g_after.index() == g_before.index() + 1

    block = alloc.expand(0, 2)
    assert isinstance(block, BlockCursor) and len(block) == 3
    assert block[0] == alloc


def test_loop_inspection(gemv):
    j = gemv.find_loop("j")
    assert j.name() == "j"
    assert str(j.hi()) == "N"
    assert isinstance(j.lo(), LiteralCursor) and j.lo().value() == 0
    body = j.body()
    assert len(body) == 1 and isinstance(body[0], ReduceCursor)


def test_write_inspection(gemv):
    red = gemv.find("y[_] += _")
    assert red.name() == "y"
    assert len(red.idx()) == 1
    assert red.rhs().op() == "*"
    assert red.rhs().lhs().name() == "A"


def test_arg_cursors(gemv):
    args = gemv.args()
    assert [a.name() for a in args] == ["M", "N", "A", "x", "y"]
    assert args[0].is_size() and not args[2].is_size()
    assert args[2].is_tensor() and args[2].mem().name == "DRAM"
    assert gemv.get_arg("A").name() == "A"


def test_cursor_equality_and_proc(gemv):
    c1 = gemv.find_loop("i")
    c2 = gemv.find("for i in _: _")
    assert c1 == c2 and hash(c1) == hash(c2)
    assert c1.proc() is gemv


def test_invalid_cursor_operations(gemv):
    inv = InvalidCursor(gemv)
    assert not inv.is_valid()
    with pytest.raises(InvalidCursorError):
        inv.name()
