"""Affine/linear analysis of index expressions.

This module replaces the SMT solver used by the original Exo implementation
with a lightweight symbolic engine that is sufficient for the reasoning the
scheduling libraries in this repository need:

* normalisation of index expressions into linear forms over *atoms*
  (symbols, and opaque sub-expressions such as ``x / 8`` or ``x % 8``),
* constant folding and algebraic simplification (used by the ``simplify``
  primitive),
* proving facts such as equality of two index expressions, divisibility of an
  expression by a constant, or comparisons, under an environment of facts
  harvested from the procedure's ``assert`` predicates and enclosing loop
  bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..ir import nodes as N
from ..ir.printing import expr_str
from ..ir.syms import Sym
from ..ir.types import bool_t, index_t, int_t

__all__ = [
    "LinearForm",
    "linearize",
    "linear_to_expr",
    "FactEnv",
    "simplify_expr",
    "exprs_equal",
    "prove",
    "prove_divisible",
    "const_value",
]


# ---------------------------------------------------------------------------
# Linear forms
# ---------------------------------------------------------------------------

# An atom is either a Sym or an opaque expression keyed by its printed form.


@dataclass(frozen=True)
class _OpaqueAtom:
    key: str
    expr_id: int  # id of a representative expression node (for rebuilding)

    def __repr__(self):
        return f"Opaque({self.key})"


class LinearForm:
    """A linear combination ``sum_k coeff_k * prod(atoms_k)`` with rational
    coefficients.  The empty product ``()`` is the constant term."""

    def __init__(self, terms: Optional[Dict[Tuple, Fraction]] = None):
        self.terms: Dict[Tuple, Fraction] = dict(terms or {})

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def constant(c) -> "LinearForm":
        return LinearForm({(): Fraction(c)} if c else {})

    @staticmethod
    def atom(a) -> "LinearForm":
        return LinearForm({(a,): Fraction(1)})

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: "LinearForm") -> "LinearForm":
        out = dict(self.terms)
        for k, v in other.terms.items():
            out[k] = out.get(k, Fraction(0)) + v
            if out[k] == 0:
                del out[k]
        return LinearForm(out)

    def __sub__(self, other: "LinearForm") -> "LinearForm":
        return self + other.scale(-1)

    def scale(self, c) -> "LinearForm":
        c = Fraction(c)
        if c == 0:
            return LinearForm()
        return LinearForm({k: v * c for k, v in self.terms.items()})

    def __mul__(self, other: "LinearForm") -> "LinearForm":
        out: Dict[Tuple, Fraction] = {}
        for k1, v1 in self.terms.items():
            for k2, v2 in other.terms.items():
                key = tuple(sorted(k1 + k2, key=_atom_sort_key))
                out[key] = out.get(key, Fraction(0)) + v1 * v2
                if out[key] == 0:
                    del out[key]
        return LinearForm(out)

    # -- queries ----------------------------------------------------------------

    def is_constant(self) -> bool:
        return all(k == () for k in self.terms)

    def constant_value(self) -> Optional[Fraction]:
        if self.is_constant():
            return self.terms.get((), Fraction(0))
        return None

    def constant_term(self) -> Fraction:
        return self.terms.get((), Fraction(0))

    def is_zero(self) -> bool:
        return not self.terms

    def atoms(self) -> set:
        out = set()
        for k in self.terms:
            out.update(k)
        return out

    def coeff_of(self, atom) -> Fraction:
        return self.terms.get((atom,), Fraction(0))

    def without_atom(self, atom) -> "LinearForm":
        """Terms that do not mention ``atom`` at all."""
        return LinearForm({k: v for k, v in self.terms.items() if atom not in k})

    def only_atom_terms(self, atom) -> "LinearForm":
        return LinearForm({k: v for k, v in self.terms.items() if atom in k})

    def __repr__(self):
        return f"LinearForm({self.terms})"

    def __eq__(self, other):
        return isinstance(other, LinearForm) and self.terms == other.terms

    def __hash__(self):
        return hash(frozenset(self.terms.items()))


def _atom_sort_key(a):
    if isinstance(a, Sym):
        return (0, a.name, a._id)
    return (1, a.key, 0)


_opaque_registry: Dict[str, N.Expr] = {}


def _opaque_key(e: N.Expr) -> str:
    """A canonical key for an opaque sub-expression.

    The printed form alone is not sufficient: two procedures may both contain
    an expression printed as ``n / 8`` whose ``n`` symbols are distinct, so the
    key also encodes the identities of the symbols involved.
    """
    from ..ir.build import used_syms_expr

    sym_ids = "-".join(str(s._id) for s in sorted(used_syms_expr(e), key=lambda s: s._id))
    return f"{expr_str(e)}#{sym_ids}"


def _opaque(e: N.Expr) -> _OpaqueAtom:
    key = _opaque_key(e)
    _opaque_registry.setdefault(key, e)
    return _OpaqueAtom(key, id(_opaque_registry[key]))


def linearize(e: N.Expr) -> LinearForm:
    """Normalise an (index) expression into a linear form."""
    if isinstance(e, N.Const):
        if isinstance(e.val, bool):
            return LinearForm.constant(1 if e.val else 0)
        return LinearForm.constant(e.val)
    if isinstance(e, N.Read) and not e.idx:
        return LinearForm.atom(e.name)
    if isinstance(e, N.USub):
        return linearize(e.arg).scale(-1)
    if isinstance(e, N.BinOp):
        if e.op == "+":
            return linearize(e.lhs) + linearize(e.rhs)
        if e.op == "-":
            return linearize(e.lhs) - linearize(e.rhs)
        if e.op == "*":
            lhs, rhs = linearize(e.lhs), linearize(e.rhs)
            return lhs * rhs
        if e.op in ("/", "%"):
            # keep symbolic unless the numerator is constant
            lhs, rhs = linearize(e.lhs), linearize(e.rhs)
            lc, rc = lhs.constant_value(), rhs.constant_value()
            if lc is not None and rc is not None and rc != 0:
                if e.op == "/":
                    return LinearForm.constant(Fraction(int(lc) // int(rc)))
                return LinearForm.constant(Fraction(int(lc) % int(rc)))
            return LinearForm.atom(_opaque(e))
    return LinearForm.atom(_opaque(e))


def linear_to_expr(lf: LinearForm, typ=index_t) -> N.Expr:
    """Rebuild an expression from a linear form (used by ``simplify``)."""

    def atom_expr(a):
        if isinstance(a, Sym):
            return N.Read(a, [], typ)
        return _rebuild_opaque(a)

    def term_expr(key, coeff) -> N.Expr:
        factors = [atom_expr(a) for a in key]
        e = None
        for f in factors:
            e = f if e is None else N.BinOp("*", e, f, typ)
        c = int(coeff) if coeff.denominator == 1 else coeff
        if e is None:
            return N.Const(int(c) if isinstance(c, int) or c.denominator == 1 else float(c), int_t)
        if coeff == 1:
            return e
        if coeff == -1:
            return N.USub(e, typ)
        return N.BinOp("*", N.Const(int(c), int_t), e, typ)

    items = sorted(lf.terms.items(), key=lambda kv: (len(kv[0]), [_atom_sort_key(a) for a in kv[0]]))
    if not items:
        return N.Const(0, int_t)
    # put the constant term last to match the conventional "a*x + b" layout
    items = [kv for kv in items if kv[0] != ()] + [kv for kv in items if kv[0] == ()]
    out = None
    for key, coeff in items:
        term = term_expr(key, coeff)
        if out is None:
            out = term
            continue
        if isinstance(term, N.USub):
            out = N.BinOp("-", out, term.arg, typ)
        elif isinstance(term, N.Const) and isinstance(term.val, (int, float)) and term.val < 0:
            out = N.BinOp("-", out, N.Const(-term.val, term.typ), typ)
        elif coeff < 0 and isinstance(term, N.BinOp) and term.op == "*" and isinstance(term.lhs, N.Const):
            out = N.BinOp("-", out, N.BinOp("*", N.Const(-term.lhs.val, int_t), term.rhs, typ), typ)
        else:
            out = N.BinOp("+", out, term, typ)
    return out


def _rebuild_opaque(a: _OpaqueAtom) -> N.Expr:
    from ..ir.build import copy_node

    e = _opaque_registry.get(a.key)
    if e is None:  # pragma: no cover - defensive
        raise KeyError(f"unknown opaque atom {a.key!r}")
    return copy_node(e)


def const_value(e: N.Expr) -> Optional[int]:
    """The integer value of a constant index expression, if it is one."""
    lf = linearize(e)
    c = lf.constant_value()
    if c is None or c.denominator != 1:
        return None
    return int(c)


# ---------------------------------------------------------------------------
# Fact environments
# ---------------------------------------------------------------------------


class FactEnv:
    """Facts about symbols, harvested from assertions and loop contexts.

    * divisibility facts  (``M % 8 == 0``)
    * range facts         (``lo <= x < hi`` for loop iterators, ``x >= 1`` for
      sizes, explicit ``N <= 88`` style assertions)
    * equality facts      (``x == e``)
    """

    def __init__(self):
        self.divisors: Dict[Sym, set] = {}
        self.lower: Dict[Sym, int] = {}
        self.upper: Dict[Sym, int] = {}  # inclusive upper bound
        self.upper_expr: Dict[Sym, LinearForm] = {}  # x < expr (exclusive)

    def copy(self) -> "FactEnv":
        out = FactEnv()
        out.divisors = {k: set(v) for k, v in self.divisors.items()}
        out.lower = dict(self.lower)
        out.upper = dict(self.upper)
        out.upper_expr = dict(self.upper_expr)
        return out

    # -- adding facts ------------------------------------------------------------

    def add_size(self, sym: Sym) -> None:
        self.lower[sym] = max(self.lower.get(sym, 1), 1)

    def add_divisible(self, sym: Sym, divisor: int) -> None:
        self.divisors.setdefault(sym, set()).add(divisor)

    def add_range(self, sym: Sym, lo: Optional[int], hi_inclusive: Optional[int]) -> None:
        if lo is not None:
            self.lower[sym] = max(self.lower.get(sym, lo), lo)
        if hi_inclusive is not None:
            cur = self.upper.get(sym)
            self.upper[sym] = hi_inclusive if cur is None else min(cur, hi_inclusive)

    def add_upper_expr(self, sym: Sym, hi_exclusive: N.Expr) -> None:
        self.upper_expr[sym] = linearize(hi_exclusive)

    def add_predicate(self, pred: N.Expr) -> None:
        """Digest an assertion expression into facts (best effort)."""
        if isinstance(pred, N.BinOp) and pred.op == "and":
            self.add_predicate(pred.lhs)
            self.add_predicate(pred.rhs)
            return
        if not isinstance(pred, N.BinOp):
            return
        lhs, rhs, op = pred.lhs, pred.rhs, pred.op
        # M % c == 0
        if (
            op == "=="
            and isinstance(lhs, N.BinOp)
            and lhs.op == "%"
            and isinstance(lhs.lhs, N.Read)
            and not lhs.lhs.idx
            and const_value(lhs.rhs) is not None
            and const_value(rhs) == 0
        ):
            self.add_divisible(lhs.lhs.name, const_value(lhs.rhs))
            return
        # x <= c / x < c / x >= c / x > c / x == c
        if isinstance(lhs, N.Read) and not lhs.idx and const_value(rhs) is not None:
            c = const_value(rhs)
            if op == "<=":
                self.add_range(lhs.name, None, c)
            elif op == "<":
                self.add_range(lhs.name, None, c - 1)
            elif op == ">=":
                self.add_range(lhs.name, c, None)
            elif op == ">":
                self.add_range(lhs.name, c + 1, None)
            elif op == "==":
                self.add_range(lhs.name, c, c)
            return
        # c <= x, etc.
        if isinstance(rhs, N.Read) and not rhs.idx and const_value(lhs) is not None:
            c = const_value(lhs)
            flipped = {"<=": ">=", "<": ">", ">=": "<=", ">": "<", "==": "=="}[op]
            self.add_predicate(N.BinOp(flipped, rhs, lhs, bool_t))
            return

    @staticmethod
    def from_proc(proc_def: N.ProcDef) -> "FactEnv":
        env = FactEnv()
        for a in proc_def.args:
            if getattr(a.typ, "name", None) == "size":
                env.add_size(a.name)
        for p in proc_def.preds:
            env.add_predicate(p)
        return env

    def with_loop(self, iter_sym: Sym, lo: N.Expr, hi: N.Expr) -> "FactEnv":
        """Return a copy with facts for a loop iterator ``lo <= i < hi``."""
        out = self.copy()
        lo_c = const_value(lo)
        hi_c = const_value(hi)
        out.add_range(iter_sym, lo_c if lo_c is not None else None, (hi_c - 1) if hi_c is not None else None)
        if lo_c is None:
            out.lower.setdefault(iter_sym, 0)
        out.add_upper_expr(iter_sym, hi)
        return out

    # -- interval evaluation -------------------------------------------------------

    def interval(self, lf: LinearForm) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """Best-effort [lo, hi] bounds of a linear form (None = unbounded)."""
        lo = Fraction(0)
        hi = Fraction(0)
        lo_ok, hi_ok = True, True
        for key, coeff in lf.terms.items():
            if key == ():
                lo += coeff
                hi += coeff
                continue
            if len(key) != 1:
                # product term: only handle products of non-negative atoms
                lo_b, hi_b = Fraction(1), Fraction(1)
                ok = True
                for a in key:
                    alo, ahi = self._atom_interval(a)
                    if alo is None or alo < 0:
                        ok = False
                        break
                    lo_b *= alo
                    hi_b = None if (hi_b is None or ahi is None) else hi_b * ahi
                if not ok:
                    return None, None
                if coeff >= 0:
                    lo += coeff * lo_b
                    if hi_b is None:
                        hi_ok = False
                    else:
                        hi += coeff * hi_b
                else:
                    if hi_b is None:
                        lo_ok = False
                    else:
                        lo += coeff * hi_b
                    hi += coeff * lo_b
                continue
            a = key[0]
            alo, ahi = self._atom_interval(a)
            if coeff >= 0:
                if alo is None:
                    lo_ok = False
                else:
                    lo += coeff * alo
                if ahi is None:
                    hi_ok = False
                else:
                    hi += coeff * ahi
            else:
                if ahi is None:
                    lo_ok = False
                else:
                    lo += coeff * ahi
                if alo is None:
                    hi_ok = False
                else:
                    hi += coeff * alo
        return (lo if lo_ok else None), (hi if hi_ok else None)

    def _atom_interval(self, a) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        if isinstance(a, Sym):
            lo = self.lower.get(a)
            hi = self.upper.get(a)
            return (Fraction(lo) if lo is not None else None, Fraction(hi) if hi is not None else None)
        # opaque atoms: handle `x % c` (range [0, c-1]) and `x / c` (>= 0 when x >= 0)
        e = _opaque_registry.get(a.key)
        if isinstance(e, N.BinOp) and e.op == "%":
            c = const_value(e.rhs)
            if c is not None and c > 0:
                return Fraction(0), Fraction(c - 1)
        if isinstance(e, N.BinOp) and e.op == "/":
            lhs_lo, lhs_hi = self.interval(linearize(e.lhs))
            c = const_value(e.rhs)
            if c is not None and c > 0:
                lo = None if lhs_lo is None else Fraction(int(lhs_lo) // c)
                hi = None if lhs_hi is None else Fraction(int(lhs_hi) // c)
                return lo, hi
        return None, None

    # -- divisibility ---------------------------------------------------------------

    def divisible(self, e: N.Expr, c: int) -> bool:
        """Can we prove that ``e`` is a multiple of ``c``?"""
        if c in (1, -1):
            return True
        lf = linearize(e)
        for key, coeff in lf.terms.items():
            if coeff.denominator != 1:
                return False
            if int(coeff) % c == 0:
                continue
            if key == ():
                return False
            # a single atom with a divisibility fact can absorb the coefficient
            ok = False
            for a in key:
                if isinstance(a, Sym):
                    for d in self.divisors.get(a, ()):
                        if (int(coeff) * d) % c == 0:
                            ok = True
                            break
                else:
                    ee = _opaque_registry.get(a.key)
                    # (x / c) * c style handled by coefficient already; x % c never helps
                    if isinstance(ee, N.BinOp) and ee.op == "/":
                        d = const_value(ee.rhs)
                        if d is not None and (int(coeff) * 1) % c == 0:
                            ok = True
                            break
                if ok:
                    break
            if not ok:
                return False
        return True


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------


def _simplify_divmod(e: N.BinOp, env: FactEnv) -> Optional[N.Expr]:
    """Targeted ``/`` and ``%`` rewrites justified by range / divisibility facts."""
    c = const_value(e.rhs)
    if c is None or c <= 0:
        return None
    lhs_lf = linearize(e.lhs)
    lo, hi = env.interval(lhs_lf)
    if e.op == "%":
        if lo is not None and hi is not None and lo >= 0 and hi < c:
            return simplify_expr(e.lhs, env)
        if env.divisible(e.lhs, c):
            return N.Const(0, int_t)
        # (c*q + r) % c  ->  r  when 0 <= r < c
        remainder = LinearForm()
        for key, coeff in lhs_lf.terms.items():
            if not (coeff.denominator == 1 and int(coeff) % c == 0):
                remainder = remainder + LinearForm({key: coeff})
        if remainder.terms != lhs_lf.terms:
            rlo, rhi = env.interval(remainder)
            if rlo is not None and rhi is not None and 0 <= rlo and rhi < c:
                return linear_to_expr(remainder, e.typ)
    if e.op == "/":
        if lo is not None and hi is not None and 0 <= lo and hi < c:
            return N.Const(0, int_t)
        # (c*q + r)/c  ->  q  when 0 <= r < c
        quotient = LinearForm()
        remainder = LinearForm()
        for key, coeff in lhs_lf.terms.items():
            if coeff.denominator == 1 and int(coeff) % c == 0:
                quotient = quotient + LinearForm({key: Fraction(int(coeff) // c)})
            else:
                remainder = remainder + LinearForm({key: coeff})
        if not quotient.is_zero():
            rlo, rhi = env.interval(remainder)
            if rlo is not None and rhi is not None and 0 <= rlo and rhi < c:
                return linear_to_expr(quotient, e.typ)
            if remainder.is_zero():
                return linear_to_expr(quotient, e.typ)
    return None


def _fold_divmod_pairs(lf: LinearForm) -> LinearForm:
    """Rewrite ``c*(x/c) + (x%c)``-shaped linear forms back to ``x``."""
    for atom in list(lf.atoms()):
        if not isinstance(atom, _OpaqueAtom):
            continue
        e = _opaque_registry.get(atom.key)
        if not (isinstance(e, N.BinOp) and e.op == "/" ):
            continue
        c = const_value(e.rhs)
        if c is None or c <= 0:
            continue
        mod_key = _opaque_key(N.BinOp("%", e.lhs, e.rhs, e.typ))
        mod_atom = None
        for a2 in lf.atoms():
            if isinstance(a2, _OpaqueAtom) and a2.key == mod_key:
                mod_atom = a2
                break
        if mod_atom is None:
            continue
        div_coeff = lf.terms.get((atom,), Fraction(0))
        mod_coeff = lf.terms.get((mod_atom,), Fraction(0))
        if mod_coeff != 0 and div_coeff == mod_coeff * c:
            new_terms = dict(lf.terms)
            del new_terms[(atom,)]
            del new_terms[(mod_atom,)]
            lf = LinearForm(new_terms) + linearize(e.lhs).scale(mod_coeff)
    return lf


def simplify_expr(e: N.Expr, env: Optional[FactEnv] = None) -> N.Expr:
    """Algebraically simplify an expression (constant folding, collection of
    linear terms, and fact-driven div/mod elimination)."""
    env = env or FactEnv()
    if isinstance(e, (N.Const, N.StrideExpr, N.ReadConfig, N.WindowExpr)):
        return e
    if isinstance(e, N.Read):
        if e.idx:
            e.idx = [simplify_expr(i, env) for i in e.idx]
        return e
    if isinstance(e, N.Extern):
        e.args = [simplify_expr(a, env) for a in e.args]
        return e
    if isinstance(e, N.USub):
        arg = simplify_expr(e.arg, env)
        if isinstance(arg, N.Const):
            return N.Const(-arg.val, arg.typ)
        return N.USub(arg, e.typ)
    if isinstance(e, N.BinOp):
        lhs = simplify_expr(e.lhs, env)
        rhs = simplify_expr(e.rhs, env)
        e = N.BinOp(e.op, lhs, rhs, e.typ)
        numeric = _is_numeric_value_type(e)
        if e.op in ("+", "-", "*") and not numeric:
            lf = linearize(e)
            lf = _fold_divmod_pairs(lf)
            return linear_to_expr(lf, e.typ)
        if e.op in ("/", "%") and not numeric:
            folded = _simplify_divmod(e, env)
            if folded is not None:
                return folded
            lc, rc = const_value(lhs), const_value(rhs)
            if lc is not None and rc not in (None, 0):
                return N.Const(lc // rc if e.op == "/" else lc % rc, int_t)
            return e
        # numeric (data) arithmetic: fold constants only
        if isinstance(lhs, N.Const) and isinstance(rhs, N.Const):
            try:
                val = {
                    "+": lambda a, b: a + b,
                    "-": lambda a, b: a - b,
                    "*": lambda a, b: a * b,
                    "/": lambda a, b: a / b if numeric else a // b,
                    "%": lambda a, b: a % b,
                    "<": lambda a, b: a < b,
                    "<=": lambda a, b: a <= b,
                    ">": lambda a, b: a > b,
                    ">=": lambda a, b: a >= b,
                    "==": lambda a, b: a == b,
                    "!=": lambda a, b: a != b,
                    "and": lambda a, b: bool(a) and bool(b),
                    "or": lambda a, b: bool(a) or bool(b),
                }[e.op](lhs.val, rhs.val)
            except ZeroDivisionError:
                return e
            typ = bool_t if isinstance(val, bool) else e.typ
            return N.Const(val, typ)
        # identity elements for numeric arithmetic
        if e.op == "*":
            if isinstance(lhs, N.Const) and lhs.val == 1:
                return rhs
            if isinstance(rhs, N.Const) and rhs.val == 1:
                return lhs
            if (isinstance(lhs, N.Const) and lhs.val == 0) or (isinstance(rhs, N.Const) and rhs.val == 0):
                return N.Const(0, e.typ)
        if e.op == "+":
            if isinstance(lhs, N.Const) and lhs.val == 0:
                return rhs
            if isinstance(rhs, N.Const) and rhs.val == 0:
                return lhs
        if e.op == "-" and isinstance(rhs, N.Const) and rhs.val == 0:
            return lhs
        # comparison simplification over index expressions
        if e.op in ("<", "<=", ">", ">=", "==", "!=") and not numeric:
            verdict = prove(e, env)
            if verdict is True:
                return N.Const(True, bool_t)
            neg = _negate_cmp(e)
            if neg is not None and prove(neg, env) is True:
                return N.Const(False, bool_t)
        return e
    return e


def _is_numeric_value_type(e: N.BinOp) -> bool:
    typ = getattr(e, "typ", None)
    return bool(getattr(typ, "is_numeric", False))


def _negate_cmp(e: N.BinOp) -> Optional[N.BinOp]:
    table = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
    if e.op not in table:
        return None
    return N.BinOp(table[e.op], e.lhs, e.rhs, bool_t)


# ---------------------------------------------------------------------------
# Proving
# ---------------------------------------------------------------------------


def exprs_equal(a: N.Expr, b: N.Expr, env: Optional[FactEnv] = None) -> bool:
    """Can we prove that two index expressions are equal?"""
    diff = linearize(a) - linearize(b)
    if diff.is_zero():
        return True
    env = env or FactEnv()
    lo, hi = env.interval(diff)
    return lo is not None and hi is not None and lo == 0 and hi == 0


def prove(cond: N.Expr, env: Optional[FactEnv] = None) -> Optional[bool]:
    """Try to prove a boolean condition.  Returns True if provable, False if
    provably false, and None if unknown."""
    env = env or FactEnv()
    if isinstance(cond, N.Const):
        return bool(cond.val)
    if not isinstance(cond, N.BinOp):
        return None
    if cond.op == "and":
        a, b = prove(cond.lhs, env), prove(cond.rhs, env)
        if a is True and b is True:
            return True
        if a is False or b is False:
            return False
        return None
    if cond.op == "or":
        a, b = prove(cond.lhs, env), prove(cond.rhs, env)
        if a is True or b is True:
            return True
        if a is False and b is False:
            return False
        return None
    if cond.op not in ("<", "<=", ">", ">=", "==", "!="):
        return None
    diff = linearize(cond.lhs) - linearize(cond.rhs)
    lo, hi = env.interval(diff)

    def decide(true_if, false_if):
        if true_if:
            return True
        if false_if:
            return False
        return None

    if cond.op == "<":
        return decide(hi is not None and hi < 0, lo is not None and lo >= 0)
    if cond.op == "<=":
        return decide(hi is not None and hi <= 0, lo is not None and lo > 0)
    if cond.op == ">":
        return decide(lo is not None and lo > 0, hi is not None and hi <= 0)
    if cond.op == ">=":
        return decide(lo is not None and lo >= 0, hi is not None and hi < 0)
    if cond.op == "==":
        if diff.is_zero():
            return True
        if (lo is not None and lo > 0) or (hi is not None and hi < 0):
            return False
        if lo is not None and hi is not None and lo == 0 and hi == 0:
            return True
        # divisibility-style equalities, e.g. M % 8 == 0
        if isinstance(cond.lhs, N.BinOp) and cond.lhs.op == "%" and const_value(cond.rhs) == 0:
            c = const_value(cond.lhs.rhs)
            if c is not None and env.divisible(cond.lhs.lhs, c):
                return True
        return None
    if cond.op == "!=":
        if (lo is not None and lo > 0) or (hi is not None and hi < 0):
            return True
        if diff.is_zero():
            return False
        return None
    return None


def prove_divisible(e: N.Expr, c: int, env: Optional[FactEnv] = None) -> bool:
    env = env or FactEnv()
    return env.divisible(e, c)
