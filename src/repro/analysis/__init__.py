"""Static analysis used to justify scheduling primitives."""

from .effects import (
    Access,
    accesses_of,
    body_depends_on_iter,
    depends_on_allocs,
    is_idempotent,
    loop_iterations_commute,
    read_buffers,
    stmts_commute,
    written_buffers,
)
from .linear import (
    FactEnv,
    LinearForm,
    const_value,
    exprs_equal,
    linear_to_expr,
    linearize,
    prove,
    prove_divisible,
    simplify_expr,
)

__all__ = [
    "Access",
    "accesses_of",
    "body_depends_on_iter",
    "depends_on_allocs",
    "is_idempotent",
    "loop_iterations_commute",
    "read_buffers",
    "stmts_commute",
    "written_buffers",
    "FactEnv",
    "LinearForm",
    "const_value",
    "exprs_equal",
    "linear_to_expr",
    "linearize",
    "prove",
    "prove_divisible",
    "simplify_expr",
]
