"""Effect and dependence analysis.

Scheduling primitives justify their safety with questions like *do these two
statements commute?*, *do distinct iterations of this loop commute?*, or *is
this statement block idempotent?*.  This module answers those questions
conservatively (a ``False`` answer means "could not prove safe", not
"provably unsafe") using the linear analysis of :mod:`repro.analysis.linear`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import nodes as N
from ..ir.build import collect_allocs, walk
from ..ir.syms import Sym
from .linear import FactEnv, LinearForm, linearize, prove

__all__ = [
    "Access",
    "accesses_of",
    "written_buffers",
    "read_buffers",
    "stmts_commute",
    "loop_iterations_commute",
    "is_idempotent",
    "depends_on_allocs",
    "body_depends_on_iter",
]


@dataclass
class Access:
    """One access to a buffer.

    ``idx`` is the list of index expressions for an element access, or ``None``
    for whole-buffer accesses (window arguments, calls).
    """

    buf: Sym
    kind: str  # 'read' | 'write' | 'reduce'
    idx: Optional[List[N.Expr]]

    def is_write(self) -> bool:
        return self.kind in ("write", "reduce")


def _expr_accesses(e: N.Expr, out: List[Access]) -> None:
    for node, _ in walk(e):
        if isinstance(node, N.Read):
            out.append(Access(node.name, "read", list(node.idx)))
        elif isinstance(node, N.WindowExpr):
            out.append(Access(node.name, "read", None))
        elif isinstance(node, N.StrideExpr):
            out.append(Access(node.name, "read", None))


def accesses_of(stmts) -> List[Access]:
    """All buffer accesses performed by a statement or statement list."""
    stmts = stmts if isinstance(stmts, list) else [stmts]
    out: List[Access] = []

    def visit(s: N.Stmt) -> None:
        if isinstance(s, (N.Assign, N.Reduce)):
            for i in s.idx:
                _expr_accesses(i, out)
            _expr_accesses(s.rhs, out)
            out.append(Access(s.name, "write" if isinstance(s, N.Assign) else "reduce", list(s.idx)))
        elif isinstance(s, N.For):
            _expr_accesses(s.lo, out)
            _expr_accesses(s.hi, out)
            for b in s.body:
                visit(b)
        elif isinstance(s, N.If):
            _expr_accesses(s.cond, out)
            for b in s.body:
                visit(b)
            for b in s.orelse:
                visit(b)
        elif isinstance(s, N.Call):
            callee = s.proc
            callee_args = callee._root.args if hasattr(callee, "_root") else callee.args
            for arg_expr, fn_arg in zip(s.args, callee_args):
                if isinstance(arg_expr, (N.WindowExpr, N.Read)) and isinstance(
                    arg_expr, N.WindowExpr
                ):
                    out.append(Access(arg_expr.name, "read", None))
                    out.append(Access(arg_expr.name, "write", None))
                    for w in arg_expr.idx:
                        if isinstance(w, N.Interval):
                            _expr_accesses(w.lo, out)
                            _expr_accesses(w.hi, out)
                        else:
                            _expr_accesses(w.pt, out)
                elif isinstance(arg_expr, N.Read) and arg_expr.idx == [] and _is_tensor_arg(fn_arg):
                    out.append(Access(arg_expr.name, "read", None))
                    out.append(Access(arg_expr.name, "write", None))
                else:
                    _expr_accesses(arg_expr, out)
        elif isinstance(s, N.WindowStmt):
            out.append(Access(s.rhs.name, "read", None))
            out.append(Access(s.name, "write", None))
        elif isinstance(s, N.WriteConfig):
            _expr_accesses(s.rhs, out)
        elif isinstance(s, (N.Alloc, N.Pass)):
            pass

    for s in stmts:
        visit(s)
    return out


def _is_tensor_arg(fn_arg) -> bool:
    from ..ir.types import TensorType

    return isinstance(getattr(fn_arg, "typ", None), TensorType)


def written_buffers(stmts) -> Set[Sym]:
    return {a.buf for a in accesses_of(stmts) if a.is_write()}


def read_buffers(stmts) -> Set[Sym]:
    return {a.buf for a in accesses_of(stmts) if a.kind == "read" or a.kind == "reduce"}


def _config_writes(stmts, _depth: int = 0) -> Set[Tuple[object, str]]:
    stmts = stmts if isinstance(stmts, list) else [stmts]
    out = set()
    for s in stmts:
        for node, _ in walk(s):
            if isinstance(node, N.WriteConfig):
                out.add((id(node.config), node.field_name))
            if isinstance(node, N.Call) and _depth < 4:
                callee = node.proc
                body = callee._root.body if hasattr(callee, "_root") else getattr(callee, "body", [])
                out |= _config_writes(list(body), _depth + 1)
    return out


def _config_reads(stmts, _depth: int = 0) -> Set[Tuple[object, str]]:
    stmts = stmts if isinstance(stmts, list) else [stmts]
    out = set()
    for s in stmts:
        for node, _ in walk(s):
            if isinstance(node, N.ReadConfig):
                out.add((id(node.config), node.field_name))
            if isinstance(node, N.Call) and _depth < 4:
                callee = node.proc
                body = callee._root.body if hasattr(callee, "_root") else getattr(callee, "body", [])
                out |= _config_reads(list(body), _depth + 1)
    return out


def _accesses_disjoint(a1: Access, a2: Access, env: FactEnv) -> bool:
    """Can we prove the two accesses touch disjoint elements?"""
    if a1.idx is None or a2.idx is None:
        return False
    if len(a1.idx) != len(a2.idx):
        return False
    from ..ir.types import bool_t

    for i1, i2 in zip(a1.idx, a2.idx):
        if prove(N.BinOp("!=", i1, i2, bool_t), env) is True:
            return True
    return False


def stmts_commute(s1, s2, env: Optional[FactEnv] = None) -> bool:
    """Can the two statements (or statement blocks) be reordered safely?"""
    env = env or FactEnv()
    acc1 = accesses_of(s1)
    acc2 = accesses_of(s2)
    # allocations local to either side shield their accesses
    local1 = {a.name for a in collect_allocs(s1 if isinstance(s1, list) else [s1])}
    local2 = {a.name for a in collect_allocs(s2 if isinstance(s2, list) else [s2])}
    local = local1 | local2

    # statements that read allocations made in the other are not reorderable
    for a in acc2:
        if a.buf in local1:
            return False
    for a in acc1:
        if a.buf in local2:
            return False

    # configuration-state conflicts
    cw1, cw2 = _config_writes(s1), _config_writes(s2)
    cr1, cr2 = _config_reads(s1), _config_reads(s2)
    if (cw1 & (cw2 | cr2)) or (cw2 & (cw1 | cr1)):
        return False

    by_buf: Dict[Sym, List[Access]] = {}
    for a in acc2:
        by_buf.setdefault(a.buf, []).append(a)
    for a1 in acc1:
        if a1.buf in local:
            continue
        for a2 in by_buf.get(a1.buf, ()):
            if not (a1.is_write() or a2.is_write()):
                continue
            if a1.kind == "reduce" and a2.kind == "reduce":
                continue  # reductions into the same buffer commute
            if _accesses_disjoint(a1, a2, env):
                continue
            return False
    return True


def _iter_coeff(idx_expr: N.Expr, it: Sym):
    lf = linearize(idx_expr)
    return lf.coeff_of(it), lf


def loop_iterations_commute(loop: N.For, env: Optional[FactEnv] = None) -> bool:
    """Do distinct iterations of ``loop`` commute (no loop-carried dependence)?

    Sufficient conditions checked, per written buffer:

    * every access is a reduction (reductions commute), or
    * every pair of accesses (with at least one write) shares an index
      dimension that is the *same* affine function of the iterator with a
      non-zero iterator coefficient — distinct iterations then touch distinct
      elements.
    Buffers allocated inside the loop body are private to an iteration and are
    ignored.
    """
    env = (env or FactEnv()).with_loop(loop.iter, loop.lo, loop.hi)
    it = loop.iter
    accs = accesses_of(loop.body)
    local = {a.name for a in collect_allocs(loop.body)}

    # configuration writes: every iteration must write the same value (the
    # written expression cannot depend on the iterator), otherwise reordering
    # iterations changes what later reads observe
    for s in loop.body:
        for node, _ in walk(s):
            if isinstance(node, N.WriteConfig) and body_depends_on_iter([N.Pass()], it) is False:
                from ..ir.build import used_syms_expr as _use

                if it in _use(node.rhs):
                    return False

    by_buf: Dict[Sym, List[Access]] = {}
    for a in accs:
        if a.buf in local or a.buf is it:
            continue
        by_buf.setdefault(a.buf, []).append(a)

    for buf, lst in by_buf.items():
        writes = [a for a in lst if a.is_write()]
        if not writes:
            continue
        if all(a.kind == "reduce" for a in lst):
            # every access is a `+=` reduction: additions commute, so the
            # iteration order is unobservable.  A read of the same buffer
            # falls through to the disjointness analysis below instead.
            continue
        # look for a common distinguishing dimension
        if any(a.idx is None for a in lst):
            return False
        ndim = len(lst[0].idx)
        if any(len(a.idx) != ndim for a in lst):
            return False
        found_dim = False
        for d in range(ndim):
            coeffs_forms = [_iter_coeff(a.idx[d], it) for a in lst]
            coeffs = [c for c, _ in coeffs_forms]
            forms = [f for _, f in coeffs_forms]
            if any(c == 0 for c in coeffs):
                continue
            if all(f == forms[0] for f in forms):
                found_dim = True
                break
        if not found_dim:
            return False
    return True


def body_depends_on_iter(stmts: Sequence[N.Stmt], it: Sym) -> bool:
    """Does the statement block read the loop iterator ``it`` anywhere?"""
    stmts = stmts if isinstance(stmts, list) else [stmts]
    for s in stmts:
        for node, _ in walk(s):
            if isinstance(node, N.Read) and node.name is it:
                return True
            if isinstance(node, (N.WindowExpr,)) and any(
                it in _syms_of_windowidx(w) for w in node.idx
            ):
                return True
    return False


def _syms_of_windowidx(w) -> Set[Sym]:
    from ..ir.build import used_syms_expr

    if isinstance(w, N.Interval):
        return used_syms_expr(w.lo) | used_syms_expr(w.hi)
    return used_syms_expr(w.pt)


def is_idempotent(stmts) -> bool:
    """Is executing the statement block twice equivalent to executing it once?

    Sufficient condition: the block contains no reductions, and no assignment
    reads a buffer that the block also writes (so re-execution recomputes the
    same values).
    """
    stmts = stmts if isinstance(stmts, list) else [stmts]
    accs = accesses_of(stmts)
    local = {a.name for a in collect_allocs(stmts)}
    written = {a.buf for a in accs if a.is_write() and a.buf not in local}
    for a in accs:
        if a.kind == "reduce" and a.buf not in local:
            return False
        if a.kind == "read" and a.buf in written:
            return False
    # configuration writes are idempotent as long as the values written do not
    # themselves depend on configuration state that the block overwrites
    if _config_writes(stmts) & _config_reads(stmts):
        return False
    return True


def depends_on_allocs(stmts, allocs: Set[Sym]) -> bool:
    """Does the statement block access any buffer in ``allocs``?"""
    for a in accesses_of(stmts):
        if a.buf in allocs:
            return True
    return False
