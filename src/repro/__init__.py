"""repro — a reproduction of "Exo 2: Growing a Scheduling Language" (ASPLOS 2025).

The package provides:

* an object language (``@proc`` / ``@instr``) with a pure-Python front-end,
* Cursors — multiple, stable, relative references into object code,
* ~46 fine-grained, safety-checked scheduling primitives,
* user-space scheduling libraries (``repro.stdlib``, ``repro.blas``,
  ``repro.halide``, ``repro.gemmini``) built from those primitives,
* an interpreter, a C backend, machine models, and a performance model used to
  reproduce the paper's evaluation.

Quickstart::

    from __future__ import annotations
    from repro import proc, divide_loop, lift_scope
    from repro.lang import *

    @proc
    def gemv(M: size, N: size, A: f32[M, N] @ DRAM,
             x: f32[N] @ DRAM, y: f32[M] @ DRAM):
        assert M % 8 == 0
        assert N % 8 == 0
        for i in seq(0, M):
            for j in seq(0, N):
                y[i] += A[i, j] * x[j]

    g = divide_loop(gemv, 'i', 8, ['io', 'ii'], perfect=True)
    g = divide_loop(g, 'j', 8, ['jo', 'ji'], perfect=True)
    g = lift_scope(g, 'jo')
"""

from .core.procedure import Procedure
from .errors import (
    BackendError,
    ExoError,
    InvalidCursorError,
    ParseError,
    SchedulingError,
)
from .frontend.decorators import instr, proc, proc_from_source
from .ir.config import Config, new_config
from .ir.memories import DRAM, DRAM_STACK, DRAM_STATIC, Memory, MemoryKind
from .primitives import *  # noqa: F401,F403 - the scheduling primitives
from .primitives import __all__ as _primitives_all

__version__ = "1.0.0"

__all__ = [
    "Procedure",
    "proc",
    "instr",
    "proc_from_source",
    "Config",
    "new_config",
    "Memory",
    "MemoryKind",
    "DRAM",
    "DRAM_STACK",
    "DRAM_STATIC",
    "ExoError",
    "SchedulingError",
    "InvalidCursorError",
    "ParseError",
    "BackendError",
    "__version__",
] + list(_primitives_all)
