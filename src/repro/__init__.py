"""repro — a reproduction of "Exo 2: Growing a Scheduling Language" (ASPLOS 2025).

The package provides:

* an object language (``@proc`` / ``@instr``) with a pure-Python front-end,
* Cursors — multiple, stable, relative references into object code,
* ~46 fine-grained, safety-checked scheduling primitives,
* ``repro.api`` — schedules as first-class values: every primitive lifted
  into curried ``Schedule`` form on the ``S`` namespace, combinators
  (``seq``/``try_``/``at``/traversals), named knobs, JSON-serializable
  traces with replay, and a replay cache,
* user-space scheduling libraries (``repro.stdlib``, ``repro.blas``,
  ``repro.halide``, ``repro.gemmini``) built from those primitives and
  expressed as Schedule values,
* an interpreter, a compiled NumPy execution engine, a C backend, machine
  models, and a performance model used to reproduce the paper's evaluation.

Quickstart::

    from __future__ import annotations
    from repro import proc, divide_loop, lift_scope
    from repro.lang import *

    @proc
    def gemv(M: size, N: size, A: f32[M, N] @ DRAM,
             x: f32[N] @ DRAM, y: f32[M] @ DRAM):
        assert M % 8 == 0
        assert N % 8 == 0
        for i in seq(0, M):
            for j in seq(0, N):
                y[i] += A[i, j] * x[j]

    g = divide_loop(gemv, 'i', 8, ['io', 'ii'], perfect=True)
    g = divide_loop(g, 'j', 8, ['jo', 'ji'], perfect=True)
    g = lift_scope(g, 'jo')
"""

from .core.procedure import Procedure
from .errors import (
    BackendError,
    ExoError,
    InvalidCursorError,
    ParseError,
    SchedulingError,
)
from .frontend.decorators import instr, proc, proc_from_source
from .ir.config import Config, new_config
from .ir.memories import DRAM, DRAM_STACK, DRAM_STATIC, Memory, MemoryKind
from .primitives import *  # noqa: F401,F403 - the scheduling primitives
from .primitives import __all__ as _primitives_all

# the first-class schedule surface (combinators live in repro.api to avoid
# name collisions with repro.lang's object-code builders)
from .api import (
    S,
    Knob,
    ReplayCache,
    Schedule,
    Trace,
    knob,
    lift_op,
    register_op,
    replay,
    sched,
    schedule_cache,
)

__version__ = "1.0.0"

__all__ = [
    "Procedure",
    "proc",
    "instr",
    "proc_from_source",
    "S",
    "Schedule",
    "knob",
    "Knob",
    "sched",
    "lift_op",
    "register_op",
    "Trace",
    "replay",
    "ReplayCache",
    "schedule_cache",
    "Config",
    "new_config",
    "Memory",
    "MemoryKind",
    "DRAM",
    "DRAM_STACK",
    "DRAM_STATIC",
    "ExoError",
    "SchedulingError",
    "InvalidCursorError",
    "ParseError",
    "BackendError",
    "__version__",
] + list(_primitives_all)
