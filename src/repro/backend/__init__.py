"""C backend (code generation and backend checks)."""

from .checks import backend_check
from .codegen import compile_to_c, proc_to_c

__all__ = ["compile_to_c", "proc_to_c", "backend_check"]
