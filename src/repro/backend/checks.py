"""Backend consistency checks (Appendix A.7).

Precision, memory and window annotations are *rewritten* by scheduling
primitives but only *checked* here, immediately before code generation:

* every buffer read/written by an instruction call must live in a memory space
  compatible with the instruction's expectations,
* parallel loops must have no cross-iteration dependencies,
* window arguments at call sites must match the callee's windowing convention.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.effects import loop_iterations_commute
from ..analysis.linear import FactEnv
from ..errors import BackendError
from ..ir import nodes as N
from ..ir.build import walk
from ..ir.memories import Memory, MemoryKind
from ..ir.types import TensorType

__all__ = ["backend_check"]


def _buffer_memories(root) -> Dict[object, Memory]:
    mems = {}
    for a in root.args:
        if isinstance(a.typ, TensorType):
            mems[a.name] = a.mem
    for n, _ in walk(root):
        if isinstance(n, N.Alloc):
            mems[n.name] = n.mem
    return mems


def backend_check(procedure) -> None:
    """Raise :class:`BackendError` if the procedure's annotations are
    inconsistent; returns None when the procedure is ready for code generation."""
    root = procedure._root if hasattr(procedure, "_root") else procedure
    mems = _buffer_memories(root)
    env = FactEnv.from_proc(root)

    dram_like = (MemoryKind.DRAM, MemoryKind.STACK, MemoryKind.STATIC, None)

    for n, _ in walk(root):
        if isinstance(n, N.Call):
            callee = n.proc
            cdef = callee._root if hasattr(callee, "_root") else callee
            if len(cdef.args) != len(n.args):
                raise BackendError(f"call to {cdef.name}: wrong number of arguments")
            for fn_arg, actual in zip(cdef.args, n.args):
                if not isinstance(fn_arg.typ, TensorType):
                    continue
                if not isinstance(actual, (N.WindowExpr, N.Read)):
                    raise BackendError(
                        f"call to {cdef.name}: tensor argument {fn_arg.name} must be a buffer or window"
                    )
                buf_mem = mems.get(actual.name)
                want = fn_arg.mem
                if want is None or buf_mem is None:
                    continue
                if want.kind in dram_like:
                    if buf_mem.kind not in dram_like:
                        raise BackendError(
                            f"call to {cdef.name}: argument {fn_arg.name} expects DRAM but got {buf_mem}"
                        )
                elif want.kind != buf_mem.kind:
                    raise BackendError(
                        f"call to {cdef.name}: argument {fn_arg.name} expects {want} but got {buf_mem}"
                    )
        if isinstance(n, N.For) and n.pragma == "par":
            if not loop_iterations_commute(n, env):
                raise BackendError(
                    f"parallel loop {n.iter} carries a dependency between iterations"
                )
