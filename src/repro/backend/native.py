"""Native execution backend: compile generated C, cache it, call it.

The pipeline is ``emit_unit`` (:mod:`repro.backend.codegen`) → system ``cc``
(``-O3 -march=native -fPIC -shared``) → ``ctypes.CDLL`` → a callable
:class:`NativeProc` that takes the same argument dict :func:`run_proc` builds
(NumPy buffers pass as data pointers plus explicit per-dimension *element*
strides, so views and transposes work without copies).

Compiled shared objects persist in an on-disk artifact cache keyed — with the
same discipline as the tuner leaderboard — on

    (codegen version, procedure digest, generated-source digest,
     codegen options, cc version, machine id)

where the procedure digest is the sha256 of the *printed* procedure (process
stable, unlike the in-memory ``struct_hash``).  Warm runs therefore skip the
compiler entirely, across processes.  Artifacts are written atomically
(temp file + rename), corrupt or truncated ``.so`` files are evicted and
rebuilt, and the cache is LRU-pruned so it cannot grow without bound.

Failures split into :class:`CodegenError` (the procedure cannot be lowered),
:class:`NativeUnavailableError` (no ``cc``, compile or load failed — the
interpreter falls back to the compiled NumPy engine) and
:class:`NativeRunError` (argument mismatch at call time).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import BackendError
from ..ir.printing import proc_str
from .codegen import CODEGEN_VERSION, CodegenError, CodegenOptions, NativeUnit, emit_unit

__all__ = [
    "NativeError",
    "NativeUnavailableError",
    "NativeRunError",
    "NativeProc",
    "artifact_key",
    "cache_dir",
    "cache_stats",
    "compile_native",
    "find_cc",
    "reset_cache_stats",
    "clear_memo",
    "MAX_CACHE_ENTRIES",
]


class NativeError(BackendError):
    """Base class of native-backend failures."""


class NativeUnavailableError(NativeError):
    """The native backend cannot produce a callable here (no C compiler, or
    the compile/load step failed).  Callers degrade to the NumPy engine."""


class NativeRunError(NativeError):
    """A compiled kernel was called with arguments that do not fit its
    calling convention (wrong dtype, wrong rank, misaligned strides)."""


MAX_CACHE_ENTRIES = 256

_stats = {"memo_hits": 0, "disk_hits": 0, "compiles": 0, "corrupt_evicted": 0, "pruned": 0}
_memo: Dict[str, "NativeProc"] = {}
_cc_version_memo: Dict[str, str] = {}


def cache_stats() -> Dict[str, int]:
    """Counters of the persistent artifact cache (process-wide)."""
    return dict(_stats)


def reset_cache_stats() -> None:
    for k in _stats:
        _stats[k] = 0


def clear_memo() -> None:
    """Drop the in-process memo (cached ctypes handles stay loaded)."""
    _memo.clear()


def cache_dir() -> str:
    """The artifact cache directory (override with ``REPRO_NATIVE_CACHE``)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")


def find_cc() -> Optional[str]:
    """Absolute path of the system C compiler, or None."""
    return shutil.which(os.environ.get("CC") or "cc")


def cc_version(cc: str) -> str:
    got = _cc_version_memo.get(cc)
    if got is None:
        try:
            out = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=30, check=True
            ).stdout
            got = out.splitlines()[0].strip() if out else "unknown"
        except (OSError, subprocess.SubprocessError):
            got = "unknown"
        _cc_version_memo[cc] = got
    return got


def _machine_id() -> str:
    try:
        from ..tune.results import machine_id

        return machine_id()
    except Exception:
        return f"{platform.system()}-{platform.machine()}"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def artifact_key(procedure, options: Optional[CodegenOptions] = None, cc: Optional[str] = None) -> str:
    """The persistent cache key for one procedure's compiled artifact.

    Stable across processes: every component is either a version constant, a
    digest of printed text, or a machine/toolchain identifier.
    """
    root = procedure._root if hasattr(procedure, "_root") else procedure
    options = options or CodegenOptions()
    unit = emit_unit(root, options)
    cc = cc or find_cc() or "cc"
    parts = "|".join(
        [
            f"codegen={CODEGEN_VERSION}",
            f"proc={_sha(proc_str(root))}",
            f"src={_sha(unit.source)}",
            f"opts={options.key()}",
            f"cc={cc_version(cc) if os.path.exists(cc) else cc}",
            f"machine={_machine_id()}",
        ]
    )
    return _sha(parts)[:32]


# ---------------------------------------------------------------------------
# The callable
# ---------------------------------------------------------------------------


_SCALAR_CTYPES = {
    "i64": ctypes.c_int64,
    "i32": ctypes.c_int32,
    "f64": ctypes.c_double,
    "bool": ctypes.c_bool,
}


@dataclass
class NativeProc:
    """A loaded, callable compiled kernel."""

    name: str
    source: str
    argspec: Tuple[tuple, ...]
    so_path: str
    _fn: object = None

    def __call__(self, values: Dict[str, object]) -> None:
        """Run the kernel on a ``{arg name: value}`` dict (tensors in place)."""
        args: List[object] = []
        for spec in self.argspec:
            if spec[0] == "tensor":
                _tag, dtype_name, rank, name = spec
                v = values[name]
                if not isinstance(v, np.ndarray):
                    raise NativeRunError(f"{self.name}: argument {name!r} must be a numpy array")
                if v.dtype != np.dtype(dtype_name):
                    raise NativeRunError(
                        f"{self.name}: argument {name!r} has dtype {v.dtype}, expected {dtype_name}"
                    )
                if v.ndim != rank:
                    raise NativeRunError(
                        f"{self.name}: argument {name!r} has rank {v.ndim}, expected {rank}"
                    )
                args.append(ctypes.c_void_p(v.ctypes.data))
                for d in range(rank):
                    s = v.strides[d]
                    if s % v.itemsize != 0:
                        raise NativeRunError(
                            f"{self.name}: argument {name!r} has a sub-element stride"
                        )
                    args.append(ctypes.c_int64(s // v.itemsize))
            else:
                tag, name = spec
                v = values[name]
                if tag == "f64":
                    args.append(ctypes.c_double(float(v)))
                elif tag == "bool":
                    args.append(ctypes.c_bool(bool(v)))
                else:
                    args.append(_SCALAR_CTYPES[tag](int(v)))
        self._fn(*args)


# ---------------------------------------------------------------------------
# Build + cache
# ---------------------------------------------------------------------------


def _load(unit: NativeUnit, so_path: str) -> NativeProc:
    lib = ctypes.CDLL(so_path)
    fn = getattr(lib, unit.name)
    fn.restype = None
    return NativeProc(unit.name, unit.source, unit.argspec, so_path, fn)


def _build(cc: str, options: CodegenOptions, c_path: str, so_path: str) -> None:
    fd, tmp_so = tempfile.mkstemp(suffix=".so", dir=os.path.dirname(so_path))
    os.close(fd)
    cmd = [cc, *options.cflags(), "-fPIC", "-shared", "-o", tmp_so, c_path, "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.splitlines()[-12:])
            raise NativeUnavailableError(f"cc failed for {os.path.basename(c_path)}:\n{tail}")
        os.replace(tmp_so, so_path)  # atomic publish; readers never see a torn .so
    finally:
        if os.path.exists(tmp_so):
            os.unlink(tmp_so)


def _write_atomic(path: str, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path))
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _prune(directory: str, keep: int) -> None:
    """Drop the least-recently-used artifacts beyond ``keep`` entries (hits
    touch the ``.so`` mtime, so mtime order is use order)."""
    try:
        sos = [e for e in os.scandir(directory) if e.name.endswith(".so")]
    except OSError:
        return
    if len(sos) <= keep:
        return
    sos.sort(key=lambda e: e.stat().st_mtime)
    for e in sos[: len(sos) - keep]:
        stem = e.path[: -len(".so")]
        for victim in (e.path, stem + ".c"):
            try:
                os.unlink(victim)
            except OSError:
                pass
        _stats["pruned"] += 1


def compile_native(
    procedure,
    options: Optional[CodegenOptions] = None,
    directory: Optional[str] = None,
) -> NativeProc:
    """Compile (or fetch from cache) a procedure's native kernel.

    Raises :class:`CodegenError` when the procedure cannot be lowered to C
    and :class:`NativeUnavailableError` when no working toolchain is
    available; both are non-destructive (nothing half-built is left behind).
    """
    root = procedure._root if hasattr(procedure, "_root") else procedure
    options = options or CodegenOptions()
    cc = find_cc()
    if cc is None:
        raise NativeUnavailableError("no C compiler on PATH (set $CC or install cc)")

    unit = emit_unit(root, options)  # may raise CodegenError
    key = artifact_key(root, options, cc)
    memo = _memo.get(key)
    if memo is not None:
        _stats["memo_hits"] += 1
        return memo

    directory = directory or cache_dir()
    os.makedirs(directory, exist_ok=True)
    so_path = os.path.join(directory, f"{key}.so")
    c_path = os.path.join(directory, f"{key}.c")

    proc = None
    if os.path.exists(so_path):
        try:
            proc = _load(unit, so_path)
            _stats["disk_hits"] += 1
            os.utime(so_path)  # LRU touch
        except OSError:
            # corrupt or truncated artifact: evict and rebuild
            _stats["corrupt_evicted"] += 1
            try:
                os.unlink(so_path)
            except OSError:
                pass
    if proc is None:
        _write_atomic(c_path, unit.source)
        _build(cc, options, c_path, so_path)
        _stats["compiles"] += 1
        try:
            proc = _load(unit, so_path)
        except OSError as exc:
            raise NativeUnavailableError(f"cannot load freshly built {so_path}: {exc}") from exc
        _prune(directory, MAX_CACHE_ENTRIES)
    _memo[key] = proc
    return proc
