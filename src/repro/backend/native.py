"""Native execution backend: compile generated C, cache it, call it.

The pipeline is ``emit_unit`` (:mod:`repro.backend.codegen`) → system ``cc``
(``-O3 -march=native -fPIC -shared``) → ``ctypes.CDLL`` → a callable
:class:`NativeProc` that takes the same argument dict :func:`run_proc` builds
(NumPy buffers pass as data pointers plus explicit per-dimension *element*
strides, so views and transposes work without copies).

Compiled shared objects persist in an on-disk artifact cache keyed — with the
same discipline as the tuner leaderboard — on

    (codegen version, procedure digest, generated-source digest,
     codegen options, cc version, machine id)

where the procedure digest is the sha256 of the *printed* procedure (process
stable, unlike the in-memory ``struct_hash``).  Warm runs therefore skip the
compiler entirely, across processes.  Artifacts are written atomically
(temp file + rename), corrupt or truncated ``.so`` files are evicted and
rebuilt, and the cache is LRU-pruned so it cannot grow without bound.

Failures split into :class:`CodegenError` (the procedure cannot be lowered),
:class:`NativeUnavailableError` (no ``cc``, compile or load failed — the
interpreter falls back to the compiled NumPy engine),
:class:`NativeRunError` (argument mismatch at call time) and
:class:`ArtifactPoisonedError` (the artifact crashed or hung its quarantined
first run and is now banned on this machine).

Trust lifecycle (ISSUE 7)
-------------------------
Loading freshly generated machine code into the host process is a trust
decision, so every artifact carries a status in a ``<key>.meta.json``
sidecar: ``new`` (never executed here), ``validated`` (survived a clean
first run inside the forked quarantine guard — all later calls go in-process
at full speed), or ``poisoned`` (its guarded first run died on a signal or
hung past the watchdog; :func:`call_guarded` refuses it forever after
without re-entering the guard).  :func:`call_guarded` is the execution
entry point ``run_proc(backend="c")`` uses; calling a :class:`NativeProc`
directly bypasses the guard (appropriate only for already-trusted contexts
such as the differential test sweep).

Transient failures — the ``cc`` process failing to spawn, the atomic
artifact publish losing a filesystem race — are retried with bounded
exponential backoff (:func:`repro.guard.retry.with_retry`).  All of these
paths honour the named faults of :mod:`repro.guard.faults` (``cc-missing``,
``cc-transient``, ``artifact-corrupt``, ``publish-race``, ``omp-missing``).

OpenMP
------
Procedures containing a ``par`` loop automatically compile with ``-fopenmp``
when the toolchain supports it (:func:`openmp_supported`, probed once per
compiler and folded into the artifact key via ``CodegenOptions.openmp`` —
a parallel kernel and its sequential twin never share an artifact).  When
the probe fails, the kernel compiles sequentially and an ``omp-missing``
fallback event is recorded.  The worker count is set per call through the
shared object's own ``omp_set_num_threads`` (``call_guarded(threads=...)``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import threading
import tempfile
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import BackendError
from ..guard import faults, quarantine
from ..guard.retry import with_retry
from ..ir.printing import proc_str
from ..persist import CorruptRecordError, read_record, write_record, write_text_atomic
from .codegen import CODEGEN_VERSION, CodegenError, CodegenOptions, NativeUnit, emit_unit

__all__ = [
    "NativeError",
    "NativeUnavailableError",
    "NativeRunError",
    "ArtifactPoisonedError",
    "NativeProc",
    "artifact_key",
    "artifact_status",
    "artifact_meta",
    "mark_validated",
    "mark_poisoned",
    "clear_artifact_status",
    "call_guarded",
    "cache_dir",
    "cache_stats",
    "compile_native",
    "find_cc",
    "openmp_supported",
    "reset_cache_stats",
    "clear_memo",
    "MAX_CACHE_ENTRIES",
]


class NativeError(BackendError):
    """Base class of native-backend failures.

    ``reason`` (when set) is a stable identifier the degradation ladder
    records on its :class:`~repro.guard.events.FallbackEvent`;
    ``artifact_key`` names the cache entry involved, when one exists.
    """

    reason: Optional[str] = None
    artifact_key: Optional[str] = None


class NativeUnavailableError(NativeError):
    """The native backend cannot produce a callable here (no C compiler, or
    the compile/load step failed).  Callers degrade to the NumPy engine."""


class NativeRunError(NativeError):
    """A compiled kernel was called with arguments that do not fit its
    calling convention (wrong dtype, wrong rank, misaligned strides)."""

    reason = "native-run-error"


class ArtifactPoisonedError(NativeError):
    """The artifact crashed (SIGSEGV/SIGFPE/SIGBUS) or hung its quarantined
    first run; it is marked poisoned in the cache and will never be executed
    in-process on this machine.  Callers degrade to the NumPy engine."""

    def __init__(self, message: str, *, reason: str, artifact_key: str):
        super().__init__(message)
        self.reason = reason
        self.artifact_key = artifact_key


MAX_CACHE_ENTRIES = 256

_stats = {"memo_hits": 0, "disk_hits": 0, "compiles": 0, "corrupt_evicted": 0, "pruned": 0}
_memo: Dict[str, "NativeProc"] = {}
_cc_version_memo: Dict[str, str] = {}
# one lock for the stats counters and the in-process memo maps: increments
# are read-modify-write and the maps are shared by every thread that compiles
# or trust-checks an artifact (e.g. schedule-service workers)
_lock = threading.Lock()


def _count(counter: str) -> None:
    with _lock:
        _stats[counter] += 1


def cache_stats() -> Dict[str, int]:
    """Counters of the persistent artifact cache (process-wide, thread-safe)."""
    with _lock:
        return dict(_stats)


def reset_cache_stats() -> None:
    with _lock:
        for k in _stats:
            _stats[k] = 0


def clear_memo() -> None:
    """Drop the in-process memos — compiled handles and artifact trust
    stamps re-resolve from disk, as a fresh process would (cached ctypes
    handles stay loaded)."""
    with _lock:
        _memo.clear()
        _status_memo.clear()


def cache_dir() -> str:
    """The artifact cache directory (override with ``REPRO_NATIVE_CACHE``)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")


def find_cc() -> Optional[str]:
    """Absolute path of the system C compiler, or None.

    Fault site: the ``cc-missing`` fault makes this report no compiler, so
    every consumer (execution ladder, differential leg, tuner, benchmarks)
    exercises its no-toolchain degradation path."""
    if faults.should_fire("cc-missing"):
        return None
    return shutil.which(os.environ.get("CC") or "cc")


_omp_memo: Dict[str, bool] = {}


def openmp_supported(cc: str) -> bool:
    """Whether ``cc`` can build with ``-fopenmp`` (probed once per compiler
    by compiling a one-line program, then memoized).

    Fault site: ``omp-missing`` forces False without touching the memo, so
    ``par`` kernels exercise their sequential-compile degradation and the
    probe result recovers as soon as the fault disarms."""
    if faults.should_fire("omp-missing"):
        return False
    with _lock:
        got = _omp_memo.get(cc)
    if got is not None:
        return got
    tmpdir = tempfile.mkdtemp(prefix="repro-omp-probe-")
    try:
        c_path = os.path.join(tmpdir, "probe.c")
        with open(c_path, "w") as f:
            f.write(
                "#include <omp.h>\n"
                "int main(void) { return omp_get_max_threads() > 0 ? 0 : 1; }\n"
            )
        try:
            proc = subprocess.run(
                [cc, "-fopenmp", c_path, "-o", os.path.join(tmpdir, "probe.out")],
                capture_output=True,
                text=True,
                timeout=60,
            )
            got = proc.returncode == 0
        except (OSError, subprocess.SubprocessError):
            got = False
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    with _lock:
        _omp_memo[cc] = got
    return got


def _has_par(root) -> bool:
    from ..ir import nodes as N
    from ..ir.build import walk

    return any(
        isinstance(n, N.For) and n.pragma == "par" for n, _ in walk(root)
    )


def _resolve_openmp(
    root, options: CodegenOptions, cc: Optional[str], *, record: bool
) -> CodegenOptions:
    """The effective codegen options for ``root``: ``openmp=True`` when the
    procedure contains a ``par`` loop and the toolchain can honour it.  With
    ``record``, an unsupported toolchain logs an ``omp-missing`` fallback
    event (stage ``c-par->c-seq``) — the kernel still compiles, sequentially.
    """
    if options.openmp or not _has_par(root):
        return options
    if cc is not None and openmp_supported(cc):
        return replace(options, openmp=True)
    if record:
        from ..guard import record_fallback

        record_fallback(
            root.name,
            "c-par->c-seq",
            "omp-missing",
            detail="toolchain cannot build with -fopenmp; par loops compiled sequentially",
        )
    return options


def cc_version(cc: str) -> str:
    got = _cc_version_memo.get(cc)
    if got is None:
        try:
            out = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=30, check=True
            ).stdout
            got = out.splitlines()[0].strip() if out else "unknown"
        except (OSError, subprocess.SubprocessError):
            got = "unknown"
        _cc_version_memo[cc] = got
    return got


def _machine_id() -> str:
    try:
        from ..tune.results import machine_id

        return machine_id()
    except Exception:
        return f"{platform.system()}-{platform.machine()}"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def artifact_key(procedure, options: Optional[CodegenOptions] = None, cc: Optional[str] = None) -> str:
    """The persistent cache key for one procedure's compiled artifact.

    Stable across processes: every component is either a version constant, a
    digest of printed text, or a machine/toolchain identifier.
    """
    root = procedure._root if hasattr(procedure, "_root") else procedure
    options = options or CodegenOptions()
    cc = cc or find_cc() or "cc"
    options = _resolve_openmp(
        root, options, cc if os.path.exists(cc) else None, record=False
    )
    unit = emit_unit(root, options)
    parts = "|".join(
        [
            f"codegen={CODEGEN_VERSION}",
            f"proc={_sha(proc_str(root))}",
            f"src={_sha(unit.source)}",
            f"opts={options.key()}",
            f"cc={cc_version(cc) if os.path.exists(cc) else cc}",
            f"machine={_machine_id()}",
        ]
    )
    return _sha(parts)[:32]


# ---------------------------------------------------------------------------
# Artifact trust metadata (the quarantine lifecycle)
# ---------------------------------------------------------------------------

STATUS_NEW = "new"
STATUS_VALIDATED = "validated"
STATUS_POISONED = "poisoned"

_status_memo: Dict[str, dict] = {}  # meta path -> parsed sidecar


def _meta_path(key: str, directory: Optional[str] = None) -> str:
    return os.path.join(directory or cache_dir(), f"{key}.meta.json")


def artifact_meta(key: str, directory: Optional[str] = None) -> dict:
    """The trust sidecar of one artifact: at least ``{"status": ...}``, plus
    ``"reason"`` for poisoned entries.  Missing or corrupt sidecars read as
    ``new`` (never executed on this machine)."""
    path = _meta_path(key, directory)
    with _lock:
        memo = _status_memo.get(path)
    if memo is not None:
        return dict(memo)
    meta = {"status": STATUS_NEW}
    try:
        data = read_record(path)
        if isinstance(data, dict) and data.get("status") in (
            STATUS_VALIDATED,
            STATUS_POISONED,
        ):
            meta = data
    except (OSError, CorruptRecordError):
        # a torn or missing trust stamp reads as "never executed here":
        # the artifact simply re-enters quarantine, which is safe
        pass
    with _lock:
        _status_memo[path] = dict(meta)
    return meta


def artifact_status(key: str, directory: Optional[str] = None) -> str:
    """``"new"`` | ``"validated"`` | ``"poisoned"`` for one artifact key."""
    return artifact_meta(key, directory)["status"]


def _write_meta(key: str, meta: dict, directory: Optional[str] = None) -> None:
    # a trust stamp is a real persistence decision (poisoned must survive
    # kill -9), so it goes through the checksummed crash-consistent store
    write_record(_meta_path(key, directory), meta)
    with _lock:
        _status_memo[_meta_path(key, directory)] = dict(meta)


def mark_validated(key: str, directory: Optional[str] = None) -> None:
    """Stamp the artifact trusted: its quarantined first run exited cleanly,
    so all later calls may go in-process at full speed."""
    _write_meta(key, {"status": STATUS_VALIDATED}, directory)


def mark_poisoned(key: str, reason: str, directory: Optional[str] = None) -> None:
    """Ban the artifact: its quarantined first run crashed or hung.  The
    guard is never re-entered for a poisoned key — callers degrade straight
    to the NumPy engine."""
    _write_meta(key, {"status": STATUS_POISONED, "reason": reason}, directory)


def clear_artifact_status(key: str, directory: Optional[str] = None) -> None:
    """Forget an artifact's trust stamp (tests / benchmarks re-measuring the
    quarantine path)."""
    path = _meta_path(key, directory)
    with _lock:
        _status_memo.pop(path, None)
    try:
        os.unlink(path)
    except OSError:
        pass


def _evict_meta(so_path: str) -> None:
    path = so_path[: -len(".so")] + ".meta.json"
    with _lock:
        _status_memo.pop(path, None)
    try:
        os.unlink(path)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# The callable
# ---------------------------------------------------------------------------


_SCALAR_CTYPES = {
    "i64": ctypes.c_int64,
    "i32": ctypes.c_int32,
    "f64": ctypes.c_double,
    "bool": ctypes.c_bool,
}


@dataclass
class NativeProc:
    """A loaded, callable compiled kernel.

    ``key`` is the artifact's persistent cache key, which is also what the
    trust metadata (:func:`artifact_status`) hangs off.  Calling the object
    directly runs the machine code in-process with no guard; untrusted first
    runs go through :func:`call_guarded`.
    """

    name: str
    source: str
    argspec: Tuple[tuple, ...]
    so_path: str
    key: str = ""
    _fn: object = None
    # the shared object's own omp_set_num_threads, when it was linked
    # against the OpenMP runtime (par kernels built with -fopenmp)
    _omp_set: object = None

    def __call__(self, values: Dict[str, object], threads: Optional[int] = None) -> None:
        """Run the kernel on a ``{arg name: value}`` dict (tensors in place).

        ``threads`` bounds the OpenMP worker count of ``par`` loops; it is a
        no-op for artifacts built without OpenMP."""
        args: List[object] = []
        for spec in self.argspec:
            if spec[0] == "tensor":
                _tag, dtype_name, rank, name = spec
                v = values[name]
                if not isinstance(v, np.ndarray):
                    raise NativeRunError(f"{self.name}: argument {name!r} must be a numpy array")
                if v.dtype != np.dtype(dtype_name):
                    raise NativeRunError(
                        f"{self.name}: argument {name!r} has dtype {v.dtype}, expected {dtype_name}"
                    )
                if v.ndim != rank:
                    raise NativeRunError(
                        f"{self.name}: argument {name!r} has rank {v.ndim}, expected {rank}"
                    )
                args.append(ctypes.c_void_p(v.ctypes.data))
                for d in range(rank):
                    s = v.strides[d]
                    if s % v.itemsize != 0:
                        raise NativeRunError(
                            f"{self.name}: argument {name!r} has a sub-element stride"
                        )
                    args.append(ctypes.c_int64(s // v.itemsize))
            else:
                tag, name = spec
                v = values[name]
                if tag == "f64":
                    args.append(ctypes.c_double(float(v)))
                elif tag == "bool":
                    args.append(ctypes.c_bool(bool(v)))
                else:
                    args.append(_SCALAR_CTYPES[tag](int(v)))
        if threads is not None and self._omp_set is not None:
            self._omp_set(ctypes.c_int(int(threads)))
        self._fn(*args)


# ---------------------------------------------------------------------------
# Build + cache
# ---------------------------------------------------------------------------


def _load(unit: NativeUnit, so_path: str, key: str = "") -> NativeProc:
    lib = ctypes.CDLL(so_path)
    fn = getattr(lib, unit.name)
    fn.restype = None
    try:
        omp_set = lib.omp_set_num_threads
    except AttributeError:
        omp_set = None  # built without -fopenmp
    return NativeProc(unit.name, unit.source, unit.argspec, so_path, key, fn, omp_set)


def _build(cc: str, options: CodegenOptions, c_path: str, so_path: str) -> None:
    fd, tmp_so = tempfile.mkstemp(suffix=".so", dir=os.path.dirname(so_path))
    os.close(fd)
    cmd = [cc, *options.cflags(), "-fPIC", "-shared", "-o", tmp_so, c_path, "-lm"]
    try:
        # spawning cc can fail transiently (resource pressure, racing PATH
        # changes); a nonzero exit is a deterministic compile error and is
        # NOT retried.  Fault site: cc-transient.
        def invoke():
            if faults.should_fire("cc-transient"):
                raise OSError("injected transient cc failure (fault: cc-transient)")
            return subprocess.run(cmd, capture_output=True, text=True, timeout=300)

        try:
            proc = with_retry(invoke, label="cc-invoke")
        except OSError as exc:
            raise NativeUnavailableError(f"cannot invoke {cc}: {exc}") from exc
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.splitlines()[-12:])
            raise NativeUnavailableError(f"cc failed for {os.path.basename(c_path)}:\n{tail}")

        # atomic publish; readers never see a torn .so.  The rename can lose
        # a transient race on some filesystems.  Fault site: publish-race.
        def publish():
            if faults.should_fire("publish-race"):
                raise OSError("injected cache publish race (fault: publish-race)")
            os.replace(tmp_so, so_path)

        try:
            with_retry(publish, label="artifact-publish")
        except OSError as exc:
            raise NativeUnavailableError(
                f"cannot publish artifact {os.path.basename(so_path)}: {exc}"
            ) from exc
    finally:
        if os.path.exists(tmp_so):
            os.unlink(tmp_so)


def _prune(directory: str, keep: int) -> None:
    """Drop the least-recently-used artifacts beyond ``keep`` entries (hits
    touch the ``.so`` mtime, so mtime order is use order)."""
    try:
        sos = [e for e in os.scandir(directory) if e.name.endswith(".so")]
    except OSError:
        return
    if len(sos) <= keep:
        return
    sos.sort(key=lambda e: e.stat().st_mtime)
    for e in sos[: len(sos) - keep]:
        stem = e.path[: -len(".so")]
        for victim in (e.path, stem + ".c"):
            try:
                os.unlink(victim)
            except OSError:
                pass
        _evict_meta(e.path)
        _count("pruned")


def compile_native(
    procedure,
    options: Optional[CodegenOptions] = None,
    directory: Optional[str] = None,
) -> NativeProc:
    """Compile (or fetch from cache) a procedure's native kernel.

    Raises :class:`CodegenError` when the procedure cannot be lowered to C
    and :class:`NativeUnavailableError` when no working toolchain is
    available; both are non-destructive (nothing half-built is left behind).
    """
    root = procedure._root if hasattr(procedure, "_root") else procedure
    options = options or CodegenOptions()
    cc = find_cc()
    if cc is None:
        err = NativeUnavailableError("no C compiler on PATH (set $CC or install cc)")
        err.reason = "cc-missing"
        raise err

    options = _resolve_openmp(root, options, cc, record=True)
    unit = emit_unit(root, options)  # may raise CodegenError
    key = artifact_key(root, options, cc)
    with _lock:
        memo = _memo.get(key)
    if memo is not None:
        _count("memo_hits")
        return memo

    directory = directory or cache_dir()
    os.makedirs(directory, exist_ok=True)
    so_path = os.path.join(directory, f"{key}.so")
    c_path = os.path.join(directory, f"{key}.c")

    # a poisoned artifact is never even dlopen'ed again (loading runs its
    # init sections — that is already execution)
    meta = artifact_meta(key, directory)
    if meta["status"] == STATUS_POISONED:
        raise ArtifactPoisonedError(
            f"artifact {key} is poisoned on this machine "
            f"({meta.get('reason', 'unknown reason')})",
            reason="poisoned-artifact",
            artifact_key=key,
        )

    proc = None
    if os.path.exists(so_path):
        try:
            # fault site: stand in for a truncated/garbled .so on disk.  The
            # corruption is simulated as the load failure it causes (dlopen
            # caches by path in-process, so physically corrupting the file
            # cannot fail a re-load of an already-mapped artifact).
            if faults.should_fire("artifact-corrupt"):
                raise OSError("injected corrupt artifact (fault: artifact-corrupt)")
            proc = _load(unit, so_path, key)
            _count("disk_hits")
            os.utime(so_path)  # LRU touch
        except OSError:
            # corrupt or truncated artifact: evict and rebuild.  The trust
            # stamp goes with it — a rebuilt binary re-enters quarantine.
            _count("corrupt_evicted")
            try:
                os.unlink(so_path)
            except OSError:
                pass
            _evict_meta(so_path)
    if proc is None:
        write_text_atomic(c_path, unit.source)
        _build(cc, options, c_path, so_path)
        _count("compiles")
        try:
            proc = _load(unit, so_path, key)
        except OSError as exc:
            raise NativeUnavailableError(f"cannot load freshly built {so_path}: {exc}") from exc
        _prune(directory, MAX_CACHE_ENTRIES)
    with _lock:
        _memo[key] = proc
    return proc


# ---------------------------------------------------------------------------
# Guarded execution (the run_proc entry point)
# ---------------------------------------------------------------------------


def call_guarded(
    kernel: NativeProc,
    values: Dict[str, object],
    timeout_s: Optional[float] = None,
    directory: Optional[str] = None,
    threads: Optional[int] = None,
) -> None:
    """Execute ``kernel`` with first-run quarantine.

    * ``poisoned`` artifacts raise :class:`ArtifactPoisonedError` immediately
      — the guard is never re-entered for a known-bad kernel;
    * ``validated`` artifacts run in-process at full speed, no guard;
    * ``new`` artifacts first run inside the forked subprocess guard
      (:func:`repro.guard.quarantine.run_guarded`).  A clean exit stamps the
      artifact validated and re-executes in-process (the child's writes were
      copy-on-write and discarded); a signal death or watchdog timeout
      poisons it and raises :class:`ArtifactPoisonedError`; a Python-level
      exception in the child is deterministic, leaves the status untouched,
      and is re-raised as :class:`NativeRunError`.

    ``timeout_s`` overrides the ``REPRO_GUARD_TIMEOUT`` watchdog; setting
    ``REPRO_GUARD=off`` skips the quarantine entirely (no validation stamp
    is written — the next guarded-mode call will quarantine as usual).
    ``threads`` bounds the OpenMP worker count of ``par`` loops (no-op for
    artifacts built without OpenMP).
    """
    meta = artifact_meta(kernel.key, directory)
    if meta["status"] == STATUS_POISONED:
        raise ArtifactPoisonedError(
            f"{kernel.name}: artifact {kernel.key} is poisoned on this machine "
            f"({meta.get('reason', 'unknown reason')})",
            reason="poisoned-artifact",
            artifact_key=kernel.key,
        )
    if meta["status"] != STATUS_VALIDATED and quarantine.guard_enabled():
        # the guard forks, and libgomp is not fork-safe once the parent has
        # ever run a parallel region (the child inherits a thread pool whose
        # threads do not exist) — so the quarantined validation run of an
        # OpenMP artifact is forced serial; a 1-thread team runs inline on
        # the calling thread and never touches the pool
        guard_threads = 1 if kernel._omp_set is not None else threads
        report = quarantine.run_guarded(
            lambda: kernel(values, threads=guard_threads), timeout_s=timeout_s
        )
        if report.status == "ok":
            mark_validated(kernel.key, directory)
        elif report.status == "error":
            raise NativeRunError(
                f"{kernel.name}: guarded first run raised: {report.error}"
            )
        else:
            reason = "kernel-hang" if report.status == "timeout" else "kernel-segfault"
            mark_poisoned(kernel.key, f"{reason}: {report.error}", directory)
            raise ArtifactPoisonedError(
                f"{kernel.name}: quarantined first run failed ({report.error}); "
                f"artifact {kernel.key} poisoned",
                reason=reason,
                artifact_key=kernel.key,
            )
    kernel(values, threads=threads)
