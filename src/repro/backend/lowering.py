"""Lowering helpers shared by the execution backends.

Two backends lower the same object IR to executable form: the C code
generator (:mod:`repro.backend.codegen`) and the NumPy compiled execution
engine (:mod:`repro.interp.compile`).  Both need the same structural
analyses — row-major stride computation, multi-dimensional index flattening,
affine-in-one-iterator decomposition (the basis of loop vectorisation) and a
conservative non-negativity check used to elide bounds guards.  They differ
only in how expressions are *rendered* (C source vs Python source), so every
helper here takes a ``render`` callback instead of hard-coding a syntax.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ir import nodes as N
from ..ir.build import contains_sym, copy_node, map_exprs, map_stmts
from ..ir.syms import Sym
from ..ir.types import ScalarType, TensorType, index_t

__all__ = [
    "NP_DTYPES",
    "np_dtype_for",
    "row_major_strides",
    "flatten_index",
    "affine_decompose",
    "biaffine_decompose",
    "provably_nonneg",
    "InlineError",
    "window_dims",
    "compose_window_index",
    "substitute_call_body",
]


# NumPy element types used to *execute* object-code buffers.  Narrow integer
# types are interpreted widely (quantisation is handled by externs) and f16 at
# f32 precision, exactly as the reference interpreter documents.
NP_DTYPES = {
    "f16": np.float32,
    "f32": np.float32,
    "f64": np.float64,
    "i8": np.int32,
    "i16": np.int32,
    "i32": np.int32,
}


def np_dtype_for(typ) -> np.dtype:
    """The NumPy dtype backing an object-language scalar or tensor type."""
    base = typ.basetype() if isinstance(typ, TensorType) else typ
    return np.dtype(NP_DTYPES.get(base.name, np.float64))


def row_major_strides(shape: Sequence[N.Expr], render: Callable[[N.Expr], str]) -> List[str]:
    """Render the row-major strides of a dense tensor shape.

    The innermost dimension has stride ``"1"``; outer dimensions multiply the
    rendered extents of everything to their right.
    """
    out: List[str] = []
    for d in range(len(shape)):
        rest = shape[d + 1 :]
        if not rest:
            out.append("1")
        else:
            out.append(" * ".join(f"({render(e)})" for e in rest))
    return out


def flatten_index(
    name,
    idx: Sequence[N.Expr],
    strides: Dict,
    render: Callable[[N.Expr], str],
) -> str:
    """Render a multi-dimensional access as a flat row-major offset.

    ``strides`` maps buffer names to their rendered per-dimension strides (as
    produced by :func:`row_major_strides`); unknown dimensions are treated as
    stride 1.
    """
    dims = strides.get(name)
    parts: List[str] = []
    for d, e in enumerate(idx):
        s = dims[d] if dims and d < len(dims) else None
        es = render(e)
        if s is None or s == "1":
            parts.append(es)
        else:
            parts.append(f"({es}) * ({s})")
    return " + ".join(parts) if parts else "0"


# ---------------------------------------------------------------------------
# Affine decomposition (the analysis behind loop vectorisation)
# ---------------------------------------------------------------------------


def _is_const_int(e) -> bool:
    return isinstance(e, N.Const) and isinstance(e.val, (int, np.integer)) and not isinstance(e.val, bool)


def affine_decompose(e: N.Expr, ivar: Sym) -> Optional[Tuple[int, Optional[N.Expr]]]:
    """Decompose ``e`` as ``coeff * ivar + offset``.

    Returns ``(coeff, offset)`` where ``coeff`` is a constant Python int and
    ``offset`` is an IR expression free of ``ivar`` (``None`` stands for 0), or
    ``None`` when ``e`` is not affine in ``ivar`` with a constant coefficient.
    The offset expressions built here are throwaway analysis artefacts — they
    are never spliced back into a program tree.
    """
    if isinstance(e, N.Const):
        return (0, e)
    if isinstance(e, N.Read) and not e.idx:
        if e.name is ivar:
            return (1, None)
        return (0, e)
    if isinstance(e, N.USub):
        sub = affine_decompose(e.arg, ivar)
        if sub is None:
            return None
        c, off = sub
        return (-c, None if off is None else N.USub(off))
    if isinstance(e, N.BinOp):
        if e.op in ("+", "-"):
            l = affine_decompose(e.lhs, ivar)
            r = affine_decompose(e.rhs, ivar)
            if l is None or r is None:
                return None
            (cl, ol), (cr, orr) = l, r
            c = cl + cr if e.op == "+" else cl - cr
            if orr is None:
                off = ol
            elif ol is None:
                off = orr if e.op == "+" else N.USub(orr)
            else:
                off = N.BinOp(e.op, ol, orr)
            return (c, off)
        if e.op == "*":
            l = affine_decompose(e.lhs, ivar)
            r = affine_decompose(e.rhs, ivar)
            if l is None or r is None:
                return None
            (cl, ol), (cr, orr) = l, r
            if cl == 0 and cr == 0:
                return (0, e)
            # exactly one side depends on ivar; the other must be a constant
            # for the coefficient to stay constant
            if cl != 0 and cr == 0 and _is_const_int(e.rhs):
                k = int(e.rhs.val)
                return (cl * k, None if ol is None else N.BinOp("*", ol, e.rhs))
            if cr != 0 and cl == 0 and _is_const_int(e.lhs):
                k = int(e.lhs.val)
                return (cr * k, None if orr is None else N.BinOp("*", e.lhs, orr))
            return None
        # division / modulo / comparisons only allowed when ivar-free
        if not contains_sym(e, ivar):
            return (0, e)
        return None
    if not contains_sym(e, ivar):
        return (0, e)
    return None


def biaffine_decompose(
    e: N.Expr, outer: Sym, inner: Optional[Sym]
) -> Optional[Tuple[int, int, Optional[N.Expr]]]:
    """Decompose ``e`` as ``a * outer + b * inner + offset``.

    ``a`` and ``b`` are constant Python ints and ``offset`` is free of both
    iterators (``None`` stands for 0).  ``inner`` may be ``None`` for
    statements that sit directly in the outer loop (then ``b`` is 0).  Returns
    ``None`` when the expression is not bi-affine with constant coefficients.
    This is the analysis behind the compiled engine's outer-loop (chunked)
    vectorisation of inlined ``@instr`` bodies.
    """
    if inner is not None:
        dec = affine_decompose(e, inner)
        if dec is None:
            return None
        b, rest = dec
    else:
        b, rest = 0, e
    if rest is None:
        return (0, b, None)
    dec2 = affine_decompose(rest, outer)
    if dec2 is None:
        return None
    a, off = dec2
    if off is not None and inner is not None and contains_sym(off, inner):
        return None
    return (a, b, off)


# ---------------------------------------------------------------------------
# Call-site substitution (the core of ``inline`` and the compiled engine's
# cross-procedure inliner)
# ---------------------------------------------------------------------------


class InlineError(Exception):
    """A call site cannot be inlined (unsupported argument shape)."""


def window_dims(w: N.WindowExpr) -> List[Tuple[str, N.Expr, Optional[N.Expr]]]:
    """Flatten a window expression's dimensions to ``(kind, lo/pt, hi)``."""
    out = []
    for d in w.idx:
        if isinstance(d, N.Interval):
            out.append(("interval", d.lo, d.hi))
        else:
            out.append(("point", d.pt, None))
    return out


def compose_window_index(wdims, inner_idx: Sequence[N.Expr]) -> List[N.Expr]:
    """Compose a caller window with an index list used inside the callee.

    Point dimensions of the window are inserted verbatim; interval dimensions
    consume one callee index and add the interval's lower bound (the affine
    composition ``base[lo + i]`` that makes inlined accesses analysable by
    :func:`affine_decompose`).
    """
    out: List[N.Expr] = []
    k = 0
    for kind, lo, _hi in wdims:
        if kind == "point":
            out.append(copy_node(lo))
        else:
            if k >= len(inner_idx):
                raise InlineError("window rank does not match the callee access")
            out.append(N.BinOp("+", copy_node(lo), copy_node(inner_idx[k]), index_t))
            k += 1
    return out


def substitute_call_body(
    params: Sequence[N.FnArg],
    actuals: Sequence[N.Expr],
    body: Sequence[N.Stmt],
) -> List[N.Stmt]:
    """Substitute call actuals into an (already alpha-renamed) callee body.

    Tensor parameters must be bound to whole-buffer reads or window
    expressions (accesses are rewritten onto the base buffer with composed
    indices); scalar parameters are substituted by their actual expressions.
    Raises :class:`InlineError` for unsupported shapes — notably a callee that
    writes a scalar parameter bound to a non-variable expression.
    """
    scalar_env: Dict[Sym, N.Expr] = {}
    buffer_env: Dict[Sym, Tuple[Sym, Optional[list]]] = {}
    for fn_arg, actual in zip(params, actuals):
        if isinstance(fn_arg.typ, TensorType):
            if isinstance(actual, N.WindowExpr):
                buffer_env[fn_arg.name] = (actual.name, window_dims(actual))
            elif isinstance(actual, N.Read) and not actual.idx:
                buffer_env[fn_arg.name] = (actual.name, None)
            else:
                raise InlineError("unsupported tensor argument at the call site")
        else:
            scalar_env[fn_arg.name] = actual

    def interval_index(wdims, dim: int) -> int:
        """Map a callee dimension to the base-buffer dimension it views."""
        seen = 0
        for d, (kind, _lo, _hi) in enumerate(wdims):
            if kind == "interval":
                if seen == dim:
                    return d
                seen += 1
        raise InlineError("stride dimension outside the window rank")

    def fix_expr(e: N.Expr) -> N.Expr:
        if isinstance(e, N.Read) and not e.idx and e.name in scalar_env:
            return copy_node(scalar_env[e.name])
        if isinstance(e, (N.Read, N.WindowExpr, N.StrideExpr)) and e.name in buffer_env:
            buf, wdims = buffer_env[e.name]
            if isinstance(e, N.Read):
                if not e.idx:
                    if wdims is None:
                        return N.Read(buf, [], e.typ)
                    # whole-parameter read of a windowed actual: reconstruct
                    # the window so deeper (non-inlined) calls still see it
                    idx = [
                        N.Interval(copy_node(lo), copy_node(hi))
                        if kind == "interval"
                        else N.Point(copy_node(lo))
                        for kind, lo, hi in wdims
                    ]
                    return N.WindowExpr(buf, idx, e.typ)
                idx = compose_window_index(wdims, list(e.idx)) if wdims is not None else list(e.idx)
                return N.Read(buf, idx, e.typ)
            if isinstance(e, N.StrideExpr):
                # windows are unit-step views: the stride of callee dim d is
                # the base buffer's stride at the d-th interval dimension
                dim = e.dim if wdims is None else interval_index(wdims, e.dim)
                return N.StrideExpr(buf, dim, e.typ)
            # WindowExpr over a windowed argument: compose the two windows
            if wdims is None:
                return N.WindowExpr(buf, e.idx, e.typ)
            new_idx: List[object] = []
            k = 0
            for kind, lo, _hi in wdims:
                if kind == "point":
                    new_idx.append(N.Point(copy_node(lo)))
                else:
                    if k >= len(e.idx):
                        raise InlineError("window rank does not match the callee access")
                    d = e.idx[k]
                    k += 1
                    if isinstance(d, N.Interval):
                        new_idx.append(
                            N.Interval(
                                N.BinOp("+", copy_node(lo), copy_node(d.lo), index_t),
                                N.BinOp("+", copy_node(lo), copy_node(d.hi), index_t),
                            )
                        )
                    else:
                        new_idx.append(N.Point(N.BinOp("+", copy_node(lo), copy_node(d.pt), index_t)))
            return N.WindowExpr(buf, new_idx, e.typ)
        return e

    def fix_stmt(s: N.Stmt):
        if isinstance(s, (N.Assign, N.Reduce)) and s.name in buffer_env:
            buf, wdims = buffer_env[s.name]
            s.name = buf
            if wdims is not None:
                s.idx = compose_window_index(wdims, list(s.idx))
        if isinstance(s, (N.Assign, N.Reduce)) and s.name in scalar_env:
            target = scalar_env[s.name]
            if isinstance(target, N.Read):
                s.name = target.name
                s.idx = [copy_node(i) for i in target.idx]
            else:
                raise InlineError("callee writes a scalar argument bound to an expression")
        return s

    out = [map_exprs(s, fix_expr) for s in body]
    return map_stmts(out, fix_stmt)


def provably_nonneg(e: N.Expr, nonneg_syms: Set[Sym]) -> bool:
    """Conservatively decide whether ``e`` always evaluates >= 0.

    ``nonneg_syms`` holds symbols known non-negative (``size`` arguments and
    loop iterators whose lower bound is itself provably non-negative).  Used by
    the compiled engine to elide negative-index guards on hot accesses.
    """
    if isinstance(e, N.Const):
        return isinstance(e.val, (int, float, np.integer, np.floating)) and e.val >= 0
    if isinstance(e, N.Read) and not e.idx:
        return e.name in nonneg_syms
    if isinstance(e, N.BinOp) and e.op in ("+", "*", "/", "%"):
        return provably_nonneg(e.lhs, nonneg_syms) and provably_nonneg(e.rhs, nonneg_syms)
    return False
