"""Lowering helpers shared by the execution backends.

Two backends lower the same object IR to executable form: the C code
generator (:mod:`repro.backend.codegen`) and the NumPy compiled execution
engine (:mod:`repro.interp.compile`).  Both need the same structural
analyses — row-major stride computation, multi-dimensional index flattening,
affine-in-one-iterator decomposition (the basis of loop vectorisation) and a
conservative non-negativity check used to elide bounds guards.  They differ
only in how expressions are *rendered* (C source vs Python source), so every
helper here takes a ``render`` callback instead of hard-coding a syntax.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ir import nodes as N
from ..ir.build import contains_sym
from ..ir.syms import Sym
from ..ir.types import ScalarType, TensorType

__all__ = [
    "NP_DTYPES",
    "np_dtype_for",
    "row_major_strides",
    "flatten_index",
    "affine_decompose",
    "provably_nonneg",
]


# NumPy element types used to *execute* object-code buffers.  Narrow integer
# types are interpreted widely (quantisation is handled by externs) and f16 at
# f32 precision, exactly as the reference interpreter documents.
NP_DTYPES = {
    "f16": np.float32,
    "f32": np.float32,
    "f64": np.float64,
    "i8": np.int32,
    "i16": np.int32,
    "i32": np.int32,
}


def np_dtype_for(typ) -> np.dtype:
    """The NumPy dtype backing an object-language scalar or tensor type."""
    base = typ.basetype() if isinstance(typ, TensorType) else typ
    return np.dtype(NP_DTYPES.get(base.name, np.float64))


def row_major_strides(shape: Sequence[N.Expr], render: Callable[[N.Expr], str]) -> List[str]:
    """Render the row-major strides of a dense tensor shape.

    The innermost dimension has stride ``"1"``; outer dimensions multiply the
    rendered extents of everything to their right.
    """
    out: List[str] = []
    for d in range(len(shape)):
        rest = shape[d + 1 :]
        if not rest:
            out.append("1")
        else:
            out.append(" * ".join(f"({render(e)})" for e in rest))
    return out


def flatten_index(
    name,
    idx: Sequence[N.Expr],
    strides: Dict,
    render: Callable[[N.Expr], str],
) -> str:
    """Render a multi-dimensional access as a flat row-major offset.

    ``strides`` maps buffer names to their rendered per-dimension strides (as
    produced by :func:`row_major_strides`); unknown dimensions are treated as
    stride 1.
    """
    dims = strides.get(name)
    parts: List[str] = []
    for d, e in enumerate(idx):
        s = dims[d] if dims and d < len(dims) else None
        es = render(e)
        if s is None or s == "1":
            parts.append(es)
        else:
            parts.append(f"({es}) * ({s})")
    return " + ".join(parts) if parts else "0"


# ---------------------------------------------------------------------------
# Affine decomposition (the analysis behind loop vectorisation)
# ---------------------------------------------------------------------------


def _is_const_int(e) -> bool:
    return isinstance(e, N.Const) and isinstance(e.val, (int, np.integer)) and not isinstance(e.val, bool)


def affine_decompose(e: N.Expr, ivar: Sym) -> Optional[Tuple[int, Optional[N.Expr]]]:
    """Decompose ``e`` as ``coeff * ivar + offset``.

    Returns ``(coeff, offset)`` where ``coeff`` is a constant Python int and
    ``offset`` is an IR expression free of ``ivar`` (``None`` stands for 0), or
    ``None`` when ``e`` is not affine in ``ivar`` with a constant coefficient.
    The offset expressions built here are throwaway analysis artefacts — they
    are never spliced back into a program tree.
    """
    if isinstance(e, N.Const):
        return (0, e)
    if isinstance(e, N.Read) and not e.idx:
        if e.name is ivar:
            return (1, None)
        return (0, e)
    if isinstance(e, N.USub):
        sub = affine_decompose(e.arg, ivar)
        if sub is None:
            return None
        c, off = sub
        return (-c, None if off is None else N.USub(off))
    if isinstance(e, N.BinOp):
        if e.op in ("+", "-"):
            l = affine_decompose(e.lhs, ivar)
            r = affine_decompose(e.rhs, ivar)
            if l is None or r is None:
                return None
            (cl, ol), (cr, orr) = l, r
            c = cl + cr if e.op == "+" else cl - cr
            if orr is None:
                off = ol
            elif ol is None:
                off = orr if e.op == "+" else N.USub(orr)
            else:
                off = N.BinOp(e.op, ol, orr)
            return (c, off)
        if e.op == "*":
            l = affine_decompose(e.lhs, ivar)
            r = affine_decompose(e.rhs, ivar)
            if l is None or r is None:
                return None
            (cl, ol), (cr, orr) = l, r
            if cl == 0 and cr == 0:
                return (0, e)
            # exactly one side depends on ivar; the other must be a constant
            # for the coefficient to stay constant
            if cl != 0 and cr == 0 and _is_const_int(e.rhs):
                k = int(e.rhs.val)
                return (cl * k, None if ol is None else N.BinOp("*", ol, e.rhs))
            if cr != 0 and cl == 0 and _is_const_int(e.lhs):
                k = int(e.lhs.val)
                return (cr * k, None if orr is None else N.BinOp("*", e.lhs, orr))
            return None
        # division / modulo / comparisons only allowed when ivar-free
        if not contains_sym(e, ivar):
            return (0, e)
        return None
    if not contains_sym(e, ivar):
        return (0, e)
    return None


def provably_nonneg(e: N.Expr, nonneg_syms: Set[Sym]) -> bool:
    """Conservatively decide whether ``e`` always evaluates >= 0.

    ``nonneg_syms`` holds symbols known non-negative (``size`` arguments and
    loop iterators whose lower bound is itself provably non-negative).  Used by
    the compiled engine to elide negative-index guards on hot accesses.
    """
    if isinstance(e, N.Const):
        return isinstance(e.val, (int, float, np.integer, np.floating)) and e.val >= 0
    if isinstance(e, N.Read) and not e.idx:
        return e.name in nonneg_syms
    if isinstance(e, N.BinOp) and e.op in ("+", "*", "/", "%"):
        return provably_nonneg(e.lhs, nonneg_syms) and provably_nonneg(e.rhs, nonneg_syms)
    return False
