"""C code generation.

Scheduled object code lowers to portable C99: loops become ``for`` loops,
buffers become arrays (stack or static, per their memory space), and calls to
``@instr`` procedures emit the instruction's C template verbatim with the
argument data-pointers substituted — Exo's exocompilation model.

The generated C is not compiled in this offline environment (the interpreter
provides reference semantics and the cost model provides timing); it exists so
that downstream users can take the kernels to a real toolchain and so that the
"generated C" line counts of Figure 9a can be reproduced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import BackendError
from ..ir import nodes as N
from ..ir.externs import extern_by_name
from ..ir.memories import MemoryKind
from ..ir.printing import expr_str
from ..ir.types import TensorType
from .lowering import flatten_index, row_major_strides

__all__ = ["compile_to_c", "proc_to_c"]


def _c_expr(e: N.Expr, strides: Dict, int_ctx: bool = False) -> str:
    if isinstance(e, N.Const):
        if isinstance(e.val, bool):
            return "1" if e.val else "0"
        if isinstance(e.val, float):
            return f"{e.val}f"
        return str(e.val)
    if isinstance(e, N.Read):
        if not e.idx:
            return str(e.name)
        idx = _flatten_index(e.name, e.idx, strides)
        return f"{e.name}[{idx}]"
    if isinstance(e, N.BinOp):
        op = {"and": "&&", "or": "||"}.get(e.op, e.op)
        return f"({_c_expr(e.lhs, strides)} {op} {_c_expr(e.rhs, strides)})"
    if isinstance(e, N.USub):
        return f"(-{_c_expr(e.arg, strides)})"
    if isinstance(e, N.Extern):
        d = extern_by_name(e.fname)
        return d.c_template.format(*[_c_expr(a, strides) for a in e.args])
    if isinstance(e, N.StrideExpr):
        return f"{e.name}_stride_{e.dim}"
    if isinstance(e, N.ReadConfig):
        return f"ctxt.{e.config.name()}.{e.field_name}"
    if isinstance(e, N.WindowExpr):
        # pointer to the first element of the window
        firsts = [w.lo if isinstance(w, N.Interval) else w.pt for w in e.idx]
        idx = _flatten_index(e.name, firsts, strides)
        return f"&{e.name}[{idx}]"
    raise BackendError(f"cannot lower expression {type(e).__name__}")


def _flatten_index(name, idx: List[N.Expr], strides: Dict) -> str:
    # shared flattening logic (backend.lowering), rendered with the C printer
    return flatten_index(name, idx, strides, lambda e: _c_expr(e, strides))


def _row_major_strides(shape: List[N.Expr]) -> List[str]:
    return row_major_strides(shape, expr_str)


class _CGen:
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0
        self.instr_globals: Set[str] = set()

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def gen_stmts(self, stmts, strides) -> None:
        for s in stmts:
            self.gen_stmt(s, strides)

    def gen_stmt(self, s: N.Stmt, strides) -> None:
        if isinstance(s, N.Assign):
            lhs = f"{s.name}[{_flatten_index(s.name, s.idx, strides)}]" if s.idx else str(s.name)
            self.emit(f"{lhs} = {_c_expr(s.rhs, strides)};")
        elif isinstance(s, N.Reduce):
            lhs = f"{s.name}[{_flatten_index(s.name, s.idx, strides)}]" if s.idx else str(s.name)
            self.emit(f"{lhs} += {_c_expr(s.rhs, strides)};")
        elif isinstance(s, N.Alloc):
            if isinstance(s.typ, TensorType):
                size = " * ".join(f"({expr_str(d)})" for d in s.typ.shape)
                strides[s.name] = _row_major_strides(s.typ.shape)
                qual = "static " if s.mem.kind == MemoryKind.STATIC else ""
                if s.mem.kind == MemoryKind.VECTOR_REG:
                    self.emit(f"{s.typ.base.ctype()} {s.name}[{size}] __attribute__((aligned(64)));")
                else:
                    self.emit(f"{qual}{s.typ.base.ctype()} {s.name}[{size}];")
            else:
                self.emit(f"{s.typ.ctype()} {s.name};")
        elif isinstance(s, N.For):
            it, lo, hi = s.iter, _c_expr(s.lo, strides), _c_expr(s.hi, strides)
            if s.pragma == "par":
                self.emit("#pragma omp parallel for")
            self.emit(f"for (int_fast32_t {it} = {lo}; {it} < {hi}; {it}++) {{")
            self.indent += 1
            self.gen_stmts(s.body, dict(strides))
            self.indent -= 1
            self.emit("}")
        elif isinstance(s, N.If):
            self.emit(f"if ({_c_expr(s.cond, strides)}) {{")
            self.indent += 1
            self.gen_stmts(s.body, dict(strides))
            self.indent -= 1
            if s.orelse:
                self.emit("} else {")
                self.indent += 1
                self.gen_stmts(s.orelse, dict(strides))
                self.indent -= 1
            self.emit("}")
        elif isinstance(s, N.Pass):
            self.emit(";")
        elif isinstance(s, N.Call):
            self.gen_call(s, strides)
        elif isinstance(s, N.WindowStmt):
            self.emit(f"/* window */ {s.typ if hasattr(s, 'typ') else 'float'}* {s.name} = {_c_expr(s.rhs, strides)};")
        elif isinstance(s, N.WriteConfig):
            self.emit(f"ctxt.{s.config.name()}.{s.field_name} = {_c_expr(s.rhs, strides)};")
        else:
            raise BackendError(f"cannot lower statement {type(s).__name__}")

    def gen_call(self, call: N.Call, strides) -> None:
        callee = call.proc
        cdef = callee._root if hasattr(callee, "_root") else callee
        if cdef.instr is not None:
            fmt: Dict[str, str] = {}
            for fn_arg, actual in zip(cdef.args, call.args):
                name = fn_arg.name.name
                fmt[name] = _c_expr(actual, strides)
                if isinstance(actual, (N.WindowExpr,)):
                    fmt[f"{name}_data"] = _c_expr(actual, strides).lstrip("&")
                elif isinstance(actual, N.Read):
                    fmt[f"{name}_data"] = _c_expr(actual, strides)
                else:
                    fmt[f"{name}_data"] = _c_expr(actual, strides)
            if cdef.instr.c_global:
                self.instr_globals.add(cdef.instr.c_global)
            try:
                text = cdef.instr.c_instr.format(**fmt)
            except (KeyError, IndexError):
                text = f"/* instr {cdef.name} */"
            for line in text.split("\n"):
                self.emit(line)
        else:
            args = ", ".join(_c_expr(a, strides) for a in call.args)
            self.emit(f"{cdef.name}(ctxt, {args});")


def proc_to_c(procedure, *, static: bool = False) -> str:
    """Lower one procedure to a C function definition."""
    root = procedure._root if hasattr(procedure, "_root") else procedure
    gen = _CGen()
    strides: Dict = {}
    params = ["void *ctxt_"]
    for a in root.args:
        if isinstance(a.typ, TensorType):
            params.append(f"{a.typ.base.ctype()}* {a.name}")
            strides[a.name] = _row_major_strides(a.typ.shape)
        elif a.typ.is_indexable():
            params.append(f"int_fast32_t {a.name}")
        elif a.typ.is_bool():
            params.append(f"bool {a.name}")
        else:
            params.append(f"{a.typ.ctype()} {a.name}")
    qual = "static " if static else ""
    gen.emit(f"{qual}void {root.name}({', '.join(params)}) {{")
    gen.indent += 1
    for p in root.preds:
        gen.emit(f"// assert {expr_str(p)}")
    gen.gen_stmts(root.body, strides)
    gen.indent -= 1
    gen.emit("}")
    return "\n".join(gen.lines)


def compile_to_c(procedures, header_name: str = "kernels") -> str:
    """Lower a list of procedures (plus the instruction sub-procedures they
    reference) into a single C translation unit."""
    if not isinstance(procedures, (list, tuple)):
        procedures = [procedures]
    out = [
        "#include <stdint.h>",
        "#include <stdbool.h>",
        "#include <math.h>",
        "#include <immintrin.h>",
        "",
        f"// generated by repro (Exo 2 reproduction) — {header_name}",
        "",
    ]
    for p in procedures:
        out.append(proc_to_c(p))
        out.append("")
    return "\n".join(out)
