"""C code generation.

Scheduled object code lowers to C99 that actually compiles and runs: loops
become ``for`` loops, buffers become stack arrays / ``calloc`` blocks / SIMD
register variables (per their memory space), and calls to ``@instr``
procedures whose templates are marked ``intrinsic`` emit the instruction's C
template verbatim with argument lvalues substituted — Exo's exocompilation
model.  Instructions *without* a real intrinsic mapping (and calls to
ordinary sub-procedures) are inlined at emission time and lowered as scalar
C, which is always semantically correct.

Calling convention (shared with :mod:`repro.backend.native`, which compiles
the result and calls it through ``ctypes``):

* tensors pass as ``T *name`` plus one ``int64_t name_s<d>`` *element* stride
  per dimension (so NumPy views work unchanged and ``stride(A, d)`` lowers to
  a parameter read);
* ``size``/``index`` arguments pass as ``int64_t``, ``bool`` as ``bool``;
* numeric scalars pass at the precision the reference interpreter computes
  with — ``double`` for float types, ``int32_t`` for integer types.

Element types follow the *execution* dtypes of :data:`NP_DTYPES` (``f32`` →
``float``, ``f64`` → ``double``, every integer type → ``int32_t``), not the
declared storage types, so the three engines agree bit-for-bit where FP
allows.  Anything that cannot be lowered faithfully raises
:class:`CodegenError` (with the offending statement's printed source) before
a single broken line is emitted.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import BackendError, CodegenError
from ..ir import nodes as N
from ..ir.build import alpha_rename_stmts
from ..ir.externs import extern_by_name
from ..ir.memories import MemoryKind
from ..ir.printing import expr_str, proc_str, stmt_lines
from ..ir.syms import Sym
from ..ir.types import ScalarType, TensorType
from .lowering import InlineError, np_dtype_for, row_major_strides, substitute_call_body

__all__ = [
    "CODEGEN_VERSION",
    "PREAMBLE",
    "CodegenError",
    "CodegenOptions",
    "NativeUnit",
    "compile_to_c",
    "emit_unit",
    "proc_to_c",
]


# Bumping this invalidates every entry of the persistent compiled-artifact
# cache (repro.backend.native) — do so whenever emitted C can change for an
# unchanged procedure.
CODEGEN_VERSION = 2


@dataclass(frozen=True)
class CodegenOptions:
    """Options that change the emitted C / the compile flags.

    Part of the artifact-cache key (see :meth:`key`): changing any field
    makes previously cached shared objects stale.
    """

    intrinsics: bool = True  # emit @instr templates (False: inline every body)
    opt_level: str = "-O3"
    march: str = "native"
    # explicit intrinsic FMAs stay fused; *contraction* of scalar code is
    # disabled so the scalar fallback rounds exactly like the interpreter
    fp_contract: str = "off"
    # emit `#pragma omp parallel for` on provably race-free `par` loops and
    # build with -fopenmp (set by repro.backend.native when the toolchain
    # supports it and the procedure contains a par loop)
    openmp: bool = False

    def key(self) -> str:
        return (
            f"intrinsics={int(self.intrinsics)};opt={self.opt_level};"
            f"march={self.march};fp-contract={self.fp_contract};"
            f"omp={int(self.openmp)}"
        )

    def cflags(self) -> List[str]:
        flags = [self.opt_level, f"-march={self.march}", f"-ffp-contract={self.fp_contract}"]
        if self.openmp:
            flags.append("-fopenmp")
        return flags


@dataclass
class NativeUnit:
    """One emitted translation unit plus the ctypes-facing argument spec.

    ``argspec`` entries are
    ``("tensor", dtype_name, rank, arg_name)`` or
    ``("i64" | "i32" | "f64" | "bool", arg_name)``.
    """

    name: str
    source: str
    argspec: Tuple[tuple, ...]


# The execution C type backing a scalar/tensor element (matches NP_DTYPES).
def _exec_ctype(typ) -> str:
    return {"float32": "float", "float64": "double", "int32": "int32_t"}[np_dtype_for(typ).name]


_VREG_CTYPE = {
    ("float", 256): "__m256",
    ("double", 256): "__m256d",
    ("float", 512): "__m512",
    ("double", 512): "__m512d",
}

_C_KEYWORDS = {
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while", "bool", "true", "false",
    "free", "calloc", "memset",
}


class _Names:
    """Per-unit C identifier table.  Distinct :class:`Sym`\\ s print with the
    same surface name after scheduling (e.g. repeated ``var1`` allocations
    left by fission), so every bound symbol gets a unique C name here."""

    def __init__(self):
        self.by_sym: Dict[Sym, str] = {}
        self.used: Set[str] = set(_C_KEYWORDS)

    def reserve(self, name: str) -> None:
        self.used.add(name)

    def of(self, sym: Sym) -> str:
        got = self.by_sym.get(sym)
        if got is not None:
            return got
        base = re.sub(r"[^A-Za-z0-9_]", "_", sym.name or "v")
        if not re.match(r"[A-Za-z_]", base):
            base = "_" + base
        cand, i = base, 0
        while cand in self.used:
            i += 1
            cand = f"{base}_{i}"
        self.used.add(cand)
        self.by_sym[sym] = cand
        return cand


@dataclass
class _Buf:
    """What the generator knows about one bound symbol."""

    kind: str  # "tensor" | "scalar" | "vreg"
    ctype: str  # element C type
    strides: Optional[List[str]] = None  # rendered element strides (tensors)
    lanes: int = 0  # vreg: lanes per register
    outer: Optional[List[int]] = None  # vreg: constant outer dims (register array)
    vtype: str = ""  # vreg: __m256 / __m512d / ...


_MAX_STACK_ELEMS = 16384  # larger constant-shaped allocations go on the heap
_MAX_INLINE_DEPTH = 32


def _const_int(e) -> Optional[int]:
    if isinstance(e, N.Const) and isinstance(e.val, (int, np.integer)) and not isinstance(e.val, bool):
        return int(e.val)
    return None


class _CGen:
    def __init__(self, root: N.ProcDef, options: CodegenOptions):
        self.root = root
        self.options = options
        self.lines: List[str] = []
        self.indent = 0
        self.names = _Names()
        self.bufs: Dict[Sym, _Buf] = {}
        self.int_syms: Set[Sym] = set()  # iterators and index/size/bool args
        self.free_stack: List[List[str]] = []
        self.globals: List[str] = []
        self.cur_stmt: Optional[N.Stmt] = None
        self.inline_depth = 0
        self.par_depth = 0  # inside an OpenMP-parallel loop body

    # -- error reporting -----------------------------------------------------

    def err(self, message: str, node=None) -> CodegenError:
        loc = None
        node = node if node is not None else self.cur_stmt
        try:
            if isinstance(node, N.Stmt):
                loc = stmt_lines([node])[0].strip()
            elif isinstance(node, N.Expr):
                loc = expr_str(node)
        except Exception:
            loc = None
        return CodegenError(message, proc_name=self.root.name, location=loc)

    # -- emission ------------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    # -- static int-ness (mirrors the interpreter's runtime ``both_int``) ----

    def is_int(self, e: N.Expr) -> bool:
        if isinstance(e, N.Const):
            return isinstance(e.val, (int, np.integer)) and not isinstance(e.val, bool)
        if isinstance(e, N.Read):
            if e.name in self.int_syms:
                return True
            buf = self.bufs.get(e.name)
            return buf is not None and buf.ctype == "int32_t"
        if isinstance(e, N.BinOp):
            if e.op in ("<", "<=", ">", ">=", "==", "!=", "and", "or"):
                return True
            return self.is_int(e.lhs) and self.is_int(e.rhs)
        if isinstance(e, N.USub):
            return self.is_int(e.arg)
        if isinstance(e, N.StrideExpr):
            return True
        return False

    # -- expressions ----------------------------------------------------------

    def expr(self, e: N.Expr) -> str:
        if isinstance(e, N.Const):
            return self.const_str(e)
        if isinstance(e, N.Read):
            return self.read_str(e)
        if isinstance(e, N.BinOp):
            return self.binop_str(e)
        if isinstance(e, N.USub):
            return f"(-{self.expr(e.arg)})"
        if isinstance(e, N.Extern):
            d = extern_by_name(e.fname)
            if not getattr(d, "c_template", ""):
                raise self.err(f"extern {e.fname!r} has no C template", e)
            return d.c_template.format(*[self.expr(a) for a in e.args])
        if isinstance(e, N.StrideExpr):
            buf = self.bufs.get(e.name)
            if buf is None or buf.strides is None or e.dim >= len(buf.strides):
                raise self.err(f"stride() of non-tensor {e.name}", e)
            return f"({buf.strides[e.dim]})"
        if isinstance(e, N.ReadConfig):
            raise self.err(
                f"configuration state ({e.config.name()}.{e.field_name}) is not "
                "supported by the C backend",
                e,
            )
        if isinstance(e, N.WindowExpr):
            raise self.err("window expression in a value position", e)
        raise self.err(f"cannot lower expression of type {type(e).__name__}", e)

    def const_str(self, e: N.Const) -> str:
        v = e.val
        if isinstance(v, (bool, np.bool_)):
            return "1" if v else "0"
        if isinstance(v, (int, np.integer)):
            return str(int(v))
        f = float(v)
        if math.isnan(f):
            return "NAN"
        if math.isinf(f):
            return "INFINITY" if f > 0 else "(-INFINITY)"
        return repr(f)  # a C double literal; scalar FP math runs at f64

    def read_str(self, e: N.Read) -> str:
        buf = self.bufs.get(e.name)
        if buf is not None and buf.kind == "vreg":
            if not e.idx:
                raise self.err("whole vector register read in a value position", e)
            return self.vreg_elem(e.name, list(e.idx))
        c = self.names.of(e.name)
        if not e.idx:
            return c
        if buf is None or buf.kind != "tensor":
            raise self.err(f"indexed read of non-tensor {e.name}", e)
        return f"{c}[{self.flat(e.name, list(e.idx))}]"

    def binop_str(self, e: N.BinOp) -> str:
        if e.op in ("/", "%") and self.is_int(e.lhs) and self.is_int(e.rhs):
            fn = "repro_fdiv" if e.op == "/" else "repro_fmod"
            return f"{fn}({self.expr(e.lhs)}, {self.expr(e.rhs)})"
        if e.op == "%":
            raise self.err("floating-point % has Python semantics the C backend does not model", e)
        op = {"and": "&&", "or": "||"}.get(e.op, e.op)
        return f"({self.expr(e.lhs)} {op} {self.expr(e.rhs)})"

    # -- buffers ---------------------------------------------------------------

    def flat(self, sym: Sym, idx: Sequence[N.Expr]) -> str:
        buf = self.bufs[sym]
        strides = buf.strides or []
        parts: List[str] = []
        for d, e in enumerate(idx):
            es = self.expr(e)
            s = strides[d] if d < len(strides) else "1"
            parts.append(es if s == "1" else f"({es}) * ({s})")
        return " + ".join(parts) if parts else "0"

    def vreg_elem(self, sym: Sym, idx: List[N.Expr]) -> str:
        buf = self.bufs[sym]
        c = self.names.of(sym)
        lane = self.expr(idx[-1])
        outer = idx[:-1]
        if buf.outer:
            if len(outer) != len(buf.outer):
                raise self.err(f"vector register {sym} accessed with wrong rank")
            return f"{c}[{self._vreg_outer(buf, outer)}][{lane}]"
        if outer:
            raise self.err(f"vector register {sym} accessed with wrong rank")
        return f"{c}[{lane}]"

    def _vreg_outer(self, buf: _Buf, outer: Sequence[N.Expr]) -> str:
        parts = []
        mult = 1
        for d in range(len(buf.outer) - 1, -1, -1):
            es = self.expr(outer[d])
            parts.append(es if mult == 1 else f"({es}) * {mult}")
            mult *= buf.outer[d]
        return " + ".join(reversed(parts)) if parts else "0"

    def vreg_ref(self, sym: Sym, outer: Sequence[N.Expr], node=None) -> str:
        buf = self.bufs[sym]
        c = self.names.of(sym)
        if buf.outer:
            if len(outer) != len(buf.outer):
                raise self.err(f"vector register {sym} windowed with wrong rank", node)
            return f"{c}[{self._vreg_outer(buf, outer)}]"
        if outer:
            raise self.err(f"vector register {sym} windowed with wrong rank", node)
        return c

    # -- statements --------------------------------------------------------------

    def gen_block(self, stmts: Sequence[N.Stmt]) -> None:
        frees: List[str] = []
        self.free_stack.append(frees)
        for s in stmts:
            self.gen_stmt(s)
        for c in reversed(frees):
            self.emit(f"free({c});")
        self.free_stack.pop()

    def gen_stmt(self, s: N.Stmt) -> None:
        prev = self.cur_stmt
        self.cur_stmt = s
        try:
            self._gen_stmt(s)
        finally:
            self.cur_stmt = prev

    def _gen_stmt(self, s: N.Stmt) -> None:
        if isinstance(s, (N.Assign, N.Reduce)):
            self.gen_assign(s)
        elif isinstance(s, N.Alloc):
            self.gen_alloc(s)
        elif isinstance(s, N.For):
            it = self.names.of(s.iter)
            self.int_syms.add(s.iter)
            lo, hi = self.expr(s.lo), self.expr(s.hi)
            clause = None
            if s.pragma == "par" and self.options.openmp and self.par_depth == 0:
                clause = self._omp_clause(s)
                if clause is not None:
                    self.emit(f"#pragma omp parallel for{clause}")
            self.emit(f"for (int64_t {it} = {lo}; {it} < {hi}; {it}++) {{")
            self.indent += 1
            if clause is not None:
                self.par_depth += 1
                try:
                    self.gen_block(s.body)
                finally:
                    self.par_depth -= 1
            else:
                self.gen_block(s.body)
            self.indent -= 1
            self.emit("}")
        elif isinstance(s, N.If):
            self.emit(f"if ({self.expr(s.cond)}) {{")
            self.indent += 1
            self.gen_block(s.body)
            self.indent -= 1
            if s.orelse:
                self.emit("} else {")
                self.indent += 1
                self.gen_block(s.orelse)
                self.indent -= 1
            self.emit("}")
        elif isinstance(s, N.Pass):
            self.emit(";")
        elif isinstance(s, N.Call):
            self.gen_call(s)
        elif isinstance(s, N.WindowStmt):
            self.gen_window_stmt(s)
        elif isinstance(s, N.WriteConfig):
            raise self.err(
                f"configuration state ({s.config.name()}.{s.field_name}) is not "
                "supported by the C backend"
            )
        else:
            raise self.err(f"cannot lower statement of type {type(s).__name__}")

    def _omp_clause(self, s: N.For) -> Optional[str]:
        """The OpenMP clause suffix for a race-free ``parallel for`` emission
        of ``s`` (``""`` or ``" reduction(...)..."``), or ``None`` when no
        such emission exists and the loop must stay sequential.

        ``parallelize_loop`` already proved the iterations commute; this
        routes each written outer buffer to OpenMP's memory model: writes at
        iterator-dependent indices touch disjoint elements (shared is safe),
        pure accumulation targets get a ``reduction(+:...)`` clause (a scalar
        or a one-element array section at a loop-invariant index), and
        anything else declines the pragma."""
        from ..analysis.effects import accesses_of
        from ..ir.build import collect_allocs, used_syms_expr

        local = {a.name for a in collect_allocs(s.body)}
        by_buf: Dict[Sym, List] = {}
        for a in accesses_of(s.body):
            if a.buf in local or a.buf is s.iter:
                continue
            by_buf.setdefault(a.buf, []).append(a)
        parts: List[str] = []
        for sym, lst in sorted(by_buf.items(), key=lambda kv: self.names.of(kv[0])):
            writes = [a for a in lst if a.is_write()]
            if not writes:
                continue
            buf = self.bufs.get(sym)
            allreduce = all(a.kind == "reduce" for a in lst)
            if buf is not None and buf.kind == "tensor":
                disjoint = all(
                    a.idx is not None and any(s.iter in used_syms_expr(ix) for ix in a.idx)
                    for a in writes
                ) and all(a.idx is not None for a in lst)
                if disjoint:
                    continue
                invariant = allreduce and all(
                    a.idx is not None
                    and not any(s.iter in used_syms_expr(ix) for ix in a.idx)
                    for a in writes
                )
                if invariant:
                    idxs = {self.flat(sym, list(a.idx)) for a in writes}
                    if len(idxs) == 1:
                        parts.append(f"reduction(+:{self.names.of(sym)}[{idxs.pop()}:1])")
                        continue
                return None
            if buf is not None and buf.kind == "scalar" and allreduce:
                parts.append(f"reduction(+:{self.names.of(sym)})")
                continue
            return None
        return "".join(f" {p}" for p in parts)

    def gen_assign(self, s) -> None:
        op = "=" if isinstance(s, N.Assign) else "+="
        rhs = self.expr(s.rhs)
        buf = self.bufs.get(s.name)
        if buf is not None and buf.kind == "vreg":
            if not s.idx:
                raise self.err("whole vector register written without a lane index")
            self.emit(f"{self.vreg_elem(s.name, list(s.idx))} {op} {rhs};")
            return
        c = self.names.of(s.name)
        if s.idx:
            if buf is None or buf.kind != "tensor":
                raise self.err(f"indexed write to non-tensor {s.name}")
            self.emit(f"{c}[{self.flat(s.name, list(s.idx))}] {op} {rhs};")
        else:
            self.emit(f"{c} {op} {rhs};")

    def gen_alloc(self, s: N.Alloc) -> None:
        c = self.names.of(s.name)
        if isinstance(s.typ, ScalarType):
            ct = _exec_ctype(s.typ)
            self.bufs[s.name] = _Buf("scalar", ct)
            self.emit(f"{ct} {c} = 0;")
            return
        if not isinstance(s.typ, TensorType):
            raise self.err(f"cannot allocate a value of type {s.typ!r}")
        ct = _exec_ctype(s.typ)
        if s.mem.kind == MemoryKind.VECTOR_REG and self.gen_vreg_alloc(s, c, ct):
            return
        consts = [_const_int(d) for d in s.typ.shape]
        strides = row_major_strides(s.typ.shape, self.expr)
        self.bufs[s.name] = _Buf("tensor", ct, strides=strides)
        if all(v is not None for v in consts):
            total = 1
            for v in consts:
                total *= v
            if total <= _MAX_STACK_ELEMS:
                # zero-initialised to match the interpreter's np.zeros
                self.emit(f"{ct} {c}[{total}] __attribute__((aligned(64))) = {{0}};")
                return
        size = " * ".join(f"({self.expr(d)})" for d in s.typ.shape)
        self.emit(f"{ct} *{c} = ({ct} *)calloc((size_t)({size}), sizeof({ct}));")
        self.free_stack[-1].append(c)

    def gen_vreg_alloc(self, s: N.Alloc, c: str, ct: str) -> bool:
        """Allocate a vector-register buffer as a real SIMD register variable
        (or register array).  Returns False when the shape does not map onto
        exactly one register per innermost row — e.g. a schedule that
        vectorises 16-wide on a 256-bit machine and only ever touches lanes
        scalarly — in which case the caller falls back to an ordinary aligned
        stack array, which is always correct (the unifier only matches
        ``@instr`` operands against exact register shapes)."""
        consts = [_const_int(d) for d in s.typ.shape]
        if any(v is None for v in consts):
            return False
        lanes = consts[-1]
        bits = getattr(s.mem, "lane_width_bits", None) or 0
        vt = _VREG_CTYPE.get((ct, bits))
        elem_bits = {"float": 32, "double": 64}.get(ct)
        if vt is None or elem_bits is None or lanes * elem_bits != bits:
            return False
        outer = consts[:-1]
        self.bufs[s.name] = _Buf("vreg", ct, lanes=lanes, outer=outer, vtype=vt)
        if outer:
            n = 1
            for v in outer:
                n *= v
            self.emit(f"{vt} {c}[{n}] = {{{{0}}}};")
        else:
            self.emit(f"{vt} {c} = {{0}};")
        return True

    def gen_window_stmt(self, s: N.WindowStmt) -> None:
        w = s.rhs
        base = self.bufs.get(w.name)
        if base is None or base.kind != "tensor":
            raise self.err(f"cannot bind a window over {w.name}")
        firsts = [d.lo if isinstance(d, N.Interval) else d.pt for d in w.idx]
        strides = [
            (base.strides[i] if base.strides and i < len(base.strides) else "1")
            for i, d in enumerate(w.idx)
            if isinstance(d, N.Interval)
        ]
        c = self.names.of(s.name)
        self.bufs[s.name] = _Buf("tensor", base.ctype, strides=strides)
        self.emit(f"{base.ctype} *{c} = {self.names.of(w.name)} + ({self.flat(w.name, firsts)});")

    # -- calls ---------------------------------------------------------------------

    def gen_call(self, call: N.Call) -> None:
        callee = call.proc
        cdef = callee._root if hasattr(callee, "_root") else callee
        if len(cdef.args) != len(call.args):
            raise self.err(f"call of {cdef.name} with {len(call.args)} args (expects {len(cdef.args)})")
        if (
            cdef.instr is not None
            and cdef.instr.intrinsic
            and self.options.intrinsics
            and self.intrinsic_applicable(cdef, call)
        ):
            self.gen_intrinsic(cdef, call)
        else:
            self.gen_inlined(cdef, call)

    def intrinsic_applicable(self, cdef: N.ProcDef, call: N.Call) -> bool:
        """An intrinsic template is only emitted when every tensor operand's
        execution element type matches the instruction's declared precision —
        e.g. ``dsdot`` stages ``f32`` data through ``f64`` registers, and a
        raw-bits ``_mm256_loadu_pd`` from a ``float*`` would be garbage.
        Mismatched calls inline the instruction body instead, where scalar C
        conversions apply."""
        for fn_arg, actual in zip(cdef.args, call.args):
            if not isinstance(fn_arg.typ, TensorType):
                continue
            if not isinstance(actual, (N.Read, N.WindowExpr)):
                return False
            buf = self.bufs.get(actual.name)
            if buf is None or buf.ctype != _exec_ctype(fn_arg.typ):
                return False
        return True

    def gen_intrinsic(self, cdef: N.ProcDef, call: N.Call) -> None:
        fmt: Dict[str, str] = {}
        for fn_arg, actual in zip(cdef.args, call.args):
            rendered = self.actual_str(fn_arg, actual)
            fmt[fn_arg.name.name] = rendered
            fmt[f"{fn_arg.name.name}_data"] = rendered
        if cdef.instr.c_global and cdef.instr.c_global not in self.globals:
            self.globals.append(cdef.instr.c_global)
        try:
            text = cdef.instr.c_instr.format(**fmt)
        except (KeyError, IndexError) as exc:
            raise self.err(f"instruction template of {cdef.name} references unknown key {exc}") from exc
        for line in text.split("\n"):
            self.emit(line)

    def actual_str(self, fn_arg: N.FnArg, actual: N.Expr) -> str:
        """Render a call actual for substitution into an intrinsic template.

        Buffer actuals render as the *first element lvalue* (templates take
        its address with ``&``) and vector-register actuals as the register
        variable itself.
        """
        if isinstance(actual, N.WindowExpr):
            buf = self.bufs.get(actual.name)
            if buf is None:
                raise self.err(f"call actual windows unknown buffer {actual.name}", actual)
            if buf.kind == "vreg":
                outer, last = list(actual.idx[:-1]), actual.idx[-1]
                if (
                    not isinstance(last, N.Interval)
                    or _const_int(last.lo) != 0
                    or _const_int(last.hi) != buf.lanes
                    or not all(isinstance(d, N.Point) for d in outer)
                ):
                    raise self.err("partial vector-register window in a call", actual)
                return self.vreg_ref(actual.name, [d.pt for d in outer], actual)
            firsts = [d.lo if isinstance(d, N.Interval) else d.pt for d in actual.idx]
            return f"{self.names.of(actual.name)}[{self.flat(actual.name, firsts)}]"
        if isinstance(actual, N.Read) and not actual.idx:
            buf = self.bufs.get(actual.name)
            if buf is not None and buf.kind == "vreg":
                return self.vreg_ref(actual.name, [], actual)
            if buf is not None and buf.kind == "tensor":
                return f"{self.names.of(actual.name)}[0]"
            return self.names.of(actual.name)
        return self.expr(actual)

    def gen_inlined(self, cdef: N.ProcDef, call: N.Call) -> None:
        if self.inline_depth >= _MAX_INLINE_DEPTH:
            raise self.err(f"call chain through {cdef.name} is too deep to inline")
        fresh = alpha_rename_stmts(cdef.body)
        try:
            body = substitute_call_body(cdef.args, call.args, fresh)
        except InlineError as exc:
            raise self.err(f"cannot inline call of {cdef.name}: {exc}") from exc
        self.emit(f"{{ /* {cdef.name} */")
        self.indent += 1
        self.inline_depth += 1
        try:
            self.gen_block(body)
        finally:
            self.inline_depth -= 1
        self.indent -= 1
        self.emit("}")

    # -- whole procedures ------------------------------------------------------------

    def gen_proc(self, *, static: bool = False) -> Tuple[str, tuple]:
        root = self.root
        params: List[str] = []
        argspec: List[tuple] = []
        # reserve every argument name (and its stride names) first so inner
        # allocations can never shadow them
        for a in root.args:
            self.names.of(a.name)
        for a in root.args:
            c = self.names.of(a.name)
            if isinstance(a.typ, TensorType):
                ct = _exec_ctype(a.typ)
                rank = len(a.typ.shape)
                params.append(f"{ct} *{c}")
                strides = []
                for d in range(rank):
                    sname = f"{c}_s{d}"
                    self.names.reserve(sname)
                    params.append(f"int64_t {sname}")
                    strides.append(sname)
                self.bufs[a.name] = _Buf("tensor", ct, strides=strides)
                argspec.append(("tensor", np_dtype_for(a.typ).name, rank, a.name.name))
            elif a.typ.is_indexable():
                params.append(f"int64_t {c}")
                self.int_syms.add(a.name)
                argspec.append(("i64", a.name.name))
            elif a.typ.is_bool():
                params.append(f"bool {c}")
                self.int_syms.add(a.name)
                argspec.append(("bool", a.name.name))
            elif a.typ.is_float:
                # scalar FP arguments compute at f64, as the interpreter does
                params.append(f"double {c}")
                self.bufs[a.name] = _Buf("scalar", "double")
                argspec.append(("f64", a.name.name))
            else:
                params.append(f"int32_t {c}")
                self.bufs[a.name] = _Buf("scalar", "int32_t")
                argspec.append(("i32", a.name.name))
        qual = "static " if static else ""
        self.emit(f"{qual}void {root.name}({', '.join(params) or 'void'}) {{")
        self.indent += 1
        for p in root.preds:
            self.emit(f"// assert {expr_str(p)}  (checked by the caller)")
        self.gen_block(root.body)
        self.indent -= 1
        self.emit("}")
        return "\n".join(self.lines), tuple(argspec)


# ---------------------------------------------------------------------------
# Translation-unit assembly
# ---------------------------------------------------------------------------

# Helpers every generated unit may reference.  ``repro_fdiv``/``repro_fmod``
# give `/` and `%` the object language's (Python's) floor semantics on
# negatives.  The AVX2 helpers implement predicated (tail) vector ops by
# masked load/store and blends — AVX2 has no opmask registers; preserved
# lanes must keep their destination value.  The AVX-512 helpers turn a lane
# count into an opmask.
PREAMBLE = """\
#include <stdint.h>
#include <stdbool.h>
#include <stddef.h>
#include <stdlib.h>
#include <math.h>
#if defined(__AVX__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

static inline int64_t repro_fdiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}
static inline int64_t repro_fmod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

#if defined(__AVX512F__)
static inline __mmask16 repro_mask16(int64_t n) {
    if (n <= 0) return (__mmask16)0;
    if (n >= 16) return (__mmask16)0xFFFF;
    return (__mmask16)((1u << n) - 1u);
}
static inline __mmask8 repro_mask8(int64_t n) {
    if (n <= 0) return (__mmask8)0;
    if (n >= 8) return (__mmask8)0xFF;
    return (__mmask8)((1u << n) - 1u);
}
#endif

#if defined(__AVX2__)
static inline __m256i repro_avx2_lanes_ps(int64_t n) {
    if (n < 0) n = 0;
    if (n > 8) n = 8;
    return _mm256_cmpgt_epi32(_mm256_set1_epi32((int32_t)n),
                              _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
}
static inline __m256i repro_avx2_lanes_pd(int64_t n) {
    if (n < 0) n = 0;
    if (n > 4) n = 4;
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(n),
                              _mm256_setr_epi64x(0, 1, 2, 3));
}
static inline __m256 repro_avx2_maskload_ps(__m256 dst, float const *src, int64_t n) {
    __m256i m = repro_avx2_lanes_ps(n);
    return _mm256_blendv_ps(dst, _mm256_maskload_ps(src, m), _mm256_castsi256_ps(m));
}
static inline __m256d repro_avx2_maskload_pd(__m256d dst, double const *src, int64_t n) {
    __m256i m = repro_avx2_lanes_pd(n);
    return _mm256_blendv_pd(dst, _mm256_maskload_pd(src, m), _mm256_castsi256_pd(m));
}
static inline void repro_avx2_maskstore_ps(float *dst, __m256 src, int64_t n) {
    _mm256_maskstore_ps(dst, repro_avx2_lanes_ps(n), src);
}
static inline void repro_avx2_maskstore_pd(double *dst, __m256d src, int64_t n) {
    _mm256_maskstore_pd(dst, repro_avx2_lanes_pd(n), src);
}
static inline __m256 repro_avx2_maskblend_ps(__m256 dst, __m256 val, int64_t n) {
    __m256i m = repro_avx2_lanes_ps(n);
    return _mm256_blendv_ps(dst, val, _mm256_castsi256_ps(m));
}
static inline __m256d repro_avx2_maskblend_pd(__m256d dst, __m256d val, int64_t n) {
    __m256i m = repro_avx2_lanes_pd(n);
    return _mm256_blendv_pd(dst, val, _mm256_castsi256_pd(m));
}
#endif
"""


def _emit(root: N.ProcDef, options: CodegenOptions, *, static: bool = False):
    gen = _CGen(root, options)
    text, argspec = gen.gen_proc(static=static)
    return text, argspec, gen.globals


def proc_to_c(procedure, *, static: bool = False, options: Optional[CodegenOptions] = None) -> str:
    """Lower one procedure to a C function definition.

    The text assumes :data:`PREAMBLE` is in scope (see :func:`compile_to_c`
    and :func:`emit_unit`).  Raises :class:`CodegenError` — with the printed
    form of the offending statement — for anything that cannot be lowered.
    """
    root = procedure._root if hasattr(procedure, "_root") else procedure
    text, _spec, _globals = _emit(root, options or CodegenOptions(), static=static)
    return text


def compile_to_c(procedures, header_name: str = "kernels", options: Optional[CodegenOptions] = None) -> str:
    """Lower a list of procedures into a single, compilable C translation unit."""
    if not isinstance(procedures, (list, tuple)):
        procedures = [procedures]
    options = options or CodegenOptions()
    funcs, globs = [], []
    for p in procedures:
        root = p._root if hasattr(p, "_root") else p
        text, _spec, g = _emit(root, options)
        funcs.append(text)
        for item in g:
            if item not in globs:
                globs.append(item)
    out = [PREAMBLE, f"// generated by repro (Exo 2 reproduction) — {header_name}", ""]
    out.extend(globs)
    for f in funcs:
        out.append(f)
        out.append("")
    return "\n".join(out)


def emit_unit(procedure, options: Optional[CodegenOptions] = None) -> NativeUnit:
    """Emit one procedure as a self-contained translation unit for the native
    execution backend (:mod:`repro.backend.native`), together with the
    ctypes-facing argument spec of the calling convention."""
    root = procedure._root if hasattr(procedure, "_root") else procedure
    options = options or CodegenOptions()
    text, argspec, globs = _emit(root, options)
    parts = [PREAMBLE]
    parts.extend(globs)
    parts.append(text)
    return NativeUnit(root.name, "\n".join(parts) + "\n", argspec)
