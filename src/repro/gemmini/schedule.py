"""The Gemmini matmul kernel and its scheduling library (Section 6.1.2,
Appendix B).

The schedule lowers a textbook matmul-with-postprocessing onto Gemmini's
16×16-tile instructions: the result tile lives in the accumulator, A/B tiles
are staged through the scratchpad, the output scale is bound into the
configuration state, and — the paper's headline Gemmini example —
configuration writes are hoisted out of the tile loops with the user-level
``hoist_stmt`` schedule (Figure 5).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import InvalidCursorError, SchedulingError
from ..frontend.decorators import proc_from_source
from ..machines.gemmini import GEMM_ACCUM, GEMM_SCRATCH, GEMMINI, config_st
from ..primitives import (
    bind_config,
    divide_loop,
    expand_dim,
    fission,
    lift_alloc,
    lift_scope,
    rename,
    replace_all,
    set_memory,
    simplify,
)
from ..stdlib.elevate import hoist_stmt
from ..stdlib.tiling import auto_stage_mem, cleanup, tile2D

__all__ = [
    "make_matmul_kernel",
    "matmul_schedule",
    "matmul_space",
    "schedule_matmul_gemmini",
    "schedule_matmul_gemmini_exo_style",
]


def make_matmul_kernel(K: int = 512):
    """The starting object code: int8 matmul with scale + ReLU post-processing
    (the simplified form of Appendix B's initial object code)."""
    src = f"""
def matmul_on_gemmini(N: size, M: size, scale: f32, A: i8[N, {K}] @ DRAM, B: i8[{K}, M] @ DRAM, C: i8[N, M] @ DRAM):
    assert N % 16 == 0
    assert M % 16 == 0
    for i in seq(0, N):
        for j in seq(0, M):
            res: i32 @ DRAM
            res = 0.0
            for k in seq(0, {K}):
                res += A[i, k] * B[k, j]
            C[i, j] = relu(acc_scale(res, scale))
"""
    return proc_from_source(src, {"relu": None, "acc_scale": None})


def _matmul_gemmini_impl(p, tile: int = 16):
    """The Gemmini matmul pipeline (Exo 2 style: a handful of library calls);
    lifted into the Schedule value returned by :func:`matmul_schedule`."""
    p = rename(p, "matmul_on_gemmini_exo2")

    # bind the output scale into Gemmini's store configuration and let the
    # store instruction read it from there
    store = p.find("C[_] = _")
    scale_read = store.rhs().args()[0].args()[1]  # relu(acc_scale(res, scale))
    p = bind_config(p, scale_read, config_st, "scale")

    # tile the (i, j) space into 16x16 output tiles
    p = tile2D(p, "i", "j", ["io", "ii"], ["jo", "ji"], tile, tile)

    # the per-element accumulator becomes a 16x16 accumulator tile
    p = expand_dim(p, "res", tile, "ji")
    p = expand_dim(p, "res", tile, "ii")
    p = lift_alloc(p, "res", n_lifts=2)
    p = set_memory(p, "res", GEMM_ACCUM)

    # split the tile body into init / accumulate / store phases
    ji = p.find_loop("ji")
    p = fission(p, ji.body()[0].after(), n_lifts=2)
    ji2 = p.find_loop("ji #1")
    k_loop = ji2.find("for k in _: _")
    p = fission(p, k_loop.after(), n_lifts=2)

    # re-associate the k loop: block it by 16 and hoist the block loop out of
    # the (ii, ji) tile loops so a whole 16x16x16 block is one instruction
    p = divide_loop(p, "k", tile, ["ko", "ki"], perfect=True)
    # the conservative dependence analysis cannot justify hoisting the k-block
    # loop above the tile loops (it does not reason about reduction
    # re-association across loop levels); the interpreter-based equivalence
    # tests cover this schedule end-to-end.
    p = lift_scope(p, "ko", unsafe_disable_check=True)
    p = lift_scope(p, "ko", unsafe_disable_check=True)

    # stage the A and B tiles into the scratchpad
    ko = p.find_loop("ko")
    p, _ = auto_stage_mem(p, ko.body(), "A", "A_tmp", rc=True)
    p = set_memory(p, "A_tmp", GEMM_SCRATCH)
    ko = p.find_loop("ko")
    p, _ = auto_stage_mem(p, ko.body(), "B", "B_tmp", rc=True)
    p = set_memory(p, "B_tmp", GEMM_SCRATCH)

    p = simplify(p)

    # hoist the configuration write out of all the loops (Figure 5) so every
    # output tile is not preceded by a redundant re-configuration
    try:
        cfg = p.find("config_st.scale = _")
        res = hoist_stmt(p, cfg)
        p = res[0] if isinstance(res, tuple) else res
    except (SchedulingError, InvalidCursorError):
        pass

    # map loop nests onto Gemmini instructions
    instrs = [
        GEMMINI.get("do_zero_acc_i32"),
        GEMMINI.get("do_ld_i8_id1"),
        GEMMINI.get("do_ld_i8_id2"),
        GEMMINI.get("do_matmul_acc_i8"),
        GEMMINI.get("do_st_acc_i8"),
    ]
    p = replace_all(p, instrs)

    return cleanup(p)


from ..api import knob, lift_op  # noqa: E402
from ..api.schedule import Schedule  # noqa: E402

_matmul_op = lift_op(_matmul_gemmini_impl, "gemmini_matmul", register=True)


def matmul_schedule() -> Schedule:
    """The full Gemmini matmul schedule as a first-class value; knob ``tile``
    (default 16) sets the systolic-array tile size."""
    return _matmul_op(knob("tile", 16))


def matmul_space():
    """The tunable domain of :func:`matmul_schedule` — a deliberate
    single-point space: Gemmini's systolic array is 16×16, so ``tile`` has
    exactly one admissible value.  Tuning it degenerates to measuring the one
    candidate, which exercises the autotuner's single-point path."""
    from ..tune import Param, Space

    return Space(Param("tile", (16,)))


def schedule_matmul_gemmini(p=None, tile: int = 16):
    """Legacy entry point: build and apply :func:`matmul_schedule`."""
    if p is None:
        p = make_matmul_kernel()
    return matmul_schedule().apply(p, tile=tile)


def schedule_matmul_gemmini_exo_style(p=None, tile: int = 16):
    """The same schedule written as plain Exo would require: every primitive
    spelled out inline, with no reusable library functions.  The resulting
    object code is identical; only the amount of scheduling code differs
    (Figure 6c)."""
    if p is None:
        p = make_matmul_kernel()
    p = rename(p, "matmul_on_gemmini_exo")
    store = p.find("C[_] = _")
    scale_read = store.rhs().args()[0].args()[1]
    p = bind_config(p, scale_read, config_st, "scale")
    p = divide_loop(p, "i", tile, ["io", "ii"], perfect=True)
    p = divide_loop(p, "j", tile, ["jo", "ji"], perfect=True)
    p = lift_scope(p, "jo")
    p = expand_dim(p, "res", tile, "ji")
    p = expand_dim(p, "res", tile, "ii")
    p = lift_alloc(p, "res")
    p = lift_alloc(p, "res")
    p = set_memory(p, "res", GEMM_ACCUM)
    ji = p.find_loop("ji")
    p = fission(p, ji.body()[0].after(), n_lifts=2)
    ji2 = p.find_loop("ji #1")
    k_loop = ji2.find("for k in _: _")
    p = fission(p, k_loop.after(), n_lifts=2)
    p = divide_loop(p, "k", tile, ["ko", "ki"], perfect=True)
    p = lift_scope(p, "ko", unsafe_disable_check=True)
    p = lift_scope(p, "ko", unsafe_disable_check=True)
    ko = p.find_loop("ko")
    p, _ = auto_stage_mem(p, ko.body(), "A", "A_tmp", rc=True)
    p = set_memory(p, "A_tmp", GEMM_SCRATCH)
    ko = p.find_loop("ko")
    p, _ = auto_stage_mem(p, ko.body(), "B", "B_tmp", rc=True)
    p = set_memory(p, "B_tmp", GEMM_SCRATCH)
    p = simplify(p)
    try:
        cfg = p.find("config_st.scale = _")
        res = hoist_stmt(p, cfg)
        p = res[0] if isinstance(res, tuple) else res
    except (SchedulingError, InvalidCursorError):
        pass
    p = replace_all(
        p,
        [
            GEMMINI.get("do_zero_acc_i32"),
            GEMMINI.get("do_ld_i8_id1"),
            GEMMINI.get("do_ld_i8_id2"),
            GEMMINI.get("do_matmul_acc_i8"),
            GEMMINI.get("do_st_acc_i8"),
        ],
    )
    return cleanup(p)
