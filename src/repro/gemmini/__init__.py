"""Gemmini library: the accelerator matmul schedule of Section 6.1.2 / Appendix B."""

from .schedule import (
    make_matmul_kernel,
    matmul_schedule,
    matmul_space,
    schedule_matmul_gemmini,
    schedule_matmul_gemmini_exo_style,
)

__all__ = [
    "make_matmul_kernel",
    "matmul_schedule",
    "matmul_space",
    "schedule_matmul_gemmini",
    "schedule_matmul_gemmini_exo_style",
]
