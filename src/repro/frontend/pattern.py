"""Structural pattern matching over object code.

Patterns are written in the object-language surface syntax with ``_`` as a
wildcard, e.g.::

    'for i in _: _'          # the loop with iterator name `i`
    'for _ in _: _'          # any loop
    'y[_] += _'              # any reduction into y
    'a2 = A[_]'              # an assignment of a read of A to a2
    'res: _'                 # the allocation of res
    'do_ld_i8(_)'            # a call to do_ld_i8
    'x[_] * y[_]'            # an expression pattern

A trailing ``#k`` selects the k-th match (0-based).  Multi-statement patterns
(newline- or ``;``-separated) match contiguous statement sequences and produce
block matches.
"""

from __future__ import annotations

import ast
import functools
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..errors import ParseError
from ..ir import nodes as N
from ..ir.build import Path, walk

__all__ = ["Match", "parse_pattern", "find_pattern_matches"]


@dataclass
class Match:
    """A single pattern match.

    ``kind`` is ``"block"`` for statement patterns (``owner_path``/``attr``
    locate the statement list, ``start``/``length`` the matched range) and
    ``"expr"`` for expression patterns (``path`` locates the expression).
    """

    kind: str
    owner_path: Optional[Path] = None
    attr: Optional[str] = None
    start: int = 0
    length: int = 1
    path: Optional[Path] = None


_WILD = "_"


def _strip_occurrence(pattern: str) -> Tuple[str, Optional[int]]:
    if "#" in pattern:
        body, _, occ = pattern.rpartition("#")
        occ = occ.strip()
        if occ.isdigit():
            return body.strip(), int(occ)
    return pattern.strip(), None


@functools.lru_cache(maxsize=1024)
def parse_pattern(pattern: str):
    """Parse a pattern string into (list-of-stmt-patterns | expr-pattern, occurrence).

    Memoised: ``Procedure.find`` re-runs the same pattern strings constantly
    (every scheduling-library call site), and ``ast.parse`` dominates the cost
    of small searches.  The returned Python ``ast`` nodes are shared between
    calls; matching only ever reads them.
    """
    body, occurrence = _strip_occurrence(pattern)
    try:
        tree = ast.parse(body)
    except SyntaxError as e:
        raise ParseError(f"could not parse pattern {pattern!r}: {e}") from None
    stmts = tree.body
    if len(stmts) == 1 and isinstance(stmts[0], ast.Expr) and not isinstance(stmts[0].value, ast.Call):
        return ("expr", stmts[0].value, occurrence)
    if len(stmts) == 1 and isinstance(stmts[0], ast.Expr) and isinstance(stmts[0].value, ast.Call):
        # A call could be a call-statement pattern; treat as statement pattern.
        return ("stmts", stmts, occurrence)
    return ("stmts", stmts, occurrence)


# ---------------------------------------------------------------------------
# Expression matching
# ---------------------------------------------------------------------------


def _name_of(node) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    return None


def match_expr(pat, e) -> bool:
    """Does expression pattern ``pat`` (a Python ast) match IR expression ``e``?"""
    if _name_of(pat) == _WILD:
        return True
    if isinstance(pat, ast.Name):
        return isinstance(e, (N.Read, N.WindowExpr)) and e.name.name == pat.id and not getattr(e, "idx", [])
    if isinstance(pat, ast.Constant):
        return isinstance(e, N.Const) and e.val == pat.value
    if isinstance(pat, ast.Subscript):
        if not isinstance(e, (N.Read, N.WindowExpr)):
            return False
        bufname = _name_of(pat.value)
        if bufname != _WILD and e.name.name != bufname:
            return False
        slc = pat.slice
        if isinstance(slc, ast.Index):  # pragma: no cover - py<3.9
            slc = slc.value
        dims = slc.elts if isinstance(slc, ast.Tuple) else [slc]
        if len(dims) == 1 and _name_of(dims[0]) == _WILD:
            return True
        if len(dims) != len(e.idx):
            return False
        for d, i in zip(dims, e.idx):
            ir_i = i.pt if isinstance(i, N.Point) else i
            if isinstance(d, ast.Slice):
                if not isinstance(i, N.Interval):
                    return False
                continue
            if isinstance(i, N.Interval):
                return False
            if not match_expr(d, ir_i):
                return False
        return True
    if isinstance(pat, ast.BinOp):
        if not isinstance(e, N.BinOp):
            return False
        from .parser import _BINOP

        op = _BINOP.get(type(pat.op))
        if op is None or op != e.op:
            return False
        return match_expr(pat.left, e.lhs) and match_expr(pat.right, e.rhs)
    if isinstance(pat, ast.UnaryOp) and isinstance(pat.op, ast.USub):
        if isinstance(e, N.USub):
            return match_expr(pat.operand, e.arg)
        if isinstance(e, N.Const) and isinstance(pat.operand, ast.Constant):
            return e.val == -pat.operand.value
        return False
    if isinstance(pat, ast.Compare):
        if not isinstance(e, N.BinOp):
            return False
        from .parser import _CMPOP

        if len(pat.ops) != 1:
            return False
        op = _CMPOP.get(type(pat.ops[0]))
        if op != e.op:
            return False
        return match_expr(pat.left, e.lhs) and match_expr(pat.comparators[0], e.rhs)
    if isinstance(pat, ast.Call):
        fname = _name_of(pat.func)
        if isinstance(e, N.Extern):
            if fname != _WILD and e.fname != fname:
                return False
            return _match_args(pat.args, e.args)
        if isinstance(e, N.StrideExpr) and fname == "stride":
            return True
        return False
    return False


def _match_args(pats, args) -> bool:
    if len(pats) == 1 and _name_of(pats[0]) == _WILD:
        return True
    if len(pats) != len(args):
        return False
    return all(match_expr(p, a) for p, a in zip(pats, args))


# ---------------------------------------------------------------------------
# Statement matching
# ---------------------------------------------------------------------------


def _is_wild_stmt(pat) -> bool:
    return isinstance(pat, ast.Expr) and _name_of(pat.value) == _WILD


def _match_write(pat_target, stmt) -> bool:
    """Match the LHS of an assignment/reduction pattern."""
    if isinstance(pat_target, ast.Name):
        if pat_target.id == _WILD:
            return True
        return stmt.name.name == pat_target.id and not stmt.idx
    if isinstance(pat_target, ast.Subscript):
        bufname = _name_of(pat_target.value)
        if bufname != _WILD and stmt.name.name != bufname:
            return False
        slc = pat_target.slice
        if isinstance(slc, ast.Index):  # pragma: no cover
            slc = slc.value
        dims = slc.elts if isinstance(slc, ast.Tuple) else [slc]
        if len(dims) == 1 and _name_of(dims[0]) == _WILD:
            return True
        if len(dims) != len(stmt.idx):
            return False
        return all(match_expr(d, i) for d, i in zip(dims, stmt.idx))
    return False


def match_stmt(pat, s) -> bool:
    """Does statement pattern ``pat`` match IR statement ``s``?"""
    if _is_wild_stmt(pat):
        return True
    if isinstance(pat, ast.For):
        if not isinstance(s, N.For):
            return False
        if pat.target.id != _WILD and s.iter.name != pat.target.id:
            return False
        it = pat.iter
        if isinstance(it, ast.Call) and _name_of(it.func) in ("seq", "par") and len(it.args) == 2:
            if not (match_expr(it.args[0], s.lo) and match_expr(it.args[1], s.hi)):
                return False
        elif _name_of(it) == _WILD:
            pass
        else:
            return False
        return match_body(pat.body, s.body)
    if isinstance(pat, ast.If):
        if not isinstance(s, N.If):
            return False
        if _name_of(pat.test) != _WILD and not match_expr(pat.test, s.cond):
            return False
        if not match_body(pat.body, s.body):
            return False
        if pat.orelse and not match_body(pat.orelse, s.orelse):
            return False
        return True
    if isinstance(pat, ast.Assign):
        if len(pat.targets) != 1:
            return False
        if isinstance(s, N.Assign):
            return _match_write(pat.targets[0], s) and match_expr(pat.value, s.rhs)
        if isinstance(s, N.WindowStmt) and isinstance(pat.targets[0], ast.Name):
            t = pat.targets[0]
            if t.id != _WILD and s.name.name != t.id:
                return False
            return match_expr(pat.value, s.rhs)
        return False
    if isinstance(pat, ast.AugAssign):
        if not isinstance(s, N.Reduce):
            return False
        return _match_write(pat.target, s) and match_expr(pat.value, s.rhs)
    if isinstance(pat, ast.AnnAssign):
        if not isinstance(s, N.Alloc):
            return False
        if isinstance(pat.target, ast.Name) and pat.target.id != _WILD:
            if s.name.name != pat.target.id:
                return False
        return True
    if isinstance(pat, ast.Expr) and isinstance(pat.value, ast.Call):
        call = pat.value
        fname = _name_of(call.func)
        if not isinstance(s, N.Call):
            return False
        callee_name = s.proc.name() if callable(getattr(s.proc, "name", None)) else s.proc.name
        if fname != _WILD and callee_name != fname:
            return False
        return _match_args(call.args, s.args)
    if isinstance(pat, ast.Pass):
        return isinstance(s, N.Pass)
    return False


def match_body(pats, stmts) -> bool:
    """Match a pattern body against a statement list.

    A single ``_`` pattern matches any (possibly empty) body.  Otherwise the
    patterns must match a prefix of the statement list, with a trailing ``_``
    allowed to absorb the rest.
    """
    if len(pats) == 1 and _is_wild_stmt(pats[0]):
        return True
    i = 0
    for pat in pats:
        if _is_wild_stmt(pat):
            return True
        if i >= len(stmts):
            return False
        if not match_stmt(pat, stmts[i]):
            return False
        i += 1
    return True


# ---------------------------------------------------------------------------
# Searching
# ---------------------------------------------------------------------------


def find_pattern_matches(root, base_path: Path, pattern: str) -> Tuple[List[Match], Optional[int]]:
    """Find all matches of ``pattern`` in the subtree at ``base_path`` of ``root``.

    Returns the matches (in pre-order) and the requested occurrence index (if
    the pattern carried a ``#k`` suffix).
    """
    kind, pat, occurrence = parse_pattern(pattern)
    from ..ir.build import get_node

    subtree = get_node(root, base_path) if base_path else root
    matches: List[Match] = []

    if kind == "expr":
        for node, rel_path in walk(subtree):
            if isinstance(node, N.Expr) and match_expr(pat, node):
                matches.append(Match("expr", path=base_path + rel_path))
        matches.sort(key=lambda m: _program_order_key(m.path))
        return matches, occurrence

    pats = pat  # list of ast statements
    npat = len(pats)
    from ..ir.build import stmt_list_field_paths

    for owner_rel, attr, stmts in stmt_list_field_paths(subtree):
        for start in range(len(stmts)):
            if start + npat > len(stmts):
                break
            if all(match_stmt(p, s) for p, s in zip(pats, stmts[start : start + npat])):
                matches.append(
                    Match(
                        "block",
                        owner_path=base_path + owner_rel,
                        attr=attr,
                        start=start,
                        length=npat,
                    )
                )
    matches.sort(key=lambda m: _program_order_key(m.owner_path + ((m.attr, m.start),)))
    return matches, occurrence


_ATTR_ORDER = {"lo": 0, "hi": 1, "cond": 0, "idx": 0, "lhs": 0, "rhs": 2, "args": 0, "arg": 0, "body": 3, "orelse": 4, "pt": 0}


def _program_order_key(path: Path):
    """Sort key that orders matches by their position in the program text."""
    key = []
    for attr, idx in path:
        key.append((_ATTR_ORDER.get(attr, 2), -1 if idx is None else idx))
    return key
