"""Front-end: surface-syntax parsing, decorators, and pattern matching."""

from .decorators import instr, proc, proc_from_source
from .parser import parse_expr_fragment, parse_proc_function, parse_proc_source
from .pattern import find_pattern_matches, parse_pattern

__all__ = [
    "instr",
    "proc",
    "proc_from_source",
    "parse_expr_fragment",
    "parse_proc_function",
    "parse_proc_source",
    "find_pattern_matches",
    "parse_pattern",
]
