"""The ``@proc`` and ``@instr`` decorators.

``@proc`` turns a Python function written in the object-language surface
syntax into a :class:`~repro.core.procedure.Procedure`.

``@instr(c_template, cost=...)`` additionally marks the procedure as a
hardware *instruction*: its body gives the semantics (used by the interpreter
and by ``replace`` for unification) while the template is emitted verbatim by
the C backend, exactly as in Exo's exocompilation model.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.procedure import Procedure
from ..ir.nodes import InstrInfo
from .parser import parse_proc_function, parse_proc_source

__all__ = ["proc", "instr", "proc_from_source"]


def proc(func: Callable) -> Procedure:
    """Decorator: parse ``func`` as object code and return a Procedure."""
    root = parse_proc_function(func)
    return Procedure(root)


def instr(c_instr: str, c_global: str = "", cost: float = 1.0):
    """Decorator factory: like ``@proc`` but attaches an instruction template.

    Example::

        @instr("{dst_data} = _mm256_loadu_ps(&{src_data});", cost=1.0)
        def mm256_loadu_ps(dst: [f32][8] @ AVX2, src: [f32][8] @ DRAM):
            for i in seq(0, 8):
                dst[i] = src[i]
    """

    def wrapper(func: Callable) -> Procedure:
        root = parse_proc_function(func)
        return Procedure(root, instr_info=InstrInfo(c_instr, c_global, cost))

    return wrapper


def proc_from_source(src: str, globals_env: Optional[dict] = None) -> Procedure:
    """Parse object code from a source string (useful for tests and tools)."""
    return Procedure(parse_proc_source(src, globals_env))
