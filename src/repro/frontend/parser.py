"""Front-end parser for the object language.

Procedures are written as decorated Python functions in the surface syntax
used throughout the paper::

    @proc
    def gemv(M: size, N: size,
             A: f32[M, N] @ DRAM,
             x: f32[N] @ DRAM,
             y: f32[M] @ DRAM):
        assert M % 8 == 0
        for i in seq(0, M):
            for j in seq(0, N):
                y[i] += A[i, j] * x[j]

The decorator grabs the function source, parses it with :mod:`ast`, and
converts it into the object IR (:mod:`repro.ir.nodes`).  Names that are not
bound inside the procedure (memory spaces, other procedures, configuration
objects) are resolved against the function's globals and closure.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from ..ir import nodes as N
from ..ir.config import Config
from ..ir.externs import has_extern
from ..ir.memories import DRAM, Memory, memory_by_name
from ..ir.syms import Sym
from ..ir.types import (
    ScalarType,
    TensorType,
    bool_t,
    index_t,
    int_t,
    scalar_type_from_name,
    size_t,
    NUMERIC_TYPE_NAMES,
)

__all__ = ["parse_proc_source", "parse_proc_function", "parse_expr_fragment"]


_CMPOP = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}

_BINOP = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "/",
    ast.Mod: "%",
}


class _Scope:
    """Lexically scoped mapping from names to (Sym, type, mem)."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.entries: Dict[str, Tuple[Sym, object, Optional[Memory]]] = {}

    def define(self, name: str, sym: Sym, typ, mem: Optional[Memory] = None) -> None:
        self.entries[name] = (sym, typ, mem)

    def lookup(self, name: str):
        scope = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None

    def child(self) -> "_Scope":
        return _Scope(self)


class _ProcParser:
    """Converts a Python ``ast.FunctionDef`` into a :class:`ProcDef`."""

    def __init__(self, func_def: ast.FunctionDef, globals_env: Dict[str, object]):
        self.func_def = func_def
        self.globals_env = globals_env
        self.scope = _Scope()

    # -- error handling ------------------------------------------------------

    def err(self, node, msg: str):
        line = getattr(node, "lineno", "?")
        raise ParseError(f"{self.func_def.name}:{line}: {msg}")

    # -- environment lookups -------------------------------------------------

    def resolve_global(self, name: str):
        if name in self.globals_env:
            return self.globals_env[name]
        return None

    def resolve_memory(self, node) -> Memory:
        if isinstance(node, ast.Name):
            obj = self.resolve_global(node.id)
            if isinstance(obj, Memory):
                return obj
            try:
                return memory_by_name(node.id)
            except KeyError:
                self.err(node, f"unknown memory space {node.id!r}")
        if isinstance(node, ast.Attribute):
            obj = self.resolve_global(node.attr)
            if isinstance(obj, Memory):
                return obj
        self.err(node, "expected a memory space after '@'")

    # -- type annotations ----------------------------------------------------

    def parse_annotation(self, node) -> Tuple[object, Optional[Memory]]:
        """Parse an argument/alloc annotation, returning (type, memory)."""
        mem = None
        # string annotations (PEP 563 style or explicitly quoted) are re-parsed
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            node = ast.parse(node.value, mode="eval").body
        # `f32[M, N] @ DRAM` parses as BinOp(MatMult)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            mem = self.resolve_memory(node.right)
            node = node.left
        typ = self.parse_type(node)
        return typ, mem

    def parse_type(self, node):
        if isinstance(node, ast.Name):
            name = node.id
            if name == "size":
                return size_t
            if name == "index":
                return index_t
            if name == "bool":
                return bool_t
            if name in NUMERIC_TYPE_NAMES:
                return scalar_type_from_name(name)
            self.err(node, f"unknown type {name!r}")
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # precision given as a string, e.g. "f32"
            return scalar_type_from_name(node.value)
        if isinstance(node, ast.Subscript):
            base_node = node.value
            is_window = False
            if isinstance(base_node, ast.List):
                # `[f32][M, N]` — window type
                if len(base_node.elts) != 1:
                    self.err(node, "window base type must be a single scalar type")
                base = self.parse_type(base_node.elts[0])
                is_window = True
            else:
                base = self.parse_type(base_node)
            if not isinstance(base, ScalarType) or not base.is_numeric:
                self.err(node, "tensor base type must be numeric")
            dims_node = node.slice
            if isinstance(dims_node, ast.Index):  # pragma: no cover - py<3.9
                dims_node = dims_node.value
            dims = dims_node.elts if isinstance(dims_node, ast.Tuple) else [dims_node]
            shape = [self.parse_expr(d) for d in dims]
            return TensorType(base, shape, is_window)
        self.err(node, "cannot parse type annotation")

    # -- expressions ---------------------------------------------------------

    def parse_expr(self, node) -> N.Expr:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return N.Const(v, bool_t)
            if isinstance(v, int):
                return N.Const(v, int_t)
            if isinstance(v, float):
                return N.Const(v, scalar_type_from_name("f64"))
            self.err(node, f"unsupported literal {v!r}")
        if isinstance(node, ast.Name):
            entry = self.scope.lookup(node.id)
            if entry is None:
                # maybe a global config read handled elsewhere, or an error
                obj = self.resolve_global(node.id)
                if isinstance(obj, (int, float)):
                    return N.Const(obj, int_t if isinstance(obj, int) else scalar_type_from_name("f64"))
                self.err(node, f"undefined variable {node.id!r}")
            sym, typ, _mem = entry
            base = typ.basetype() if isinstance(typ, TensorType) else typ
            return N.Read(sym, [], base if isinstance(typ, ScalarType) else typ)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.MatMult):
                self.err(node, "'@' only allowed in type annotations")
            op = _BINOP.get(type(node.op))
            if op is None:
                self.err(node, f"unsupported operator {type(node.op).__name__}")
            lhs = self.parse_expr(node.left)
            rhs = self.parse_expr(node.right)
            typ = self._binop_type(lhs, rhs)
            return N.BinOp(op, lhs, rhs, typ)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                arg = self.parse_expr(node.operand)
                if isinstance(arg, N.Const):
                    return N.Const(-arg.val, arg.typ)
                return N.USub(arg, arg.typ)
            self.err(node, "unsupported unary operator")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                self.err(node, "chained comparisons are not supported")
            op = _CMPOP.get(type(node.ops[0]))
            if op is None:
                self.err(node, "unsupported comparison operator")
            return N.BinOp(op, self.parse_expr(node.left), self.parse_expr(node.comparators[0]), bool_t)
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            vals = [self.parse_expr(v) for v in node.values]
            out = vals[0]
            for v in vals[1:]:
                out = N.BinOp(op, out, v, bool_t)
            return out
        if isinstance(node, ast.Subscript):
            return self.parse_access(node)
        if isinstance(node, ast.Call):
            return self.parse_call_expr(node)
        if isinstance(node, ast.Attribute):
            # config read: cfg.field
            obj = self.resolve_global(node.value.id) if isinstance(node.value, ast.Name) else None
            if isinstance(obj, Config):
                return N.ReadConfig(obj, node.attr, obj.field_type(node.attr))
            self.err(node, "unsupported attribute expression")
        self.err(node, f"unsupported expression {ast.dump(node)}")

    def _binop_type(self, lhs: N.Expr, rhs: N.Expr):
        lt, rt = getattr(lhs, "typ", int_t), getattr(rhs, "typ", int_t)
        for t in (lt, rt):
            if isinstance(t, ScalarType) and t.is_numeric:
                return t
        return index_t

    def parse_access(self, node: ast.Subscript):
        if not isinstance(node.value, ast.Name):
            self.err(node, "only simple names can be indexed")
        entry = self.scope.lookup(node.value.id)
        if entry is None:
            self.err(node, f"undefined buffer {node.value.id!r}")
        sym, typ, _mem = entry
        slc = node.slice
        if isinstance(slc, ast.Index):  # pragma: no cover - py<3.9
            slc = slc.value
        dims = slc.elts if isinstance(slc, ast.Tuple) else [slc]
        has_slice = any(isinstance(d, ast.Slice) for d in dims)
        base = typ.basetype() if isinstance(typ, TensorType) else typ
        if has_slice:
            widx: List[object] = []
            for d in dims:
                if isinstance(d, ast.Slice):
                    lo = self.parse_expr(d.lower) if d.lower is not None else N.Const(0, int_t)
                    if d.upper is None:
                        self.err(node, "windows require explicit upper bounds")
                    hi = self.parse_expr(d.upper)
                    widx.append(N.Interval(lo, hi))
                else:
                    widx.append(N.Point(self.parse_expr(d)))
            n_dims = sum(1 for w in widx if isinstance(w, N.Interval))
            wtyp = TensorType(base, [N.Const(0, int_t)] * n_dims, True)
            return N.WindowExpr(sym, widx, wtyp)
        idx = [self.parse_expr(d) for d in dims]
        return N.Read(sym, idx, base)

    def parse_call_expr(self, node: ast.Call) -> N.Expr:
        if not isinstance(node.func, ast.Name):
            self.err(node, "unsupported call expression")
        fname = node.func.id
        if fname == "stride":
            if len(node.args) != 2 or not isinstance(node.args[0], ast.Name):
                self.err(node, "stride() takes a buffer name and a dimension")
            entry = self.scope.lookup(node.args[0].id)
            if entry is None:
                self.err(node, f"undefined buffer {node.args[0].id!r}")
            dim = node.args[1]
            if not isinstance(dim, ast.Constant):
                self.err(node, "stride() dimension must be a constant")
            return N.StrideExpr(entry[0], dim.value, index_t)
        if has_extern(fname):
            args = [self.parse_expr(a) for a in node.args]
            typ = args[0].typ if args else index_t
            return N.Extern(fname, args, typ)
        self.err(node, f"unknown function {fname!r} in expression")

    # -- statements ----------------------------------------------------------

    def parse_stmts(self, stmts: List[ast.stmt]) -> List[N.Stmt]:
        out: List[N.Stmt] = []
        for s in stmts:
            out.extend(self.parse_stmt(s))
        return out

    def parse_stmt(self, node: ast.stmt) -> List[N.Stmt]:
        if isinstance(node, ast.For):
            return [self.parse_for(node)]
        if isinstance(node, ast.If):
            cond = self.parse_expr(node.test)
            body_scope = self.scope
            self.scope = self.scope.child()
            body = self.parse_stmts(node.body)
            self.scope = body_scope
            self.scope = self.scope.child()
            orelse = self.parse_stmts(node.orelse)
            self.scope = body_scope
            return [N.If(cond, body, orelse)]
        if isinstance(node, ast.AnnAssign):
            return [self.parse_alloc(node)]
        if isinstance(node, ast.Assign):
            return [self.parse_assign(node)]
        if isinstance(node, ast.AugAssign):
            return [self.parse_reduce(node)]
        if isinstance(node, ast.Pass):
            return [N.Pass()]
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            return [self.parse_call_stmt(node.value)]
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            # docstring — ignore
            return []
        if isinstance(node, ast.Assert):
            self.err(node, "assert statements are only allowed at the top of a procedure")
        self.err(node, f"unsupported statement {type(node).__name__}")

    def parse_for(self, node: ast.For) -> N.For:
        if not isinstance(node.target, ast.Name):
            self.err(node, "loop target must be a simple name")
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name) and it.func.id in ("seq", "par")):
            self.err(node, "loops must iterate over seq(lo, hi) or par(lo, hi)")
        if len(it.args) != 2:
            self.err(node, "seq()/par() take exactly (lo, hi)")
        lo = self.parse_expr(it.args[0])
        hi = self.parse_expr(it.args[1])
        sym = Sym(node.target.id)
        outer = self.scope
        self.scope = outer.child()
        self.scope.define(node.target.id, sym, index_t, None)
        body = self.parse_stmts(node.body)
        self.scope = outer
        return N.For(sym, lo, hi, body, "par" if it.func.id == "par" else "seq")

    def parse_alloc(self, node: ast.AnnAssign) -> N.Alloc:
        if node.value is not None:
            self.err(node, "allocations cannot have initial values")
        if not isinstance(node.target, ast.Name):
            self.err(node, "allocation target must be a simple name")
        typ, mem = self.parse_annotation(node.annotation)
        sym = Sym(node.target.id)
        self.scope.define(node.target.id, sym, typ, mem or DRAM)
        return N.Alloc(sym, typ, mem or DRAM)

    def _parse_write_target(self, target):
        """Parse the left-hand side of an assignment/reduction."""
        if isinstance(target, ast.Name):
            entry = self.scope.lookup(target.id)
            if entry is None:
                self.err(target, f"assignment to undeclared variable {target.id!r}")
            sym, typ, _ = entry
            base = typ.basetype() if isinstance(typ, TensorType) else typ
            return sym, [], base
        if isinstance(target, ast.Subscript):
            acc = self.parse_access(target)
            if isinstance(acc, N.WindowExpr):
                self.err(target, "cannot assign to a window expression")
            return acc.name, acc.idx, acc.typ
        if isinstance(target, ast.Attribute):
            obj = self.resolve_global(target.value.id) if isinstance(target.value, ast.Name) else None
            if isinstance(obj, Config):
                return (obj, target.attr), None, obj.field_type(target.attr)
        self.err(target, "unsupported assignment target")

    def parse_assign(self, node: ast.Assign):
        if len(node.targets) != 1:
            self.err(node, "multiple assignment targets are not supported")
        target = node.targets[0]
        # window statement: `w = A[0:16, j]`
        if isinstance(target, ast.Name) and isinstance(node.value, ast.Subscript):
            value = self.parse_expr(node.value)
            if isinstance(value, N.WindowExpr):
                sym = Sym(target.id)
                self.scope.define(target.id, sym, value.typ, None)
                return N.WindowStmt(sym, value)
            # fall through for plain scalar read on the RHS
            lhs = self._parse_write_target(target)
            return N.Assign(lhs[0], lhs[1], value, lhs[2])
        lhs = self._parse_write_target(target)
        rhs = self.parse_expr(node.value)
        if isinstance(lhs[0], tuple):
            config, field = lhs[0]
            return N.WriteConfig(config, field, rhs)
        return N.Assign(lhs[0], lhs[1], rhs, lhs[2])

    def parse_reduce(self, node: ast.AugAssign):
        if not isinstance(node.op, ast.Add):
            self.err(node, "only '+=' reductions are supported")
        lhs = self._parse_write_target(node.target)
        if isinstance(lhs[0], tuple):
            self.err(node, "cannot reduce into configuration state")
        rhs = self.parse_expr(node.value)
        return N.Reduce(lhs[0], lhs[1], rhs, lhs[2])

    def parse_call_stmt(self, node: ast.Call) -> N.Stmt:
        if not isinstance(node.func, ast.Name):
            self.err(node, "unsupported call")
        fname = node.func.id
        callee = self.resolve_global(fname)
        if callee is None and has_extern(fname):
            # extern used in statement position: treat as assignment to the
            # second argument (matches the paper's `acc_scale(src, dst, s)`
            # pseudo-instructions) — modelled instead via @instr procs, so
            # reject here to keep semantics unambiguous.
            self.err(node, f"extern {fname!r} cannot be used as a statement")
        if callee is None or not hasattr(callee, "_root"):
            self.err(node, f"call to unknown procedure {fname!r}")
        args = [self.parse_expr(a) for a in node.args]
        return N.Call(callee, args)

    # -- procedure -----------------------------------------------------------

    def parse(self) -> N.ProcDef:
        args: List[N.FnArg] = []
        fd = self.func_def
        if fd.args.defaults or fd.args.kwonlyargs or fd.args.vararg or fd.args.kwarg:
            self.err(fd, "procedure arguments cannot have defaults or be variadic")
        for a in fd.args.args:
            if a.annotation is None:
                self.err(a, f"argument {a.arg!r} needs a type annotation")
            typ, mem = self.parse_annotation(a.annotation)
            sym = Sym(a.arg)
            self.scope.define(a.arg, sym, typ, mem)
            args.append(N.FnArg(sym, typ, mem))

        preds: List[N.Expr] = []
        body_stmts = list(fd.body)
        # strip a leading docstring
        if body_stmts and isinstance(body_stmts[0], ast.Expr) and isinstance(body_stmts[0].value, ast.Constant):
            body_stmts = body_stmts[1:]
        while body_stmts and isinstance(body_stmts[0], ast.Assert):
            preds.append(self.parse_expr(body_stmts[0].test))
            body_stmts = body_stmts[1:]

        body = self.parse_stmts(body_stmts)
        return N.ProcDef(fd.name, args, preds, body, None)


def _function_def_from_source(src: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(src))
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise ParseError("no function definition found in source")


def parse_proc_source(src: str, globals_env: Optional[Dict[str, object]] = None) -> N.ProcDef:
    """Parse object code given as a source string."""
    fd = _function_def_from_source(src)
    return _ProcParser(fd, globals_env or {}).parse()


def parse_proc_function(func, globals_env: Optional[Dict[str, object]] = None) -> N.ProcDef:
    """Parse object code given as a live (decorated) Python function."""
    src = inspect.getsource(func)
    env = dict(func.__globals__)
    if func.__closure__:
        for name, cell in zip(func.__code__.co_freevars, func.__closure__):
            try:
                env[name] = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                pass
    if globals_env:
        env.update(globals_env)
    fd = _function_def_from_source(src)
    return _ProcParser(fd, env).parse()


def parse_expr_fragment(src: str, proc_def: N.ProcDef, extra_env: Optional[Dict[str, Sym]] = None) -> N.Expr:
    """Parse an expression string (e.g. an assertion added by
    ``add_assertion`` or a ``specialize`` condition) in the context of an
    existing procedure: free names resolve to the procedure's arguments and,
    optionally, extra symbols such as loop iterators."""
    node = ast.parse(src, mode="eval").body
    parser = _ProcParser(ast.parse("def __frag__(): pass").body[0], {})
    for arg in proc_def.args:
        parser.scope.define(arg.name.name, arg.name, arg.typ, arg.mem)
    from ..ir.build import walk
    from ..ir import nodes as _N

    for n, _ in walk(proc_def):
        if isinstance(n, _N.For):
            parser.scope.define(n.iter.name, n.iter, index_t, None)
        if isinstance(n, _N.Alloc):
            parser.scope.define(n.name.name, n.name, n.typ, n.mem)
    if extra_env:
        for name, sym in extra_env.items():
            parser.scope.define(name, sym, index_t, None)
    return parser.parse_expr(node)
