"""Checksummed, atomic, crash-consistent JSON records.

Every persistent store in the repo (tuner leaderboard, replay-cache traces,
native-artifact trust sidecars, tune checkpoints) writes through this module
so they all share one crash-consistency discipline:

* **atomic publish** — records are staged in a ``tempfile.mkstemp`` file *in
  the destination directory* (same filesystem, and — unlike a fixed
  ``<path>.tmp`` sibling — concurrent writers can never collide on the
  staging name), flushed, ``fsync``'d, and published with ``os.replace``.
  The parent directory is ``fsync``'d after the rename so the publish itself
  survives a power cut.  Readers therefore only ever observe the old record
  or the new one, never a partially written hybrid *at the published path*.
* **torn-write detection** — the record carries a ``#sha256:`` trailer line
  over its JSON body.  :func:`read_record` verifies it and raises
  :class:`CorruptRecordError` on any mismatch, truncation, or garbage, so a
  store that *does* find torn bytes (a dying disk, a crashed writer on a
  filesystem that reordered the rename) detects them instead of decoding
  nonsense.  Legacy records (valid JSON, no trailer) still load — the
  formats before this layer existed were plain JSON.
* **quarantine** — :func:`quarantine_file` moves a detected-corrupt file to
  ``<path>.corrupt-<digest>`` (content-addressed, so re-detecting the same
  corruption collapses to one evidence file) instead of deleting it.

Fault sites (:mod:`repro.guard.faults`): ``partial-write`` truncates the
staged bytes before publish — the published record is torn exactly as a
mid-write power loss would leave it, which is how the detection path is
exercised; ``kill-mid-publish`` SIGKILLs the writing process between staging
and ``os.replace`` — the harness in ``tests/persist`` forks a victim, lets
the fault kill it, and proves the store reloads to the *old* state.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import tempfile
from typing import Optional

from ..errors import ExoError
from ..guard import faults

__all__ = [
    "PersistError",
    "CorruptRecordError",
    "write_record",
    "read_record",
    "write_text_atomic",
    "quarantine_file",
    "TRAILER_PREFIX",
]

TRAILER_PREFIX = "#sha256:"


class PersistError(ExoError):
    """Base class of persistence-layer failures."""


class CorruptRecordError(PersistError):
    """A record failed its checksum or could not be decoded — a torn write,
    bit rot, or a foreign file.  Callers quarantine and start fresh."""

    def __init__(self, message: str, path: Optional[str] = None):
        super().__init__(message)
        self.path = path


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _fsync_dir(dirpath: str) -> None:
    """Flush a directory entry (the rename itself) to stable storage; best
    effort — some filesystems refuse O_RDONLY directory fsync."""
    try:
        fd = os.open(dirpath, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _publish(tmp: str, path: str, dirpath: str, fsync: bool) -> None:
    """Atomically move staged bytes into place (the kill-mid-publish fault
    site: a SIGKILL here must leave the old record intact)."""
    if faults.should_fire("kill-mid-publish"):
        os.kill(os.getpid(), signal.SIGKILL)
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(dirpath)


def write_record(path: str, payload: object, *, fsync: bool = True) -> None:
    """Publish ``payload`` as a checksummed JSON record at ``path``.

    Crash-consistent: stage in a ``mkstemp`` temp in the destination
    directory, fsync, ``os.replace``, fsync the directory.  ``fsync=False``
    skips both syncs (caches whose loss is only a recompute).
    """
    body = json.dumps(payload, indent=2, default=repr)
    text = f"{body}\n{TRAILER_PREFIX}{_sha(body)}\n"
    dirpath = os.path.dirname(os.path.abspath(path))
    os.makedirs(dirpath, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=dirpath, prefix=".stage-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
            f.flush()
            if faults.should_fire("partial-write"):
                # a torn write reaching the published path: half the bytes
                f.truncate(len(text.encode()) // 2)
            if fsync:
                os.fsync(f.fileno())
        _publish(tmp, path, dirpath, fsync)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def write_text_atomic(path: str, text: str, *, fsync: bool = False) -> None:
    """Atomically publish plain text (no checksum trailer) — for files whose
    integrity is validated downstream (generated C source, compiled ``.so``
    objects checked at load)."""
    dirpath = os.path.dirname(os.path.abspath(path))
    os.makedirs(dirpath, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=dirpath, prefix=".stage-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
            f.flush()
            if fsync:
                os.fsync(f.fileno())
        _publish(tmp, path, dirpath, fsync)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def read_record(path: str) -> object:
    """Load and verify one record.

    Raises :class:`CorruptRecordError` on a bad checksum, a truncated
    trailer, or undecodable content; propagates :class:`OSError` when the
    file cannot be read at all.  A trailer-less file that is valid JSON loads
    as a legacy record (the pre-persist-layer formats).
    """
    with open(path, "rb") as f:
        raw = f.read()
    text = raw.decode("utf-8", errors="replace")
    stripped = text.rstrip("\n")
    body, sep, last = stripped.rpartition("\n")
    if last.startswith(TRAILER_PREFIX):
        digest = last[len(TRAILER_PREFIX):].strip()
        if _sha(body) != digest:
            raise CorruptRecordError(
                f"record {path!r} failed its sha256 check (torn or corrupt write)",
                path,
            )
        try:
            return json.loads(body)
        except json.JSONDecodeError as err:
            raise CorruptRecordError(
                f"record {path!r} has a valid checksum but undecodable JSON ({err})",
                path,
            ) from err
    try:
        return json.loads(text)  # legacy: plain JSON, no trailer
    except json.JSONDecodeError as err:
        raise CorruptRecordError(
            f"record {path!r} is not a checksummed record and not valid JSON ({err})",
            path,
        ) from err


def quarantine_file(path: str) -> Optional[str]:
    """Move a corrupt file aside to ``<path>.corrupt-<digest>`` (evidence
    preserved, content-addressed so repeats collapse).  Returns the
    destination, or ``None`` when the file vanished or could not be moved."""
    try:
        with open(path, "rb") as f:
            digest = hashlib.sha256(f.read()).hexdigest()[:8]
    except OSError:
        return None
    dest = f"{path}.corrupt-{digest}"
    try:
        os.replace(path, dest)
    except OSError:
        return None
    return dest
