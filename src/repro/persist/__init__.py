"""repro.persist — the shared crash-consistent persistence layer.

PR 7 hardened *execution* against hostile kernels; this subsystem hardens
*state* against hostile schedulers: crashes, ``kill -9``, and concurrent
writers.  Every on-disk store in the repo — the tuner leaderboard, the
persistent replay cache, the native-artifact trust sidecars, and the tune
checkpoint journal — goes through one of three primitives:

* :mod:`repro.persist.store` — checksummed atomic JSON records (sha256
  trailer; ``mkstemp``-in-directory staging so concurrent writers never
  collide; fsync file *and* parent directory around ``os.replace``) with
  torn/corrupt-write detection and evidence-preserving quarantine on load.
* :mod:`repro.persist.lock` — advisory ``fcntl`` inter-process locks with a
  bounded acquisition timeout; contention degrades (callers fall back to
  in-memory and emit a ``lock-contention``
  :class:`~repro.guard.events.FallbackEvent`) instead of hanging.
* :mod:`repro.persist.journal` — append-only per-line-checksummed logs for
  incremental state (tune checkpoints), where a crash loses at most the
  entry being written.

The layer's failure modes are themselves fault-injectable
(``partial-write``, ``lock-timeout``, ``kill-mid-publish`` in
:mod:`repro.guard.faults`), and ``tests/persist`` proves the guarantees with
a ``kill -9``-during-save harness and a multi-process chaos test.
``tools/repro_fsck.py`` is the matching doctor CLI.

See the "Persistence and crash consistency" section of
``docs/robustness.md`` for the full guide.
"""

from .journal import Journal
from .lock import FileLock, LockTimeout, locking_available
from .store import (
    TRAILER_PREFIX,
    CorruptRecordError,
    PersistError,
    quarantine_file,
    read_record,
    write_record,
    write_text_atomic,
)

__all__ = [
    "PersistError",
    "CorruptRecordError",
    "write_record",
    "read_record",
    "write_text_atomic",
    "quarantine_file",
    "TRAILER_PREFIX",
    "FileLock",
    "LockTimeout",
    "locking_available",
    "Journal",
]
