"""Advisory inter-process locks for the persistent stores.

:class:`FileLock` wraps ``fcntl.flock`` on a dedicated ``<path>.lock`` file:
kernel-mediated, released automatically when the holding process dies (so a
``kill -9``'d tuner never wedges every future tune the way a pidfile would),
and advisory — every writer must take it, readers need not (records publish
atomically, so an unlocked read sees a consistent old-or-new state).

Acquisition is *bounded*: a holder that wedges (or a fault injection that
pretends one did) makes :meth:`FileLock.acquire` raise :class:`LockTimeout`
after ``timeout_s`` rather than hanging the caller forever.  Callers treat
that as a degradation signal — the leaderboard, for example, falls back to
in-memory operation and emits a ``lock-contention``
:class:`~repro.guard.events.FallbackEvent` instead of blocking a tune run on
a sick filesystem.

Fault site: ``lock-timeout`` (:mod:`repro.guard.faults`) makes acquisition
time out immediately, exercising every caller's contention path without
needing a real stuck process.

On platforms without ``fcntl`` the lock degrades to a no-op
(:func:`locking_available` reports which); all current CI targets have it.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from ..guard import faults
from .store import PersistError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

__all__ = ["FileLock", "LockTimeout", "locking_available"]


class LockTimeout(PersistError):
    """The lock stayed held past the acquisition deadline."""


def locking_available() -> bool:
    """Whether real inter-process locking is available on this platform."""
    return fcntl is not None


class FileLock:
    """A bounded-wait, process-scoped advisory file lock.

    Usable as a context manager::

        with FileLock(board_path + ".lock", timeout_s=5.0):
            ...read-merge-write...

    The lock file itself is never deleted by the holder — deleting it races
    with a waiter that already opened it (the classic unlink/flock hazard);
    an idle leftover lock file is harmless and ``tools/repro_fsck.py`` can
    sweep it.
    """

    def __init__(self, path: str, timeout_s: float = 10.0, poll_s: float = 0.02):
        if timeout_s <= 0:
            raise PersistError(f"FileLock: timeout_s must be positive, got {timeout_s!r}")
        self.path = path
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            raise PersistError(f"FileLock {self.path!r} is not reentrant")
        if faults.should_fire("lock-timeout"):
            raise LockTimeout(
                f"could not acquire {self.path!r} within {self.timeout_s:g}s "
                "(fault: lock-timeout)"
            )
        dirpath = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(dirpath, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX
            self._fd = fd
            return self
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._fd = fd
                return self
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise LockTimeout(
                        f"could not acquire {self.path!r} within {self.timeout_s:g}s "
                        "(another process holds it)"
                    ) from None
                time.sleep(self.poll_s)

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "held" if self.held else "free"
        return f"<FileLock {self.path} ({state})>"
