"""Append-only, per-line-checksummed JSON journals.

The resumable-tuning checkpoint (:class:`repro.tune.Tuner`) needs a
different durability shape than the record store: measurements arrive one at
a time over a long run, and a crash must lose *at most the measurement being
written*, never the history.  An append-only journal gives exactly that:
each completed entry is one line of compact JSON followed by a ``#<sha256
prefix>`` of the line body, appended with ``O_APPEND`` and ``fsync``'d.

Reading tolerates precisely the damage a crash can cause: a torn *final*
line (the writer died mid-append — the ``partial-write`` and
``kill-mid-publish`` fault sites simulate both halves of that) fails its
checksum and is skipped, counted in :attr:`Journal.torn`.  A corrupt line in
the *middle* of the file is not crash damage; it is still skipped (and
counted) so one flipped bit never discards a night of measurements, but
``tools/repro_fsck.py`` reports it.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from typing import List

from ..guard import faults

__all__ = ["Journal"]

_SEP = " #"
_DIGEST_LEN = 16


def _line_digest(body: str) -> str:
    return hashlib.sha256(body.encode()).hexdigest()[:_DIGEST_LEN]


class Journal:
    """A crash-safe append-only log of JSON records at ``path``.

    ``append`` is durable per entry; ``entries`` returns every intact record
    in order, silently dropping torn/corrupt lines (tallied in ``torn``).
    """

    def __init__(self, path: str, *, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        self.torn = 0

    def append(self, record: dict) -> None:
        body = json.dumps(record, separators=(",", ":"), sort_keys=True, default=repr)
        data = f"{body}{_SEP}{_line_digest(body)}\n".encode()
        dirpath = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(dirpath, exist_ok=True)
        if faults.should_fire("partial-write"):
            data = data[: max(1, len(data) // 2)]  # the torn tail a crash leaves
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
            if faults.should_fire("kill-mid-publish"):
                os.kill(os.getpid(), signal.SIGKILL)
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    def entries(self) -> List[dict]:
        self.torn = 0
        out: List[dict] = []
        try:
            with open(self.path, "rb") as f:
                raw = f.read()
        except OSError:
            return out
        for line in raw.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            body, sep, digest = line.rpartition(_SEP)
            if not sep or _line_digest(body) != digest.strip():
                self.torn += 1
                continue
            try:
                out.append(json.loads(body))
            except json.JSONDecodeError:
                self.torn += 1
        return out

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:
        return f"<Journal {self.path}>"
