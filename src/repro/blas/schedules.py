"""BLAS schedules as first-class :class:`Schedule` values.

The level-1/level-2 optimisation pipelines (Section 6.2, Appendix D) are
lifted into the combinator API with named knobs, so one Schedule value covers
a whole machine/ILP sweep and batch application across the kernel family is
memoised through the shared replay cache::

    from repro.blas import level1_schedule, scheduled_level1
    s = level1_schedule(machine=AVX2)            # knob: 'interleave'
    fast = s.apply(LEVEL1_KERNELS['saxpy'], interleave=4)
    fast2 = scheduled_level1('saxpy', AVX2)      # cached across calls
"""

from __future__ import annotations

from ..api import knob, lift_op, schedule_cache
from ..api.schedule import Schedule
from .kernels import LEVEL1_KERNELS, LEVEL2_KERNELS
from .level1 import optimize_level_1
from .level2 import opt_skinny, optimize_level_2_general

__all__ = [
    "optimize_l1",
    "optimize_l2",
    "skinny",
    "level1_schedule",
    "level2_schedule",
    "skinny_schedule",
    "level1_space",
    "level2_space",
    "skinny_space",
    "scheduled_level1",
    "scheduled_level2",
]

# the raw pipelines, lifted into curried Schedule factories (and registered
# on the S namespace under the same names)
optimize_l1 = lift_op(optimize_level_1, "optimize_level_1", register=True)
optimize_l2 = lift_op(optimize_level_2_general, "optimize_level_2_general", register=True)
skinny = lift_op(opt_skinny, "opt_skinny", register=True)


def level1_schedule(loop: str = "i", precision: str = "f32", machine=None) -> Schedule:
    """The shared level-1 schedule as a value; knob ``interleave`` (default 2)
    controls the ILP interleaving factor."""
    machine = machine or _default_machine()
    return optimize_l1(loop, precision, machine, knob("interleave", 2))


def level2_schedule(o_loop: str = "i", precision: str = "f32", machine=None) -> Schedule:
    """The shared level-2 schedule as a value; knobs ``rows`` / ``cols``
    (both default 2) control the unroll-and-jam and inner interleave
    factors."""
    machine = machine or _default_machine()
    return optimize_l2(o_loop, precision, machine, knob("rows", 2), knob("cols", 2))


def skinny_schedule(out_loop: str, vw: int, precision: str = "f32", machine=None) -> Schedule:
    """The Figure 7b skinny-matrix schedule as a value; knob ``interleave``
    (default 2)."""
    machine = machine or _default_machine()
    return skinny(out_loop, vw, machine.mem_type, precision, machine, knob("interleave", 2))


def level1_space(*, threads: bool = False):
    """The tunable domain of :func:`level1_schedule` for the autotuner:
    ILP interleave factors worth trying on any of the modelled machines.
    ``threads=True`` adds the reserved ``num_threads`` execution knob (for
    schedules that also apply ``parallelize_loop``)."""
    from ..tune import Param, Space, threads_param

    params = [Param.pow2("interleave", 1, 8)]
    if threads:
        params.append(threads_param())
    return Space(*params)


def level2_space(*, threads: bool = False):
    """The tunable domain of :func:`level2_schedule`: unroll-and-jam rows ×
    inner interleave columns (``threads=True``: plus ``num_threads``)."""
    from ..tune import Param, Space, threads_param

    params = [Param.pow2("rows", 1, 4), Param.pow2("cols", 1, 4)]
    if threads:
        params.append(threads_param())
    return Space(*params)


def skinny_space(*, threads: bool = False):
    """The tunable domain of :func:`skinny_schedule` (same ILP axis as
    level 1; ``threads=True``: plus ``num_threads``)."""
    from ..tune import Param, Space, threads_param

    params = [Param.pow2("interleave", 1, 4)]
    if threads:
        params.append(threads_param())
    return Space(*params)


def _default_machine():
    from ..machines import AVX2

    return AVX2


def _precision_of(name: str) -> str:
    return "f64" if name.startswith("d") else "f32"


def scheduled_level1(name: str, machine=None, *, cache=schedule_cache, **knobs):
    """Schedule one level-1 kernel by name, memoised in the replay cache —
    batch generation of the whole kernel family pays for each distinct
    (kernel, machine, knobs) combination once per process."""
    machine = machine or _default_machine()
    return level1_schedule("i", _precision_of(name), machine).apply(
        LEVEL1_KERNELS[name], knobs, cache=cache
    )


def scheduled_level2(name: str, machine=None, *, cache=schedule_cache, **knobs):
    """Schedule one level-2 kernel by name, memoised in the replay cache."""
    machine = machine or _default_machine()
    return level2_schedule("i", _precision_of(name), machine).apply(
        LEVEL2_KERNELS[name], knobs, cache=cache
    )
