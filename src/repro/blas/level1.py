"""``optimize_level_1`` — the shared schedule for all BLAS level-1 kernels
(Section 6.2.1, Appendix D.1).

The same library function optimises every O(n) kernel for any vector machine:
CSE, auto-vectorisation (with per-lane partial sums for reductions), LICM of
broadcasts, and loop interleaving for ILP.
"""

from __future__ import annotations

from typing import Optional

from ..cursors.cursor import ForCursor
from ..errors import InvalidCursorError, SchedulingError  # noqa: F401 - re-raised paths
from ..stdlib.tiling import cleanup, interleave_loop
from ..stdlib.vectorize import CSE, LICM, fma_rule, vectorize

__all__ = ["optimize_level_1"]


def optimize_level_1(
    proc,
    loop,
    precision: str,
    machine,
    interleave_factor: int = 2,
    vec_tail: Optional[str] = None,
    inter_tail: str = "cut",
):
    """Optimise a single-loop (level-1 style) kernel for ``machine``.

    Mirrors the Appendix D.1 listing: pick the vector width and instructions
    from the machine description, CSE the loop body, auto-vectorise, hoist
    loop-invariant broadcasts, then interleave iterations of the vectorised
    loop to expose instruction-level parallelism.
    """
    vec_width = machine.vec_width(precision)
    instrs = machine.get_instructions(precision)
    memory = machine.mem_type

    if vec_tail is None:
        vec_tail = "cut" if not machine.supports_predication else "cut"

    loop = proc.find_loop(loop) if isinstance(loop, str) else proc.forward(loop)
    loop_name = loop.name()

    proc = CSE(proc, loop.body(), precision)
    loop = proc.find_loop(loop_name)

    try:
        proc = vectorize(
            proc, loop, vec_width, precision, memory, instrs, rules=[fma_rule], tail=vec_tail
        )
    except (SchedulingError, InvalidCursorError):
        # not vectorisable with this strategy — return the (correct) scalar code
        return cleanup(proc)

    # the vectorised loop is the `<name>o` loop created by vectorize
    try:
        vec_loop = proc.find_loop(f"{loop_name}o")
    except InvalidCursorError:
        vec_loop = None

    if vec_loop is not None:
        proc = LICM(proc, vec_loop)
        try:
            vec_loop = proc.find_loop(f"{loop_name}o")
            proc = interleave_loop(proc, vec_loop, interleave_factor, memory, inter_tail)
        except (SchedulingError, InvalidCursorError):
            pass

    return cleanup(proc)
