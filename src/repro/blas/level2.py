"""``optimize_level_2_general`` and ``opt_skinny`` — the shared schedules for
BLAS level-2 kernels (Section 6.2.2, Appendix D.2).

* General matrices: unroll-and-jam the row loop to batch several dot products,
  CSE the shared vector load, and hand the inner loop to ``optimize_level_1``.
* Triangular matrices: the inner bound depends on the outer iterator, so the
  inner loop is shifted/rounded before the same machinery applies; when that
  is not possible the schedule falls back to vectorising the inner loop only.
* Skinny matrices (Figure 7): stage the reused vector into registers around
  the whole doubly-nested loop, vectorising the load / compute / store loops
  with predicated instructions.
"""

from __future__ import annotations

from typing import Optional

from ..cursors.cursor import ForCursor, IfCursor
from ..errors import InvalidCursorError, SchedulingError
from ..primitives import divide_dim, set_memory, set_precision, shift_loop, simplify
from ..stdlib.higher_order import apply, filter_c, is_invalid
from ..stdlib.inspection import get_inner_loop, get_reused_vector
from ..stdlib.tiling import auto_stage_mem, cleanup, interleave_loop, round_loop, unroll_and_jam, unroll_loops
from ..stdlib.vectorize import CSE, fma_rule, vectorize
from .level1 import optimize_level_1

__all__ = ["optimize_level_2_general", "opt_skinny"]


def _inner_loops(proc, outer: ForCursor):
    """All loops directly nested in ``outer``'s body."""
    return [c for c in outer.body() if isinstance(c, ForCursor)]


def optimize_level_2_general(
    proc,
    o_loop,
    precision: str,
    machine,
    r_fac: int = 2,
    c_fac: int = 2,
    round_up: Optional[bool] = None,
):
    """Optimise an O(n²) kernel: batch ``r_fac`` rows (unroll-and-jam), then
    treat each resulting inner loop as a level-1 problem."""
    o_loop = proc.find_loop(o_loop) if isinstance(o_loop, str) else proc.forward(o_loop)
    o_name = o_loop.name()

    inner = _inner_loops(proc, o_loop)
    triangular = False
    for il in inner:
        from ..ir.build import used_syms_expr

        if o_loop.iter_sym() in used_syms_expr(il.hi()._node()) or o_loop.iter_sym() in used_syms_expr(il.lo()._node()):
            triangular = True

    jammed = False
    if not triangular and len(inner) == 1:
        try:
            proc = unroll_and_jam(proc, o_loop, r_fac)
            jammed = True
        except (SchedulingError, InvalidCursorError):
            jammed = False

    # vectorise every (remaining) inner loop as a level-1 problem
    o_loop = proc.find_loop(f"{o_name}o" if jammed else o_name)
    work = [c for c in o_loop.body() if isinstance(c, ForCursor)]
    for il in work:
        il = proc.forward(il)
        name = il.name()
        # inner loops of triangular kernels may not start at zero — shift them
        from ..analysis.linear import const_value

        if const_value(il.lo()._node()) != 0:
            try:
                proc = shift_loop(proc, il, 0)
                il = proc.forward(il)
            except (SchedulingError, InvalidCursorError):
                continue
        try:
            proc = optimize_level_1(proc, il, precision, machine, c_fac)
        except (SchedulingError, InvalidCursorError):
            continue
        try:
            o_loop = proc.find_loop(f"{o_name}o" if jammed else o_name)
        except InvalidCursorError:
            break
        work = [proc.forward(c) for c in work]

    return cleanup(proc)


def opt_skinny(proc, out_loop, vw: int, mem, precision: str, machine, interleave: int = 2):
    """The skinny-matrix schedule of Figure 7b: keep the reused vector in
    registers across the whole quadratic loop.

    (1) Inspect the program to find the inner loop and the reused vector.
    (2) Stage the reused vector into a register-resident buffer around the
        doubly nested loops.
    (3) Vectorise the load loop, the inner math loop, and the store loop.
    (4) Interleave the inner loop for ILP and clean up.
    """
    out_loop = proc.find_loop(out_loop) if isinstance(out_loop, str) else proc.forward(out_loop)
    out_name = out_loop.name()

    # (1) inspection
    in_loop = get_inner_loop(proc, out_loop)
    in_name = in_loop.name()
    vec = get_reused_vector(proc, in_loop)
    vec_name = vec.name()

    # (2) stage the reused vector into registers around the outer loop
    staged_name = f"{vec_name}_reg"
    out_loop = proc.find_loop(out_name)
    proc, (alloc, load, block, store) = auto_stage_mem(proc, out_loop, vec_name, staged_name, rc=True)
    proc = set_memory(proc, staged_name, mem)
    proc = set_precision(proc, staged_name, precision)

    # (3) vectorise the load, inner math loop, and store loops
    instrs = machine.get_instructions(precision)
    loop_refs = []
    for lp in (load, store):
        if not is_invalid(lp):
            loop_refs.append(lp)
    loop_refs.append(proc.find_loop(in_name))
    loop_refs = filter_c(~is_invalid)(proc, loop_refs)
    for lp in loop_refs:
        lp = proc.forward(lp) if lp._proc is not proc else lp
        if not isinstance(lp, ForCursor):
            continue
        try:
            proc = vectorize(proc, lp, vw, precision, mem, instrs, rules=[fma_rule], tail="cut")
        except (SchedulingError, InvalidCursorError):
            continue

    # (4) interleave the vectorised inner loop and clean up
    try:
        proc = interleave_loop(proc, proc.find_loop(f"{in_name}o"), interleave)
    except (SchedulingError, InvalidCursorError):
        pass
    proc = simplify(proc)
    return cleanup(proc)
