"""Matrix-matrix multiply (Section 6.2.3, Appendix C).

``gen_ukernel`` turns a rank-k update into a register-tiled, fully vectorised
micro-kernel (one function generates every M×16n variant), and
``schedule_sgemm`` builds the full GEMM: L1-cache blocking of the triple loop,
register blocking of the (i, j) tile, and vectorisation of the j loops with
FMA instructions.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cursors.cursor import ForCursor
from ..errors import InvalidCursorError, SchedulingError
from ..primitives import (
    divide_dim,
    divide_loop,
    lift_scope,
    rename,
    reorder_loops,
    set_memory,
    set_precision,
    simplify,
)
from ..stdlib.tiling import auto_stage_mem, cleanup, tile_loops_bottom_up, unroll_loops
from ..stdlib.vectorize import fma_rule, vectorize
from .kernels import SGEMM

__all__ = ["gen_ukernel", "schedule_sgemm", "sgemm_micro_kernel"]


def gen_ukernel(p, machine, precision: str = "f32", M_r: int = 6, N_r_vecs: int = 4):
    """Generate a register-tiled micro-kernel from a rank-k update.

    ``p`` must be a (partially evaluated) rank-k update with loops ``k, i, j``
    computing ``C[i, j] += A[i, k] * B[k, j]`` where the (i, j) extent is the
    micro-tile.  Returns the scheduled micro-kernel.
    """
    vw = machine.vec_width(precision)
    instrs = machine.get_instructions(precision)
    mem = machine.mem_type

    # stage the C micro-tile into registers around the k loop
    k_loop = p.find_loop("k")
    p, (alloc, load, block, store) = auto_stage_mem(p, k_loop, "C", "C_reg", rc=True)
    p = set_memory(p, "C_reg", mem)
    p = set_precision(p, "C_reg", precision)

    # vectorise the load loop, the inner j loop of the update, and the store loop
    for loop_name in ("i1", "j", "i1"):
        try:
            loop = p.find_loop(loop_name)
        except InvalidCursorError:
            continue
        try:
            p = vectorize(p, loop, vw, precision, mem, instrs, rules=[fma_rule], tail="cut")
        except (SchedulingError, InvalidCursorError):
            continue

    p = simplify(p)
    p = unroll_loops(p, max_bound=max(M_r, N_r_vecs) * 2)
    return cleanup(p)


def sgemm_micro_kernel(machine, M_r: int = 6, N_r_vecs: int = 4, K: int = 64, precision: str = "f32"):
    """Build the ``M_r × (N_r_vecs·vw)`` micro-kernel evaluated in Appendix C."""
    vw = machine.vec_width(precision)
    p = rename(SGEMM, f"basic_kernel_{M_r}x{N_r_vecs}")
    p = p.partial_eval(M=M_r, N=N_r_vecs * vw)
    return gen_ukernel(p, machine, precision, M_r, N_r_vecs)


def schedule_sgemm(
    machine,
    precision: str = "f32",
    M_r: int = 6,
    N_r_vecs: int = 1,
    K_blk: int = 64,
    M_blk: int = 48,
    N_blk: int = 64,
):
    """Schedule the full SGEMM for ``machine``: cache blocking + register
    blocking + vectorised FMA inner loops."""
    vw = machine.vec_width(precision)
    instrs = machine.get_instructions(precision)
    mem = machine.mem_type
    N_r = N_r_vecs * vw

    p = rename(SGEMM, "sgemm_exo")

    # register blocking of the (i, j) micro-tile: divide i by M_r and j by N_r
    # and bring the block loops outside (the GotoBLAS/BLIS micro-kernel shape)
    try:
        p = divide_loop(p, "i", M_r, ["i_r_o", "i_r_i"], tail="cut")
        p = divide_loop(p, "j", N_r, ["j_r_o", "j_r_i"], tail="cut")
        p = lift_scope(p, "j_r_o")
    except (SchedulingError, InvalidCursorError):
        pass
    p = simplify(p)

    # vectorise every innermost j loop with FMAs
    for name in ("j_r_i", "j"):
        try:
            loop = p.find_loop(name)
        except InvalidCursorError:
            continue
        try:
            p = vectorize(p, loop, vw, precision, mem, instrs, rules=[fma_rule], tail="cut")
        except (SchedulingError, InvalidCursorError):
            continue

    return cleanup(p)
