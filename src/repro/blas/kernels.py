"""BLAS object-code kernels (levels 1 and 2, plus SGEMM).

Kernel variants are generated programmatically over precisions and
operational parameters — the cross-product that Section 6.2 argues makes
per-kernel hand-scheduling unmanageable.  The *object code* here is the naive
textbook loop nest; all performance comes from the scheduling libraries in
:mod:`repro.blas.level1` / ``level2`` / ``level3``.

``nrm2`` and ``iamax`` are excluded exactly as in the paper (the object
language has no value-dependent control flow).
"""

from __future__ import annotations

from typing import Dict, List

from ..frontend.decorators import proc_from_source

__all__ = [
    "LEVEL1_KERNELS",
    "LEVEL2_KERNELS",
    "SGEMM",
    "kernel",
    "level1_kernel",
    "level2_kernel",
    "all_level1_names",
    "all_level2_names",
]


_PRECISIONS = {"s": "f32", "d": "f64"}


# ---------------------------------------------------------------------------
# Level 1
# ---------------------------------------------------------------------------


def _level1_sources(prec_char: str, T: str) -> Dict[str, str]:
    p = prec_char
    return {
        f"{p}asum": f"""
def {p}asum(n: size, x: {T}[n] @ DRAM, result: {T}[1] @ DRAM):
    for i in seq(0, n):
        result[0] += fabs(x[i])
""",
        f"{p}axpy": f"""
def {p}axpy(n: size, alpha: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        y[i] += alpha * x[i]
""",
        f"{p}dot": f"""
def {p}dot(n: size, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM, result: {T}[1] @ DRAM):
    for i in seq(0, n):
        result[0] += x[i] * y[i]
""",
        f"{p}scal": f"""
def {p}scal(n: size, alpha: {T}, x: {T}[n] @ DRAM):
    for i in seq(0, n):
        x[i] = alpha * x[i]
""",
        f"{p}copy": f"""
def {p}copy(n: size, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i]
""",
        f"{p}swap": f"""
def {p}swap(n: size, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        tmp: {T} @ DRAM
        tmp = x[i]
        x[i] = y[i]
        y[i] = tmp
""",
        f"{p}rot": f"""
def {p}rot(n: size, c: {T}, s: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        xi: {T} @ DRAM
        xi = x[i]
        x[i] = c * xi + s * y[i]
        y[i] = c * y[i] - s * xi
""",
        f"{p}rotm": f"""
def {p}rotm(n: size, h11: {T}, h12: {T}, h21: {T}, h22: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        xi: {T} @ DRAM
        xi = x[i]
        x[i] = h11 * xi + h12 * y[i]
        y[i] = h21 * xi + h22 * y[i]
""",
    }


def _build_level1() -> Dict[str, object]:
    out: Dict[str, object] = {}
    for p, T in _PRECISIONS.items():
        for name, src in _level1_sources(p, T).items():
            out[name] = proc_from_source(src)
    # dsdot: single-precision inputs accumulated in double precision
    out["sdsdot"] = proc_from_source(
        """
def sdsdot(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, result: f64[1] @ DRAM):
    for i in seq(0, n):
        result[0] += x[i] * y[i]
"""
    )
    out["dsdot"] = proc_from_source(
        """
def dsdot(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, result: f64[1] @ DRAM):
    for i in seq(0, n):
        result[0] += x[i] * y[i]
"""
    )
    return out


# ---------------------------------------------------------------------------
# Level 2
# ---------------------------------------------------------------------------


def _level2_sources(p: str, T: str) -> Dict[str, str]:
    out = {
        f"{p}gemv_n": f"""
def {p}gemv_n(M: size, N: size, alpha: {T}, A: {T}[M, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[M] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += alpha * (A[i, j] * x[j])
""",
        f"{p}gemv_t": f"""
def {p}gemv_t(M: size, N: size, alpha: {T}, A: {T}[M, N] @ DRAM, x: {T}[M] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            y[j] += alpha * (A[i, j] * x[i])
""",
        f"{p}ger": f"""
def {p}ger(M: size, N: size, alpha: {T}, x: {T}[M] @ DRAM, y: {T}[N] @ DRAM, A: {T}[M, N] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            A[i, j] += alpha * (x[i] * y[j])
""",
        f"{p}symv_l": f"""
def {p}symv_l(N: size, alpha: {T}, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i + 1):
            y[i] += alpha * (A[i, j] * x[j])
        for j in seq(i + 1, N):
            y[i] += alpha * (A[j, i] * x[j])
""",
        f"{p}symv_u": f"""
def {p}symv_u(N: size, alpha: {T}, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i):
            y[i] += alpha * (A[j, i] * x[j])
        for j in seq(i, N):
            y[i] += alpha * (A[i, j] * x[j])
""",
        f"{p}syr_l": f"""
def {p}syr_l(N: size, alpha: {T}, x: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i + 1):
            A[i, j] += alpha * (x[i] * x[j])
""",
        f"{p}syr_u": f"""
def {p}syr_u(N: size, alpha: {T}, x: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i, N):
            A[i, j] += alpha * (x[i] * x[j])
""",
        f"{p}syr2_l": f"""
def {p}syr2_l(N: size, alpha: {T}, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i + 1):
            A[i, j] += alpha * (x[i] * y[j]) + alpha * (y[i] * x[j])
""",
        f"{p}syr2_u": f"""
def {p}syr2_u(N: size, alpha: {T}, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i, N):
            A[i, j] += alpha * (x[i] * y[j]) + alpha * (y[i] * x[j])
""",
    }
    # triangular matrix-vector products: lower/upper × {non,unit}-diagonal
    for uplo in ("l", "u"):
        for diag in ("n", "u"):
            name = f"{p}trmv_{uplo}n{diag}"
            rng = "seq(0, i)" if uplo == "l" else "seq(i + 1, N)"
            diag_term = "x[i]" if diag == "u" else "A[i, i] * x[i]"
            out[name] = f"""
def {name}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in {rng}:
            y[i] += A[i, j] * x[j]
        y[i] += {diag_term}
"""
            # transposed variants
            tname = f"{p}trmv_{uplo}t{diag}"
            trng = "seq(i + 1, N)" if uplo == "l" else "seq(0, i)"
            tdiag = "x[i]" if diag == "u" else "A[i, i] * x[i]"
            out[tname] = f"""
def {tname}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in {trng}:
            y[i] += A[j, i] * x[j]
        y[i] += {tdiag}
"""
    return out


def _build_level2() -> Dict[str, object]:
    out: Dict[str, object] = {}
    for p, T in _PRECISIONS.items():
        for name, src in _level2_sources(p, T).items():
            out[name] = proc_from_source(src)
    return out


LEVEL1_KERNELS: Dict[str, object] = _build_level1()
LEVEL2_KERNELS: Dict[str, object] = _build_level2()


SGEMM = proc_from_source(
    """
def sgemm(M: size, N: size, K: size, A: f32[M, K] @ DRAM, B: f32[K, N] @ DRAM, C: f32[M, N] @ DRAM):
    for k in seq(0, K):
        for i in seq(0, M):
            for j in seq(0, N):
                C[i, j] += A[i, k] * B[k, j]
"""
)


def kernel(name: str):
    """Look a kernel up by BLAS name across both levels (``'sgemm'`` works
    too).  The Schedule-valued optimisation pipelines live in
    :mod:`repro.blas.schedules`; ``scheduled_level1/2`` apply them through the
    shared replay cache for batch generation."""
    if name == "sgemm":
        return SGEMM
    if name in LEVEL1_KERNELS:
        return LEVEL1_KERNELS[name]
    if name in LEVEL2_KERNELS:
        return LEVEL2_KERNELS[name]
    raise KeyError(f"unknown BLAS kernel {name!r}")


def level1_kernel(name: str):
    return LEVEL1_KERNELS[name]


def level2_kernel(name: str):
    return LEVEL2_KERNELS[name]


def all_level1_names() -> List[str]:
    return sorted(LEVEL1_KERNELS.keys())


def all_level2_names() -> List[str]:
    return sorted(LEVEL2_KERNELS.keys())
