"""The BLAS scheduling library ("BLAS-lib") and kernels (Section 6.2)."""

from .kernels import (
    LEVEL1_KERNELS,
    LEVEL2_KERNELS,
    SGEMM,
    all_level1_names,
    all_level2_names,
    kernel,
    level1_kernel,
    level2_kernel,
)
from .level1 import optimize_level_1
from .level2 import opt_skinny, optimize_level_2_general
from .level3 import gen_ukernel, schedule_sgemm, sgemm_micro_kernel
from .reference import kernel_flops_bytes, level1_reference, level2_reference
from .schedules import (
    level1_schedule,
    level1_space,
    level2_schedule,
    level2_space,
    scheduled_level1,
    scheduled_level2,
    skinny_schedule,
    skinny_space,
)

__all__ = [
    "level1_schedule",
    "level2_schedule",
    "skinny_schedule",
    "level1_space",
    "level2_space",
    "skinny_space",
    "scheduled_level1",
    "scheduled_level2",
    "LEVEL1_KERNELS",
    "LEVEL2_KERNELS",
    "SGEMM",
    "all_level1_names",
    "all_level2_names",
    "kernel",
    "level1_kernel",
    "level2_kernel",
    "optimize_level_1",
    "optimize_level_2_general",
    "opt_skinny",
    "gen_ukernel",
    "schedule_sgemm",
    "sgemm_micro_kernel",
    "kernel_flops_bytes",
    "level1_reference",
    "level2_reference",
]
