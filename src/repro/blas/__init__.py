"""The BLAS scheduling library ("BLAS-lib") and kernels (Section 6.2)."""

from .kernels import (
    LEVEL1_KERNELS,
    LEVEL2_KERNELS,
    SGEMM,
    all_level1_names,
    all_level2_names,
    level1_kernel,
    level2_kernel,
)
from .level1 import optimize_level_1
from .level2 import opt_skinny, optimize_level_2_general
from .level3 import gen_ukernel, schedule_sgemm, sgemm_micro_kernel
from .reference import kernel_flops_bytes, level1_reference, level2_reference

__all__ = [
    "LEVEL1_KERNELS",
    "LEVEL2_KERNELS",
    "SGEMM",
    "all_level1_names",
    "all_level2_names",
    "level1_kernel",
    "level2_kernel",
    "optimize_level_1",
    "optimize_level_2_general",
    "opt_skinny",
    "gen_ukernel",
    "schedule_sgemm",
    "sgemm_micro_kernel",
    "kernel_flops_bytes",
    "level1_reference",
    "level2_reference",
]
