"""Numpy reference implementations and analytic flop/byte counts.

The references serve two purposes: they are the correctness oracle for the
scheduled kernels in the test suite, and they provide the flop/byte counts the
baseline library models (:mod:`repro.perf.baselines`) are evaluated on.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["level1_reference", "level2_reference", "kernel_flops_bytes"]


def level1_reference(name: str, args: Dict[str, object]) -> None:
    """Apply the reference semantics of a level-1 kernel in place."""
    base = name[1:]
    x = args.get("x")
    y = args.get("y")
    if base == "asum":
        args["result"][0] += np.sum(np.abs(x))
    elif base == "axpy":
        y += args["alpha"] * x
    elif base == "dot" or name in ("sdsdot", "dsdot"):
        args["result"][0] += np.dot(x.astype(np.float64), y.astype(np.float64))
    elif base == "scal":
        x *= args["alpha"]
    elif base == "copy":
        y[:] = x
    elif base == "swap":
        tmp = x.copy()
        x[:] = y
        y[:] = tmp
    elif base == "rot":
        c, s = args["c"], args["s"]
        xi = x.copy()
        x[:] = c * xi + s * y
        y[:] = c * y - s * xi
    elif base == "rotm":
        h11, h12, h21, h22 = args["h11"], args["h12"], args["h21"], args["h22"]
        xi = x.copy()
        x[:] = h11 * xi + h12 * y
        y[:] = h21 * xi + h22 * y
    else:
        raise KeyError(f"unknown level-1 kernel {name!r}")


def level2_reference(name: str, args: Dict[str, object]) -> None:
    """Apply the reference semantics of a level-2 kernel in place."""
    base = name[1:]
    A = args.get("A")
    x = args.get("x")
    y = args.get("y")
    alpha = args.get("alpha", 1.0)
    if base == "gemv_n":
        y += alpha * (A @ x)
    elif base == "gemv_t":
        y += alpha * (A.T @ x)
    elif base == "ger":
        A += alpha * np.outer(x, y)
    elif base in ("symv_l", "symv_u"):
        S = np.tril(A) + np.tril(A, -1).T if base.endswith("l") else np.triu(A) + np.triu(A, 1).T
        y += alpha * (S @ x)
    elif base in ("syr_l", "syr_u"):
        outer = alpha * np.outer(x, x)
        A += np.tril(outer) if base.endswith("l") else np.triu(outer)
    elif base in ("syr2_l", "syr2_u"):
        outer = alpha * (np.outer(x, y) + np.outer(y, x))
        A += np.tril(outer) if base.endswith("l") else np.triu(outer)
    elif base.startswith("trmv_"):
        flags = base.split("_")[1]
        uplo, trans, diag = flags[0], flags[1], flags[2]
        T = np.tril(A, -1) if uplo == "l" else np.triu(A, 1)
        if diag == "u":
            T = T + np.eye(A.shape[0], dtype=A.dtype)
        else:
            T = T + np.diag(np.diag(A))
        M = T.T if trans == "t" else T
        y += M @ x
    else:
        raise KeyError(f"unknown level-2 kernel {name!r}")


def kernel_flops_bytes(name: str, sizes: Dict[str, int]) -> Tuple[float, float]:
    """Analytic (flops, dram_bytes) for a kernel at the given sizes — what the
    baseline library models charge for."""
    width = 8 if name.startswith("d") else 4
    n = sizes.get("n") or sizes.get("N", 0)
    M = sizes.get("M", n)
    N = sizes.get("N", n)
    base = name[1:]
    if base in ("asum", "dot", "scal", "copy") or name in ("sdsdot", "dsdot"):
        vectors = 2 if base in ("dot", "copy") or "dot" in name else 1
        flops = 2.0 * n if "dot" in name else float(n)
        return flops, vectors * n * width + (n * width if base in ("scal", "copy") else 0)
    if base == "axpy":
        return 2.0 * n, 3.0 * n * width
    if base in ("swap", "rot", "rotm"):
        flops = {"swap": 0.0, "rot": 6.0, "rotm": 6.0}[base] * n
        return flops, 4.0 * n * width
    if base in ("gemv_n", "gemv_t"):
        return 2.0 * M * N, (M * N + M + N) * width
    if base == "ger":
        return 2.0 * M * N, (2 * M * N + M + N) * width
    if base.startswith(("symv", "syr2")):
        return 2.0 * N * N, (N * N + 2 * N) * width
    if base.startswith("syr"):
        return 1.0 * N * N, (N * N + N) * width
    if base.startswith(("trmv", "trsv")):
        return 1.0 * N * N, (N * N / 2 + 2 * N) * width
    if base == "gemm" or name == "sgemm":
        K = sizes.get("K", N)
        return 2.0 * M * N * K, (M * K + K * N + 2 * M * N) * width
    raise KeyError(f"unknown kernel {name!r}")
