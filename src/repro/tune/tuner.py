"""The knob-space autotuner: search a :class:`Space` over a first-class
:class:`~repro.api.schedule.Schedule` and keep the fastest configuration.

This is where schedules-as-values pay off beyond replay: because a schedule
is one value with named knobs, the tuner can enumerate knob environments,
apply them through the shared replay cache (prefix applications and
re-evaluations hit), compile each candidate on the NumPy engine, time it, and
persist a leaderboard so the next tune of the same ``(procedure, schedule,
machine)`` warm-starts from the best known config::

    from repro.tune import Space, Tuner
    from repro.halide import make_blur, blur_schedule, blur_space

    result = Tuner(make_blur(), blur_schedule(), blur_space(),
                   size_env={"H": 64, "W": 512}).tune(search="grid")
    result.best_config          # e.g. {'tile_y': 32, 'tile_x': 256, 'vec': 16}
    fast = blur_schedule().apply(make_blur(), result.best_config)

Search strategies: ``"grid"`` (exhaustive), ``"random"`` (n distinct points),
``"halving"`` (successive halving — cheap low-repeat screening, survivors
re-timed at growing budgets).  The hand-picked defaults of the schedule are
always injected as a candidate, so the tuned result can never lose to them on
the same measurement protocol.

Resumable tuning (ISSUE 8): pass ``checkpoint="path"`` and every completed
measurement is journaled (append-only, per-line checksummed —
:class:`repro.persist.Journal`) the moment it finishes.  A tuner killed
mid-run — ``kill -9`` included — restarts with the same checkpoint path and
re-measures **only the unfinished configs**: journaled measurements are
folded back in (and into the leaderboard) without re-running, the poison
list still applies, and at worst the single measurement that was mid-append
when the process died is repeated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..api.cache import ReplayCache
from ..api.knobs import KnobError
from ..api.schedule import Schedule
from ..core.procedure import Procedure
from ..persist import Journal
from .results import POISONED_STATUSES, Leaderboard, board_key, config_key, machine_id
from .runner import Measurement, ScheduleRunner
from .space import Config, GridSampler, RandomSampler, Space, TuneError, successive_halving

__all__ = ["TuneResult", "Tuner", "autotune"]


class TuneResult:
    """What a tune run found.

    ``best_config`` is the *full* knob environment (defaults merged with the
    winning sweep point); ``default`` is the measurement of the schedule's
    hand-picked defaults, so ``result.speedup_vs_default()`` reports what the
    search bought.  ``measurements`` covers every candidate this run
    *evaluated*, ``resumed`` the measurements restored from the checkpoint
    journal without re-running, ``skipped`` the candidates the leaderboard
    poison list excluded without re-measuring (they crashed or timed out in
    an earlier run), and ``cache_stats`` the replay-cache traffic of the
    sweep.
    """

    def __init__(
        self,
        best: Measurement,
        default: Measurement,
        measurements: List[Measurement],
        *,
        key: str,
        machine: str,
        rounds: Optional[List[dict]] = None,
        cache_stats: Optional[dict] = None,
        skipped: Optional[List[Config]] = None,
        resumed: Optional[List[Measurement]] = None,
    ):
        self.best = best
        self.default = default
        self.measurements = measurements
        self.key = key
        self.machine = machine
        self.rounds = rounds or []
        self.cache_stats = cache_stats or {}
        self.skipped = skipped or []
        self.resumed = resumed or []

    @property
    def best_config(self) -> Config:
        return dict(self.best.config)

    @property
    def best_time_s(self) -> Optional[float]:
        return self.best.time_s

    def speedup_vs_default(self) -> float:
        """How much faster the tuned config is than the hand-picked defaults
        (>= 1.0 whenever both measured, because the defaults are a candidate)."""
        if not (self.best.ok and self.default.ok):
            return float("nan")
        return self.default.time_s / self.best.time_s

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "machine": self.machine,
            "best": self.best.to_dict(),
            "default": self.default.to_dict(),
            "speedup_vs_default": self.speedup_vs_default(),
            "evaluated": len(self.measurements),
            "errors": sum(1 for m in self.measurements if not m.ok),
            "skipped": len(self.skipped),
            "resumed": len(self.resumed),
            "cache": self.cache_stats,
        }

    def __repr__(self) -> str:
        t = f"{self.best.time_s * 1e3:.3f} ms" if self.best.ok else "?"
        return f"<TuneResult best={self.best_config} ({t}), {len(self.measurements)} evaluated>"


class Tuner:
    """Drives a search over one ``(procedure, schedule, space)`` triple.

    The space's param names must be knobs the schedule declares (checked up
    front, with the schedule's own did-you-mean diagnostics); values outside
    a knob's declared ``choices`` surface as :class:`KnobError` mid-sweep
    rather than scoring as failures.

    Hardening: ``timeout_s`` bounds each candidate's compile+time wall clock
    (a slow corner scores ``"timeout"`` instead of stalling the sweep), and
    warm-started re-tunes skip configs the leaderboard has poison-listed
    after a crash or timeout — see :data:`repro.tune.POISONED_STATUSES`.

    ``checkpoint`` names a :class:`~repro.persist.Journal` file: every
    completed measurement is appended durably, and a restarted tune with the
    same checkpoint re-measures only the configs the journal does not
    already cover (see the module docstring).
    """

    def __init__(
        self,
        proc: Procedure,
        schedule: Schedule,
        space: Space,
        size_env: Dict[str, int],
        *,
        repeats: int = 3,
        seed: int = 0,
        cache: Optional[ReplayCache] = None,
        leaderboard: Optional[Leaderboard] = None,
        backend: Optional[str] = None,
        timeout_s: Optional[float] = None,
        checkpoint: Optional[str] = None,
    ):
        if not isinstance(space, Space):
            raise TuneError(f"Tuner: expected a Space, got {type(space).__name__}")
        declared = {k.name for k in schedule.knobs()}
        unknown = sorted(set(space.names()) - declared)
        if unknown:
            raise KnobError(
                f"search space names knob(s) {unknown} the schedule does not declare; "
                f"it declares {sorted(declared) if declared else 'no knobs'}"
            )
        self.proc = proc
        self.schedule = schedule
        self.space = space
        self.leaderboard = leaderboard if leaderboard is not None else Leaderboard()
        self.machine = machine_id()
        self.key = board_key(proc, schedule, self.machine)
        self.checkpoint = Journal(checkpoint) if checkpoint is not None else None
        self.runner = ScheduleRunner(
            proc,
            schedule,
            size_env,
            repeats=repeats,
            seed=seed,
            cache=cache,
            swept=space.names(),
            backend=backend,
            timeout_s=timeout_s,
        )

    # -- candidate generation ----------------------------------------------------

    def _full(self, config: Config) -> Config:
        """Merge a sweep point over the schedule's knob defaults, so every
        candidate (and the leaderboard) carries the complete environment."""
        full = dict(self.schedule.knob_defaults())
        full.update(config)
        return full

    def candidates(
        self, search: str = "grid", n: Optional[int] = None, seed: Optional[int] = None
    ) -> List[Config]:
        """The deduplicated candidate list: the schedule's defaults, the
        persisted leaderboard champion (warm start), then the sampled space."""
        if search in ("grid", "halving"):
            sampled = list(GridSampler().sample(self.space))
        elif search == "random":
            sampled = list(
                RandomSampler(n or max(1, self.space.size() // 2), seed=seed or 0).sample(
                    self.space
                )
            )
        else:
            raise TuneError(f"unknown search strategy {search!r}; try grid, random, or halving")
        pool = [self._full({})]  # the hand-picked defaults always compete
        warm = self.leaderboard.best(self.key)
        if warm is not None and warm.get("config"):
            pool.append(self._full(warm["config"]))
        pool.extend(self._full(c) for c in sampled)
        seen, out = set(), []
        for c in pool:
            k = tuple(sorted((str(k), repr(v)) for k, v in c.items()))
            if k not in seen:
                seen.add(k)
                out.append(c)
        return out

    # -- the search --------------------------------------------------------------

    def tune(
        self,
        search: str = "grid",
        *,
        n: Optional[int] = None,
        seed: Optional[int] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        min_budget: int = 1,
        max_budget: Optional[int] = None,
        spec: Optional[dict] = None,
    ) -> TuneResult:
        """Run the search and return a :class:`TuneResult`.

        ``parallel=True`` evaluates candidates in isolated worker processes;
        it requires ``spec`` — the JSON-able candidate description
        :func:`repro.tune.runner.evaluate_spec` understands — because worker
        processes rebuild the procedure and schedule from importable
        references rather than pickling live IR.
        """
        configs = self.candidates(search, n=n, seed=seed)
        # resume: configs the checkpoint journal already covers are restored,
        # not re-measured — a SIGKILLed tune pays only for unfinished work
        resumed = self._resume(configs)
        if resumed:
            done = {config_key(m.config) for m in resumed}
            configs = [c for c in configs if config_key(c) not in done]
            self.leaderboard.record_many(self.key, resumed)
        # warm-start poison list: configs whose last outcome crashed or
        # wedged a worker are excluded outright — one bad knob corner is
        # paid for once per machine, not once per tune
        poisoned = self.leaderboard.poisoned(self.key)
        skipped = [c for c in configs if config_key(c) in poisoned]
        configs = [c for c in configs if config_key(c) not in poisoned]
        if not configs and not resumed:
            raise TuneError(
                "every candidate is poison-listed (crashed or timed out in a "
                f"previous run); {len(skipped)} config(s) skipped — clear the "
                "leaderboard to force re-measurement"
            )
        rounds: List[dict] = []
        measurements: List[Measurement] = []
        if search == "halving" and len(configs) > 1:
            max_b = max_budget if max_budget is not None else max(self.runner.repeats, min_budget)

            def eval_round(cfgs: List[Config], budget: int) -> List[float]:
                ms = self._evaluate(cfgs, repeats=budget, parallel=parallel,
                                    max_workers=max_workers, spec=spec)
                measurements.extend(ms)
                self.leaderboard.record_many(self.key, ms)
                return [m.score for m in ms]

            _, rounds = successive_halving(
                configs, eval_round, min_budget=min_budget, max_budget=max_b
            )
        elif configs:
            measurements = self._evaluate(
                configs, repeats=None, parallel=parallel, max_workers=max_workers, spec=spec
            )
            self.leaderboard.record_many(self.key, measurements)
        self.leaderboard.save()

        pool = measurements + resumed
        ok = [m for m in pool if m.ok]
        if not ok:
            raise TuneError(
                "tuning produced no successful measurement; every candidate failed "
                f"({pool[0].error if pool else 'empty space'})"
            )
        best = min(ok, key=lambda m: m.time_s)
        default_cfg = self._full({})
        # the default may have been measured several times at different
        # budgets (halving rounds); report its own best so `best` and
        # `default` come from the same measurement pool
        default_runs = [m for m in ok if m.config == default_cfg]
        if default_runs:
            default = min(default_runs, key=lambda m: m.time_s)
        elif config_key(default_cfg) in poisoned:
            # the hand-picked defaults crashed/hung in an earlier run: report
            # that verdict synthetically, never re-run the dangerous config
            default = Measurement(
                default_cfg,
                status="crash",
                error="poison-listed by the leaderboard (crashed or timed out "
                "in a previous run); not re-measured",
            )
        else:
            default = self.runner.evaluate(default_cfg)
            self._journal(default)
            self.leaderboard.record(self.key, default)
            self.leaderboard.save()
            if default.ok and default.time_s < best.time_s:
                best = default
        return TuneResult(
            best,
            default,
            measurements,
            key=self.key,
            machine=self.machine,
            rounds=rounds,
            cache_stats=self.runner.cache.stats(),
            skipped=skipped,
            resumed=resumed,
        )

    # -- checkpointing -----------------------------------------------------------

    def _journal(self, measurement: Measurement) -> None:
        """Durably append one completed measurement to the checkpoint (the
        persist sites inside :meth:`Journal.append` honour the
        ``partial-write``/``kill-mid-publish`` faults, which is how the kill
        harness interrupts a tune at a chosen point)."""
        if self.checkpoint is not None:
            self.checkpoint.append({"key": self.key, "measurement": measurement.to_dict()})

    def _resume(self, configs: Sequence[Config]) -> List[Measurement]:
        """The journaled measurements covering ``configs`` (this board key
        only; a checkpoint shared across specs never cross-pollutes).  When
        a config was journaled several times — halving budgets, or a re-tune
        — the poisoned outcome wins, else the best time."""
        if self.checkpoint is None:
            return []
        done: Dict[str, Measurement] = {}
        for rec in self.checkpoint.entries():
            if not isinstance(rec, dict) or rec.get("key") != self.key:
                continue
            try:
                m = Measurement.from_dict(rec["measurement"])
            except (KeyError, TypeError):
                continue
            ck = config_key(m.config)
            prev = done.get(ck)
            if (
                prev is None
                or m.status in POISONED_STATUSES
                or (prev.status not in POISONED_STATUSES and m.score <= prev.score)
            ):
                done[ck] = m
        return [done[config_key(c)] for c in configs if config_key(c) in done]

    def _evaluate(
        self,
        configs: Sequence[Config],
        *,
        repeats: Optional[int],
        parallel: bool,
        max_workers: Optional[int],
        spec: Optional[dict],
    ) -> List[Measurement]:
        if not parallel:
            out: List[Measurement] = []
            for config in configs:
                m = self.runner.evaluate(config, repeats=repeats)
                self._journal(m)  # the moment it completes, not at sweep end
                out.append(m)
            return out
        if spec is None:
            raise TuneError(
                "parallel tuning needs a spec (importable proc/schedule references); "
                "see repro.tune.runner.evaluate_spec"
            )
        from .runner import evaluate_parallel

        full_spec = dict(spec)
        full_spec.setdefault("size_env", self.runner.size_env)
        full_spec.setdefault("seed", self.runner.seed)
        full_spec.setdefault("swept", self.space.names())
        if self.runner.timeout_s is not None:
            full_spec.setdefault("timeout_s", self.runner.timeout_s)
        if repeats is not None:
            full_spec["repeats"] = repeats
        else:
            full_spec.setdefault("repeats", self.runner.repeats)
        ms = evaluate_parallel(full_spec, configs, max_workers=max_workers)
        for m in ms:
            self._journal(m)  # batch granularity: the workers just finished
        return ms


def autotune(
    proc: Procedure,
    schedule: Schedule,
    space: Space,
    size_env: Dict[str, int],
    *,
    search: str = "grid",
    leaderboard: Optional[Leaderboard] = None,
    **kwargs,
) -> TuneResult:
    """One-call tuning: build a :class:`Tuner` and run it.

    Keyword arguments split between the two: ``repeats``/``seed``/``cache``
    configure measurement, everything else is forwarded to :meth:`Tuner.tune`.
    """
    init_keys = {"repeats", "seed", "cache", "backend", "timeout_s", "checkpoint"}
    init = {k: v for k, v in kwargs.items() if k in init_keys}
    rest = {k: v for k, v in kwargs.items() if k not in init_keys}
    return Tuner(proc, schedule, space, size_env, leaderboard=leaderboard, **init).tune(
        search, **rest
    )
