"""Knob search spaces and candidate samplers.

A :class:`Space` names the knobs an autotuner is allowed to move and the
domain of each one: an explicit list of choices (:meth:`Param.choices`) or an
arithmetic/geometric range (:meth:`Param.range`, :meth:`Param.pow2`).  The
space deliberately knows nothing about schedules — it is a pure description
of a finite grid of knob environments, and the samplers below turn it into a
concrete candidate list:

* :class:`GridSampler` — exhaustive enumeration in declaration order,
* :class:`RandomSampler` — ``n`` distinct points (a fixed seed makes the
  sample reproducible),
* :func:`successive_halving` — a budgeted search that evaluates every
  candidate cheaply, keeps the best ``1/eta`` fraction, and re-evaluates the
  survivors at ``eta``-times the budget until one remains.

An *empty* space is legal and denotes the single all-defaults candidate
``{}`` — tuning an un-knobbed schedule degenerates to measuring it once.
"""

from __future__ import annotations

import itertools
import random as _random
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExoError

__all__ = [
    "TuneError",
    "Param",
    "Space",
    "GridSampler",
    "RandomSampler",
    "successive_halving",
    "threads_param",
    "THREADS_KNOB",
]

#: Reserved knob name: the schedule runner pops it from a candidate config
#: and forwards it to ``run_proc(threads=...)`` instead of the schedule.
THREADS_KNOB = "num_threads"

#: A concrete knob environment, as accepted by ``Schedule.apply(knobs=...)``.
Config = Dict[str, object]


class TuneError(ExoError):
    """The autotuner was asked something unsatisfiable (malformed space,
    no evaluable candidates, broken leaderboard file)."""


class Param:
    """One knob's searchable domain: a named, finite, ordered set of values.

    >>> Param("vec", (4, 8, 16)).values
    (4, 8, 16)
    >>> Param.range("interleave", 1, 5)           # arithmetic, like range()
    Param('interleave', values=(1, 2, 3, 4))
    >>> Param.pow2("tile", 16, 64)                # geometric, inclusive
    Param('tile', values=(16, 32, 64))
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: Iterable):
        if not isinstance(name, str) or not name:
            raise TuneError("Param: name must be a non-empty string")
        vals = tuple(values)
        if not vals:
            raise TuneError(f"Param {name!r}: the value domain is empty")
        if len(set(map(repr, vals))) != len(vals):
            raise TuneError(f"Param {name!r}: duplicate values in {list(vals)}")
        self.name = name
        self.values = vals

    @classmethod
    def range(cls, name: str, lo: int, hi: int, step: int = 1) -> "Param":
        """An arithmetic range ``lo, lo+step, ... < hi`` (``range`` semantics)."""
        return cls(name, range(lo, hi, step))

    @classmethod
    def pow2(cls, name: str, lo: int, hi: int) -> "Param":
        """The powers of two (times ``lo``) from ``lo`` up to ``hi`` inclusive."""
        if lo <= 0 or hi < lo:
            raise TuneError(f"Param {name!r}: pow2 needs 0 < lo <= hi")
        vals = []
        v = lo
        while v <= hi:
            vals.append(v)
            v *= 2
        return cls(name, vals)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Param({self.name!r}, values={self.values!r})"


class Space:
    """A finite knob search space: the cartesian product of its params.

    Construct from :class:`Param` objects or a ``name -> values`` mapping:

    >>> sp = Space(Param("vec", (8, 16)), Param("tile", (32, 64)))
    >>> sp.size()
    4
    >>> Space({"vec": (8, 16)}).names()
    ['vec']
    >>> Space().size()                    # empty: one all-defaults candidate
    1
    """

    def __init__(self, *params, **named_values):
        self.params: Dict[str, Param] = {}
        flat: List[Param] = []
        for p in params:
            if isinstance(p, Param):
                flat.append(p)
            elif isinstance(p, dict):
                flat.extend(Param(k, v) for k, v in p.items())
            else:
                raise TuneError(f"Space: expected Param or dict, got {type(p).__name__}")
        flat.extend(Param(k, v) for k, v in named_values.items())
        for p in flat:
            if p.name in self.params:
                raise TuneError(f"Space: duplicate param {p.name!r}")
            self.params[p.name] = p

    def names(self) -> List[str]:
        return list(self.params)

    def size(self) -> int:
        n = 1
        for p in self.params.values():
            n *= len(p)
        return n

    def point(self, index: int) -> Config:
        """The ``index``-th grid point, in :class:`GridSampler` order."""
        if not 0 <= index < self.size():
            raise TuneError(f"Space.point: index {index} out of range [0, {self.size()})")
        cfg: Config = {}
        for p in reversed(list(self.params.values())):
            index, off = divmod(index, len(p))
            cfg[p.name] = p.values[off]
        return {name: cfg[name] for name in self.params}

    def __contains__(self, name: str) -> bool:
        return name in self.params

    def __len__(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        inner = ", ".join(f"{p.name}={list(p.values)!r}" for p in self.params.values())
        return f"Space({inner})"


def threads_param(lo: int = 1, hi: int = 8) -> Param:
    """The execution thread-count knob, power-of-two stepped.

    ``num_threads`` is *reserved*: it is not a schedule knob — the runner
    strips it from the candidate config and passes it to
    ``run_proc(threads=...)``, so any space can sweep thread counts for
    schedules containing ``parallelize_loop`` steps.

    >>> threads_param(1, 8)
    Param('num_threads', values=(1, 2, 4, 8))
    """
    return Param.pow2(THREADS_KNOB, lo, hi)


class GridSampler:
    """Exhaustive enumeration of a space, first param varying slowest.

    >>> list(GridSampler().sample(Space({"a": (1, 2), "b": ("x", "y")})))
    [{'a': 1, 'b': 'x'}, {'a': 1, 'b': 'y'}, {'a': 2, 'b': 'x'}, {'a': 2, 'b': 'y'}]
    """

    def sample(self, space: Space) -> Iterator[Config]:
        names = space.names()
        for combo in itertools.product(*(space.params[n].values for n in names)):
            yield dict(zip(names, combo))


class RandomSampler:
    """``n`` distinct grid points, reproducible under a fixed ``seed``.

    When ``n`` covers the whole space this degenerates to the grid.

    >>> s = RandomSampler(n=3, seed=7)
    >>> pts = list(s.sample(Space({"a": range(10), "b": range(10)})))
    >>> len(pts) == 3 and pts == list(RandomSampler(n=3, seed=7).sample(Space({"a": range(10), "b": range(10)})))
    True
    """

    def __init__(self, n: int, seed: int = 0):
        if n <= 0:
            raise TuneError("RandomSampler: n must be positive")
        self.n = n
        self.seed = seed

    def sample(self, space: Space) -> Iterator[Config]:
        total = space.size()
        if self.n >= total:
            yield from GridSampler().sample(space)
            return
        rng = _random.Random(self.seed)
        for index in rng.sample(range(total), self.n):
            yield space.point(index)


def successive_halving(
    candidates: Sequence[Config],
    evaluate: Callable[[List[Config], int], List[float]],
    *,
    eta: int = 2,
    min_budget: int = 1,
    max_budget: int = 8,
) -> Tuple[Config, List[dict]]:
    """Budgeted search: score every candidate at ``min_budget``, keep the best
    ``1/eta`` fraction, multiply the budget by ``eta``, repeat.

    ``evaluate(configs, budget)`` returns one score per config (lower is
    better; ``float('inf')`` marks a failed candidate, which is pruned).  The
    *budget* is interpreted by the caller — the schedule runner uses it as the
    timing-repeat count, so early rounds are cheap and only survivors get
    high-confidence measurements.  Returns the winning config and the
    per-round history ``[{"budget": b, "scored": [(score, config), ...]}]``.

    >>> table = {(1,): 3.0, (2,): 2.0, (3,): 1.0, (4,): float("inf")}
    >>> best, rounds = successive_halving(
    ...     [{"x": x} for x in (1, 2, 3, 4)],
    ...     lambda cfgs, b: [table[(c["x"],)] for c in cfgs],
    ... )
    >>> best
    {'x': 3}
    >>> [r["budget"] for r in rounds]
    [1, 2, 4]
    """
    pool = [dict(c) for c in candidates]
    if not pool:
        raise TuneError("successive_halving: no candidates")
    if eta < 2:
        raise TuneError("successive_halving: eta must be >= 2")
    budget = min_budget
    rounds: List[dict] = []
    while True:
        scores = list(evaluate(pool, budget))
        if len(scores) != len(pool):
            raise TuneError(
                f"successive_halving: evaluate returned {len(scores)} scores for {len(pool)} configs"
            )
        scored = sorted(zip(scores, pool), key=lambda sc: sc[0])
        rounds.append({"budget": budget, "scored": [(s, dict(c)) for s, c in scored]})
        alive = [(s, c) for s, c in scored if s != float("inf")]
        if not alive:
            raise TuneError("successive_halving: every candidate failed to evaluate")
        if len(alive) == 1 or budget >= max_budget:
            return alive[0][1], rounds
        keep = max(1, len(alive) // eta)
        pool = [c for _, c in alive[:keep]]
        budget = min(budget * eta, max_budget)
