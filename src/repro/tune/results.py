"""The autotuning leaderboard: persisted, machine-keyed tuning results.

Every measurement a tune run produces is recorded under the board key

    ``(proc digest, schedule fingerprint, machine id)``

— the digest identifies the object code being scheduled (the sha256 of its
printed form, via :func:`repro.api.trace.state_hash`: unlike the in-memory
``struct_hash``, whose symbol hashing is randomized per process, it is
stable across process restarts — the whole point of persisting), the
*default-resolved* schedule fingerprint identifies the schedule family being
swept, and the machine id pins the numbers to the hardware they were
measured on (knob optima are machine-dependent; a leaderboard from another
box must not warm-start this one).  Re-running a tune loads the board first
and seeds the search with the persisted best config, so repeated tuning
converges instead of starting blind.

The on-disk format is one JSON object ``{"version": 1, "boards": {key:
board}}`` where each board holds per-config best times plus the current
champion.  Corrupt or future-versioned files raise :class:`TuneError` rather
than silently starting an empty board.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Dict, List, Optional

from ..api.trace import state_hash
from ..core.procedure import Procedure
from .runner import Measurement
from .space import Config, TuneError

__all__ = ["Leaderboard", "machine_id", "board_key"]


def _cpu_model() -> str:
    """The CPU model string.  ``platform.processor()`` is empty on most
    Linux systems, which would collapse distinct CPUs into one leaderboard
    key — read ``/proc/cpuinfo`` there."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "cpu"


def machine_id() -> str:
    """A stable identifier for the measuring machine (OS + ISA + CPU model);
    tuned knob values are only comparable within one of these."""
    return f"{platform.system()}-{platform.machine()}-{_cpu_model()}".replace(" ", "_")


def board_key(proc: Procedure, schedule, machine: Optional[str] = None) -> str:
    """The leaderboard key for tuning ``schedule`` on ``proc``: a
    process-stable digest of the object code, the default-resolved schedule
    fingerprint, and the machine id."""
    return f"{state_hash(proc)}/{schedule.fingerprint()}/{machine or machine_id()}"


def _config_key(config: Config) -> str:
    return json.dumps(config, sort_keys=True, default=repr)


_VERSION = 1


class Leaderboard:
    """A map from board keys to per-config tuning results, persisted as JSON.

    ``path=None`` keeps the board in memory only (tests, throwaway sweeps).
    :meth:`record` keeps the best time seen per config and maintains the
    champion entry; :meth:`best` hands back the champion for warm-starting.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.boards: Dict[str, dict] = {}
        if path is not None and os.path.exists(path):
            self.load()

    # -- persistence -----------------------------------------------------------

    def load(self) -> None:
        try:
            with open(self.path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            raise TuneError(f"leaderboard {self.path!r} is unreadable: {err}") from err
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise TuneError(
                f"leaderboard {self.path!r}: unsupported version {data.get('version')!r}"
            )
        self.boards = data.get("boards", {})

    def save(self) -> None:
        if self.path is None:
            return
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as f:
            json.dump(self.to_dict(), f, indent=2, default=repr)
            f.write("\n")
        os.replace(tmp, self.path)

    def to_dict(self) -> dict:
        return {"version": _VERSION, "boards": self.boards}

    # -- recording -------------------------------------------------------------

    def _board(self, key: str) -> dict:
        return self.boards.setdefault(key, {"entries": {}, "best": None})

    def record(self, key: str, measurement: Measurement) -> None:
        """Fold one measurement into the board: per-config minimum time,
        champion update.  Failed measurements are kept (with their error) so
        a re-tune can see which corners of the space are infeasible."""
        board = self._board(key)
        ck = _config_key(measurement.config)
        prev = board["entries"].get(ck)
        entry = measurement.to_dict()
        if prev is not None and prev.get("status") == "ok":
            if not measurement.ok or prev["time_s"] <= measurement.time_s:
                entry = prev
        board["entries"][ck] = entry
        best = board["best"]
        if entry.get("status") == "ok" and (
            best is None or best.get("time_s") is None or entry["time_s"] < best["time_s"]
        ):
            board["best"] = dict(entry)

    def record_many(self, key: str, measurements: List[Measurement]) -> None:
        for m in measurements:
            self.record(key, m)

    # -- queries ---------------------------------------------------------------

    def best(self, key: str) -> Optional[dict]:
        """The champion entry (``Measurement.to_dict()`` shape) or ``None``."""
        board = self.boards.get(key)
        return dict(board["best"]) if board and board.get("best") else None

    def entries(self, key: str) -> List[dict]:
        board = self.boards.get(key)
        return [dict(e) for e in board["entries"].values()] if board else []

    def stats(self, key: str) -> dict:
        entries = self.entries(key)
        ok = [e for e in entries if e.get("status") == "ok"]
        return {
            "configs": len(entries),
            "ok": len(ok),
            "errors": len(entries) - len(ok),
            "best": self.best(key),
        }

    def __len__(self) -> int:
        return len(self.boards)

    def __repr__(self) -> str:
        where = self.path or "<memory>"
        return f"<Leaderboard {where}: {len(self.boards)} boards>"
