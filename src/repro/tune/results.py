"""The autotuning leaderboard: persisted, machine-keyed tuning results.

Every measurement a tune run produces is recorded under the board key

    ``(proc digest, schedule fingerprint, machine id)``

— the digest identifies the object code being scheduled (the sha256 of its
printed form, via :func:`repro.api.trace.state_hash`: unlike the in-memory
``struct_hash``, whose symbol hashing is randomized per process, it is
stable across process restarts — the whole point of persisting), the
*default-resolved* schedule fingerprint identifies the schedule family being
swept, and the machine id pins the numbers to the hardware they were
measured on (knob optima are machine-dependent; a leaderboard from another
box must not warm-start this one).  Re-running a tune loads the board first
and seeds the search with the persisted best config, so repeated tuning
converges instead of starting blind.

The on-disk format is one checksummed :mod:`repro.persist` record holding
``{"version": 1, "boards": {key: board}}`` where each board holds per-config
best times plus the current champion.  A corrupt or future-versioned file is
*quarantined* — renamed to ``<path>.corrupt-<digest>`` with a warning — and
the board starts fresh: a truncated write from a killed tune run must not
brick every future tune, and the renamed file preserves the evidence instead
of silently clobbering it.

Concurrent tuners sharing one board path are first-class (ISSUE 8):
:meth:`Leaderboard.save` takes the board's advisory
:class:`~repro.persist.lock.FileLock`, **reloads the on-disk board and
merges it** (per-config minima, poison-wins, champion recomputed) before
publishing, so N processes tuning against the same path lose zero
measurements regardless of interleaving.  If the lock cannot be acquired
within ``lock_timeout_s`` the save degrades to in-memory only — a
``lock-contention`` :class:`~repro.guard.events.FallbackEvent` is recorded
and a warning emitted, but the tune run is never blocked on a wedged holder.

Crash/timeout measurements are poison-listed (:data:`POISONED_STATUSES`,
:meth:`Leaderboard.poisoned`): a warm-started re-tune skips configs whose
best-known outcome was killing or wedging a worker, so one bad knob corner is
paid for exactly once per machine.
"""

from __future__ import annotations

import json
import os
import platform
import warnings
from typing import Dict, List, Optional, Set

from ..api.trace import state_hash
from ..core.procedure import Procedure
from ..guard.events import record_fallback
from ..persist import CorruptRecordError, FileLock, LockTimeout, quarantine_file
from ..persist import read_record as _read_record
from ..persist import write_record as _write_record
from .runner import Measurement
from .space import Config, TuneError

__all__ = [
    "Leaderboard",
    "machine_id",
    "board_key",
    "config_key",
    "POISONED_STATUSES",
]

#: Measurement statuses that poison-list a config: outcomes where the
#: candidate killed or wedged its worker, which a re-tune must never repeat.
#: A plain ``"error"`` (schedule refused, compile failed) stays re-tryable —
#: it is cheap and deterministic, not dangerous.
POISONED_STATUSES = frozenset({"crash", "timeout"})


def _cpu_model() -> str:
    """The CPU model string.  ``platform.processor()`` is empty on most
    Linux systems, which would collapse distinct CPUs into one leaderboard
    key — read ``/proc/cpuinfo`` there."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "cpu"


def machine_id() -> str:
    """A stable identifier for the measuring machine (OS + ISA + CPU model);
    tuned knob values are only comparable within one of these."""
    return f"{platform.system()}-{platform.machine()}-{_cpu_model()}".replace(" ", "_")


def board_key(proc: Procedure, schedule, machine: Optional[str] = None) -> str:
    """The leaderboard key for tuning ``schedule`` on ``proc``: a
    process-stable digest of the object code, the default-resolved schedule
    fingerprint, and the machine id."""
    return f"{state_hash(proc)}/{schedule.fingerprint()}/{machine or machine_id()}"


def config_key(config: Config) -> str:
    """The canonical string key for one knob environment (sorted JSON) —
    the key :meth:`Leaderboard.poisoned` results are expressed in."""
    return json.dumps(config, sort_keys=True, default=repr)


_config_key = config_key  # backward-compatible alias


_VERSION = 1


def _merge_entry(mine: Optional[dict], theirs: Optional[dict]) -> dict:
    """The per-config merge rule shared by :meth:`Leaderboard.record` and
    :meth:`Leaderboard.merge`: a poisoning outcome (crash/timeout) wins over
    anything, two ``ok`` entries keep the faster (ties keep ``mine``), an
    ``ok`` beats a plain error, and between two failures the incoming entry
    (the latest evidence) wins."""
    if mine is None:
        return theirs
    if theirs is None:
        return mine
    mine_poison = mine.get("status") in POISONED_STATUSES
    theirs_poison = theirs.get("status") in POISONED_STATUSES
    if mine_poison or theirs_poison:
        return mine if mine_poison else theirs
    mine_ok = mine.get("status") == "ok" and mine.get("time_s") is not None
    theirs_ok = theirs.get("status") == "ok" and theirs.get("time_s") is not None
    if mine_ok and theirs_ok:
        return mine if mine["time_s"] <= theirs["time_s"] else theirs
    if mine_ok:
        return mine
    if theirs_ok:
        return theirs
    return theirs


def _recompute_best(board: dict) -> None:
    """Champion = minimum-time ok entry; deterministic regardless of the
    order measurements and merges arrived in."""
    ok = [
        e
        for e in board["entries"].values()
        if e.get("status") == "ok" and e.get("time_s") is not None
    ]
    board["best"] = dict(min(ok, key=lambda e: e["time_s"])) if ok else None


class Leaderboard:
    """A map from board keys to per-config tuning results, persisted as JSON.

    ``path=None`` keeps the board in memory only (tests, throwaway sweeps).
    :meth:`record` keeps the best time seen per config and maintains the
    champion entry; :meth:`best` hands back the champion for warm-starting.
    """

    def __init__(self, path: Optional[str] = None, *, lock_timeout_s: float = 10.0):
        self.path = path
        self.lock_timeout_s = lock_timeout_s
        self.boards: Dict[str, dict] = {}
        if path is not None and os.path.exists(path):
            self.load()

    # -- persistence -----------------------------------------------------------

    def _read_disk(self) -> Optional[Dict[str, dict]]:
        """The board map currently on disk, or ``None`` when there is none
        worth keeping (missing, unreadable, corrupt — the latter quarantined
        with a warning; never raises)."""
        try:
            data = _read_record(self.path)
        except FileNotFoundError:
            return None
        except OSError as err:
            # can't even read it — nothing to preserve, start fresh
            warnings.warn(
                f"leaderboard {self.path!r} is unreadable ({err}); starting a fresh board",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        except CorruptRecordError as err:
            self._quarantine(str(err))
            return None
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            got = data.get("version") if isinstance(data, dict) else None
            self._quarantine(f"unsupported version {got!r}")
            return None
        boards = data.get("boards", {})
        return boards if isinstance(boards, dict) else None

    def load(self) -> None:
        self.boards = self._read_disk() or {}

    def _quarantine(self, why: str) -> None:
        """Move a corrupt/foreign leaderboard file aside (named by content
        digest, so repeated loads of the same corruption collapse to one
        quarantine file) and warn; never raise."""
        dest = quarantine_file(self.path)
        where = f"moved to {dest!r}" if dest else "could not be moved aside"
        warnings.warn(
            f"leaderboard {self.path!r} is corrupt ({why}); {where}; starting a fresh board",
            RuntimeWarning,
            stacklevel=4,
        )

    def save(self) -> None:
        """Publish the board: take the advisory lock, **merge** whatever is
        on disk by now (another tuner may have saved since we loaded), and
        write one checksummed atomic record.  Lock contention degrades to
        in-memory operation instead of blocking — the measurements stay
        recorded on this object and the next successful save merges them."""
        if self.path is None:
            return
        lock = FileLock(f"{self.path}.lock", timeout_s=self.lock_timeout_s)
        try:
            lock.acquire()
        except LockTimeout as err:
            record_fallback(
                os.path.basename(self.path),
                "persist->memory",
                "lock-contention",
                detail=str(err),
            )
            warnings.warn(
                f"leaderboard {self.path!r}: {err}; keeping this save in memory only",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        try:
            disk = self._read_disk()
            if disk:
                self.merge(disk)
            _write_record(self.path, self.to_dict())
        finally:
            lock.release()

    def merge(self, other: Dict[str, dict]) -> None:
        """Fold another board map (the :meth:`to_dict` ``"boards"`` shape)
        into this one: per-config entries merge under the same rules as
        :meth:`record` — minimum ok time, poison outcomes win, an ok beats a
        plain error — and champions are recomputed.  This is what makes
        concurrent saves against one path lossless."""
        for key, oboard in other.items():
            if not isinstance(oboard, dict):
                continue
            board = self._board(key)
            for ck, entry in (oboard.get("entries") or {}).items():
                board["entries"][ck] = _merge_entry(board["entries"].get(ck), entry)
            _recompute_best(board)

    def to_dict(self) -> dict:
        return {"version": _VERSION, "boards": self.boards}

    # -- recording -------------------------------------------------------------

    def _board(self, key: str) -> dict:
        return self.boards.setdefault(key, {"entries": {}, "best": None})

    def record(self, key: str, measurement: Measurement) -> None:
        """Fold one measurement into the board: per-config minimum time,
        champion update.  Failed measurements are kept (with their error) so
        a re-tune can see which corners of the space are infeasible.  A
        crash/timeout overrides even a previous ``ok`` for the same config —
        a config that just killed a worker must be poison-listed regardless
        of its history — and evicts it from the championship if needed."""
        board = self._board(key)
        ck = config_key(measurement.config)
        board["entries"][ck] = _merge_entry(
            board["entries"].get(ck), measurement.to_dict()
        )
        _recompute_best(board)

    def record_many(self, key: str, measurements: List[Measurement]) -> None:
        for m in measurements:
            self.record(key, m)

    # -- queries ---------------------------------------------------------------

    def best(self, key: str) -> Optional[dict]:
        """The champion entry (``Measurement.to_dict()`` shape) or ``None``."""
        board = self.boards.get(key)
        return dict(board["best"]) if board and board.get("best") else None

    def entries(self, key: str) -> List[dict]:
        board = self.boards.get(key)
        return [dict(e) for e in board["entries"].values()] if board else []

    def poisoned(self, key: str) -> Set[str]:
        """The :func:`config_key` strings whose latest outcome was a crash or
        timeout — configs a warm-started re-tune must skip."""
        board = self.boards.get(key)
        if not board:
            return set()
        return {
            ck
            for ck, e in board["entries"].items()
            if e.get("status") in POISONED_STATUSES
        }

    def is_poisoned(self, key: str, config: Config) -> bool:
        return config_key(config) in self.poisoned(key)

    def stats(self, key: str) -> dict:
        entries = self.entries(key)
        ok = [e for e in entries if e.get("status") == "ok"]
        return {
            "configs": len(entries),
            "ok": len(ok),
            "errors": len(entries) - len(ok),
            "poisoned": len(self.poisoned(key)),
            "best": self.best(key),
        }

    def __len__(self) -> int:
        return len(self.boards)

    def __repr__(self) -> str:
        where = self.path or "<memory>"
        return f"<Leaderboard {where}: {len(self.boards)} boards>"
