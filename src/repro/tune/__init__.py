"""repro.tune — a knob-space autotuner over first-class schedules.

The subsystem that makes :mod:`repro.api` schedules *searchable*: a
:class:`Space` describes per-knob choices/ranges, samplers and successive
halving enumerate candidates, a :class:`ScheduleRunner` applies each one
through the shared replay cache and times it on the compiled NumPy engine
(optionally in isolated worker processes), and a persisted
:class:`Leaderboard` keyed on ``(proc digest, schedule fingerprint,
machine)`` warm-starts the next tune — across process restarts.

    from repro.tune import autotune
    from repro.blas import LEVEL1_KERNELS, level1_schedule, level1_space

    result = autotune(LEVEL1_KERNELS["saxpy"], level1_schedule(),
                      level1_space(), size_env={"n": 65536})
    result.best_config, result.speedup_vs_default()

See ``docs/autotuning.md`` for the full guide.
"""

from .results import POISONED_STATUSES, Leaderboard, board_key, config_key, machine_id
from .runner import Measurement, ScheduleRunner, evaluate_parallel, evaluate_spec, split_prefix
from .space import (
    THREADS_KNOB,
    GridSampler,
    Param,
    RandomSampler,
    Space,
    TuneError,
    successive_halving,
    threads_param,
)
from .tuner import Tuner, TuneResult, autotune

__all__ = [
    "TuneError",
    "Param",
    "Space",
    "GridSampler",
    "RandomSampler",
    "successive_halving",
    "threads_param",
    "THREADS_KNOB",
    "Measurement",
    "ScheduleRunner",
    "split_prefix",
    "evaluate_spec",
    "evaluate_parallel",
    "Leaderboard",
    "board_key",
    "machine_id",
    "config_key",
    "POISONED_STATUSES",
    "Tuner",
    "TuneResult",
    "autotune",
]
