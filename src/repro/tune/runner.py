"""Candidate evaluation: apply the schedule, compile, time.

The runner turns one knob environment into a wall-clock measurement:

1. **apply** — the :class:`~repro.api.schedule.Schedule` is applied to the
   procedure through a shared :class:`~repro.api.cache.ReplayCache`.  For
   ``seq``-shaped schedules the runner splits off the longest prefix whose
   steps reference none of the swept knobs and applies it as its own cached
   sub-schedule, so every candidate in a sweep after the first hits the cache
   for the shared prefix instead of re-running it (re-evaluations — e.g. the
   later rounds of successive halving — hit for the full schedule).
2. **compile** — the scheduled procedure is lowered once by the compiled
   NumPy engine (:mod:`repro.interp.compile`); compile statistics ride along
   on the measurement.
3. **time** — best-of-``repeats`` wall clock of ``run_proc`` on random
   arguments of the requested sizes, with fresh argument copies per repeat
   (kernels mutate their buffers in place) and the argument setup excluded
   from the timed window — the same discipline as
   ``benchmarks/bench_exec_throughput.py``.

Scheduling failures (``SchedulingError``/``InvalidCursorError``) mark the
measurement ``status="error"`` so a search can prune the candidate, but a
:class:`~repro.api.knobs.KnobError` always propagates: a mis-configured sweep
must surface, not score as a slow candidate.

Hardening: a per-candidate wall-clock timeout (``timeout_s``) bounds how long
one pathological config can stall a sweep — the candidate scores
``status="timeout"`` and the search moves on.  The timeout uses
``SIGALRM``/``setitimer`` and therefore only engages on the main thread of a
Unix process; elsewhere it degrades to no limit (worker processes run
candidates on their main thread, so ``evaluate_parallel`` sweeps are always
covered).

Process-level isolation (``evaluate_spec`` / ``evaluate_parallel``) runs
candidates in worker processes via :mod:`concurrent.futures`: the candidate
is described by an importable *spec* (dotted references to the procedure and
schedule factories plus JSON-able arguments), so a crashing or pathological
candidate cannot take the tuner down and independent candidates time on
separate cores.  A candidate that kills its worker outright scores
``status="crash"`` — and :class:`~repro.tune.results.Leaderboard` poison-lists
crash/timeout configs so a warm-started re-tune never re-runs them.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..api.cache import ReplayCache
from ..api.knobs import KnobError
from ..api.schedule import Schedule, Seq
from ..core.procedure import Procedure
from ..errors import InvalidCursorError, SchedulingError
from ..guard import faults
from ..interp import compile_proc, make_random_args, resolve_backend, run_proc
from .space import THREADS_KNOB, Config, TuneError

__all__ = [
    "Measurement",
    "ScheduleRunner",
    "split_prefix",
    "evaluate_spec",
    "evaluate_parallel",
]


class Measurement:
    """The outcome of evaluating one candidate config.

    ``status`` is ``"ok"`` (timed), ``"error"`` (the schedule or engine
    refused this config — recoverable, the search prunes it), ``"timeout"``
    (the per-candidate wall-clock limit expired), or ``"crash"`` (the
    candidate killed its worker process).  ``score`` is the sort key: the
    best wall-clock seconds, or ``inf`` for failed candidates.  Crash and
    timeout outcomes are *poison-listed* by the leaderboard so warm-started
    re-tunes skip them.
    """

    __slots__ = ("config", "time_s", "repeats", "status", "error", "compile_stats")

    def __init__(
        self,
        config: Config,
        time_s: Optional[float] = None,
        repeats: int = 0,
        status: str = "ok",
        error: Optional[str] = None,
        compile_stats: Optional[dict] = None,
    ):
        self.config = dict(config)
        self.time_s = time_s
        self.repeats = repeats
        self.status = status
        self.error = error
        self.compile_stats = compile_stats

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def score(self) -> float:
        return self.time_s if self.ok and self.time_s is not None else float("inf")

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "time_s": self.time_s,
            "repeats": self.repeats,
            "status": self.status,
            "error": self.error,
            "compile_stats": self.compile_stats,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Measurement":
        return cls(
            d["config"],
            time_s=d.get("time_s"),
            repeats=d.get("repeats", 0),
            status=d.get("status", "ok"),
            error=d.get("error"),
            compile_stats=d.get("compile_stats"),
        )

    def __repr__(self) -> str:
        if self.ok:
            return f"<Measurement {self.config} {self.time_s * 1e3:.3f} ms (best of {self.repeats})>"
        return f"<Measurement {self.config} {self.status}: {self.error}>"


def split_prefix(schedule: Schedule, swept: Sequence[str]):
    """Split a ``seq``-shaped schedule into ``(prefix, suffix)`` where the
    prefix is the longest leading run of steps referencing none of the
    ``swept`` knob names.  Every candidate in a sweep shares the prefix's
    output, so applying it as its own cached schedule turns N prefix runs
    into one.  Non-``Seq`` schedules (or ones whose first step already uses a
    swept knob) return ``(None, schedule)``.
    """
    swept = set(swept)
    if not isinstance(schedule, Seq) or not swept:
        return None, schedule
    cut = 0
    for step in schedule.steps:
        if {k.name for k in step.knobs()} & swept:
            break
        cut += 1
    if cut == 0 or cut == len(schedule.steps):
        return None, schedule
    return Seq(schedule.steps[:cut]), Seq(schedule.steps[cut:])


class _CandidateTimeout(BaseException):
    """Raised by the SIGALRM handler when a candidate's wall-clock budget
    expires.  Deliberately a ``BaseException``: a broad ``except Exception``
    around the timed region must not convert a timeout into ``"error"``."""


@contextmanager
def _deadline(timeout_s: Optional[float]):
    """Arm a wall-clock alarm around a candidate evaluation.

    Only effective on the main thread of a Unix process (``SIGALRM`` cannot
    be delivered elsewhere); otherwise the block runs unbounded.  Yields
    whether the alarm is actually armed.
    """
    usable = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield False
        return

    def _expire(signum, frame):
        raise _CandidateTimeout()

    prev = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev)


def _restrict(config: Optional[Config], schedule: Schedule) -> Config:
    """The subset of ``config`` naming knobs this (sub-)schedule declares —
    ``Schedule.apply`` rejects unknown names, which is right for user calls
    but wrong for the runner's own prefix/suffix split."""
    declared = {k.name for k in schedule.knobs()}
    return {k: v for k, v in (config or {}).items() if k in declared}


class ScheduleRunner:
    """Evaluates knob configs for one ``(procedure, schedule)`` pair.

    ``size_env`` supplies the problem sizes the timing runs at; ``repeats``
    is the default best-of count; ``swept`` (usually the space's param names)
    enables the shared-prefix split described in the module docstring;
    ``timeout_s`` bounds one candidate's compile+time wall clock (main
    thread only — see :func:`_deadline`).
    """

    def __init__(
        self,
        proc: Procedure,
        schedule: Schedule,
        size_env: Dict[str, int],
        *,
        repeats: int = 3,
        seed: int = 0,
        cache: Optional[ReplayCache] = None,
        swept: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ):
        if not isinstance(proc, Procedure):
            raise TuneError(f"ScheduleRunner: expected a Procedure, got {type(proc).__name__}")
        if not isinstance(schedule, Schedule):
            raise TuneError(f"ScheduleRunner: expected a Schedule, got {type(schedule).__name__}")
        if backend is not None:
            # fail the sweep setup, not its hundredth candidate
            resolve_backend(backend, source="ScheduleRunner(backend=...)")
        if timeout_s is not None and timeout_s <= 0:
            raise TuneError(f"ScheduleRunner: timeout_s must be positive, got {timeout_s!r}")
        self.timeout_s = timeout_s
        self.proc = proc
        self.schedule = schedule
        self.size_env = dict(size_env)
        self.repeats = repeats
        self.seed = seed
        self.cache = cache if cache is not None else ReplayCache()
        self.prefix, self.suffix = split_prefix(schedule, swept or [])
        # which execution engine the timing runs use (None: the process
        # default); "c" times real vector code, with its warm-up run absorbing
        # the cc invocation (or a cached-artifact load)
        self.backend = backend

    # -- scheduling ------------------------------------------------------------

    def scheduled(self, config: Optional[Config] = None) -> Procedure:
        """Apply the schedule under ``config`` through the replay cache,
        sharing the swept-knob-free prefix across candidates."""
        declared = {k.name for k in self.schedule.knobs()}
        unknown = sorted(set(config or {}) - declared)
        if unknown:
            # _restrict below silently splits the config between the prefix
            # and suffix sub-schedules, so the unknown-name check the full
            # schedule would have performed must happen here
            raise KnobError(
                f"config names unknown knob(s) {unknown}; this schedule declares "
                f"{sorted(declared) if declared else 'no knobs'}"
            )
        if self.prefix is None:
            return self.schedule.apply(self.proc, _restrict(config, self.schedule), cache=self.cache)
        base = self.prefix.apply(self.proc, _restrict(config, self.prefix), cache=self.cache)
        return self.suffix.apply(base, _restrict(config, self.suffix), cache=self.cache)

    # -- timing ----------------------------------------------------------------

    def _time(self, scheduled: Procedure, repeats: int, threads: Optional[int] = None) -> float:
        base = make_random_args(scheduled, self.size_env, seed=self.seed)

        def fresh():
            return {
                k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in base.items()
            }

        # warm-up absorbs one-time compilation
        run_proc(scheduled, backend=self.backend, threads=threads, **fresh())
        best = float("inf")
        for _ in range(max(1, repeats)):
            args = fresh()
            t0 = time.perf_counter()
            run_proc(scheduled, backend=self.backend, threads=threads, **args)
            best = min(best, time.perf_counter() - t0)
        return best

    def evaluate(self, config: Optional[Config] = None, repeats: Optional[int] = None) -> Measurement:
        """Schedule, compile, and time one candidate.  Returns an ``"error"``
        measurement on scheduling failure; lets :class:`KnobError` escape.

        The reserved ``num_threads`` knob (:func:`~repro.tune.threads_param`)
        never reaches the schedule: it is stripped from the candidate config
        and forwarded to ``run_proc(threads=...)``, so spaces can sweep the
        execution thread count alongside schedule knobs.  It stays in the
        measurement's recorded config."""
        config = dict(config or {})
        threads = config.get(THREADS_KNOB)
        sched_config = {k: v for k, v in config.items() if k != THREADS_KNOB}
        repeats = self.repeats if repeats is None else repeats
        try:
            scheduled = self.scheduled(sched_config)
        except KnobError:
            raise  # a sweep configuration bug, never a prunable candidate
        except (SchedulingError, InvalidCursorError) as err:
            return Measurement(config, status="error", error=str(err))
        try:
            with _deadline(self.timeout_s):
                stats = compile_proc(scheduled, threads=threads).stats()
                best = self._time(scheduled, repeats, threads=threads)
        except _CandidateTimeout:
            return Measurement(
                config,
                status="timeout",
                error=f"candidate exceeded the {self.timeout_s:g}s wall-clock budget",
            )
        except Exception as err:  # a crashing candidate must not end the tune
            return Measurement(
                config, status="error", error=f"{type(err).__name__}: {err}"
            )
        return Measurement(config, time_s=best, repeats=repeats, compile_stats=stats)

    def evaluate_many(
        self, configs: Sequence[Config], repeats: Optional[int] = None
    ) -> List[Measurement]:
        return [self.evaluate(c, repeats=repeats) for c in configs]


# ---------------------------------------------------------------------------
# Process-level isolation
# ---------------------------------------------------------------------------


def _resolve_ref(path: str, args: Sequence = (), kwargs: Optional[dict] = None):
    """Import ``"pkg.mod:attr"`` and build the referenced object: mappings are
    indexed by ``args[0]``, callables are called with ``args``/``kwargs``,
    anything else is returned as-is."""
    import importlib

    if ":" not in path:
        raise TuneError(f"spec reference {path!r} must look like 'pkg.mod:attr'")
    modname, attr = path.split(":", 1)
    obj = getattr(importlib.import_module(modname), attr)
    if isinstance(obj, dict):
        if len(args) != 1:
            raise TuneError(f"spec reference {path!r} is a mapping; pass exactly one key arg")
        return obj[args[0]]
    if callable(obj) and not isinstance(obj, Procedure):
        return obj(*args, **(kwargs or {}))
    return obj


def evaluate_spec(spec: dict) -> dict:
    """Evaluate one candidate described entirely by JSON-able data (run in a
    worker process by :func:`evaluate_parallel`, but callable inline too).

    Spec keys: ``proc`` / ``schedule`` (dotted ``"pkg.mod:attr"`` references,
    with optional ``proc_args`` / ``schedule_args`` / ``schedule_kwargs``),
    ``config``, ``size_env``, ``repeats``, ``seed``, ``backend``,
    ``timeout_s``.  Returns ``Measurement.to_dict()`` with a ``"knob-error"``
    status reserved for :class:`KnobError` so the parent can re-raise it
    across the process boundary.
    """
    if faults.should_fire("worker-crash"):
        # stand-in for a candidate whose generated code kills the worker
        # (segfault, OOM-kill): die without Python cleanup, exactly as the
        # real failure would
        os._exit(77)
    try:
        proc = _resolve_ref(spec["proc"], spec.get("proc_args", ()))
        schedule = _resolve_ref(
            spec["schedule"], spec.get("schedule_args", ()), spec.get("schedule_kwargs")
        )
        runner = ScheduleRunner(
            proc,
            schedule,
            spec.get("size_env", {}),
            repeats=spec.get("repeats", 3),
            seed=spec.get("seed", 0),
            swept=spec.get("swept"),
            backend=spec.get("backend"),
            timeout_s=spec.get("timeout_s"),
        )
        return runner.evaluate(spec.get("config"), repeats=spec.get("repeats")).to_dict()
    except KnobError as err:
        return {"config": spec.get("config", {}), "status": "knob-error", "error": str(err)}


def evaluate_parallel(
    base_spec: dict,
    configs: Sequence[Config],
    *,
    max_workers: Optional[int] = None,
) -> List[Measurement]:
    """Evaluate ``configs`` in parallel worker processes.

    Each candidate gets ``base_spec`` with its own ``config`` and runs through
    :func:`evaluate_spec` in a :class:`concurrent.futures.ProcessPoolExecutor`
    — full process isolation, one candidate per core.  Results come back in
    input order.  A worker reporting ``"knob-error"`` re-raises
    :class:`KnobError` here, preserving the don't-swallow contract.

    A candidate that kills its worker outright (segfault, OOM-kill,
    ``os._exit``) breaks the pool for every in-flight future; the survivors
    are retried one at a time in fresh single-worker pools, and any candidate
    that breaks its own private pool is scored ``"crash"`` — a crashing
    candidate costs its own measurement, never the sweep, and the leaderboard
    poison-lists it so a warm-started re-tune skips it.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    specs = [dict(base_spec, config=dict(c)) for c in configs]
    raw: List[Optional[dict]] = [None] * len(specs)
    unfinished: List[int] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [(i, pool.submit(evaluate_spec, s)) for i, s in enumerate(specs)]
        for i, fut in futures:
            try:
                raw[i] = fut.result()
            except BrokenProcessPool:
                unfinished.append(i)  # the crasher or its collateral; retry below
    for i in unfinished:
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                raw[i] = pool.submit(evaluate_spec, specs[i]).result()
        except BrokenProcessPool:
            raw[i] = {
                "config": dict(configs[i]),
                "status": "crash",
                "error": "candidate crashed its worker process",
            }
    out: List[Measurement] = []
    for r in raw:
        if r.get("status") == "knob-error":
            raise KnobError(r.get("error") or "knob error in worker process")
        out.append(Measurement.from_dict(r))
    return out
