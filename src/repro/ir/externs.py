"""Extern functions callable from object code expressions.

Externs are pure scalar functions (``relu``, ``clamp``, ``select``, ``sqrt``,
``fmax``, ``fmin``, ``acc_scale``, …) with a Python reference implementation
(used by the interpreter) and a C expression template (used by the backend).

Users and machine libraries can register their own externs with
:func:`register_extern`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

__all__ = ["ExternDef", "register_extern", "extern_by_name", "has_extern"]


@dataclass
class ExternDef:
    name: str
    arity: int
    impl: Callable
    c_template: str
    cost: float = 1.0
    # optional whole-array (NumPy) template used by the compiled execution
    # engine to vectorise loops containing this extern; when None, such loops
    # fall back to the scalar lowering (which calls ``impl`` directly)
    np_template: Optional[str] = None

    def np_apply(self, rendered_args: Sequence[str]) -> Optional[str]:
        """Render the whole-array NumPy form over already-rendered argument
        sources, or ``None`` when the extern has no vector form.  Templates
        must be broadcasting-safe: the compiled engine applies them to 1-D
        slices and, for inlined ``@instr`` bodies, to 2-D (chunk x lane)
        regions alike."""
        if self.np_template is None:
            return None
        return self.np_template.format(*rendered_args)


_EXTERNS: Dict[str, ExternDef] = {}


def register_extern(
    name: str,
    arity: int,
    impl: Callable,
    c_template: str,
    cost: float = 1.0,
    np_template: Optional[str] = None,
) -> ExternDef:
    """Register an extern function usable inside object-code expressions.

    ``np_template`` optionally supplies an elementwise whole-array form (e.g.
    ``"np.abs({0})"``) that lets the compiled engine vectorise loops using the
    extern; it must agree with ``impl`` elementwise."""
    d = ExternDef(name, arity, impl, c_template, cost, np_template)
    _EXTERNS[name] = d
    return d


def extern_by_name(name: str) -> ExternDef:
    if name not in _EXTERNS:
        raise KeyError(f"unknown extern function: {name!r}")
    return _EXTERNS[name]


def has_extern(name: str) -> bool:
    return name in _EXTERNS


def _select(cond_a, cond_b, if_ge, if_lt):
    """``select(a, b, x, y)`` — x if a >= b else y (Exo's select builtin)."""
    return if_ge if cond_a >= cond_b else if_lt


def _clamp(x, lo=-128.0, hi=127.0):
    return max(lo, min(hi, x))


register_extern("sin", 1, math.sin, "sin({0})", cost=8.0, np_template="np.sin({0})")
register_extern("cos", 1, math.cos, "cos({0})", cost=8.0, np_template="np.cos({0})")
register_extern("sqrt", 1, math.sqrt, "sqrt({0})", cost=4.0, np_template="np.sqrt({0})")
register_extern("fabs", 1, abs, "fabs({0})", cost=1.0, np_template="np.abs({0})")
register_extern("fmax", 2, max, "fmax({0}, {1})", cost=1.0, np_template="np.maximum({0}, {1})")
register_extern("fmin", 2, min, "fmin({0}, {1})", cost=1.0, np_template="np.minimum({0}, {1})")
register_extern(
    "relu", 1, lambda x: x if x > 0 else 0.0, "(({0}) > 0 ? ({0}) : 0)", cost=1.0,
    np_template="np.where(({0}) > 0, ({0}), 0.0)",  # NaN -> 0.0, like the impl
)
register_extern(
    "select", 4, _select, "(({0}) >= ({1}) ? ({2}) : ({3}))", cost=1.0,
    np_template="np.where(({0}) >= ({1}), ({2}), ({3}))",
)
register_extern(
    "clamp", 1, _clamp, "fminf(fmaxf({0}, -128.0f), 127.0f)", cost=2.0,
    np_template="np.clip({0}, -128.0, 127.0)",
)
register_extern(
    "acc_scale", 2, lambda x, scale: x * scale, "(({0}) * ({1}))", cost=1.0,
    np_template="(({0}) * ({1}))",
)
register_extern("expf", 1, math.exp, "expf({0})", cost=8.0, np_template="np.exp({0})")
