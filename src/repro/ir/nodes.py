"""AST nodes of the object language (the "LoopIR").

The IR is a small imperative loop language:

Expressions
    ``Const``, ``Read``, ``BinOp``, ``USub``, ``WindowExpr``, ``StrideExpr``,
    ``Extern``, ``ReadConfig``

Statements
    ``Assign``, ``Reduce``, ``Alloc``, ``For``, ``If``, ``Pass``, ``Call``,
    ``WindowStmt``, ``WriteConfig``

Procedures
    ``ProcDef`` — name, typed arguments, assertion predicates, body, and an
    optional instruction template (for ``@instr`` procedures that map to a
    single hardware instruction during code generation).

All nodes use identity equality; structural equality is provided by
:func:`repro.ir.build.structurally_equal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import List, Optional, Tuple, Union

from .memories import DRAM, Memory
from .syms import Sym
from .types import ScalarType, TensorType, bool_t, index_t, int_t

__all__ = [
    "Node",
    "edit_epoch",
    "set_edit_epoch",
    "Expr",
    "Stmt",
    "Const",
    "Read",
    "BinOp",
    "USub",
    "WindowExpr",
    "Interval",
    "Point",
    "StrideExpr",
    "Extern",
    "ReadConfig",
    "Assign",
    "Reduce",
    "Alloc",
    "For",
    "If",
    "Pass",
    "Call",
    "WindowStmt",
    "WriteConfig",
    "FnArg",
    "InstrInfo",
    "ProcDef",
    "Type",
    "LIST_FIELDS",
    "child_fields",
]

Type = Union[ScalarType, TensorType]


# Per-procedure edit epochs.  Each ``ProcDef`` root carries an ``edit_epoch``
# counter (stored as plain instance state, not a dataclass field, so it never
# participates in structural hashing or equality): the number of atomic edits
# in its lineage since the original ``@proc`` definition.  The edit engine
# (:class:`repro.ir.edit.EditSession`) stamps it on every derived root.
#
# Unlike the global mutation epoch this scheme replaced, bumping one
# procedure's epoch invalidates nothing anywhere else — memoised structural
# hashes (see :func:`repro.ir.build.struct_hash`) and the compiled-code cache
# (:mod:`repro.interp.compile`) are content-addressed and stay valid across
# edits, which is what makes them safe to share between threads.  The epoch is
# an observable version counter (service observability, cache diagnostics,
# tests), not an invalidation broadcast.  Correctness of the memos rests on
# the tree-immutability convention instead: in-place mutation is only ever
# performed on freshly copied nodes, which carry no memo (``_shallow_copy``
# rebuilds through the constructor), so memos never go stale.


def edit_epoch(root) -> int:
    """The number of atomic edits in ``root``'s lineage (0 for a freshly
    parsed procedure)."""
    return getattr(root, "_edit_epoch", 0)


def set_edit_epoch(root, value: int) -> None:
    """Stamp a derived root's lineage epoch (edit-engine internal)."""
    root._edit_epoch = int(value)


class Node:
    """Base class for all IR nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


@dataclass(eq=False)
class Const(Expr):
    """A literal constant (int, float, or bool)."""

    val: object
    typ: Type = int_t


@dataclass(eq=False)
class Read(Expr):
    """Read of a variable; ``idx`` is empty for scalars and iterators."""

    name: Sym
    idx: List["Expr"] = field(default_factory=list)
    typ: Type = index_t


@dataclass(eq=False)
class BinOp(Expr):
    """Binary operation.  ``op`` is one of ``+ - * / %`` and the comparison
    and boolean operators ``< <= > >= == != and or`` (the latter only appear
    in assertions and ``if`` conditions)."""

    op: str
    lhs: "Expr"
    rhs: "Expr"
    typ: Type = index_t


@dataclass(eq=False)
class USub(Expr):
    """Unary negation."""

    arg: "Expr"
    typ: Type = index_t


@dataclass(eq=False)
class Interval(Node):
    """A half-open window interval ``lo:hi`` used inside :class:`WindowExpr`."""

    lo: "Expr"
    hi: "Expr"


@dataclass(eq=False)
class Point(Node):
    """A single-point window access used inside :class:`WindowExpr`."""

    pt: "Expr"


@dataclass(eq=False)
class WindowExpr(Expr):
    """A window (sub-view) of a tensor, e.g. ``A[i, 0:16]``."""

    name: Sym
    idx: List[Union[Interval, Point]] = field(default_factory=list)
    typ: Type = index_t


@dataclass(eq=False)
class StrideExpr(Expr):
    """``stride(A, dim)`` — the runtime stride of a tensor argument."""

    name: Sym
    dim: int
    typ: Type = index_t


@dataclass(eq=False)
class Extern(Expr):
    """Call of a registered extern function inside an expression
    (e.g. ``relu(x)``, ``select(a, b, c, d)``)."""

    fname: str
    args: List["Expr"] = field(default_factory=list)
    typ: Type = index_t


@dataclass(eq=False)
class ReadConfig(Expr):
    """Read of a configuration-state field, e.g. ``cfg.stride``."""

    config: "Config"
    field_name: str
    typ: Type = index_t


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


@dataclass(eq=False)
class Assign(Stmt):
    """``x[idx] = rhs``"""

    name: Sym
    idx: List[Expr]
    rhs: Expr
    typ: Type = index_t


@dataclass(eq=False)
class Reduce(Stmt):
    """``x[idx] += rhs``"""

    name: Sym
    idx: List[Expr]
    rhs: Expr
    typ: Type = index_t


@dataclass(eq=False)
class Alloc(Stmt):
    """Buffer (or scalar) allocation: ``x : f32[n] @ MEM``."""

    name: Sym
    typ: Type = None
    mem: Memory = DRAM


@dataclass(eq=False)
class For(Stmt):
    """``for i in seq(lo, hi): body`` — a loop.

    ``pragma`` may be set to ``"par"`` by ``parallelize_loop`` (checked: the
    iterations commute).  The tree-walking reference interpreter still runs
    ``par`` loops sequentially (its results define the oracle), but the
    compiled NumPy engine dispatches them over a thread pool
    (:mod:`repro.interp.parallel`) and the C backend emits OpenMP pragmas;
    the performance model also reads the annotation.
    """

    iter: Sym = None
    lo: Expr = None
    hi: Expr = None
    body: List[Stmt] = field(default_factory=list)
    pragma: str = "seq"


@dataclass(eq=False)
class If(Stmt):
    """``if cond: body else: orelse``"""

    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)
    orelse: List[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class Pass(Stmt):
    """``pass`` — a no-op statement."""


@dataclass(eq=False)
class Call(Stmt):
    """Call of another procedure (possibly an ``@instr`` procedure)."""

    proc: "ProcDef" = None
    args: List[Expr] = field(default_factory=list)


@dataclass(eq=False)
class WindowStmt(Stmt):
    """``w = A[i, 0:16]`` — bind a window expression to a name."""

    name: Sym = None
    rhs: WindowExpr = None


@dataclass(eq=False)
class WriteConfig(Stmt):
    """``cfg.field = rhs`` — write a configuration-state field."""

    config: "Config" = None
    field_name: str = ""
    rhs: Expr = None


# ---------------------------------------------------------------------------
# Procedures
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class FnArg(Node):
    """A procedure argument."""

    name: Sym
    typ: Type
    mem: Optional[Memory] = None


@dataclass(eq=False)
class InstrInfo(Node):
    """Code-generation template attached to ``@instr`` procedures.

    ``intrinsic`` marks templates that are *real*, compilable C — the native
    backend emits them verbatim and links the result.  Templates without the
    flag (documentation pseudo-C, e.g. the Gemmini ISA on an x86 host, or a
    user-modelled vector ISA with no hardware mapping) are never emitted by
    the native backend; it inlines the instruction's body as scalar C
    instead, which is always semantically correct.
    """

    c_instr: str = ""
    c_global: str = ""
    cost: float = 1.0
    intrinsic: bool = False


@dataclass(eq=False)
class ProcDef(Node):
    """A procedure definition."""

    name: str
    args: List[FnArg] = field(default_factory=list)
    preds: List[Expr] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    instr: Optional[InstrInfo] = None


# ---------------------------------------------------------------------------
# Child-field metadata used by generic traversal / cursors
# ---------------------------------------------------------------------------

# Fields that hold *lists of statements* (the only places gaps and blocks live)
LIST_FIELDS = {
    ProcDef: ("body",),
    For: ("body",),
    If: ("body", "orelse"),
}

# For each node class: ordered (field, is_list) pairs of children that cursors
# may navigate into.
_CHILD_FIELDS = {
    ProcDef: (("body", True),),
    For: (("lo", False), ("hi", False), ("body", True)),
    If: (("cond", False), ("body", True), ("orelse", True)),
    Assign: (("idx", True), ("rhs", False)),
    Reduce: (("idx", True), ("rhs", False)),
    Alloc: (),
    Pass: (),
    Call: (("args", True),),
    WindowStmt: (("rhs", False),),
    WriteConfig: (("rhs", False),),
    Const: (),
    Read: (("idx", True),),
    BinOp: (("lhs", False), ("rhs", False)),
    USub: (("arg", False),),
    WindowExpr: (("idx", True),),
    Interval: (("lo", False), ("hi", False)),
    Point: (("pt", False),),
    StrideExpr: (),
    Extern: (("args", True),),
    ReadConfig: (),
}


def child_fields(node: Node) -> Tuple[Tuple[str, bool], ...]:
    """Return the navigable children of ``node`` as ``(field, is_list)`` pairs."""
    return _CHILD_FIELDS.get(type(node), ())


# Imported late to avoid a cycle; Config is only referenced by annotations.
from .config import Config  # noqa: E402  (circular-import guard)
