"""Memory spaces of the object language.

A memory space is attached to every buffer/argument with the ``@`` syntax
(e.g. ``A: f32[M, N] @ DRAM``).  Memory spaces participate in

* backend checks (``set_memory`` is validated at code-generation time),
* the performance model (register-resident buffers are free to access,
  scratchpad accesses are cheap, DRAM accesses pay bandwidth), and
* instruction selection (``replace`` only unifies buffers whose memory space
  matches the instruction's expectations).

New hardware targets define their own memory spaces externally to the
compiler, exactly as in Exo/Exo 2 — see :mod:`repro.machines`.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "Memory",
    "MemoryKind",
    "DRAM",
    "DRAM_STACK",
    "DRAM_STATIC",
    "memory_by_name",
    "register_memory",
]


class MemoryKind:
    """Coarse classification used by the performance model."""

    DRAM = "dram"
    STACK = "stack"
    STATIC = "static"
    VECTOR_REG = "vector_register"
    SCRATCHPAD = "scratchpad"
    ACCUMULATOR = "accumulator"


class Memory:
    """A memory space.

    Parameters
    ----------
    name:
        Identifier used in the surface syntax after ``@``.
    kind:
        One of :class:`MemoryKind` — drives cost modelling.
    lane_width_bits:
        For vector-register memories, the register width in bits (e.g. 256 for
        AVX2, 512 for AVX-512).  ``None`` otherwise.
    capacity_bytes:
        Optional capacity bound (used by Gemmini's scratchpad/accumulator and
        by ``autolift_alloc``-style library code).
    """

    def __init__(
        self,
        name: str,
        kind: str = MemoryKind.DRAM,
        *,
        lane_width_bits: Optional[int] = None,
        capacity_bytes: Optional[int] = None,
    ):
        self.name = name
        self.kind = kind
        self.lane_width_bits = lane_width_bits
        self.capacity_bytes = capacity_bytes
        register_memory(self)

    def is_vector_register(self) -> bool:
        return self.kind == MemoryKind.VECTOR_REG

    def is_dram_like(self) -> bool:
        return self.kind in (MemoryKind.DRAM, MemoryKind.STACK, MemoryKind.STATIC)

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


_MEMORY_REGISTRY: Dict[str, Memory] = {}


def register_memory(mem: Memory) -> Memory:
    """Register a memory space so the front-end can resolve it by name."""
    _MEMORY_REGISTRY[mem.name] = mem
    return mem


def memory_by_name(name: str) -> Memory:
    if name not in _MEMORY_REGISTRY:
        raise KeyError(f"unknown memory space: {name!r}")
    return _MEMORY_REGISTRY[name]


# The three DRAM-class memories built into the object language.
DRAM = Memory("DRAM", MemoryKind.DRAM)
DRAM_STACK = Memory("DRAM_STACK", MemoryKind.STACK)
DRAM_STATIC = Memory("DRAM_STATIC", MemoryKind.STATIC)
