"""Types of the object language.

The type system mirrors Exo's object language:

* numeric scalar types — ``f32``, ``f64``, ``i8``, ``i16``, ``i32``
* control types — ``index`` (loop iterators / index expressions),
  ``size`` (positive runtime sizes), ``bool``, ``int`` (integer literals used
  inside index arithmetic)
* tensor types — ``TensorType(base, shape, is_window)`` where ``shape`` is a
  list of index expressions; windows are views over other tensors.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "ScalarType",
    "TensorType",
    "f16",
    "f32",
    "f64",
    "i8",
    "i16",
    "i32",
    "index_t",
    "size_t",
    "bool_t",
    "int_t",
    "scalar_type_from_name",
    "NUMERIC_TYPE_NAMES",
]


class ScalarType:
    """A scalar object-language type (numeric or control)."""

    __slots__ = ("name", "is_numeric", "is_float", "bits")

    def __init__(self, name: str, *, is_numeric: bool, is_float: bool, bits: int):
        self.name = name
        self.is_numeric = is_numeric
        self.is_float = is_float
        self.bits = bits

    # -- classification helpers -------------------------------------------------
    def is_indexable(self) -> bool:
        return self.name in ("index", "size", "int")

    def is_bool(self) -> bool:
        return self.name == "bool"

    def is_tensor_or_window(self) -> bool:
        return False

    def is_real_scalar(self) -> bool:
        return self.is_numeric

    def basetype(self) -> "ScalarType":
        return self

    def ctype(self) -> str:
        """The C type used by the backend for this scalar type."""
        mapping = {
            "f16": "_Float16",
            "f32": "float",
            "f64": "double",
            "i8": "int8_t",
            "i16": "int16_t",
            "i32": "int32_t",
            "index": "int_fast32_t",
            "size": "int_fast32_t",
            "int": "int_fast32_t",
            "bool": "bool",
        }
        return mapping[self.name]

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, ScalarType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("ScalarType", self.name))


f16 = ScalarType("f16", is_numeric=True, is_float=True, bits=16)
f32 = ScalarType("f32", is_numeric=True, is_float=True, bits=32)
f64 = ScalarType("f64", is_numeric=True, is_float=True, bits=64)
i8 = ScalarType("i8", is_numeric=True, is_float=False, bits=8)
i16 = ScalarType("i16", is_numeric=True, is_float=False, bits=16)
i32 = ScalarType("i32", is_numeric=True, is_float=False, bits=32)
index_t = ScalarType("index", is_numeric=False, is_float=False, bits=32)
size_t = ScalarType("size", is_numeric=False, is_float=False, bits=32)
bool_t = ScalarType("bool", is_numeric=False, is_float=False, bits=8)
int_t = ScalarType("int", is_numeric=False, is_float=False, bits=32)

NUMERIC_TYPE_NAMES = {"f16", "f32", "f64", "i8", "i16", "i32"}

_BY_NAME = {
    t.name: t
    for t in (f16, f32, f64, i8, i16, i32, index_t, size_t, bool_t, int_t)
}


def scalar_type_from_name(name: str) -> ScalarType:
    """Look up a scalar type by its object-language name (e.g. ``"f32"``)."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown scalar type: {name!r}")
    return _BY_NAME[name]


class TensorType:
    """A dense tensor (or window) of a scalar base type.

    ``shape`` is a list of index *expressions* (see :mod:`repro.ir.nodes`);
    a window type describes a view into somebody else's storage and is the
    type given to window arguments written ``[f32][M, N]`` in the surface
    syntax.
    """

    __slots__ = ("base", "shape", "is_window")

    def __init__(self, base: ScalarType, shape: List[object], is_window: bool = False):
        if not isinstance(base, ScalarType) or not base.is_numeric:
            raise TypeError("tensor base type must be a numeric scalar type")
        self.base = base
        self.shape = list(shape)
        self.is_window = bool(is_window)

    def basetype(self) -> ScalarType:
        return self.base

    def is_indexable(self) -> bool:
        return False

    def is_bool(self) -> bool:
        return False

    def is_real_scalar(self) -> bool:
        return False

    def is_tensor_or_window(self) -> bool:
        return True

    def ndim(self) -> int:
        return len(self.shape)

    def with_shape(self, shape: List[object]) -> "TensorType":
        return TensorType(self.base, shape, self.is_window)

    def as_window(self) -> "TensorType":
        return TensorType(self.base, self.shape, True)

    def __repr__(self) -> str:
        from .printing import expr_str

        dims = ", ".join(expr_str(e) for e in self.shape)
        if self.is_window:
            return f"[{self.base}][{dims}]"
        return f"{self.base}[{dims}]"
