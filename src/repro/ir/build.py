"""Generic IR utilities: traversal, functional update, substitution, renaming.

These helpers are the workhorses behind scheduling primitives.  The IR is
treated as an immutable tree: every "mutation" builds a new tree sharing
unchanged sub-trees with the old one, which is what makes cheap provenance /
forwarding possible.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from . import nodes as N
from .syms import Sym
from .types import ScalarType, TensorType

__all__ = [
    "Path",
    "get_node",
    "get_parent_and_step",
    "set_node",
    "replace_stmts",
    "map_exprs",
    "map_stmts",
    "walk",
    "walk_exprs",
    "walk_stmts",
    "subst_expr",
    "subst_stmts",
    "substitute_reads",
    "rename_sym_in_stmts",
    "copy_node",
    "copy_stmts",
    "alpha_rename_stmts",
    "struct_hash",
    "structurally_equal",
    "collect_syms_read",
    "collect_syms_written",
    "collect_allocs",
    "used_syms_expr",
    "contains_sym",
    "stmt_list_field_paths",
    "is_stmt",
    "is_expr",
]

# A path step is (field_name, index or None); a Path is a tuple of steps.
Step = Tuple[str, Optional[int]]
Path = Tuple[Step, ...]


def is_stmt(node) -> bool:
    return isinstance(node, N.Stmt)


def is_expr(node) -> bool:
    return isinstance(node, N.Expr)


# ---------------------------------------------------------------------------
# Path-based access and functional update
# ---------------------------------------------------------------------------


def get_node(root: N.Node, path: Path) -> N.Node:
    """Return the node addressed by ``path`` starting from ``root``."""
    node = root
    for attr, idx in path:
        child = getattr(node, attr)
        if idx is None:
            node = child
        else:
            node = child[idx]
    return node


def get_parent_and_step(root: N.Node, path: Path) -> Tuple[N.Node, Step]:
    """Return the parent node of the node at ``path`` and the final step."""
    if not path:
        raise ValueError("the root node has no parent")
    return get_node(root, path[:-1]), path[-1]


def _shallow_copy(node: N.Node) -> N.Node:
    """Shallow-copy a dataclass node (lists are copied one level deep)."""
    kwargs = {}
    for f in dataclasses.fields(node):
        v = getattr(node, f.name)
        kwargs[f.name] = list(v) if isinstance(v, list) else v
    return type(node)(**kwargs)


def set_node(root: N.Node, path: Path, new_node) -> N.Node:
    """Functionally replace the node at ``path`` with ``new_node``.

    Returns a new root; every node on the path is shallow-copied, everything
    else is shared with the input tree.
    """
    if not path:
        return new_node
    (attr, idx), rest = path[0], path[1:]
    copy = _shallow_copy(root)
    child = getattr(copy, attr)
    if idx is None:
        setattr(copy, attr, set_node(child, rest, new_node))
    else:
        child = list(child)
        child[idx] = set_node(child[idx], rest, new_node)
        setattr(copy, attr, child)
    return copy


def replace_stmts(
    root: N.Node,
    block_path: Path,
    attr: str,
    lo: int,
    n_old: int,
    new_stmts: Sequence[N.Stmt],
) -> N.Node:
    """Replace ``n_old`` statements starting at index ``lo`` of the statement
    list ``attr`` of the node at ``block_path`` with ``new_stmts``."""
    parent = get_node(root, block_path)
    stmts = list(getattr(parent, attr))
    stmts[lo : lo + n_old] = list(new_stmts)
    new_parent = _shallow_copy(parent)
    setattr(new_parent, attr, stmts)
    return set_node(root, block_path, new_parent)


# ---------------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------------


def walk(node: N.Node, path: Path = ()) -> Iterator[Tuple[N.Node, Path]]:
    """Yield every node in the subtree (pre-order) together with its path."""
    yield node, path
    for attr, is_list in N.child_fields(node):
        child = getattr(node, attr)
        if is_list:
            for i, c in enumerate(child):
                yield from walk(c, path + ((attr, i),))
        elif child is not None:
            yield from walk(child, path + ((attr, None),))


def walk_stmts(node: N.Node, path: Path = ()) -> Iterator[Tuple[N.Stmt, Path]]:
    for n, p in walk(node, path):
        if isinstance(n, N.Stmt):
            yield n, p


def walk_exprs(node: N.Node, path: Path = ()) -> Iterator[Tuple[N.Expr, Path]]:
    for n, p in walk(node, path):
        if isinstance(n, N.Expr):
            yield n, p


def stmt_list_field_paths(node: N.Node, path: Path = ()) -> Iterator[Tuple[Path, str, List[N.Stmt]]]:
    """Yield every statement-list in the subtree as ``(owner_path, attr, stmts)``."""
    for n, p in walk(node, path):
        for attr in N.LIST_FIELDS.get(type(n), ()):
            yield p, attr, getattr(n, attr)


# ---------------------------------------------------------------------------
# Mapping / substitution
# ---------------------------------------------------------------------------


def map_exprs(node, fn: Callable[[N.Expr], N.Expr]):
    """Rebuild ``node`` applying ``fn`` bottom-up to every expression child."""

    def rec(n):
        if n is None:
            return None
        if isinstance(n, list):
            return [rec(c) for c in n]
        if not isinstance(n, N.Node):
            return n
        copy = _shallow_copy(n)
        for attr, is_list in N.child_fields(n):
            setattr(copy, attr, rec(getattr(n, attr)))
        if isinstance(copy, N.Alloc) and isinstance(copy.typ, TensorType):
            copy.typ = TensorType(
                copy.typ.base, [rec(e) for e in copy.typ.shape], copy.typ.is_window
            )
        if isinstance(copy, N.Expr):
            copy = fn(copy)
        return copy

    return rec(node)


def map_stmts(stmts: Sequence[N.Stmt], fn: Callable[[N.Stmt], Union[N.Stmt, List[N.Stmt], None]]) -> List[N.Stmt]:
    """Rebuild a statement list, applying ``fn`` to each (recursively rebuilt)
    statement.  ``fn`` may return a statement, a list of statements, or
    ``None`` (meaning "keep as is")."""
    out: List[N.Stmt] = []
    for s in stmts:
        s2 = _shallow_copy(s)
        for attr in N.LIST_FIELDS.get(type(s), ()):
            setattr(s2, attr, map_stmts(getattr(s, attr), fn))
        res = fn(s2)
        if res is None:
            out.append(s2)
        elif isinstance(res, list):
            out.extend(res)
        else:
            out.append(res)
    return out


def substitute_reads(node, env: Dict[Sym, N.Expr]):
    """Substitute scalar reads of the symbols in ``env`` with replacement
    expressions (the classic ``s[i ↦ e]`` operation used by primitives)."""

    def repl(e: N.Expr) -> N.Expr:
        if isinstance(e, N.Read) and not e.idx and e.name in env:
            return copy_node(env[e.name])
        return e

    return map_exprs(node, repl)


def subst_expr(expr: N.Expr, env: Dict[Sym, N.Expr]) -> N.Expr:
    return substitute_reads(expr, env)


def subst_stmts(stmts: Sequence[N.Stmt], env: Dict[Sym, N.Expr]) -> List[N.Stmt]:
    return [substitute_reads(s, env) for s in stmts]


def rename_sym_in_stmts(stmts: Sequence[N.Stmt], old: Sym, new: Sym) -> List[N.Stmt]:
    """Rename every occurrence (reads, writes, windows, allocs) of ``old``."""

    def fix_expr(e: N.Expr) -> N.Expr:
        if isinstance(e, (N.Read, N.WindowExpr, N.StrideExpr)) and e.name is old:
            e.name = new
        return e

    def fix_stmt(s: N.Stmt):
        if isinstance(s, (N.Assign, N.Reduce, N.Alloc, N.WindowStmt)) and s.name is old:
            s.name = new
        if isinstance(s, N.For) and s.iter is old:
            s.iter = new
        return s

    new_stmts = [map_exprs(s, fix_expr) for s in stmts]
    return map_stmts(new_stmts, fix_stmt)


# ---------------------------------------------------------------------------
# Copying
# ---------------------------------------------------------------------------


def copy_node(node):
    """Deep-copy an IR subtree (symbols are shared, not renamed)."""
    if node is None:
        return None
    if isinstance(node, list):
        return [copy_node(c) for c in node]
    if not isinstance(node, N.Node):
        return node
    copy = _shallow_copy(node)
    for attr, _is_list in N.child_fields(node):
        setattr(copy, attr, copy_node(getattr(node, attr)))
    # TensorType shapes also hold expressions; copy them so in-place fixes to
    # one copy never leak into another.
    if isinstance(copy, N.Alloc) and isinstance(copy.typ, TensorType):
        copy.typ = TensorType(copy.typ.base, [copy_node(e) for e in copy.typ.shape], copy.typ.is_window)
    return copy


def copy_stmts(stmts: Sequence[N.Stmt]) -> List[N.Stmt]:
    return [copy_node(s) for s in stmts]


def alpha_rename_stmts(stmts: Sequence[N.Stmt]) -> List[N.Stmt]:
    """Deep-copy a statement block, giving fresh identities to every symbol
    *bound inside* the block (loop iterators and allocations).  Free symbols
    are left untouched.  Used by ``unroll_loop``, ``inline`` and friends."""
    new_stmts = copy_stmts(stmts)

    bound: List[Tuple[Sym, Sym]] = []

    def collect(ss):
        for s in ss:
            if isinstance(s, N.For):
                bound.append((s.iter, s.iter.copy()))
                collect(s.body)
            elif isinstance(s, N.If):
                collect(s.body)
                collect(s.orelse)
            elif isinstance(s, N.Alloc):
                bound.append((s.name, s.name.copy()))
            elif isinstance(s, N.WindowStmt):
                bound.append((s.name, s.name.copy()))

    collect(new_stmts)
    for old, new in bound:
        new_stmts = rename_sym_in_stmts(new_stmts, old, new)
    return new_stmts


# ---------------------------------------------------------------------------
# Structural equality & symbol collection
# ---------------------------------------------------------------------------


_NONE_HASH = hash("<none>")


def struct_hash(node) -> int:
    """Structural hash of an IR subtree, memoised on the nodes.

    The hash is *compatible* with :func:`structurally_equal`: trees that are
    structurally equal (under either symbol-comparison mode) always hash
    equally, so differing hashes prove inequality.  Symbols hash by name and
    expression result types are ignored except on allocations, mirroring the
    equality relation.

    The memo is permanent: once a node is hashed its cached value stays valid
    for the node's lifetime.  This rests on the tree-immutability convention —
    in-place mutation is only ever performed on freshly copied nodes, which
    carry no memo (``_shallow_copy`` rebuilds through the constructor), so a
    memoised node is never mutated.  There is deliberately no global epoch to
    invalidate against: the memo is content, not a snapshot, which also makes
    it safe to compute from concurrent threads (the worst race is two threads
    storing the same value).

    Consumers: besides structural-equality pruning, the compiled execution
    engine (:mod:`repro.interp.compile`) keys its code cache on this hash (plus
    an alpha-identity signature), and the replay cache keys scheduled results
    on it.
    """
    return _struct_hash(node)


def _struct_hash(v) -> int:
    if v is None:
        return _NONE_HASH
    if isinstance(v, Sym):
        return hash(v.name)
    if isinstance(v, list):
        return hash(tuple(_struct_hash(x) for x in v))
    if isinstance(v, ScalarType):
        return hash(v)
    if isinstance(v, TensorType):
        return hash(
            ("<tensor>", hash(v.base), v.is_window, tuple(_struct_hash(e) for e in v.shape))
        )
    if isinstance(v, N.Node):
        cached = getattr(v, "_shash_cache", None)
        if cached is not None:
            return cached
        parts = [hash(type(v).__name__)]
        for f in dataclasses.fields(v):
            if f.name == "typ" and not isinstance(v, N.Alloc):
                continue
            parts.append(_struct_hash(getattr(v, f.name)))
        h = hash(tuple(parts))
        # plain instance state; never invalidated (see struct_hash's contract)
        v._shash_cache = h
        return h
    try:
        return hash(v)
    except TypeError:
        return id(v)


def structurally_equal(a, b, *, match_sym_names: bool = False) -> bool:
    """Structural equality of IR subtrees.

    Symbols compare by identity unless ``match_sym_names`` is set, in which
    case they compare by name (useful for comparing procedures produced by
    independent scheduling runs).

    Two fast paths avoid re-walking shared subtrees: identical objects are
    equal by definition (the functional-update helpers share unchanged
    subtrees between versions), and memoised structural hashes (see
    :func:`struct_hash`) that differ prove inequality without a field-by-field
    walk.  Hashes are only consulted when already cached — equality never pays
    to compute them — so warming the cache is the caller's choice.
    """
    if a is b:
        return True
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, Sym) and isinstance(b, Sym):
        return (a.name == b.name) if match_sym_names else (a is b)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            structurally_equal(x, y, match_sym_names=match_sym_names) for x, y in zip(a, b)
        )
    if isinstance(a, (ScalarType,)) or isinstance(b, (ScalarType,)):
        return a == b
    if isinstance(a, TensorType) and isinstance(b, TensorType):
        return (
            a.base == b.base
            and a.is_window == b.is_window
            and structurally_equal(a.shape, b.shape, match_sym_names=match_sym_names)
        )
    if not isinstance(a, N.Node) or not isinstance(b, N.Node):
        return a == b
    if type(a) is not type(b):
        return False
    ca = getattr(a, "_shash_cache", None)
    if ca is not None:
        cb = getattr(b, "_shash_cache", None)
        if cb is not None and ca != cb:
            return False
    for f in dataclasses.fields(a):
        if f.name in ("typ",) and not isinstance(a, (N.Alloc,)):
            # expression result types are inferred metadata; ignore for
            # structural comparison except on allocations where they matter.
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, Sym) or isinstance(vb, Sym):
            if not (isinstance(va, Sym) and isinstance(vb, Sym)):
                return False
            if not structurally_equal(va, vb, match_sym_names=match_sym_names):
                return False
        elif isinstance(va, (N.Node, list)) or isinstance(vb, (N.Node, list)):
            if not structurally_equal(va, vb, match_sym_names=match_sym_names):
                return False
        elif isinstance(va, (ScalarType, TensorType)) or isinstance(vb, (ScalarType, TensorType)):
            if not structurally_equal(va, vb, match_sym_names=match_sym_names):
                return False
        else:
            if va != vb:
                return False
    return True


def used_syms_expr(expr: N.Expr) -> set:
    """All symbols read by an expression (including window / stride names)."""
    out = set()
    for n, _ in walk(expr):
        if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr)):
            out.add(n.name)
    return out


def contains_sym(node, sym: Sym) -> bool:
    """Does the subtree reference ``sym`` (read, write, window, stride, or as
    a loop iterator)?  Comparison is by identity, like all symbol binding."""
    for n, _ in walk(node):
        if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr, N.Assign, N.Reduce)) and n.name is sym:
            return True
        if isinstance(n, N.For) and n.iter is sym:
            return True
    return False


def collect_syms_read(node) -> set:
    out = set()
    nodes = node if isinstance(node, list) else [node]
    for nd in nodes:
        for n, _ in walk(nd):
            if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr)):
                out.add(n.name)
            if isinstance(n, (N.Assign, N.Reduce)):
                for e in n.idx:
                    out |= used_syms_expr(e)
            if isinstance(n, N.Reduce):
                out.add(n.name)
    return out


def collect_syms_written(node) -> set:
    out = set()
    nodes = node if isinstance(node, list) else [node]
    for nd in nodes:
        for n, _ in walk(nd):
            if isinstance(n, (N.Assign, N.Reduce)):
                out.add(n.name)
    return out


def collect_allocs(node) -> List[N.Alloc]:
    out = []
    nodes = node if isinstance(node, list) else [node]
    for nd in nodes:
        for n, _ in walk(nd):
            if isinstance(n, N.Alloc):
                out.append(n)
    return out
