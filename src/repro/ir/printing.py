"""Pretty printing of object code.

The printer produces the same surface syntax accepted by the front-end, so
``str(proc)`` round-trips visually with the paper's listings::

    def gemv(M: size, N: size, A: f32[M, N] @ DRAM, ...):
        assert M % 8 == 0
        for i in seq(0, M):
            for j in seq(0, N):
                y[i] += A[i, j] * x[j]
"""

from __future__ import annotations

from typing import List

from . import nodes as N
from .types import ScalarType, TensorType

__all__ = ["expr_str", "stmt_lines", "proc_str", "block_str"]

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


def expr_str(e, prec: int = 0) -> str:
    """Render an expression as surface syntax."""
    if e is None:
        return "_"
    if isinstance(e, (int, float)):
        return str(e)
    if isinstance(e, N.Const):
        if isinstance(e.val, bool):
            return "True" if e.val else "False"
        if isinstance(e.val, float):
            return repr(float(e.val))
        return str(e.val)
    if isinstance(e, N.Read):
        if e.idx:
            return f"{e.name}[{', '.join(expr_str(i) for i in e.idx)}]"
        return str(e.name)
    if isinstance(e, N.BinOp):
        p = _PRECEDENCE.get(e.op, 3)
        op = f" {e.op} " if e.op in ("and", "or") else f" {e.op} "
        s = f"{expr_str(e.lhs, p)}{op}{expr_str(e.rhs, p + 1)}"
        return f"({s})" if p < prec else s
    if isinstance(e, N.USub):
        return f"-{expr_str(e.arg, 6)}"
    if isinstance(e, N.WindowExpr):
        parts = []
        for w in e.idx:
            if isinstance(w, N.Interval):
                parts.append(f"{expr_str(w.lo)}:{expr_str(w.hi)}")
            else:
                parts.append(expr_str(w.pt))
        return f"{e.name}[{', '.join(parts)}]"
    if isinstance(e, N.StrideExpr):
        return f"stride({e.name}, {e.dim})"
    if isinstance(e, N.Extern):
        return f"{e.fname}({', '.join(expr_str(a) for a in e.args)})"
    if isinstance(e, N.ReadConfig):
        return f"{e.config.name()}.{e.field_name}"
    if isinstance(e, N.Interval):
        return f"{expr_str(e.lo)}:{expr_str(e.hi)}"
    if isinstance(e, N.Point):
        return expr_str(e.pt)
    raise TypeError(f"cannot print expression of type {type(e).__name__}")


def _type_str(typ, mem=None) -> str:
    if isinstance(typ, TensorType):
        dims = ", ".join(expr_str(d) for d in typ.shape)
        base = f"[{typ.base}][{dims}]" if typ.is_window else f"{typ.base}[{dims}]"
    else:
        base = str(typ)
    if mem is not None:
        return f"{base} @ {mem}"
    return base


def stmt_lines(stmts: List[N.Stmt], indent: int = 0) -> List[str]:
    """Render a statement block as a list of indented source lines."""
    pad = "    " * indent
    lines: List[str] = []
    for s in stmts:
        if isinstance(s, N.Assign):
            lhs = f"{s.name}[{', '.join(expr_str(i) for i in s.idx)}]" if s.idx else str(s.name)
            lines.append(f"{pad}{lhs} = {expr_str(s.rhs)}")
        elif isinstance(s, N.Reduce):
            lhs = f"{s.name}[{', '.join(expr_str(i) for i in s.idx)}]" if s.idx else str(s.name)
            lines.append(f"{pad}{lhs} += {expr_str(s.rhs)}")
        elif isinstance(s, N.Alloc):
            lines.append(f"{pad}{s.name}: {_type_str(s.typ, s.mem)}")
        elif isinstance(s, N.For):
            kw = "par" if s.pragma == "par" else "seq"
            lines.append(f"{pad}for {s.iter} in {kw}({expr_str(s.lo)}, {expr_str(s.hi)}):")
            lines.extend(stmt_lines(s.body, indent + 1) or [f"{pad}    pass"])
        elif isinstance(s, N.If):
            lines.append(f"{pad}if {expr_str(s.cond)}:")
            lines.extend(stmt_lines(s.body, indent + 1) or [f"{pad}    pass"])
            if s.orelse:
                lines.append(f"{pad}else:")
                lines.extend(stmt_lines(s.orelse, indent + 1))
        elif isinstance(s, N.Pass):
            lines.append(f"{pad}pass")
        elif isinstance(s, N.Call):
            callee = s.proc.name() if callable(getattr(s.proc, "name", None)) else s.proc.name
            lines.append(f"{pad}{callee}({', '.join(expr_str(a) for a in s.args)})")
        elif isinstance(s, N.WindowStmt):
            lines.append(f"{pad}{s.name} = {expr_str(s.rhs)}")
        elif isinstance(s, N.WriteConfig):
            lines.append(f"{pad}{s.config.name()}.{s.field_name} = {expr_str(s.rhs)}")
        else:
            raise TypeError(f"cannot print statement of type {type(s).__name__}")
    return lines


def block_str(stmts: List[N.Stmt], indent: int = 0) -> str:
    return "\n".join(stmt_lines(stmts, indent))


def proc_str(proc: N.ProcDef) -> str:
    """Render a whole procedure."""
    args = ", ".join(f"{a.name}: {_type_str(a.typ, a.mem)}" for a in proc.args)
    lines = [f"def {proc.name}({args}):"]
    for p in proc.preds:
        lines.append(f"    assert {expr_str(p)}")
    body = stmt_lines(proc.body, 1)
    lines.extend(body or ["    pass"])
    return "\n".join(lines)
