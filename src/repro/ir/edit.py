"""The unified transactional IR edit engine.

Scheduling primitives used to implement each transformation twice: once as
tree surgery (``replace_stmts`` / ``set_node`` calls) and once as a
hand-constructed :class:`~repro.cursors.forwarding.EditTrace` describing the
same surgery for cursor forwarding.  The two could silently drift apart.

:class:`EditSession` centralises both halves.  A session is opened from a
:class:`~repro.core.procedure.Procedure`; every operation records an *atomic
edit* object (see :mod:`repro.cursors.forwarding`) and applies it eagerly to
the session's working tree, and :meth:`EditSession.finish` atomically derives
the successor procedure — the rewritten root *and* the composed forwarding
function come from the same edit objects, so forwarding correctness is a
property of the engine rather than of every call site.

Operations address locations with *cursor coordinates*: either a cursor
object bound to the session's base procedure (forwarded through the edits
recorded so far, so cursors stay usable mid-session) or a raw coordinate
tuple in the *current* working tree:

* block — ``(owner_path, attr, lo, hi)`` or a :class:`BlockCursor` /
  :class:`StmtCursor`
* gap — ``(owner_path, attr, idx)`` or a :class:`GapCursor`
* expression — a path tuple or an :class:`ExprCursor`

Typical primitive::

    def my_primitive(proc, stmt):
        cur = to_stmt_cursor(proc, stmt)
        ...safety checks...
        s = EditSession(proc)
        s.replace(cur, [new_stmt], inner_map)
        return s.finish()
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..cursors.forwarding import (
    BlockRewrite,
    EditTrace,
    ExprEdit,
    FieldEdit,
    MoveEdit,
    RootEdit,
)
from ..errors import InvalidCursorError
from . import nodes as nodes_mod
from .build import Path, copy_stmts, get_node

__all__ = ["EditSession"]


class EditSession:
    """A transactional sequence of atomic edits on one procedure version.

    Open a session with ``EditSession(proc)``, record edits with the
    operations below, and call :meth:`finish` once to obtain the derived
    :class:`Procedure`.  A session must not be reused after ``finish``.
    """

    def __init__(self, proc):
        self._proc = proc
        self._root = proc._root
        self._trace = EditTrace()
        self._finished = False

    # -- working-tree access ---------------------------------------------------

    @property
    def root(self):
        """The current working tree (reflects all edits recorded so far)."""
        return self._root

    def node(self, path: Path):
        """The node at ``path`` in the current working tree."""
        return get_node(self._root, path)

    def edit_count(self) -> int:
        return len(self._trace)

    # -- coordinate resolution -------------------------------------------------

    def _forward_desc(self, desc):
        for e in self._trace.edits:
            if desc is None:
                break
            desc = e.forward(desc)
        return desc

    def _cursor_desc(self, cursor):
        if cursor._proc is not self._proc:
            cursor = self._proc.forward(cursor)
        desc = self._cursor_descriptor(cursor)
        out = self._forward_desc(desc)
        if out is None:
            raise InvalidCursorError("cursor was invalidated by an earlier edit in this session")
        return out

    @staticmethod
    def _cursor_descriptor(cursor):
        desc = cursor._descriptor()
        if desc is None:
            raise InvalidCursorError("cannot edit through an invalid cursor")
        return desc

    def _block_coords(self, block) -> Tuple[Path, str, int, int]:
        """Coerce ``block`` to ``(owner_path, attr, lo, hi)`` in the current
        working tree."""
        from ..cursors.cursor import BlockCursor, StmtCursor

        if isinstance(block, StmtCursor):
            block = block.as_block()
        if isinstance(block, BlockCursor):
            desc = self._cursor_desc(block)
            if desc[0] != "block":
                raise InvalidCursorError("block cursor no longer refers to a block")
            _, owner, attr, lo, hi = desc
            return tuple(owner), attr, lo, hi
        owner, attr, lo, hi = block
        return tuple(owner), attr, lo, hi

    def _gap_coords(self, gap) -> Tuple[Path, str, int]:
        """Coerce ``gap`` to ``(owner_path, attr, idx)`` in the current
        working tree."""
        from ..cursors.cursor import GapCursor

        if isinstance(gap, GapCursor):
            desc = self._cursor_desc(gap)
            if desc[0] != "gap":
                raise InvalidCursorError("gap cursor no longer refers to a gap")
            _, owner, attr, idx = desc
            return tuple(owner), attr, idx
        owner, attr, idx = gap
        return tuple(owner), attr, idx

    def _expr_path(self, expr) -> Path:
        from ..cursors.cursor import ExprCursor

        if isinstance(expr, ExprCursor):
            desc = self._cursor_desc(expr)
            if desc[0] != "node":
                raise InvalidCursorError("expression cursor no longer refers to a node")
            return tuple(desc[1])
        return tuple(expr)

    # -- atomic-edit operations ------------------------------------------------

    def insert_stmts(self, gap, stmts: Sequence) -> None:
        """Insert ``stmts`` at a gap."""
        owner, attr, idx = self._gap_coords(gap)
        self._record(BlockRewrite(owner, attr, idx, 0, len(stmts), None, new_stmts=list(stmts)))

    def delete(self, block) -> None:
        """Delete a statement block."""
        owner, attr, lo, hi = self._block_coords(block)
        self._record(BlockRewrite(owner, attr, lo, hi - lo, 0, None, new_stmts=[]))

    def replace(self, block, stmts: Sequence, inner_map=None) -> None:
        """Replace a statement block with ``stmts``.

        ``inner_map(offset, rest)`` optionally forwards cursor locations that
        were inside the replaced range (see
        :class:`~repro.cursors.forwarding.BlockRewrite`).
        """
        owner, attr, lo, hi = self._block_coords(block)
        self._record(
            BlockRewrite(owner, attr, lo, hi - lo, len(stmts), inner_map, new_stmts=list(stmts))
        )

    def wrap(self, block, make_wrapper: Callable[[List], object], inner_map=None) -> None:
        """Wrap a statement block in a single new statement.

        ``make_wrapper`` receives a copy of the block's statements and returns
        the wrapping statement (e.g. a new loop or guard).  By default cursors
        into the old block forward into the wrapper's ``body`` at the same
        offset; pass ``inner_map`` when the wrapper nests them deeper.
        """
        owner, attr, lo, hi = self._block_coords(block)
        parent = get_node(self._root, owner)
        stmts = list(getattr(parent, attr))[lo:hi]
        wrapper = make_wrapper(copy_stmts(stmts))
        if inner_map is None:
            def inner_map(offset, rest):
                return (0, (("body", offset),) + tuple(rest))
        self._record(BlockRewrite(owner, attr, lo, hi - lo, 1, inner_map, new_stmts=[wrapper]))

    def move(self, block, gap) -> None:
        """Move a statement block to a destination gap.

        The destination gap's coordinates are interpreted in the tree *after*
        removal of the source statements (raw tuples must be given in that
        frame; this matches how the edit is both applied and forwarded).
        """
        owner, attr, lo, hi = self._block_coords(block)
        dst_owner, dst_attr, dst_idx = self._gap_coords(gap)
        self._record(MoveEdit(owner, attr, lo, hi - lo, dst_owner, dst_attr, dst_idx))

    def replace_expr(self, expr_cursor, new_expr) -> None:
        """Replace the expression at ``expr_cursor`` with ``new_expr``."""
        path = self._expr_path(expr_cursor)
        self._record(ExprEdit(path, new_expr))

    def set_field(self, path: Path, attr: str, value) -> None:
        """Set a field of the node at ``path`` (the procedure root when
        ``path`` is empty).  For non-structural annotations (``pragma``,
        ``mem``, ``typ``) or wholesale body swaps whose forwarding is the
        identity."""
        self._record(FieldEdit(tuple(path), attr, value))

    def set_root(self, new_root, forward_fn=None) -> None:
        """Replace the whole working tree with a rebuilt root.

        The escape hatch for whole-procedure rewrites (access re-indexing,
        simplification, …); ``forward_fn`` defaults to the identity
        heuristic."""
        if forward_fn is None:
            self._record(RootEdit(new_root))
        else:
            self._record(RootEdit(new_root, forward_fn))

    def _record(self, edit) -> None:
        if self._finished:
            raise RuntimeError("EditSession already finished")
        self._root = edit.apply(self._root)
        self._trace.add(edit)

    # -- transaction end -------------------------------------------------------

    def finish(self):
        """Derive the successor procedure from the recorded edits.

        Returns the new :class:`Procedure`, whose provenance carries the
        composed forwarding function and the finished edit trace; the number
        of atomic edits is reported to the rewrite counter (Figure 9b
        metrics)."""
        if self._finished:
            raise RuntimeError("EditSession already finished")
        self._finished = True
        from ..primitives.counter import record_atomic_edits

        record_atomic_edits(len(self._trace))
        # stamp the derived root's lineage epoch: parent's epoch + the atomic
        # edits this session recorded.  Per-procedure, so concurrent edits of
        # unrelated procedures never observe each other (see ir.nodes).
        if self._root is not self._proc._root:
            nodes_mod.set_edit_epoch(
                self._root, nodes_mod.edit_epoch(self._proc._root) + len(self._trace)
            )
        return self._proc._derive(self._root, self._trace.forward_fn(), edit_trace=self._trace)
