"""Configuration state.

Stateful accelerators such as Gemmini expose *configuration registers* that
must be written before compute instructions are issued (e.g. the load stride
or the activation function).  The object language models this with ``Config``
objects: named records of scalar fields that can be read inside expressions
(``cfg.stride``) and written by ``WriteConfig`` statements (``cfg.stride = e``).

Configs are created by user code (typically a machine/instruction library)
with :func:`new_config`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .types import ScalarType

__all__ = ["Config", "new_config", "config_by_name", "register_config"]


# Registry of every Config created in this process, keyed by name; used by
# the schedule-trace machinery (repro.api) to reference configs symbolically.
_CONFIG_REGISTRY: Dict[str, "Config"] = {}


class Config:
    """A named record of configuration fields."""

    def __init__(self, name: str, fields: List[Tuple[str, ScalarType]]):
        self._name = name
        self._fields: Dict[str, ScalarType] = dict(fields)
        register_config(self)

    def name(self) -> str:
        return self._name

    def fields(self) -> List[str]:
        return list(self._fields.keys())

    def has_field(self, field: str) -> bool:
        return field in self._fields

    def field_type(self, field: str) -> ScalarType:
        return self._fields[field]

    def __repr__(self) -> str:
        return f"Config({self._name})"

    def __str__(self) -> str:
        return self._name


def new_config(name: str, fields: List[Tuple[str, ScalarType]]) -> Config:
    """Create a new configuration record (user-facing helper)."""
    return Config(name, fields)


def register_config(cfg: Config) -> Config:
    """Register ``cfg`` for by-name lookup (done automatically on creation;
    last registration wins when names collide)."""
    _CONFIG_REGISTRY[cfg.name()] = cfg
    return cfg


def config_by_name(name: str) -> Config:
    """Look up a configuration record created earlier in this process."""
    try:
        return _CONFIG_REGISTRY[name]
    except KeyError:
        raise KeyError(f"no Config named {name!r} has been created") from None
