"""Configuration state.

Stateful accelerators such as Gemmini expose *configuration registers* that
must be written before compute instructions are issued (e.g. the load stride
or the activation function).  The object language models this with ``Config``
objects: named records of scalar fields that can be read inside expressions
(``cfg.stride``) and written by ``WriteConfig`` statements (``cfg.stride = e``).

Configs are created by user code (typically a machine/instruction library)
with :func:`new_config`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .types import ScalarType

__all__ = ["Config", "new_config"]


class Config:
    """A named record of configuration fields."""

    def __init__(self, name: str, fields: List[Tuple[str, ScalarType]]):
        self._name = name
        self._fields: Dict[str, ScalarType] = dict(fields)

    def name(self) -> str:
        return self._name

    def fields(self) -> List[str]:
        return list(self._fields.keys())

    def has_field(self, field: str) -> bool:
        return field in self._fields

    def field_type(self, field: str) -> ScalarType:
        return self._fields[field]

    def __repr__(self) -> str:
        return f"Config({self._name})"

    def __str__(self) -> str:
        return self._name


def new_config(name: str, fields: List[Tuple[str, ScalarType]]) -> Config:
    """Create a new configuration record (user-facing helper)."""
    return Config(name, fields)
