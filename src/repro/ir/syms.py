"""Symbols for the object language.

Every variable in the object IR (procedure arguments, loop iterators, buffer
names, …) is represented by a :class:`Sym`.  Symbols carry a human-readable
name plus a globally unique id, so that two distinct variables that happen to
share a name (e.g. after inlining or unrolling) never collide.

Equality is *identity* equality: two ``Sym`` objects are the same variable only
if they are the same object.  User-facing lookups (``find_loop('i')``) match on
the ``name`` attribute.
"""

from __future__ import annotations

import itertools

__all__ = ["Sym"]


class Sym:
    """A unique program symbol with a human-readable name."""

    __slots__ = ("name", "_id")

    _fresh_counter = itertools.count(1)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("Sym name must be a non-empty string")
        self.name = name
        self._id = next(Sym._fresh_counter)

    def copy(self) -> "Sym":
        """Return a fresh symbol with the same name but a new identity."""
        return Sym(self.name)

    def id(self) -> int:
        return self._id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sym({self.name}#{self._id})"

    def __str__(self) -> str:
        return self.name

    # Identity equality / hashing are inherited from ``object`` on purpose.
