"""User-facing error types.

The paper distinguishes three kinds of user-facing errors (Section 3.3):

* :class:`SchedulingError` — raised by the compiler analysis when a primitive
  would not preserve functional equivalence (or its structural preconditions
  fail).  Schedules catch this to implement fallback strategies.
* :class:`InvalidCursorError` — raised when navigating a cursor to an invalid
  location (e.g. ``parent()`` of a top-level statement) or when using a cursor
  that was invalidated by forwarding.
* Internal compiler errors — plain exceptions signalling implementation bugs;
  user schedules should *not* catch these.
"""

from __future__ import annotations

__all__ = [
    "ExoError",
    "SchedulingError",
    "InvalidCursorError",
    "ParseError",
    "BackendError",
]


class ExoError(Exception):
    """Base class for all user-facing errors of the scheduling language."""


class SchedulingError(ExoError):
    """A scheduling primitive could not be applied safely."""


class InvalidCursorError(ExoError):
    """A cursor navigation or forwarding produced an invalid location."""


class ParseError(ExoError):
    """The object-code front-end rejected the input program."""


class BackendError(ExoError):
    """A backend (code-generation time) check failed."""
