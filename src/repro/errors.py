"""User-facing error types.

The paper distinguishes three kinds of user-facing errors (Section 3.3):

* :class:`SchedulingError` — raised by the compiler analysis when a primitive
  would not preserve functional equivalence (or its structural preconditions
  fail).  Schedules catch this to implement fallback strategies.
* :class:`InvalidCursorError` — raised when navigating a cursor to an invalid
  location (e.g. ``parent()`` of a top-level statement) or when using a cursor
  that was invalidated by forwarding.
* Internal compiler errors — plain exceptions signalling implementation bugs;
  user schedules should *not* catch these.
"""

from __future__ import annotations

__all__ = [
    "ExoError",
    "SchedulingError",
    "InvalidCursorError",
    "ParseError",
    "BackendError",
    "CodegenError",
    "cursor_location",
]


class ExoError(Exception):
    """Base class for all user-facing errors of the scheduling language.

    When an error escapes a scheduling primitive, the ``@scheduling_primitive``
    wrapper tags it with the *innermost* failing primitive's name — both in the
    message (``"divide_loop: ..."``) and on the :attr:`primitive` attribute, so
    combinators and tooling can report failures structurally.
    """

    #: Name of the scheduling primitive the error escaped from (set by the
    #: primitive wrapper; ``None`` for errors raised outside any primitive).
    primitive = None


class SchedulingError(ExoError):
    """A scheduling primitive could not be applied safely."""


class InvalidCursorError(ExoError):
    """A cursor navigation or forwarding produced an invalid location."""


def cursor_location(cursor) -> str:
    """A one-line source snippet of a cursor's target, for error messages
    (best-effort: stale or exotic cursors degrade to their repr)."""
    try:
        lines = str(cursor).splitlines()
        return lines[0].strip() if lines else repr(cursor)
    except Exception:
        return object.__repr__(cursor)


class ParseError(ExoError):
    """The object-code front-end rejected the input program."""


class BackendError(ExoError):
    """A backend (code-generation time) check failed."""


class CodegenError(BackendError):
    """The C code generator cannot lower a construct.

    Raised *before* any broken C is emitted.  ``location`` holds the printed
    source form of the offending statement or expression (surface syntax, as
    the cursor UI prints it) and ``proc_name`` the procedure it sits in; both
    are woven into the message.
    """

    def __init__(self, message: str, *, proc_name: str = None, location: str = None):
        parts = [message]
        if location:
            parts.append(f"at: {location}")
        if proc_name:
            parts.append(f"in procedure {proc_name!r}")
        super().__init__("\n  ".join(parts))
        self.proc_name = proc_name
        self.location = location
