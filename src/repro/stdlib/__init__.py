"""The scheduling standard library ("std-lib" + "ins-lib" in Figure 9a).

Everything in this package is *user-level* code: it is built by composing the
scheduling primitives of :mod:`repro.primitives`, exactly as a performance
engineer would grow their own library on top of Exo 2.
"""

from .elevate import (
    bottomup,
    fission_after,
    hoist_stmt,
    hoist_stmt_loop,
    innermost_loops,
    lrn,
    remove_parent_loop,
    reorder_before,
    topdown,
)
from .higher_order import (
    Pred,
    apply,
    filter_c,
    is_invalid,
    lift,
    nav,
    reduce,
    reframe,
    repeat,
    savec,
    seq,
    try_else,
)
from .inspection import (
    Bounds,
    get_enclosing_loop,
    get_inner_loop,
    get_reused_vector,
    infer_bounds,
    is_literal,
    is_loop,
    is_reduction,
    literal_value,
    loop_bounds_const,
    loop_nest,
)
from .tiling import (
    auto_stage_mem,
    cleanup,
    general_tile2D,
    hoist_from_loop,
    interleave_loop,
    round_loop,
    tile2D,
    tile_loops,
    tile_loops_bottom_up,
    tilenD,
    unroll_all,
    unroll_and_jam,
    unroll_loops,
)
from .vectorize import (
    CSE,
    LICM,
    fission_into_singles,
    fma_rule,
    parallelize_reductions,
    stage_compute,
    vectorize,
)

__all__ = [
    # higher-order combinators
    "lift", "seq", "repeat", "try_else", "reduce", "apply", "filter_c",
    "nav", "savec", "reframe", "Pred", "is_invalid",
    # ELEVATE reproduction
    "lrn", "topdown", "bottomup", "innermost_loops",
    "reorder_before", "remove_parent_loop", "fission_after",
    "hoist_stmt", "hoist_stmt_loop",
    # inspection library
    "Bounds", "infer_bounds", "get_inner_loop", "get_enclosing_loop",
    "get_reused_vector", "is_loop", "is_reduction", "is_literal",
    "literal_value", "loop_bounds_const", "loop_nest",
    # tiling / staging
    "tile2D", "tilenD", "general_tile2D", "tile_loops", "tile_loops_bottom_up",
    "round_loop", "unroll_and_jam", "interleave_loop", "auto_stage_mem",
    "hoist_from_loop", "unroll_loops", "unroll_all", "cleanup",
    # vectorisation
    "vectorize", "fma_rule", "stage_compute", "fission_into_singles",
    "parallelize_reductions", "CSE", "LICM",
]
