"""Higher-order scheduling combinators (Section 3.4).

Operations of type ``cOp = Proc × Cursor × ... → Proc × Cursor`` can be built
from ordinary ``Op``s with :func:`lift` and composed with :func:`seq`,
:func:`repeat`, :func:`try_else` and :func:`reduce`.  :func:`apply` and
:func:`filter_c` provide the list-of-cursors conveniences used by the BLAS
library (Figure 7b), and :func:`nav` / :func:`savec` / :func:`reframe`
recreate ELEVATE's linear-time reference model (Section 6.3.1).
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from ..cursors.cursor import InvalidCursor
from ..cursors.cursor import is_invalid as _is_invalid_fn
from ..errors import ExoError, InvalidCursorError, SchedulingError

__all__ = [
    "lift",
    "seq",
    "repeat",
    "try_else",
    "reduce",
    "apply",
    "filter_c",
    "nav",
    "savec",
    "reframe",
    "Pred",
    "is_invalid",
]


def lift(op: Callable) -> Callable:
    """Lift an ``Op`` (returning just a procedure) into a ``cOp`` (returning
    procedure and cursor): ``lift op = λ(p, c). (op(p, c), c)``."""

    def func(p, c, *args, **kwargs):
        return op(p, c, *args, **kwargs), c

    func.__name__ = f"lift({getattr(op, '__name__', 'op')})"
    return func


def seq(*ops: Callable) -> Callable:
    """Sequential composition of cOps."""

    def func(p, c, *args, **kwargs):
        for op in ops:
            p, c = op(p, c, *args, **kwargs)
        return p, c

    return func


def repeat(op: Callable) -> Callable:
    """Apply an Op or cOp repeatedly until it raises a scheduling error.

    Works both for cursor-threading cOps (``repeat(lift_alloc)(p, c)``) and for
    plain Ops with extra arguments (``repeat(call_eqv)(p, foo, bar)``).
    """

    def func(p, *args, **kwargs):
        args = list(args)
        returned_tuple = False
        while True:
            try:
                res = op(p, *args, **kwargs)
            except (SchedulingError, InvalidCursorError):
                break
            if isinstance(res, tuple):
                returned_tuple = True
                p = res[0]
                if len(res) > 1 and args:
                    args[0] = res[1]
            else:
                p = res
        if returned_tuple and args:
            return p, args[0]
        return p

    return func


def try_else(op: Callable, opelse: Callable) -> Callable:
    """Apply ``op``; fall back to ``opelse`` if it raises a scheduling error."""

    def func(p, c, *args, **kwargs):
        try:
            return op(p, c, *args, **kwargs)
        except (SchedulingError, InvalidCursorError):
            return opelse(p, c, *args, **kwargs)

    return func


def reduce(op: Callable, top: Callable) -> Callable:
    """Apply a cOp at every cursor produced by the traversal ``top``
    (``Top = Cursor → Stream[Cursor]``)."""

    def func(p, cur, *args, **kwargs):
        c = cur
        for c in top(cur):
            p, c = op(p, c, *args, **kwargs)
        return p, c

    return func


def apply(op: Callable) -> Callable:
    """Apply an Op to each cursor in a list: ``apply(vectorize)(p, loops, ...)``."""

    def func(p, cursors, *args, **kwargs):
        for c in cursors:
            p = op(p, c, *args, **kwargs)
        return p

    return func


class Pred:
    """A cursor predicate supporting ``~`` (negation) and ``&``/``|``."""

    def __init__(self, fn: Callable, name: str = "pred"):
        self.fn = fn
        self.name = name

    def __call__(self, cursor) -> bool:
        return bool(self.fn(cursor))

    def __invert__(self) -> "Pred":
        return Pred(lambda c: not self.fn(c), f"not {self.name}")

    def __and__(self, other) -> "Pred":
        return Pred(lambda c: self.fn(c) and other(c), f"{self.name} and {other}")

    def __or__(self, other) -> "Pred":
        return Pred(lambda c: self.fn(c) or other(c), f"{self.name} or {other}")


is_invalid = Pred(_is_invalid_fn, "is_invalid")


def filter_c(pred: Callable) -> Callable:
    """Filter a list of cursors by a predicate: ``filter_c(~is_invalid)(p, cs)``."""

    def func(p, cursors) -> List:
        return [c for c in cursors if pred(c)]

    return func


def nav(move: Callable) -> Callable:
    """A cOp that navigates the reference frame with ``move`` after forwarding
    the cursor to the current procedure."""

    def func(p, c, *args, **kwargs):
        return p, move(p.forward(c))

    return func


def savec(op: Callable) -> Callable:
    """Run ``op`` but restore the incoming cursor afterwards."""

    def func(p, c, *args, **kwargs):
        res = op(p, c, *args, **kwargs)
        p2 = res[0] if isinstance(res, tuple) else res
        return p2, c

    return func


def reframe(move: Callable, op: Callable) -> Callable:
    """Navigate with ``move``, apply ``op`` there, then restore the frame —
    the pattern that recreates linear-time (ELEVATE-style) references."""
    return savec(seq(nav(move), op))
