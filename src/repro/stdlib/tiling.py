"""Tiling, staging, and loop-restructuring library functions ("std-lib").

Everything here is user-level code composed from the scheduling primitives —
``tile2D`` and friends from Section 3, plus the staging/unrolling helpers used
by the BLAS, Halide and Gemmini libraries (``tile_loops``, ``round_loop``,
``unroll_and_jam``, ``interleave_loop``, ``auto_stage_mem``,
``hoist_from_loop``, ``unroll_loops``, ``cleanup``).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import List, Optional, Sequence, Tuple

from ..analysis.linear import const_value
from ..cursors.cursor import AllocCursor, ForCursor, IfCursor, InvalidCursor
from ..errors import InvalidCursorError, SchedulingError
from ..ir import nodes as N
from ..primitives import (
    delete_buffer,
    divide_loop,
    eliminate_dead_code,
    fission,
    lift_alloc,
    lift_scope,
    mult_loops,
    remove_loop,
    reorder_loops,
    reorder_stmts,
    set_memory,
    simplify,
    stage_mem,
    unroll_loop,
)
from .higher_order import repeat
from .inspection import get_inner_loop, infer_bounds, loop_nest

__all__ = [
    "tile2D",
    "tilenD",
    "general_tile2D",
    "tile_loops",
    "tile_loops_bottom_up",
    "round_loop",
    "unroll_and_jam",
    "interleave_loop",
    "auto_stage_mem",
    "hoist_from_loop",
    "unroll_loops",
    "unroll_all",
    "cleanup",
]


# ---------------------------------------------------------------------------
# The running examples of Section 3
# ---------------------------------------------------------------------------


def tile2D(p, i_lp, j_lp, i_itrs, j_itrs, i_sz, j_sz):
    """Tile a 2-deep loop nest (Section 3.2) — behaves exactly like a built-in."""
    p = divide_loop(p, i_lp, i_sz, i_itrs, perfect=True)
    p = divide_loop(p, j_lp, j_sz, j_itrs, perfect=True)
    p = lift_scope(p, j_itrs[0])
    return p


def tilenD(p, loops, new_iters, tile_sizes):
    """Tile an arbitrary-depth loop nest (Section 3.3)."""
    for i, loop in enumerate(loops):
        p = divide_loop(p, loop, tile_sizes[i], new_iters[i], perfect=True)
    for i, _ in enumerate(loops):
        for _j in range(0, i):
            p = lift_scope(p, new_iters[i][0])
    return p


def general_tile2D(p, i_lp, j_lp, i_itrs, j_itrs, i_sz, j_sz):
    """Tile, falling back to guarded tiling when sizes do not divide evenly
    (Section 3.3)."""
    orig_p = p
    try:
        p = tile2D(p, i_lp, j_lp, i_itrs, j_itrs, i_sz, j_sz)
    except SchedulingError:
        p = divide_loop(orig_p, i_lp, i_sz, i_itrs, tail="guard")
        p = divide_loop(p, j_lp, j_sz, j_itrs, tail="guard")
        p = lift_scope(p, j_itrs[0])
        p = lift_scope(p, j_itrs[0])
    return p


# ---------------------------------------------------------------------------
# General tiling helpers
# ---------------------------------------------------------------------------


def _iter_names(p, base: str) -> Tuple[str, str]:
    """Pick fresh-ish iterator names derived from a loop's name."""
    return f"{base}o", f"{base}i"


def tile_loops(p, loop_sizes: Sequence[Tuple[object, int]], perfect: bool = False):
    """Divide each ``(loop, size)`` pair and hoist all the outer loops above
    all the inner loops.  Returns ``(p, [inner_loop_cursors])``."""
    outer_names: List[str] = []
    inner_names: List[str] = []
    for loop, size in loop_sizes:
        loop_c = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
        base = loop_c.name()
        on, inn = _iter_names(p, base)
        p = divide_loop(p, loop_c, size, [on, inn], perfect=perfect, tail="perfect" if perfect else "cut")
        outer_names.append(on)
        inner_names.append(inn)
    # hoist outer loops: for the k-th divided loop, its outer needs to move up
    # past the inner loops of all previously divided loops
    for k in range(1, len(outer_names)):
        for _ in range(k):
            p = lift_scope(p, outer_names[k])
    inners = [p.find_loop(n) for n in inner_names]
    return p, inners


def tile_loops_bottom_up(p, top_loop, sizes: Sequence[int], tail: str = "cut"):
    """Tile a perfect loop nest starting at ``top_loop`` with one blocking
    factor per nesting level (used for memory-hierarchy blocking in the GEMM
    schedule of Appendix C)."""
    top_loop = p.forward(top_loop) if getattr(top_loop, "_proc", p) is not p else top_loop
    nest = loop_nest(p, top_loop)
    if len(sizes) > len(nest):
        raise SchedulingError("tile_loops_bottom_up: more tile sizes than loops in the nest")
    pairs = [(nest[i], sizes[i]) for i in range(len(sizes)) if sizes[i] is not None]
    names = [c.name() for c, _ in pairs]
    for name, (loop_c, size) in zip(names, pairs):
        loop_c = p.find_loop(name)
        hi = const_value(loop_c.hi()._node())
        perfect = hi is not None and hi % size == 0
        on, inn = _iter_names(p, name)
        p = divide_loop(p, loop_c, size, [on, inn], tail="perfect" if perfect else tail)
    # bring all the `o` loops to the top, preserving their relative order
    for k in range(1, len(names)):
        for _ in range(k):
            try:
                p = lift_scope(p, f"{names[k]}o")
            except SchedulingError:
                break
    return p


def round_loop(p, loop, factor: int, up: bool = True):
    """Round a loop's trip count up to a multiple of ``factor`` by adding a
    guard: ``for i in seq(0, N)`` becomes
    ``for i in seq(0, ((N+factor-1)/factor)*factor): if i < N: ...``."""
    if not up:
        raise SchedulingError("round_loop: only rounding up is supported")
    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    name = loop.name()
    p = divide_loop(p, loop, factor, [f"{name}_r_o", f"{name}_r_i"], tail="guard")
    p = mult_loops(p, p.find_loop(f"{name}_r_o"), name)
    return simplify(p)


def unroll_and_jam(p, loop, factor: int, perfect: bool = False):
    """Unroll-and-jam: batch ``factor`` iterations of an outer loop into the
    inner loop and unroll them (the general-matrix strategy of Section 6.2.2)."""
    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    name = loop.name()
    hi = const_value(loop.hi()._node())
    tail = "perfect" if (perfect or (hi is not None and hi % factor == 0)) else "cut"
    p = divide_loop(p, loop, factor, [f"{name}o", f"{name}i"], tail=tail)
    # jam: move the `factor`-sized loop inside the (single) nested loop
    ji_loop = p.find_loop(f"{name}i")
    body = ji_loop.body()
    if len(body) == 1 and isinstance(body[0], ForCursor):
        p = lift_scope(p, body[0])
        ji_loop = p.find_loop(f"{name}i")
    p = unroll_loop(p, ji_loop)
    return p


def interleave_loop(p, loop, factor: int, mem=None, tail: str = "cut"):
    """Interleave ``factor`` iterations of a loop to expose instruction-level
    parallelism (divide + unroll the inner loop)."""
    if factor <= 1:
        return p
    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    name = loop.name()
    hi = const_value(loop.hi()._node())
    if hi is not None and hi % factor == 0:
        tail = "perfect"
    try:
        p = divide_loop(p, loop, factor, [f"{name}_u_o", f"{name}_u_i"], tail=tail)
    except SchedulingError:
        return p
    p = unroll_loop(p, p.find_loop(f"{name}_u_i"))
    return p


# ---------------------------------------------------------------------------
# Staging
# ---------------------------------------------------------------------------


def auto_stage_mem(p, scope, buf_name: str, new_name: Optional[str] = None, *, rc: bool = False, accum: bool = False, init_zero: bool = False):
    """Stage all accesses to ``buf_name`` within ``scope`` through a new
    buffer, using the user-level bounds inference of Section 4 to size the
    window (this is how Halide-style ``compute_at`` storage is allocated).

    With ``rc=True`` returns ``(p, (alloc, load, block, store))`` cursors.
    """
    scope = p.forward(scope) if getattr(scope, "_proc", p) is not p else scope
    new_name = new_name or f"{buf_name}_tmp"
    bounds = infer_bounds(p, scope, buf_name)
    widx = [N.Interval(lo, hi) for lo, hi in zip(bounds.lo, bounds.hi)]
    buf_sym = None
    for a in p._root.args:
        if a.name.name == buf_name:
            buf_sym = a.name
    if buf_sym is None:
        from ..ir.build import walk

        for n, _ in walk(p._root):
            if isinstance(n, N.Alloc) and n.name.name == buf_name:
                buf_sym = n.name
    if buf_sym is None:
        raise SchedulingError(f"auto_stage_mem: unknown buffer {buf_name!r}")
    window = N.WindowExpr(buf_sym, widx, None)

    block = scope.as_block() if not hasattr(scope, "_lo") else scope
    before_len = len(block) if hasattr(block, "__len__") else 1
    p2 = stage_mem(p, block, window, new_name, accum=accum, init_zero=init_zero)

    if not rc:
        return p2

    # locate the generated statements: alloc, (load), block, (store)
    alloc_c = p2.find(f"{new_name}: _")
    nxt = alloc_c.next()
    load_c: object = InvalidCursor(p2)
    store_c: object = InvalidCursor(p2)
    body_start = nxt
    if isinstance(nxt, ForCursor) or (hasattr(nxt, "is_valid") and nxt.is_valid() and _writes_only(nxt, new_name)):
        # heuristically treat the first following loop writing the staging
        # buffer as the load loop
        if _is_copy_loop(nxt, new_name):
            load_c = nxt
            body_start = nxt.next()
    # the store loop, if present, is the copy loop after the block
    cur = body_start
    last_valid = None
    while hasattr(cur, "is_valid") and cur.is_valid():
        last_valid = cur
        nxt2 = cur.next()
        if not nxt2.is_valid():
            break
        cur = nxt2
    if last_valid is not None and _is_copy_loop(last_valid, new_name) and last_valid != load_c:
        store_c = last_valid
    return p2, (alloc_c, load_c, body_start, store_c)


def _writes_only(cursor, name: str) -> bool:
    try:
        return name in str(cursor)
    except Exception:  # pragma: no cover - defensive
        return False


def _is_copy_loop(cursor, staged_name: str) -> bool:
    if not isinstance(cursor, ForCursor):
        return False
    text = str(cursor)
    return staged_name in text and ("=" in text)


# ---------------------------------------------------------------------------
# Hoisting / unrolling / cleanup
# ---------------------------------------------------------------------------


def hoist_from_loop(p, loop):
    """Hoist loop-invariant statements out of ``loop`` (statement-level LICM),
    built from ``reorder_stmts`` / ``fission`` / ``remove_loop``."""
    from .elevate import hoist_stmt

    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    changed = True
    rounds = 0
    while changed and rounds < 16:
        rounds += 1
        changed = False
        loop_f = p.forward(loop)
        if not loop_f.is_valid() or not isinstance(loop_f, ForCursor):
            break
        body_len = len(loop_f.body())
        for stmt in list(loop_f.body()):
            from ..analysis.effects import body_depends_on_iter, is_idempotent
            from ..ir import nodes as _N

            node = stmt._node()
            if isinstance(node, _N.Alloc):
                continue  # allocations are moved with lift_alloc, not hoisted
            if body_depends_on_iter([node], loop_f.iter_sym()) or not is_idempotent([node]):
                continue
            try:
                res = hoist_stmt(p, stmt)
                p2 = res[0] if isinstance(res, tuple) else res
            except (SchedulingError, InvalidCursorError):
                continue
            # progress means the statement actually left the loop (its body
            # shrank); mere reordering inside the loop does not count and
            # would otherwise loop forever.
            new_loop = p2.forward(loop)
            if (
                p2 is not p
                and new_loop.is_valid()
                and isinstance(new_loop, ForCursor)
                and len(new_loop.body()) < body_len
            ):
                p = p2
                changed = True
                break
    return p


def unroll_loops(p, max_bound: int = 64):
    """Fully unroll every loop whose constant trip count is at most ``max_bound``."""
    changed = True
    guard = 0
    while changed and guard < 200:
        changed = False
        guard += 1
        for loop in p.find("for _ in _: _", many=True):
            if not isinstance(loop, ForCursor):
                continue
            lo = const_value(loop.lo()._node())
            hi = const_value(loop.hi()._node())
            if lo is None or hi is None:
                continue
            if 0 < hi - lo <= max_bound:
                p = unroll_loop(p, loop)
                changed = True
                break
    return p


def unroll_all(p, loops):
    """Unroll every loop cursor in ``loops`` (invalid cursors are skipped)."""
    for loop in loops:
        try:
            loop_f = p.forward(loop) if getattr(loop, "_proc", p) is not p else loop
            if loop_f.is_valid():
                p = unroll_loop(p, loop_f)
        except (SchedulingError, InvalidCursorError):
            continue
    return p


def cleanup(p):
    """Simplify index arithmetic, remove dead branches and unused buffers."""
    p = simplify(p)
    # delete unused buffers
    changed = True
    guard = 0
    while changed and guard < 100:
        changed = False
        guard += 1
        for alloc in p.find("_: _", many=True):
            if not isinstance(alloc, AllocCursor):
                continue
            try:
                p = delete_buffer(p, alloc)
                changed = True
                break
            except SchedulingError:
                continue
    return p


# ---------------------------------------------------------------------------
# Lift the library into the combinator namespace: every Op-shaped function
# here is available on repro.api.S in curried Schedule form
# (``S.tile2D('i', 'j', ...)``), indistinguishable from a built-in primitive.
# ---------------------------------------------------------------------------

from ..api import register_op as _register_op  # noqa: E402

for _op in (
    tile2D,
    tilenD,
    general_tile2D,
    tile_loops_bottom_up,
    round_loop,
    unroll_and_jam,
    interleave_loop,
    hoist_from_loop,
    unroll_loops,
    cleanup,
):
    _register_op(_op)
del _op
