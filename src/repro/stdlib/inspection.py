"""The inspection library ("ins-lib", Section 4).

These are *user-level* analyses built entirely from cursor navigation and
inspection — no compiler support.  The flagship example is bounds inference
(:func:`infer_bounds`), which Halide provides as a built-in but which Exo 2
lets users implement externally and reuse (Section 6.3.2's ``compute_at``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.linear import FactEnv, LinearForm, linear_to_expr, linearize, simplify_expr
from ..cursors.cursor import (
    AllocCursor,
    AssignCursor,
    BlockCursor,
    Cursor,
    ForCursor,
    IfCursor,
    LiteralCursor,
    ReadCursor,
    ReduceCursor,
    StmtCursor,
)
from ..errors import InvalidCursorError, SchedulingError
from ..ir import nodes as N
from ..ir.build import used_syms_expr, walk
from ..ir.types import index_t

__all__ = [
    "get_inner_loop",
    "get_enclosing_loop",
    "loop_nest",
    "is_loop",
    "is_reduction",
    "is_literal",
    "literal_value",
    "loop_bounds_const",
    "get_reused_vector",
    "infer_bounds",
    "Bounds",
    "find_child_loops",
    "get_declared_buffers",
]


def is_loop(cursor) -> bool:
    return isinstance(cursor, ForCursor)


def is_reduction(cursor) -> bool:
    return isinstance(cursor, ReduceCursor)


def is_literal(cursor) -> bool:
    return isinstance(cursor, LiteralCursor)


def literal_value(cursor):
    if not isinstance(cursor, LiteralCursor):
        raise SchedulingError("expected a literal expression")
    return cursor.value()


def loop_bounds_const(loop: ForCursor) -> Tuple[Optional[int], Optional[int]]:
    """The constant (lo, hi) of a loop, where known."""
    from ..analysis.linear import const_value

    return const_value(loop.lo()._node()), const_value(loop.hi()._node())


def get_inner_loop(p, loop) -> ForCursor:
    """Descend through a perfectly nested loop chain to the innermost loop."""
    loop = p.forward(loop) if loop._proc is not p else loop
    cur = loop
    while True:
        body = cur.body()
        inner = None
        if len(body) == 1 and isinstance(body[0], ForCursor):
            inner = body[0]
        elif len(body) == 1 and isinstance(body[0], IfCursor) and len(body[0].body()) == 1:
            grand = body[0].body()[0]
            if isinstance(grand, ForCursor):
                inner = grand
        if inner is None:
            return cur
        cur = inner


def get_enclosing_loop(p, cursor) -> ForCursor:
    """The closest enclosing loop of a statement cursor."""
    cur = p.forward(cursor) if cursor._proc is not p else cursor
    while True:
        cur = cur.parent()
        if isinstance(cur, ForCursor):
            return cur


def loop_nest(p, outer) -> List[ForCursor]:
    """The perfectly nested loops starting at ``outer`` (outermost first)."""
    out = [p.forward(outer) if outer._proc is not p else outer]
    while True:
        body = out[-1].body()
        if len(body) == 1 and isinstance(body[0], ForCursor):
            out.append(body[0])
        else:
            return out


def find_child_loops(cursor) -> List[ForCursor]:
    """Direct child loops of a loop/if body."""
    out = []
    for c in cursor.body():
        if isinstance(c, ForCursor):
            out.append(c)
    return out


def get_declared_buffers(p) -> List[AllocCursor]:
    """All allocations in the procedure."""
    return p.find("_: _", many=True) if False else [c for c in _walk_stmts(p) if isinstance(c, AllocCursor)]


def _walk_stmts(p):
    stack = list(p.body())
    while stack:
        c = stack.pop(0)
        yield c
        if isinstance(c, (ForCursor, IfCursor)):
            stack.extend(list(c.body()))
            if isinstance(c, IfCursor):
                stack.extend(list(c.orelse()))


def get_reused_vector(p, inner_loop) -> ReadCursor:
    """Find the buffer read inside ``inner_loop`` whose index does not depend
    on the *enclosing* loop's iterator — i.e. the vector that is re-read on
    every outer iteration and is worth keeping in registers (Section 6.2.2,
    skinny-matrix schedule)."""
    inner_loop = p.forward(inner_loop) if inner_loop._proc is not p else inner_loop
    outer = get_enclosing_loop(p, inner_loop)
    outer_iter = outer.iter_sym()
    inner_iter = inner_loop.iter_sym()
    node = inner_loop._node()
    for n, _ in walk(node):
        if isinstance(n, N.Read) and n.idx:
            syms = set()
            for i in n.idx:
                syms |= used_syms_expr(i)
            if outer_iter not in syms and inner_iter in syms:
                # find its cursor
                for c in inner_loop.find(f"{n.name.name}[_]", many=True):
                    return c
    raise SchedulingError("could not find a reused vector in the inner loop")


# ---------------------------------------------------------------------------
# Bounds inference (Section 4)
# ---------------------------------------------------------------------------


@dataclass
class Bounds:
    """Per-dimension inclusive-exclusive bounds of the accesses to a buffer."""

    buffer: str
    lo: List[N.Expr]
    hi: List[N.Expr]
    reads: int = 0
    writes: int = 0

    def extent(self, env: Optional[FactEnv] = None) -> List[N.Expr]:
        env = env or FactEnv()
        return [
            simplify_expr(N.BinOp("-", h, l, index_t), env)
            for l, h in zip([_copy(e) for e in self.lo], [_copy(e) for e in self.hi])
        ]


def _copy(e):
    from ..ir.build import copy_node

    return copy_node(e)


def infer_bounds(p, scope, buf_name: str) -> Bounds:
    """Infer, for each dimension of ``buf_name``, the range of indices accessed
    within ``scope`` (a loop/if/block cursor), as expressions over the
    variables that are free outside the scope.

    This is the user-level bounds-inference analysis of Section 4: it combines
    primitive cursor inspections (loop bounds, index expressions) with ordinary
    Python bookkeeping of free/bound variables, and underpins the Halide
    library's ``compute_at``/``store_at`` and ``auto_stage_mem``.
    """
    scope = p.forward(scope) if getattr(scope, "_proc", p) is not p else scope
    if isinstance(scope, BlockCursor):
        nodes = scope._stmts()
        base_path = scope._owner_path
    else:
        nodes = [scope._node()]
        base_path = scope._path

    # collect iterator ranges bound *inside* the scope
    bound_ranges: Dict[object, Tuple[N.Expr, N.Expr]] = {}

    def collect_loops(stmts):
        for s in stmts:
            for n, _ in walk(s):
                if isinstance(n, N.For):
                    bound_ranges[n.iter] = (n.lo, n.hi)

    collect_loops(nodes)

    env = FactEnv.from_proc(p._root)

    lo_forms: List[Optional[LinearForm]] = []
    hi_forms: List[Optional[LinearForm]] = []
    reads = writes = 0

    def union_dim(d: int, lo_f: LinearForm, hi_f: LinearForm):
        nonlocal lo_forms, hi_forms
        while len(lo_forms) <= d:
            lo_forms.append(None)
            hi_forms.append(None)
        if lo_forms[d] is None:
            lo_forms[d], hi_forms[d] = lo_f, hi_f
            return
        lo_forms[d] = _merge(lo_forms[d], lo_f, pick_min=True)
        hi_forms[d] = _merge(hi_forms[d], hi_f, pick_min=False)

    def _merge(a: LinearForm, b: LinearForm, pick_min: bool) -> LinearForm:
        diff = a - b
        lo, hi = env.interval(diff)
        if pick_min:
            if hi is not None and hi <= 0:
                return a
            if lo is not None and lo >= 0:
                return b
            return a if hi is not None and hi <= 0 else b if lo is not None and lo >= 0 else (a if True else b)
        if lo is not None and lo >= 0:
            return a
        if hi is not None and hi <= 0:
            return b
        return a

    def bound_index(e: N.Expr) -> Tuple[LinearForm, LinearForm]:
        """Min/max of an index expression over the scope-bound iterators."""
        lf = linearize(e)
        lo_f = LinearForm()
        hi_f = LinearForm()
        for key, coeff in lf.terms.items():
            bound_syms = [a for a in key if a in bound_ranges]
            if not bound_syms:
                lo_f = lo_f + LinearForm({key: coeff})
                hi_f = hi_f + LinearForm({key: coeff})
                continue
            # affine in a single bound iterator (the common case)
            it = bound_syms[0]
            lo_e, hi_e = bound_ranges[it]
            rest_key = tuple(a for a in key if a is not it)
            lo_term = LinearForm({rest_key: coeff}) * linearize(lo_e)
            hi_term = LinearForm({rest_key: coeff}) * (linearize(hi_e) - LinearForm.constant(1))
            if coeff >= 0:
                lo_f = lo_f + lo_term
                hi_f = hi_f + hi_term
            else:
                lo_f = lo_f + hi_term
                hi_f = hi_f + lo_term
        return lo_f, hi_f

    for s in nodes:
        for n, _ in walk(s):
            idxs = None
            if isinstance(n, (N.Read,)) and n.name.name == buf_name and n.idx:
                idxs = n.idx
                reads += 1
            elif isinstance(n, (N.Assign, N.Reduce)) and n.name.name == buf_name:
                idxs = n.idx
                writes += 1
            if idxs:
                for d, e in enumerate(idxs):
                    lo_f, hi_f = bound_index(e)
                    union_dim(d, lo_f, hi_f)

    if not lo_forms:
        raise SchedulingError(f"infer_bounds: {buf_name!r} is not accessed within the scope")

    lo_exprs = [simplify_expr(linear_to_expr(f), env) for f in lo_forms]
    hi_exprs = [
        simplify_expr(N.BinOp("+", linear_to_expr(f), N.Const(1, index_t), index_t), env) for f in hi_forms
    ]
    return Bounds(buf_name, lo_exprs, hi_exprs, reads, writes)
