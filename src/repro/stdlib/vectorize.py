"""The user-defined ``vectorize`` scheduling operator and its helpers
(Section 6.1.1), plus CSE and LICM.

``vectorize`` is parameterised over vector width, precision, memory type and
instruction set, so the same library function targets AVX2, AVX-512, or any
machine created with :func:`repro.machines.make_vector_machine`.  Its steps
follow the paper:

1. expose parallelism by dividing the loop,
2. parallelise reductions (partial sums per vector lane),
3. stage the computation into single-operation statements (Figure 4), with a
   ``rules`` hook such as :func:`fma_rule` controlling staging,
4. fission into one loop per staged statement and ``replace`` each loop with
   the matching hardware instruction.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..analysis.effects import body_depends_on_iter
from ..analysis.linear import const_value
from ..cursors.cursor import (
    AllocCursor,
    AssignCursor,
    BlockCursor,
    ForCursor,
    IfCursor,
    ReduceCursor,
    StmtCursor,
)
from ..errors import InvalidCursorError, SchedulingError
from ..ir import nodes as N
from ..primitives import (
    bind_expr,
    divide_loop,
    expand_dim,
    fission,
    lift_alloc,
    remove_loop,
    reorder_stmts,
    replace_all,
    set_memory,
    set_precision,
    simplify,
    stage_mem,
    stage_reduction,
    unroll_loop,
)
from .tiling import cleanup, interleave_loop

__all__ = [
    "fma_rule",
    "vectorize",
    "stage_compute",
    "fission_into_singles",
    "parallelize_reductions",
    "CSE",
    "LICM",
]


# ---------------------------------------------------------------------------
# staging rules
# ---------------------------------------------------------------------------


def fma_rule(stmt_cursor) -> List[int]:
    """Staging rule: when the statement is ``dst (+)= a * b``, keep the
    multiplication fused with the accumulation so that it later unifies with
    an FMA instruction (Figure 4c)."""
    node = stmt_cursor._node()
    keep: List[int] = []
    rhs = node.rhs
    if isinstance(node, N.Reduce) and isinstance(rhs, N.BinOp) and rhs.op == "*":
        keep.append(id(rhs))
    if (
        isinstance(node, N.Assign)
        and isinstance(rhs, N.BinOp)
        and rhs.op == "+"
        and isinstance(rhs.rhs, N.BinOp)
        and rhs.rhs.op == "*"
    ):
        keep.append(id(rhs.rhs))
    return keep


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------


def parallelize_reductions(p, loop, vw: int, mem=None, precision: Optional[str] = None, new_prefix: str = "acc_vec"):
    """Stage every reduction carried by ``loop`` whose target does not depend
    on the loop iterator into ``vw`` per-lane partial sums.  When ``mem`` /
    ``precision`` are given, the partial-sum buffer is placed in that (vector
    register) memory."""
    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    k = 0
    while True:
        loop = p.forward(loop) if loop._proc is not p else loop
        target = None
        it = loop.iter_sym()
        for c in loop.find("_ += _", many=True):
            node = c._node()
            from ..ir.build import used_syms_expr

            if node.name.name.startswith(new_prefix):
                continue
            idx_syms = set()
            for i in node.idx:
                idx_syms |= used_syms_expr(i)
            if it not in idx_syms:
                target = c
                break
        if target is None:
            return p
        name = f"{new_prefix}{k}"
        try:
            p = stage_reduction(p, loop, target, name, vw)
        except SchedulingError:
            return p
        if mem is not None:
            p = set_memory(p, name, mem)
        if precision is not None:
            p = set_precision(p, name, precision)
        k += 1
        try:
            loop = p.find_loop(loop.name())
        except InvalidCursorError:
            return p


def _stage_operand(p, expr_cursor, name: str, precision: str, mem):
    p = bind_expr(p, expr_cursor, name)
    p = set_memory(p, name, mem)
    p = set_precision(p, name, precision)
    return p


def stage_compute(p, stmt, precision: str, mem, rules: Sequence[Callable] = (), var_prefix: str = "var"):
    """Stage one Assign/Reduce statement into single-operation statements over
    vector-register temporaries (step 3 of ``vectorize``, Figure 4)."""
    stmt = p.forward(stmt) if stmt._proc is not p else stmt
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"{var_prefix}{counter[0]}"

    node = stmt._node()
    keep_ids: List[int] = []
    for rule in rules:
        keep_ids.extend(rule(stmt))

    # 1. stage the destination through a register temporary when it lives in memory
    dest_name = node.name
    tmp_name = None
    dest_is_register = _is_register_read(p, N.Read(dest_name, list(node.idx), None), mem)
    rhs_is_register_read = isinstance(node.rhs, N.Read) and _is_register_read(p, node.rhs, mem)
    # a plain store (memory <- register) or load needs no destination staging
    if node.idx and not dest_is_register and not (isinstance(node, N.Assign) and rhs_is_register_read):
        window = N.WindowExpr(dest_name, [N.Point(i) for i in node.idx], None)
        tmp_name = fresh()
        p = stage_mem(p, stmt.as_block(), window, tmp_name)
        p = set_memory(p, tmp_name, mem)
        p = set_precision(p, tmp_name, precision)
        # re-locate the compute statement (it now writes the temporary)
        stmt = p.find(f"{tmp_name} = _", many=True)
        stmt = [c for c in stmt if not isinstance(c._node().rhs, N.Read) or c._node().rhs.idx][0] if False else None
        # the compute statement is the one between load and store; find it as
        # the statement whose rhs is not a plain read of the destination
        candidates = [c for c in p.find(f"{tmp_name} = _", many=True)] + [
            c for c in p.find(f"{tmp_name} += _", many=True)
        ]
        compute = None
        for c in candidates:
            rhs = c._node().rhs
            if isinstance(rhs, N.Read) and rhs.name is dest_name:
                continue
            compute = c
        if compute is None:
            raise SchedulingError("stage_compute: could not locate the staged compute statement")
        stmt = compute

    # 2. stage operands bottom-up so every statement performs one operation.
    # Each pass re-examines the (current) statement, binds the next operand
    # that still lives outside the register file, and repeats until the
    # statement is a single vector operation.
    def is_simple(p, e) -> bool:
        """Already a register temporary or a constant?"""
        if isinstance(e, N.Const):
            return True
        if isinstance(e, N.Read):
            return _is_register_read(p, e, mem)
        return False

    def pick_candidate(p, stmt_cursor, keep_ids):
        """Choose the next sub-expression of the rhs to bind, or None."""
        node = stmt_cursor._node()
        rhs = node.rhs

        # value-position sub-expressions only (never descend into indices)
        def collect(e, rel):
            out = [(e, rel)]
            if isinstance(e, N.BinOp):
                out += collect(e.lhs, rel + (("lhs", None),))
                out += collect(e.rhs, rel + (("rhs", None),))
            elif isinstance(e, N.USub):
                out += collect(e.arg, rel + (("arg", None),))
            elif isinstance(e, N.Extern):
                for i, a in enumerate(e.args):
                    out += collect(a, rel + (("args", i),))
            return out

        post = collect(rhs, (("rhs", None),))
        post.reverse()
        # 1. any non-register leaf read that is not the entire rhs
        for n, rel in post:
            if n is rhs:
                continue
            if isinstance(n, N.Read) and not _is_register_read(p, n, mem):
                return rel
        # 2. any strict sub-operation whose operands are all simple, unless it
        #    is protected by a staging rule (e.g. the multiply of an FMA)
        for n, rel in post:
            if n is rhs or id(n) in keep_ids:
                continue
            if isinstance(n, N.BinOp) and is_simple(p, n.lhs) and is_simple(p, n.rhs):
                return rel
            if isinstance(n, N.USub) and is_simple(p, n.arg):
                return rel
            if isinstance(n, N.Extern) and all(is_simple(p, a) for a in n.args):
                return rel
        # 3. for reductions, bind the whole rhs unless a rule keeps it fused
        if isinstance(node, N.Reduce) and isinstance(rhs, (N.BinOp, N.USub, N.Extern)):
            if id(rhs) not in keep_ids and not (
                isinstance(rhs, N.BinOp) and is_simple(p, rhs.lhs) and is_simple(p, rhs.rhs) and id(rhs) in keep_ids
            ):
                if id(rhs) not in keep_ids:
                    return (("rhs", None),)
        return None

    guard = 0
    while guard < 64:
        guard += 1
        stmt = p.forward(stmt) if stmt._proc is not p else stmt
        keep_ids = []
        for rule in rules:
            keep_ids.extend(rule(stmt))
        rel = pick_candidate(p, stmt, keep_ids)
        if rel is None:
            break
        from ..cursors.cursor import make_expr_cursor

        target = make_expr_cursor(p, stmt._path + rel)
        name = fresh()
        p = _stage_operand(p, target, name, precision, mem)
    return p


def _find_expr_by_id(p, stmt_cursor, expr_id):
    from ..ir.build import walk

    node = stmt_cursor._node()
    for n, rel in walk(node):
        if id(n) == expr_id:
            from ..cursors.cursor import make_expr_cursor

            return make_expr_cursor(p, stmt_cursor._path + rel)
    return None


def _is_register_read(p, read: N.Read, mem) -> bool:
    """Is this read already a register (vector-memory) temporary?"""
    from ..ir.build import walk

    for n, _ in walk(p._root):
        if isinstance(n, N.Alloc) and n.name is read.name:
            return n.mem is mem
    return False


def fission_into_singles(p, loop, vw: Optional[int] = None):
    """Expand per-iteration temporaries into per-lane buffers, hoist them out
    of the loop, and fission the loop so each statement gets its own loop
    (step 4 of ``vectorize``)."""
    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    it = loop.iter_sym()
    if vw is None:
        vw = const_value(loop.hi()._node()) or 8

    # expand and hoist allocations out of the loop (and its guard, if any)
    done_names = set()
    while True:
        loop = p.forward(loop) if loop._proc is not p else loop
        allocs = [
            c
            for c in loop.find("_: _", many=True)
            if isinstance(c, AllocCursor) and c.name() not in done_names
        ]
        if not allocs:
            break
        a = allocs[0]
        done_names.add(a.name())
        p = expand_dim(p, a, vw, N.Read(it, [], None))
        a = p.find(f"{a.name()}: _")
        # lift until the allocation sits just outside the vector loop
        lifts = 0
        while lifts < 8:
            lifts += 1
            try:
                p = lift_alloc(p, a)
            except (SchedulingError, InvalidCursorError):
                break
            a = p.find(f"{a.name()}: _")
            loop_f = p.forward(loop)
            if not loop_f.is_valid() or a._path[:-1] == loop_f._path[:-1]:
                break

    # if the loop body is a single guard containing several statements, split
    # the guard first so each statement keeps its own predicate
    while True:
        loop = p.forward(loop)
        body = loop.body()
        if len(body) == 1 and isinstance(body[0], IfCursor) and len(body[0].body()) > 1:
            p = fission(p, body[0].body()[0].after())
            continue
        break

    # fission between every pair of consecutive statements
    while True:
        loop = p.forward(loop)
        body = loop.body() if isinstance(loop, ForCursor) else None
        if body is None or len(body) <= 1:
            break
        p = fission(p, body[0].after())
        # continue with the second of the two loops
        nxt = p.forward(loop)
        follower = nxt.next() if nxt.is_valid() else None
        if follower is None or not follower.is_valid():
            break
        loop = follower
    return p


def CSE(p, scope, precision: str = "f32", prefix: str = "shared"):
    """Common-subexpression elimination over a loop body: repeated buffer
    reads are bound once to a temporary (used before vectorisation so the
    shared load is only issued once; Section 6.2.1)."""
    scope = p.forward(scope) if getattr(scope, "_proc", p) is not p else scope
    if isinstance(scope, BlockCursor):
        stmts = list(scope)
    else:
        stmts = [scope]
    from ..ir.build import walk
    from ..ir.printing import expr_str

    seen = {}
    for s in stmts:
        for n, _ in walk(s._node()):
            if isinstance(n, N.Read) and n.idx:
                seen.setdefault(expr_str(n), []).append(n)
    k = 0
    for text, occurrences in seen.items():
        if len(occurrences) < 2:
            continue
        cursors = []
        for s in stmts:
            s = p.forward(s) if s._proc is not p else s
            try:
                cursors.extend(s.find(text, many=True))
            except InvalidCursorError:
                pass
        if len(cursors) < 2:
            continue
        try:
            p = bind_expr(p, cursors, f"{prefix}{k}", cse=True)
            p = set_precision(p, f"{prefix}{k}", precision)
            k += 1
        except SchedulingError:
            continue
    return p


def LICM(p, loop, rc: bool = False):
    """Loop-invariant code motion: hoist invariant assignments (e.g. vector
    broadcasts) out of the loop."""
    from .tiling import hoist_from_loop

    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    name = loop.name()
    p = hoist_from_loop(p, loop)
    try:
        new_loop = p.find_loop(name)
    except InvalidCursorError:
        new_loop = loop
    if rc:
        return p, (None, new_loop)
    return p


# ---------------------------------------------------------------------------
# the vectorize operator
# ---------------------------------------------------------------------------


def vectorize(
    p,
    loop,
    vw: int,
    precision: str,
    mem_type,
    instrs,
    rules: Sequence[Callable] = (),
    tail: str = "cut",
):
    """Vectorise a loop for a ``vw``-lane machine (Section 6.1.1).

    ``instrs`` is the list of instruction procedures to map onto (typically
    ``machine.get_instructions(precision)``); ``rules`` customises staging
    (e.g. ``[fma_rule]``)."""
    loop = p.find_loop(loop) if isinstance(loop, str) else p.forward(loop)
    loop_name = loop.name()

    # 1. parallelise reductions carried by this loop
    p = parallelize_reductions(p, loop, vw, mem_type, precision)
    loop = p.find_loop(loop_name)

    # 2. expose vector parallelism
    hi = const_value(loop.hi()._node())
    if tail == "perfect" or (hi is not None and hi % vw == 0):
        p = divide_loop(p, loop, vw, [f"{loop_name}o", f"{loop_name}i"], perfect=True)
    else:
        p = divide_loop(p, loop, vw, [f"{loop_name}o", f"{loop_name}i"], tail=tail)
    p = simplify(p)
    inner = p.find_loop(f"{loop_name}i")

    # 3. stage computation into single-operation register statements
    compute_stmts = [
        c
        for c in list(inner.body())
        if isinstance(c, (AssignCursor, ReduceCursor))
        or (isinstance(c, IfCursor) and len(c.body()) == 1)
    ]
    for c in compute_stmts:
        c = p.forward(c)
        if isinstance(c, IfCursor):
            c = c.body()[0]
        if not isinstance(c, (AssignCursor, ReduceCursor)):
            continue
        p = stage_compute(p, c, precision, mem_type, rules)

    # 4. fission into one loop per statement and map to instructions
    inner = p.find_loop(f"{loop_name}i")
    p = fission_into_singles(p, inner, vw)
    p = simplify(p)
    p = replace_all(p, instrs)
    return p


# Lift the vectorizer's vocabulary into the combinator namespace
# (``S.vectorize('i', 8, ...)``; see repro.api).
from ..api import register_op as _register_op  # noqa: E402

for _op in (vectorize, parallelize_reductions, stage_compute, fission_into_singles, CSE, LICM):
    _register_op(_op)
del _op
