"""Reproduction of ELEVATE-style scheduling (Section 6.3.1).

ELEVATE drives rewrites with *traversal strategies* and a single, one-time,
relative reference (a linear time model).  Both are reproduced here in user
code: traversals are generators over cursors (``Top = Cursor →
Stream[Cursor]``), and the linear-time reference frame is recreated with the
``nav`` / ``savec`` / ``reframe`` combinators from
:mod:`repro.stdlib.higher_order`.

The traversal generators here are also the engine behind the first-class
traversal *combinators* of :mod:`repro.api` — ``topdown(sched)`` /
``bottomup(sched)`` / ``innermost_loops(sched)`` apply a ``Schedule`` value at
every site one of these generators produces, which is the Schedule-valued
form of the same ELEVATE strategies.
"""

from __future__ import annotations

from typing import Iterator

from ..cursors.cursor import Cursor, ForCursor, IfCursor, StmtCursor
from ..errors import InvalidCursorError, SchedulingError
from ..primitives import fission, lift_scope, remove_loop, reorder_stmts
from .higher_order import lift, reframe, repeat, seq, try_else

__all__ = [
    "lrn",
    "topdown",
    "bottomup",
    "innermost_loops",
    "reorder_before",
    "remove_parent_loop",
    "fission_after",
    "hoist_stmt",
    "hoist_stmt_loop",
]


# ---------------------------------------------------------------------------
# Traversal strategies (Top = Cursor -> Stream[Cursor])
# ---------------------------------------------------------------------------


def lrn(c) -> Iterator[Cursor]:
    """Post-order (left, right, node) traversal over the loops/ifs below ``c``
    — the paper's example traversal."""
    for child in c.body():
        if isinstance(child, (ForCursor, IfCursor)):
            yield from lrn(child)
        yield child


def topdown(c) -> Iterator[Cursor]:
    """Pre-order traversal of the statements below ``c``."""
    yield c
    if isinstance(c, (ForCursor, IfCursor)):
        for child in c.body():
            yield from topdown(child)
        if isinstance(c, IfCursor):
            for child in c.orelse():
                yield from topdown(child)


def bottomup(c) -> Iterator[Cursor]:
    """Post-order traversal of the statements below ``c``."""
    if isinstance(c, (ForCursor, IfCursor)):
        for child in c.body():
            yield from bottomup(child)
        if isinstance(c, IfCursor):
            for child in c.orelse():
                yield from bottomup(child)
    yield c


def innermost_loops(c) -> Iterator[ForCursor]:
    """All loops below ``c`` that contain no further loops."""
    for cur in topdown(c):
        if isinstance(cur, ForCursor) and not any(isinstance(x, ForCursor) for x in topdown(cur) if x is not cur):
            yield cur


# ---------------------------------------------------------------------------
# Exo-style relative-reference operators, recreated in one line each
# ---------------------------------------------------------------------------

# reorder the statement at the cursor with the statement before it
reorder_before = reframe(lambda c: c.expand(1, 0), lift(reorder_stmts))

# remove the loop enclosing the cursor
remove_parent_loop = reframe(lambda c: c.parent(), lift(remove_loop))

# fission the enclosing loop right after the cursor
fission_after = reframe(lambda c: c.after(), lift(fission))


# The configuration-hoisting schedule of Figure 5c:
#   repeatedly (fission after the statement and remove the enclosing loop),
#   falling back to reordering the statement earlier within its block.
hoist_stmt = repeat(
    try_else(
        seq(fission_after, remove_parent_loop),
        reorder_before,
    )
)


def hoist_stmt_loop(p, c):
    """The same hoisting schedule written with Python loops and exceptions
    (Figure 5b) — kept for comparison with :data:`hoist_stmt`."""
    while True:
        try:
            try:
                while True:
                    p = reorder_stmts(p, p.forward(c).expand(1, 0))
            except SchedulingError:
                pass
            p = fission(p, p.forward(c).after())
            p = remove_loop(p, p.forward(c).parent())
        except (SchedulingError, InvalidCursorError):
            break
    return p
