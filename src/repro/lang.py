"""Names exported for use inside object-code definitions.

Object code is written as decorated Python functions.  Python evaluates
parameter annotations at definition time unless the defining module uses
``from __future__ import annotations``; to make object code work in either
mode, this module provides placeholder objects for the object-language type
and loop keywords (``size``, ``f32``, ``seq``, …).  The front-end never calls
these placeholders — it parses the *source text* — they only exist so the
surrounding Python module loads cleanly.
"""

from __future__ import annotations

from .ir.memories import DRAM, DRAM_STACK, DRAM_STATIC  # re-exported for convenience

__all__ = [
    "size",
    "index",
    "f16",
    "f32",
    "f64",
    "i8",
    "i16",
    "i32",
    "seq",
    "par",
    "stride",
    "DRAM",
    "DRAM_STACK",
    "DRAM_STATIC",
]


class _TypePlaceholder:
    """Placeholder that tolerates subscripting and ``@ memory`` annotation."""

    def __init__(self, name: str):
        self._name = name

    def __getitem__(self, _item):
        return self

    def __matmul__(self, _other):
        return self

    def __repr__(self):
        return self._name


size = _TypePlaceholder("size")
index = _TypePlaceholder("index")
f16 = _TypePlaceholder("f16")
f32 = _TypePlaceholder("f32")
f64 = _TypePlaceholder("f64")
i8 = _TypePlaceholder("i8")
i16 = _TypePlaceholder("i16")
i32 = _TypePlaceholder("i32")


def seq(lo, hi):  # pragma: no cover - never executed, parsed from source
    """Sequential loop range marker (``for i in seq(0, n)``)."""
    return range(lo, hi)


def par(lo, hi):  # pragma: no cover - never executed, parsed from source
    """Parallel loop range marker."""
    return range(lo, hi)


def stride(_buf, _dim):  # pragma: no cover - never executed, parsed from source
    """Stride inspection marker (``stride(A, 0)``)."""
    return 1
