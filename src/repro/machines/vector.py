"""Vector machine models (AVX2, AVX-512).

A :class:`VectorMachine` packages, externally to the compiler, everything a
scheduling library needs to know about a SIMD target (Section 6.1.1):

* the vector-register memory space,
* vector widths per precision,
* whether predicated (masked) loads/stores are available,
* the ``@instr`` procedures implementing loads, stores, broadcasts, arithmetic
  and FMAs (their bodies define semantics for the interpreter and unifier; the
  attached C templates are what the backend emits).

The instruction set is generated programmatically per precision so that the
same machinery instantiates AVX2 (256-bit) and AVX-512 (512-bit); new targets
are one function call away — exactly the "growing" workflow the paper argues
for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..frontend.decorators import proc_from_source
from ..ir.memories import Memory, MemoryKind
from ..ir.nodes import InstrInfo

__all__ = ["VectorMachine", "make_vector_machine", "AVX2", "AVX512"]


@dataclass
class InstructionSet:
    """The vector instructions for one precision."""

    load: object
    store: object
    broadcast: object
    set_zero: object
    add: object
    add_acc: object
    mul: object
    fma: object
    pred_load: Optional[object] = None
    pred_store: Optional[object] = None
    pred_fma: Optional[object] = None
    pred_add_acc: Optional[object] = None
    pred_broadcast: Optional[object] = None
    pred_mul: Optional[object] = None

    def all(self) -> List[object]:
        out = []
        for f in (
            self.fma,
            self.add_acc,
            self.add,
            self.mul,
            self.load,
            self.store,
            self.broadcast,
            self.set_zero,
            self.pred_fma,
            self.pred_add_acc,
            self.pred_mul,
            self.pred_load,
            self.pred_store,
            self.pred_broadcast,
        ):
            if f is not None:
                out.append(f)
        return out


@dataclass
class VectorMachine:
    """A SIMD hardware target description usable from scheduling code."""

    name: str
    width_bits: int
    mem_type: Memory
    supports_predication: bool
    instructions: Dict[str, InstructionSet] = field(default_factory=dict)
    patterns: List[str] = field(default_factory=list)

    def vec_width(self, precision: str) -> int:
        bits = {"f32": 32, "f64": 64, "i8": 8, "i32": 32}[precision]
        return self.width_bits // bits

    def get_instructions(self, precision: str) -> List[object]:
        return self.instructions[precision].all()

    def get_instruction_set(self, precision: str) -> InstructionSet:
        return self.instructions[precision]

    # convenience hooks used by the BLAS library
    def mem(self) -> Memory:
        return self.mem_type

    def __repr__(self) -> str:
        return f"<VectorMachine {self.name}>"


def _build_isa(machine_name: str, mem: Memory, precision: str, vw: int, predicated: bool) -> InstructionSet:
    """Generate the ``@instr`` procedures for one precision of one machine."""
    T = precision
    pfx = f"{machine_name.lower()}_{T}"
    env = {"VEC": mem}
    intrin = {
        ("AVX2", "f32"): ("_mm256", "ps"),
        ("AVX2", "f64"): ("_mm256", "pd"),
        ("AVX512", "f32"): ("_mm512", "ps"),
        ("AVX512", "f64"): ("_mm512", "pd"),
    }
    # Templates for the two x86 targets are real, compilable C (the native
    # backend emits them verbatim and links the result); other machines get
    # documentation pseudo-C that the native backend refuses to emit, falling
    # back to the instruction's scalar body.
    real = (machine_name, T) in intrin
    ibase, isfx = intrin.get((machine_name, T), ("_vec", T))

    def mk(name, src, c_template, cost):
        p = proc_from_source(src, env)
        p._root.instr = InstrInfo(c_template, "", cost, real)
        return p

    load = mk(
        f"{pfx}_load",
        f"""
def {pfx}_load(dst: [{T}][{vw}] @ VEC, src: [{T}][{vw}] @ DRAM):
    for i in seq(0, {vw}):
        dst[i] = src[i]
""",
        f"{{dst_data}} = {ibase}_loadu_{isfx}(&{{src_data}});",
        1.0,
    )
    store = mk(
        f"{pfx}_store",
        f"""
def {pfx}_store(dst: [{T}][{vw}] @ DRAM, src: [{T}][{vw}] @ VEC):
    for i in seq(0, {vw}):
        dst[i] = src[i]
""",
        f"{ibase}_storeu_{isfx}(&{{dst_data}}, {{src_data}});",
        1.0,
    )
    broadcast = mk(
        f"{pfx}_broadcast",
        f"""
def {pfx}_broadcast(dst: [{T}][{vw}] @ VEC, val: {T}):
    for i in seq(0, {vw}):
        dst[i] = val
""",
        f"{{dst_data}} = {ibase}_set1_{isfx}({{val}});",
        1.0,
    )
    set_zero = mk(
        f"{pfx}_set_zero",
        f"""
def {pfx}_set_zero(dst: [{T}][{vw}] @ VEC):
    for i in seq(0, {vw}):
        dst[i] = 0.0
""",
        f"{{dst_data}} = {ibase}_setzero_{isfx}();",
        1.0,
    )
    add = mk(
        f"{pfx}_add",
        f"""
def {pfx}_add(dst: [{T}][{vw}] @ VEC, a: [{T}][{vw}] @ VEC, b: [{T}][{vw}] @ VEC):
    for i in seq(0, {vw}):
        dst[i] = a[i] + b[i]
""",
        f"{{dst_data}} = {ibase}_add_{isfx}({{a_data}}, {{b_data}});",
        1.0,
    )
    add_acc = mk(
        f"{pfx}_add_acc",
        f"""
def {pfx}_add_acc(dst: [{T}][{vw}] @ VEC, a: [{T}][{vw}] @ VEC):
    for i in seq(0, {vw}):
        dst[i] += a[i]
""",
        f"{{dst_data}} = {ibase}_add_{isfx}({{dst_data}}, {{a_data}});",
        1.0,
    )
    mul = mk(
        f"{pfx}_mul",
        f"""
def {pfx}_mul(dst: [{T}][{vw}] @ VEC, a: [{T}][{vw}] @ VEC, b: [{T}][{vw}] @ VEC):
    for i in seq(0, {vw}):
        dst[i] = a[i] * b[i]
""",
        f"{{dst_data}} = {ibase}_mul_{isfx}({{a_data}}, {{b_data}});",
        1.0,
    )
    fma = mk(
        f"{pfx}_fma",
        f"""
def {pfx}_fma(dst: [{T}][{vw}] @ VEC, a: [{T}][{vw}] @ VEC, b: [{T}][{vw}] @ VEC):
    for i in seq(0, {vw}):
        dst[i] += a[i] * b[i]
""",
        f"{{dst_data}} = {ibase}_fmadd_{isfx}({{a_data}}, {{b_data}}, {{dst_data}});",
        1.0,
    )

    iset = InstructionSet(load, store, broadcast, set_zero, add, add_acc, mul, fma)
    if predicated:
        # Predicated (tail) instructions.  The semantics (the bodies below)
        # are "lanes with base + i < bound are touched, the rest keep their
        # previous value".  AVX-512 expresses this directly with opmask
        # intrinsics; AVX2 has only maskload/maskstore, so the arithmetic
        # forms go through tiny blend helpers emitted in the native backend's
        # preamble (see repro.backend.codegen.PREAMBLE).
        cnt = "({bound}) - ({base})"
        if machine_name == "AVX512" and real:
            k = f"repro_mask{vw}({cnt})"
            t_load = f"{{dst_data}} = {ibase}_mask_loadu_{isfx}({{dst_data}}, {k}, &{{src_data}});"
            t_store = f"{ibase}_mask_storeu_{isfx}(&{{dst_data}}, {k}, {{src_data}});"
            t_fma = f"{{dst_data}} = {ibase}_mask3_fmadd_{isfx}({{a_data}}, {{b_data}}, {{dst_data}}, {k});"
            t_addacc = f"{{dst_data}} = {ibase}_mask_add_{isfx}({{dst_data}}, {k}, {{dst_data}}, {{a_data}});"
            t_mul = f"{{dst_data}} = {ibase}_mask_mul_{isfx}({{dst_data}}, {k}, {{a_data}}, {{b_data}});"
            t_bcast = (
                f"{{dst_data}} = {ibase}_mask_blend_{isfx}({k}, {{dst_data}}, {ibase}_set1_{isfx}({{val}}));"
            )
        elif machine_name == "AVX2" and real:
            t_load = f"{{dst_data}} = repro_avx2_maskload_{isfx}({{dst_data}}, &{{src_data}}, {cnt});"
            t_store = f"repro_avx2_maskstore_{isfx}(&{{dst_data}}, {{src_data}}, {cnt});"
            t_fma = (
                f"{{dst_data}} = repro_avx2_maskblend_{isfx}({{dst_data}}, "
                f"{ibase}_fmadd_{isfx}({{a_data}}, {{b_data}}, {{dst_data}}), {cnt});"
            )
            t_addacc = (
                f"{{dst_data}} = repro_avx2_maskblend_{isfx}({{dst_data}}, "
                f"{ibase}_add_{isfx}({{dst_data}}, {{a_data}}), {cnt});"
            )
            t_mul = (
                f"{{dst_data}} = repro_avx2_maskblend_{isfx}({{dst_data}}, "
                f"{ibase}_mul_{isfx}({{a_data}}, {{b_data}}), {cnt});"
            )
            t_bcast = (
                f"{{dst_data}} = repro_avx2_maskblend_{isfx}({{dst_data}}, "
                f"{ibase}_set1_{isfx}({{val}}), {cnt});"
            )
        else:
            t_load = f"{{dst_data}} = {ibase}_maskz_loadu_{isfx}({cnt}, &{{src_data}});"
            t_store = f"{ibase}_mask_storeu_{isfx}(&{{dst_data}}, {cnt}, {{src_data}});"
            t_fma = f"{{dst_data}} = {ibase}_mask_fmadd_{isfx}({{a_data}}, {cnt}, {{b_data}}, {{dst_data}});"
            t_addacc = f"{{dst_data}} = {ibase}_mask_add_{isfx}({{dst_data}}, {cnt}, {{dst_data}}, {{a_data}});"
            t_mul = f"{{dst_data}} = {ibase}_maskz_mul_{isfx}({cnt}, {{a_data}}, {{b_data}});"
            t_bcast = f"{{dst_data}} = {ibase}_maskz_set1_{isfx}({cnt}, {{val}});"
        iset.pred_load = mk(
            f"{pfx}_maskload",
            f"""
def {pfx}_maskload(dst: [{T}][{vw}] @ VEC, src: [{T}][{vw}] @ DRAM, bound: index, base: index):
    for i in seq(0, {vw}):
        if base + i < bound:
            dst[i] = src[i]
""",
            t_load,
            1.5,
        )
        iset.pred_store = mk(
            f"{pfx}_maskstore",
            f"""
def {pfx}_maskstore(dst: [{T}][{vw}] @ DRAM, src: [{T}][{vw}] @ VEC, bound: index, base: index):
    for i in seq(0, {vw}):
        if base + i < bound:
            dst[i] = src[i]
""",
            t_store,
            1.5,
        )
        iset.pred_fma = mk(
            f"{pfx}_maskfma",
            f"""
def {pfx}_maskfma(dst: [{T}][{vw}] @ VEC, a: [{T}][{vw}] @ VEC, b: [{T}][{vw}] @ VEC, bound: index, base: index):
    for i in seq(0, {vw}):
        if base + i < bound:
            dst[i] += a[i] * b[i]
""",
            t_fma,
            1.5,
        )
        iset.pred_add_acc = mk(
            f"{pfx}_maskadd_acc",
            f"""
def {pfx}_maskadd_acc(dst: [{T}][{vw}] @ VEC, a: [{T}][{vw}] @ VEC, bound: index, base: index):
    for i in seq(0, {vw}):
        if base + i < bound:
            dst[i] += a[i]
""",
            t_addacc,
            1.5,
        )
        iset.pred_mul = mk(
            f"{pfx}_maskmul",
            f"""
def {pfx}_maskmul(dst: [{T}][{vw}] @ VEC, a: [{T}][{vw}] @ VEC, b: [{T}][{vw}] @ VEC, bound: index, base: index):
    for i in seq(0, {vw}):
        if base + i < bound:
            dst[i] = a[i] * b[i]
""",
            t_mul,
            1.5,
        )
        iset.pred_broadcast = mk(
            f"{pfx}_maskbroadcast",
            f"""
def {pfx}_maskbroadcast(dst: [{T}][{vw}] @ VEC, val: {T}, bound: index, base: index):
    for i in seq(0, {vw}):
        if base + i < bound:
            dst[i] = val
""",
            t_bcast,
            1.5,
        )
    return iset


def make_vector_machine(name: str, width_bits: int, *, supports_predication: bool) -> VectorMachine:
    """Instantiate a SIMD machine model (user-extensible: call this with your
    own parameters to target a new vector ISA)."""
    mem = Memory(f"VEC_{name}", MemoryKind.VECTOR_REG, lane_width_bits=width_bits)
    machine = VectorMachine(name, width_bits, mem, supports_predication)
    for precision in ("f32", "f64"):
        vw = machine.vec_width(precision)
        machine.instructions[precision] = _build_isa(name, mem, precision, vw, supports_predication)
    return machine


# The two x86 targets evaluated in the paper.  Both support predicated vector
# loads/stores (AVX2 via maskload/maskstore, AVX-512 via opmask registers),
# which is what the skinny-matrix schedule of Section 6.2.2 relies on.
AVX2 = make_vector_machine("AVX2", 256, supports_predication=True)
AVX512 = make_vector_machine("AVX512", 512, supports_predication=True)
