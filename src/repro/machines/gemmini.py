"""Gemmini accelerator model (Section 6.1.2, Appendix B).

Gemmini is a systolic-array matrix-multiply accelerator with a
software-managed 256 KiB scratchpad, a 16 KiB accumulator, and *configuration
registers* (load strides, output scale, activation) that instructions read
implicitly.  This module provides, externally to the compiler:

* the ``GEMM_SCRATCH`` / ``GEMM_ACCUM`` memory spaces,
* the configuration records,
* ``@instr`` procedures for the 16×16-tile load / store / matmul / zero
  operations, both in their bare form (``do_*``) and in ``*_v2`` form that
  bundles the configuration write (used by ``replace_and_inline`` followed by
  configuration hoisting, exactly as in the paper's Appendix B).

The hardware itself (FPGA/Firesim in the paper) is substituted by the
interpreter for correctness and by :mod:`repro.perf` for timing; configuration
writes are modelled as expensive (fence-like) operations, which is what makes
configuration hoisting show up in the performance results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..frontend.decorators import proc_from_source
from ..ir.config import new_config
from ..ir.memories import Memory, MemoryKind
from ..ir.nodes import InstrInfo
from ..ir.types import f32, index_t, i32

__all__ = ["GemminiMachine", "GEMMINI", "GEMM_SCRATCH", "GEMM_ACCUM"]


GEMM_SCRATCH = Memory("GEMM_SCRATCH", MemoryKind.SCRATCHPAD, capacity_bytes=256 * 1024)
GEMM_ACCUM = Memory("GEMM_ACCUM", MemoryKind.ACCUMULATOR, capacity_bytes=16 * 1024)

# configuration registers
config_ld_id1 = new_config("config_ld_id1", [("src_stride", index_t)])
config_ld_id2 = new_config("config_ld_id2", [("src_stride", index_t)])
config_st = new_config("config_st", [("dst_stride", index_t), ("scale", f32), ("act", index_t)])
config_mm = new_config("config_mm", [("mode", index_t)])


@dataclass
class GemminiMachine:
    """Gemmini machine description for scheduling libraries."""

    name: str = "Gemmini"
    tile: int = 16
    scratchpad: Memory = GEMM_SCRATCH
    accumulator: Memory = GEMM_ACCUM
    scratchpad_bytes: int = 256 * 1024
    accumulator_bytes: int = 16 * 1024
    instructions: Dict[str, object] = field(default_factory=dict)
    instr_pairs: List[tuple] = field(default_factory=list)

    def get(self, name: str):
        return self.instructions[name]


def _mk(env, src: str, c_template: str, cost: float):
    p = proc_from_source(src, env)
    p._root.instr = InstrInfo(c_template, "", cost)
    return p


def _build_gemmini() -> GemminiMachine:
    m = GemminiMachine()
    env = {
        "GEMM_SCRATCH": GEMM_SCRATCH,
        "GEMM_ACCUM": GEMM_ACCUM,
        "config_ld_id1": config_ld_id1,
        "config_ld_id2": config_ld_id2,
        "config_st": config_st,
        "config_mm": config_mm,
    }
    T = m.tile

    # -- configuration instructions -------------------------------------------
    m.instructions["config_ld_i8_id1"] = _mk(
        env,
        f"""
def config_ld_i8_id1(stride_val: index):
    config_ld_id1.src_stride = stride_val
""",
        "gemmini_extended3_config_ld({stride_val}, 1.0f, 0, 1);",
        8.0,
    )
    m.instructions["config_ld_i8_id2"] = _mk(
        env,
        f"""
def config_ld_i8_id2(stride_val: index):
    config_ld_id2.src_stride = stride_val
""",
        "gemmini_extended3_config_ld({stride_val}, 1.0f, 0, 2);",
        8.0,
    )
    m.instructions["config_st_acc_i8"] = _mk(
        env,
        f"""
def config_st_acc_i8(scale_val: f32, stride_val: index, act_val: index):
    config_st.scale = scale_val
    config_st.dst_stride = stride_val
    config_st.act = act_val
""",
        "gemmini_extended_config_st({stride_val}, {act_val}, {scale_val});",
        8.0,
    )
    m.instructions["config_matmul"] = _mk(
        env,
        f"""
def config_matmul(mode_val: index):
    config_mm.mode = mode_val
""",
        "gemmini_extended_config_ex(WS, 0, 0, 1, 0, 0);",
        8.0,
    )

    # -- data-movement and compute instructions --------------------------------
    m.instructions["do_zero_acc_i32"] = _mk(
        env,
        f"""
def do_zero_acc_i32(dst: [i32][{T}, {T}] @ GEMM_ACCUM):
    for i in seq(0, {T}):
        for j in seq(0, {T}):
            dst[i, j] = 0.0
""",
        "gemmini_extended_mvin(0, (uint64_t)&{dst_data}, 16, 16);",
        2.0,
    )
    m.instructions["do_ld_i8_id1"] = _mk(
        env,
        f"""
def do_ld_i8_id1(src: [i8][{T}, {T}] @ DRAM, dst: [i8][{T}, {T}] @ GEMM_SCRATCH):
    for i in seq(0, {T}):
        for j in seq(0, {T}):
            dst[i, j] = src[i, j]
""",
        "gemmini_extended_mvin(&{src_data}, (uint64_t)&{dst_data}, 16, 16);",
        2.0,
    )
    m.instructions["do_ld_i8_id2"] = _mk(
        env,
        f"""
def do_ld_i8_id2(src: [i8][{T}, {T}] @ DRAM, dst: [i8][{T}, {T}] @ GEMM_SCRATCH):
    for i in seq(0, {T}):
        for j in seq(0, {T}):
            dst[i, j] = src[i, j]
""",
        "gemmini_extended_mvin2(&{src_data}, (uint64_t)&{dst_data}, 16, 16);",
        2.0,
    )
    m.instructions["do_matmul_acc_i8"] = _mk(
        env,
        f"""
def do_matmul_acc_i8(a: [i8][{T}, {T}] @ GEMM_SCRATCH, b: [i8][{T}, {T}] @ GEMM_SCRATCH, dst: [i32][{T}, {T}] @ GEMM_ACCUM):
    for i in seq(0, {T}):
        for j in seq(0, {T}):
            for k in seq(0, {T}):
                dst[i, j] += a[i, k] * b[k, j]
""",
        "gemmini_extended_preload((uint64_t)&{b_data}, (uint64_t)&{dst_data} | 0x40000000, 16, 16, 16, 16);\n"
        "gemmini_extended_compute_preloaded((uint64_t)&{a_data}, ~((uint64_t)0), 16, 16, 16, 16);",
        16.0,
    )
    m.instructions["do_st_acc_i8"] = _mk(
        env,
        f"""
def do_st_acc_i8(src: [i32][{T}, {T}] @ GEMM_ACCUM, dst: [i8][{T}, {T}] @ DRAM):
    for i in seq(0, {T}):
        for j in seq(0, {T}):
            dst[i, j] = relu(acc_scale(src[i, j], config_st.scale))
""",
        "gemmini_extended_mvout((void*)&{dst_data}, (uint64_t)&{src_data}, 16, 16);",
        2.0,
    )

    # -- *_v2 variants bundling their configuration writes ----------------------
    def v2(name, cfg_src):
        base = m.instructions[name]
        env2 = dict(env)
        env2[name] = base
        return _mk(env2, cfg_src, base._root.instr.c_instr, base._root.instr.cost)

    m.instructions["ld_i8_id1_v2"] = v2(
        "do_ld_i8_id1",
        f"""
def ld_i8_id1_v2(stride_val: index, src: [i8][{T}, {T}] @ DRAM, dst: [i8][{T}, {T}] @ GEMM_SCRATCH):
    config_ld_id1.src_stride = stride_val
    do_ld_i8_id1(src, dst)
""",
    )
    m.instructions["ld_i8_id2_v2"] = v2(
        "do_ld_i8_id2",
        f"""
def ld_i8_id2_v2(stride_val: index, src: [i8][{T}, {T}] @ DRAM, dst: [i8][{T}, {T}] @ GEMM_SCRATCH):
    config_ld_id2.src_stride = stride_val
    do_ld_i8_id2(src, dst)
""",
    )
    m.instructions["st_acc_i8_v2"] = v2(
        "do_st_acc_i8",
        f"""
def st_acc_i8_v2(scale_val: f32, stride_val: index, act_val: index, src: [i32][{T}, {T}] @ GEMM_ACCUM, dst: [i8][{T}, {T}] @ DRAM):
    config_st.scale = scale_val
    config_st.dst_stride = stride_val
    config_st.act = act_val
    do_st_acc_i8(src, dst)
""",
    )

    m.instr_pairs = [
        ("do_ld_i8_id1", "ld_i8_id1_v2"),
        ("do_ld_i8_id2", "ld_i8_id2_v2"),
        ("do_st_acc_i8", "st_acc_i8_v2"),
    ]
    return m


GEMMINI = _build_gemmini()
