"""Hardware target descriptions (defined externally to the compiler).

* :data:`AVX2`, :data:`AVX512` — x86 SIMD targets (Section 6.1.1, 6.2)
* :data:`GEMMINI` — the Gemmini matrix accelerator (Section 6.1.2, Appendix B)

New targets are created with :func:`make_vector_machine` or by instantiating
:class:`GemminiMachine` — no compiler changes required.
"""

from .gemmini import GEMM_ACCUM, GEMM_SCRATCH, GEMMINI, GemminiMachine
from .vector import AVX2, AVX512, VectorMachine, make_vector_machine

__all__ = [
    "AVX2",
    "AVX512",
    "VectorMachine",
    "make_vector_machine",
    "GEMMINI",
    "GemminiMachine",
    "GEMM_SCRATCH",
    "GEMM_ACCUM",
]
