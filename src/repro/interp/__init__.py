"""Object-language interpreter (numpy-backed reference semantics)."""

from .interpreter import InterpError, check_equiv, make_random_args, run_proc

__all__ = ["InterpError", "check_equiv", "make_random_args", "run_proc"]
