"""Object-language execution engines.

Two backends share one semantics: the tree-walking reference interpreter
(:mod:`repro.interp.interpreter`) and the NumPy compiled execution engine
(:mod:`repro.interp.compile`).  ``run_proc``/``check_equiv`` default to the
compiled engine with automatic fallback to the interpreter; pass
``backend="interp"`` for the reference semantics, ``backend="c"`` for native
execution (first runs quarantined by :mod:`repro.guard`), or
``backend="differential"`` to cross-check.  Degradations down the
``c → compiled → interp`` ladder are recorded as structured fallback events
queryable via :func:`exec_stats`.

Loops annotated ``par`` by :func:`~repro.primitives.parallelize_loop`
execute on multiple cores: ``run_proc(threads=...)`` / ``REPRO_NUM_THREADS``
set the worker count (see :mod:`repro.interp.parallel`), and
``exec_stats()["parallel"]`` reports how many loops actually dispatched.
"""

from .compile import CompileError, CompiledProc, clear_compile_cache, compile_proc, compiled_source
from .parallel import (
    MAX_THREADS,
    PAR_CHUNKS,
    ThreadCountError,
    par_stats,
    reset_par_stats,
    resolve_num_threads,
)
from .interpreter import (
    VALID_BACKENDS,
    DifferentialError,
    InterpError,
    check_equiv,
    clear_exec_stats,
    default_backend,
    exec_stats,
    make_random_args,
    resolve_backend,
    run_proc,
    set_default_backend,
)

__all__ = [
    "InterpError",
    "DifferentialError",
    "CompileError",
    "CompiledProc",
    "check_equiv",
    "make_random_args",
    "run_proc",
    "compile_proc",
    "compiled_source",
    "clear_compile_cache",
    "default_backend",
    "set_default_backend",
    "exec_stats",
    "clear_exec_stats",
    "VALID_BACKENDS",
    "resolve_backend",
    "MAX_THREADS",
    "PAR_CHUNKS",
    "ThreadCountError",
    "par_stats",
    "reset_par_stats",
    "resolve_num_threads",
]
