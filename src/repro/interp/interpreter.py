"""Reference interpreter for the object language.

The interpreter executes procedures against numpy buffers and is the ground
truth used by the test suite to check that scheduling preserved functional
equivalence (the role the paper's SMT-checked semantics play for Exo 2), and
by the performance model's validation tests.

``@instr`` procedures are executed through their bodies, which define their
semantics, exactly as in Exo's exocompilation model.

Backend selection
-----------------
:func:`run_proc` (and therefore :func:`check_equiv`) takes a ``backend``
argument:

* ``"compiled"`` (the default) — the NumPy compiled execution engine
  (:mod:`repro.interp.compile`): ~2–3 orders of magnitude faster, with
  automatic per-statement fallback to this tree interpreter for constructs it
  cannot lower, and a silent whole-procedure fallback when a procedure cannot
  be compiled at all;
* ``"interp"`` — this tree-walking reference interpreter;
* ``"c"`` — the native backend (:mod:`repro.backend.native`): the procedure
  is lowered to C with real AVX2/AVX-512 intrinsics, compiled with the system
  ``cc`` (artifacts persist in an on-disk cache) and called through
  ``ctypes``.  An artifact's *first* run on this machine happens inside a
  forked quarantine guard (:mod:`repro.guard`): a crash or hang poisons the
  artifact instead of killing this process, a clean run validates it so
  later calls go in-process at full speed;
* ``"differential"`` — run the engines on identical inputs and raise
  :class:`DifferentialError` if any tensor argument diverges beyond
  ``check_equiv`` tolerances.  The compiled engine is cross-checked against
  this interpreter always, and the native C backend joins as a third leg
  whenever a toolchain is available.

Degradation ladder
------------------
Execution degrades ``c → compiled → interp``: a missing toolchain, an
unlowerable construct, a poisoned artifact, or a quarantine failure drops
``"c"`` to the compiled NumPy engine, and a procedure the NumPy engine
cannot compile drops to this tree interpreter.  Every step down the ladder
is recorded as a structured :class:`~repro.guard.events.FallbackEvent`
(reason, stage, artifact key) queryable through :func:`exec_stats` — not a
warning to scrape.

The default can be overridden with the ``REPRO_EXEC_BACKEND`` environment
variable or :func:`set_default_backend`; both reject invalid names with the
list of valid backends up front.

Out-of-bounds accesses — including *negative* indices, which NumPy would
silently wrap — raise :class:`InterpError` under every backend.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend.lowering import NP_DTYPES as _DTYPES
from ..backend.lowering import np_dtype_for as _dtype_for
from ..errors import ExoError
from ..ir import nodes as N
from ..ir.externs import extern_by_name
from ..ir.syms import Sym
from ..ir.types import ScalarType, TensorType

__all__ = [
    "run_proc",
    "InterpError",
    "DifferentialError",
    "make_random_args",
    "check_equiv",
    "set_default_backend",
    "default_backend",
    "exec_stats",
    "clear_exec_stats",
    "VALID_BACKENDS",
    "resolve_backend",
]


class InterpError(ExoError):
    """Raised when object code cannot be executed (e.g. out-of-bounds access)."""


class DifferentialError(InterpError):
    """The compiled engine and the tree interpreter disagreed on an output."""


VALID_BACKENDS = ("compiled", "interp", "differential", "c")
_BACKENDS = VALID_BACKENDS
_default_backend: Optional[str] = None  # set_default_backend overrides the env


def resolve_backend(backend: Optional[str], source: str = "backend=") -> str:
    """Validate a backend name up front, naming where the bad value came from
    and listing the valid backends — instead of failing deep in dispatch."""
    if backend is None:
        return default_backend()
    if backend not in _BACKENDS:
        raise InterpError(
            f"invalid execution backend {backend!r} (from {source}); "
            f"valid backends: {', '.join(_BACKENDS)}"
        )
    return backend


def default_backend() -> str:
    if _default_backend is not None:
        return _default_backend
    env = os.environ.get("REPRO_EXEC_BACKEND")
    if not env:
        return "compiled"
    return resolve_backend(env, source="the REPRO_EXEC_BACKEND environment variable")


def set_default_backend(name: str) -> None:
    """Set the process-wide default execution backend (see module docstring)."""
    if name not in _BACKENDS:
        raise ValueError(
            f"invalid execution backend {name!r}; valid backends: {', '.join(_BACKENDS)}"
        )
    global _default_backend
    _default_backend = name


class _Interp:
    def __init__(self, config_state: Optional[Dict] = None):
        self.config_state = config_state if config_state is not None else {}

    # -- expressions -------------------------------------------------------------

    def eval_expr(self, e: N.Expr, env: Dict[Sym, object]):
        if isinstance(e, N.Const):
            return e.val
        if isinstance(e, N.Read):
            val = env[e.name]
            if not e.idx:
                if isinstance(val, np.ndarray) and val.ndim == 0:
                    return val[()]
                return val
            idx = tuple(self._eval_index(i, env) for i in e.idx)
            if any(i < 0 for i in idx):
                # NumPy would silently wrap negative indices
                raise InterpError(f"out-of-bounds read of {e.name}{list(idx)} (negative index)")
            try:
                return val[idx]
            except IndexError as exc:
                raise InterpError(f"out-of-bounds read of {e.name}{list(idx)}") from exc
        if isinstance(e, N.BinOp):
            lhs = self.eval_expr(e.lhs, env)
            rhs = self.eval_expr(e.rhs, env)
            return self._binop(e.op, lhs, rhs)
        if isinstance(e, N.USub):
            return -self.eval_expr(e.arg, env)
        if isinstance(e, N.WindowExpr):
            return self._eval_window(e, env)
        if isinstance(e, N.StrideExpr):
            arr = env[e.name]
            if not isinstance(arr, np.ndarray) or arr.ndim == 0:
                return 1
            return arr.strides[e.dim] // arr.itemsize
        if isinstance(e, N.Extern):
            fn = extern_by_name(e.fname)
            args = [self.eval_expr(a, env) for a in e.args]
            return fn.impl(*args)
        if isinstance(e, N.ReadConfig):
            key = (id(e.config), e.field_name)
            if key not in self.config_state:
                raise InterpError(
                    f"read of configuration field {e.config.name()}.{e.field_name} before any write"
                )
            return self.config_state[key]
        raise InterpError(f"cannot evaluate expression of type {type(e).__name__}")

    def _eval_index(self, e: N.Expr, env) -> int:
        v = self.eval_expr(e, env)
        return int(v)

    def _binop(self, op: str, lhs, rhs):
        both_int = isinstance(lhs, (int, np.integer)) and isinstance(rhs, (int, np.integer))
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if both_int:
                return int(lhs) // int(rhs)
            return lhs / rhs
        if op == "%":
            return lhs % rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "and":
            return bool(lhs) and bool(rhs)
        if op == "or":
            return bool(lhs) or bool(rhs)
        raise InterpError(f"unknown operator {op!r}")

    def _eval_window(self, w: N.WindowExpr, env):
        arr = env[w.name]
        if not isinstance(arr, np.ndarray):
            raise InterpError(f"cannot window the non-buffer value {w.name}")
        index: List[object] = []
        for d in w.idx:
            if isinstance(d, N.Interval):
                lo = self._eval_index(d.lo, env)
                hi = self._eval_index(d.hi, env)
                if lo < 0 or hi < 0:
                    raise InterpError(f"out-of-bounds window of {w.name} (negative bound)")
                index.append(slice(lo, hi))
            else:
                pt = self._eval_index(d.pt, env)
                if pt < 0:
                    raise InterpError(f"out-of-bounds window of {w.name} (negative index)")
                index.append(pt)
        if arr.ndim == 0 and index == [slice(0, 1)]:
            return arr.reshape(1)
        return arr[tuple(index)]

    # -- statements ---------------------------------------------------------------

    def exec_stmts(self, stmts: Sequence[N.Stmt], env: Dict[Sym, object]):
        for s in stmts:
            self.exec_stmt(s, env)

    def exec_stmt(self, s: N.Stmt, env: Dict[Sym, object]):
        if isinstance(s, (N.Assign, N.Reduce)):
            val = self.eval_expr(s.rhs, env)
            target = env[s.name]
            if isinstance(target, np.ndarray):
                if s.idx:
                    idx = tuple(self._eval_index(i, env) for i in s.idx)
                    if any(i < 0 for i in idx):
                        raise InterpError(f"out-of-bounds write to {s.name}{list(idx)} (negative index)")
                else:
                    idx = ()
                try:
                    if isinstance(s, N.Assign):
                        target[idx] = val
                    else:
                        target[idx] += val
                except IndexError as exc:
                    raise InterpError(f"out-of-bounds write to {s.name}{list(idx)}") from exc
            else:
                if isinstance(s, N.Assign):
                    env[s.name] = val
                else:
                    env[s.name] = env[s.name] + val
            return
        if isinstance(s, N.Alloc):
            if isinstance(s.typ, TensorType):
                shape = tuple(self._eval_index(d, env) for d in s.typ.shape)
                env[s.name] = np.zeros(shape, dtype=_dtype_for(s.typ))
            else:
                env[s.name] = np.zeros((), dtype=_dtype_for(s.typ))
            return
        if isinstance(s, N.For):
            lo = self._eval_index(s.lo, env)
            hi = self._eval_index(s.hi, env)
            for v in range(lo, hi):
                env[s.iter] = v
                self.exec_stmts(s.body, env)
            return
        if isinstance(s, N.If):
            if bool(self.eval_expr(s.cond, env)):
                self.exec_stmts(s.body, env)
            else:
                self.exec_stmts(s.orelse, env)
            return
        if isinstance(s, N.Pass):
            return
        if isinstance(s, N.Call):
            self.exec_call(s, env)
            return
        if isinstance(s, N.WindowStmt):
            env[s.name] = self._eval_window(s.rhs, env)
            return
        if isinstance(s, N.WriteConfig):
            self.config_state[(id(s.config), s.field_name)] = self.eval_expr(s.rhs, env)
            return
        raise InterpError(f"cannot execute statement of type {type(s).__name__}")

    def exec_call(self, call: N.Call, env: Dict[Sym, object]):
        callee = call.proc
        cdef = callee._root if hasattr(callee, "_root") else callee
        new_env: Dict[Sym, object] = {}
        for fn_arg, actual in zip(cdef.args, call.args):
            if isinstance(fn_arg.typ, TensorType):
                val = self.eval_expr(actual, env)
                if not isinstance(val, np.ndarray):
                    val = np.asarray(val)
                new_env[fn_arg.name] = val
            else:
                new_env[fn_arg.name] = self.eval_expr(actual, env)
        self.exec_proc(cdef, new_env)

    def exec_proc(self, proc_def: N.ProcDef, env: Dict[Sym, object]):
        self.exec_stmts(proc_def.body, env)


def _run_compiled(
    root,
    env: Dict[Sym, object],
    config_state,
    inline: Optional[bool] = None,
    threads: Optional[int] = None,
) -> None:
    """Execute through the compiled engine (raises CompileError if the whole
    procedure cannot be lowered)."""
    from .compile import _RunContext, compile_proc

    engine = compile_proc(root, inline=inline, threads=threads)
    ctx = _RunContext(config_state)
    engine.run(ctx, [env[a.name] for a in root.args])


def _run_native(root, values: Dict[str, object], threads: Optional[int] = None) -> None:
    """Execute through the native C backend with first-run quarantine
    (compile-and-cache, guard the first run, then call in-process).

    ``threads`` bounds the OpenMP worker count of ``par`` loops (forwarded to
    ``omp_set_num_threads`` when the artifact was built with OpenMP).

    Raises CodegenError / NativeError (incl. ArtifactPoisonedError) when the
    procedure cannot be lowered, no toolchain is available, or the artifact
    failed its quarantine — callers decide how to degrade."""
    from ..backend.native import call_guarded, compile_native

    call_guarded(compile_native(root), values, threads=threads)


def _fallback_reason(exc) -> str:
    """The stable reason identifier a degradation event records for ``exc``."""
    reason = getattr(exc, "reason", None)
    if reason:
        return reason
    from ..errors import CodegenError

    if isinstance(exc, CodegenError):
        return "codegen-declined"
    return "native-unavailable"


def _record_native_fallback(root, exc, stage: str = "c->compiled") -> None:
    from ..guard import record_fallback

    record_fallback(
        root.name,
        stage,
        _fallback_reason(exc),
        artifact_key=getattr(exc, "artifact_key", None),
        detail=f"{type(exc).__name__}: {exc}",
    )


def exec_stats() -> Dict[str, object]:
    """Structured degradation telemetry of this process: per-reason fallback
    counts, the recent :class:`~repro.guard.events.FallbackEvent` records
    (as dicts), the quarantine-guard counters, and the parallel-execution
    counters (par loops dispatched, chunks executed, widest thread count
    used, serial degrades)."""
    from ..guard import fallback_counts, fallback_events, guard_stats
    from .parallel import par_stats

    return {
        "fallbacks": fallback_counts(),
        "events": [e.to_dict() for e in fallback_events()],
        "guard": guard_stats(),
        "parallel": par_stats(),
    }


def clear_exec_stats() -> None:
    """Reset the fallback-event log, guard counters, and parallel counters
    (tests, benchmarks)."""
    from ..guard import clear_fallback_events, reset_guard_stats
    from .parallel import reset_par_stats

    clear_fallback_events()
    reset_guard_stats()
    reset_par_stats()


def run_proc(
    procedure,
    *pos_args,
    backend: Optional[str] = None,
    check_asserts: bool = True,
    config_state=None,
    diff_rtol: float = 1e-4,
    diff_atol: float = 1e-5,
    inline: Optional[bool] = None,
    threads: Optional[int] = None,
    **kw_args,
):
    """Execute a :class:`Procedure` on concrete arguments.

    Arguments are given positionally or by name; tensor arguments must be
    numpy arrays (modified in place), sizes are ints and scalars floats.
    ``backend`` selects the execution engine (see the module docstring);
    ``diff_rtol``/``diff_atol`` are the tolerances of the ``"differential"``
    backend's cross-check; ``inline`` forces the compiled engine's
    cross-procedure inliner on or off (``None`` defers to the
    ``REPRO_EXEC_INLINE`` environment variable, default on); ``threads``
    sets the worker count ``par`` loops execute with (``None`` defers to
    ``REPRO_NUM_THREADS``, then the CPU count — see
    :mod:`repro.interp.parallel`).
    """
    backend = resolve_backend(backend)
    from .parallel import resolve_num_threads

    threads = resolve_num_threads(threads)
    root = procedure._root if hasattr(procedure, "_root") else procedure
    env: Dict[Sym, object] = {}
    names = [a.name.name for a in root.args]
    values = dict(zip(names, pos_args))
    values.update(kw_args)
    missing = [n for n in names if n not in values]
    if missing:
        raise InterpError(f"missing arguments: {missing}")
    for a in root.args:
        v = values[a.name.name]
        if isinstance(a.typ, TensorType) and not isinstance(v, np.ndarray):
            v = np.asarray(v, dtype=_dtype_for(a.typ))
            values[a.name.name] = v
        env[a.name] = v

    interp = _Interp(config_state)
    if check_asserts:
        for p in root.preds:
            if not bool(interp.eval_expr(p, env)):
                from ..ir.printing import expr_str

                raise InterpError(f"procedure precondition failed: {expr_str(p)}")

    if backend == "interp":
        interp.exec_proc(root, env)
        return {n: values[n] for n in names}

    if backend == "c":
        from ..backend.native import NativeError
        from ..errors import CodegenError

        try:
            _run_native(root, values, threads=threads)
            return {n: values[n] for n in names}
        except (CodegenError, NativeError) as exc:
            # graceful degrade down the ladder: nothing has executed in this
            # process (failures happen before the in-process call, and a
            # quarantined child's writes are copy-on-write), so the compiled
            # engine can take over on the same buffers
            _record_native_fallback(root, exc)
            backend = "compiled"

    if backend == "differential":
        # reference run on private copies, compiled run on the caller's
        # buffers (and, toolchain permitting, a native C run on a third set
        # of copies), then compare every tensor argument and the config state
        ref_env = {
            a.name: (env[a.name].copy() if isinstance(env[a.name], np.ndarray) else env[a.name])
            for a in root.args
        }
        c_values = {
            n: (v.copy() if isinstance(v, np.ndarray) else v) for n, v in values.items()
        }
        if config_state is None:
            config_state = {}  # materialised so both legs are comparable
        ref_cfg = dict(config_state)
        _Interp(ref_cfg).exec_proc(root, ref_env)

    from .compile import CompileError

    try:
        _run_compiled(root, env, config_state, inline=inline, threads=threads)
    except CompileError as exc:
        if backend == "differential":
            # degrading to interpreter-vs-interpreter would make the
            # cross-check vacuous; fail loudly instead
            raise DifferentialError(
                f"{root.name}: compiled engine unavailable for differential check: {exc}"
            ) from exc
        from ..guard import record_fallback

        record_fallback(
            root.name, "compiled->interp", "compile-error", detail=str(exc)
        )
        interp.exec_proc(root, env)

    if backend == "differential":
        for a in root.args:
            got = env[a.name]
            if not isinstance(got, np.ndarray):
                continue
            want = ref_env[a.name]
            if not np.allclose(got, want, rtol=diff_rtol, atol=diff_atol, equal_nan=True):
                worst = float(np.max(np.abs(np.asarray(got, dtype=np.float64) - want)))
                raise DifferentialError(
                    f"{root.name}: compiled engine disagrees with the tree interpreter "
                    f"on argument {a.name.name!r} (max abs diff {worst:g})"
                )
        if set(config_state) != set(ref_cfg) or any(
            not np.allclose(config_state[k], ref_cfg[k], rtol=diff_rtol, atol=diff_atol)
            for k in ref_cfg
        ):
            raise DifferentialError(
                f"{root.name}: compiled engine disagrees with the tree interpreter "
                f"on the final configuration state"
            )
        # third leg: the native C backend, when it can run here at all (a
        # missing toolchain or an unlowerable construct — e.g. config state —
        # skips the leg rather than weakening the compiled-vs-interp check)
        from ..backend.native import NativeError
        from ..errors import CodegenError

        try:
            _run_native(root, c_values, threads=threads)
        except (CodegenError, NativeError) as exc:
            _record_native_fallback(root, exc, stage="differential-c-leg")
        else:
            for a in root.args:
                got = c_values[a.name.name]
                if not isinstance(got, np.ndarray):
                    continue
                want = ref_env[a.name]
                if not np.allclose(got, want, rtol=diff_rtol, atol=diff_atol, equal_nan=True):
                    worst = float(np.max(np.abs(np.asarray(got, dtype=np.float64) - want)))
                    raise DifferentialError(
                        f"{root.name}: native C backend disagrees with the tree "
                        f"interpreter on argument {a.name.name!r} (max abs diff {worst:g})"
                    )
    return {n: values[n] for n in names}


def make_random_args(procedure, size_env: Dict[str, int], seed: int = 0) -> Dict[str, object]:
    """Construct random concrete arguments for a procedure.

    ``size_env`` supplies values for ``size`` arguments (and any boolean
    arguments, as 0/1); tensors are filled with uniform random data of their
    declared element type.
    """
    rng = np.random.default_rng(seed)
    root = procedure._root if hasattr(procedure, "_root") else procedure
    env_exprs: Dict[Sym, int] = {}
    out: Dict[str, object] = {}
    for a in root.args:
        if isinstance(a.typ, ScalarType) and (a.typ.is_indexable() or a.typ.is_bool()):
            if a.name.name not in size_env:
                raise InterpError(f"size_env is missing a value for {a.name.name!r}")
            val = int(size_env[a.name.name])
            out[a.name.name] = val
            env_exprs[a.name] = val
    interp = _Interp()
    for a in root.args:
        if isinstance(a.typ, TensorType):
            shape = tuple(int(interp.eval_expr(d, env_exprs)) for d in a.typ.shape)
            if a.typ.base.is_float:
                data = rng.uniform(-1.0, 1.0, size=shape).astype(_dtype_for(a.typ))
            else:
                data = rng.integers(-4, 5, size=shape).astype(_dtype_for(a.typ))
            out[a.name.name] = data
        elif isinstance(a.typ, ScalarType) and a.typ.is_numeric:
            if a.name.name in size_env:
                out[a.name.name] = float(size_env[a.name.name])
            else:
                out[a.name.name] = float(rng.uniform(-1.0, 1.0))
    return out


def check_equiv(
    p1,
    p2,
    size_env: Dict[str, int],
    *,
    seed: int = 0,
    rtol: float = 1e-4,
    atol: float = 1e-5,
    backend: Optional[str] = None,
    inline: Optional[bool] = None,
    threads: Optional[int] = None,
) -> bool:
    """Run two procedures on identical random inputs and compare every tensor
    argument afterwards.  Returns True when all outputs match.  ``backend``
    selects the execution engine for both runs (default: the process default,
    normally the compiled engine); ``inline`` and ``threads`` are forwarded
    to the execution engines."""
    args1 = make_random_args(p1, size_env, seed=seed)
    args2 = {
        k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in make_random_args(p2, size_env, seed=seed).items()
    }
    out1 = run_proc(p1, backend=backend, inline=inline, threads=threads, **args1)
    out2 = run_proc(p2, backend=backend, inline=inline, threads=threads, **args2)
    for name, v1 in out1.items():
        if isinstance(v1, np.ndarray):
            v2 = out2[name]
            if not np.allclose(v1, v2, rtol=rtol, atol=atol):
                return False
    return True
