"""Compiled execution engine: lower object code to NumPy and run it natively.

The reference interpreter (:mod:`repro.interp.interpreter`) re-dispatches on
every IR node of every iteration — ~0.3M scalar ops/s — which pins functional
equivalence checks to toy sizes.  This module instead *compiles* a procedure
once: the object code is lowered to generated Python source in which

* loop nests become ``range`` loops,
* innermost loops whose bodies are assignments/reductions with dense affine
  accesses are vectorised into whole-array NumPy statements
  (``y[0:n] += alpha * x[0:n]``), with loop-carried scalars expanded into
  vector temporaries and invariant-index reductions turned into ``.sum()``,
* calls compile recursively (``@instr`` bodies run as compiled NumPy, which is
  how scheduled kernels keep their speed), and
* windows become NumPy views.

The generated source is ``exec``-ed once and the callable cached.

Backend selection and fallback rules
------------------------------------
``run_proc(..., backend=...)`` selects the engine: ``"compiled"`` (the
default), ``"interp"`` (the tree-walking reference), or ``"differential"``
(run both and cross-check every tensor argument).  Within the compiled
engine, any *statement* the lowerer cannot handle (exotic window shapes,
uncompilable callees, constructs added to the IR later) automatically falls
back to the tree interpreter for just that statement: the generated code
packages the in-scope environment into a symbol dict, executes the original
statement node through ``_Interp.exec_stmt``, and writes scalar results back.
If a whole procedure cannot be lowered, ``run_proc`` silently runs the tree
interpreter instead, so ``backend="compiled"`` is always safe to request.

Semantics parity
----------------
The scalar lowering mirrors the interpreter operation-for-operation (same
NumPy scalar arithmetic, same integer-division rule, same dtype rounding on
scalar allocations); vectorised elementwise statements are bit-identical to
the sequential loop.  Only invariant-index reductions differ: NumPy's pairwise
summation reorders floating-point addition, which stays well within
``check_equiv`` tolerances (and is usually *more* accurate).  Negative buffer
indices raise :class:`InterpError` in both engines; positive out-of-bounds
accesses surface as :class:`InterpError` via NumPy's ``IndexError`` (checked
up front, per loop, for vectorised slices).  Like Exo's C backend, the engine
assumes distinct buffer arguments do not alias.

Caching
-------
Compiled callables are cached keyed by the PR-1 structural hash
(:func:`repro.ir.build.struct_hash`) plus an alpha-identity signature (the
order of first occurrence of each distinct symbol, since ``struct_hash``
compares symbols by name only) plus an argument-type token (``struct_hash``
ignores ``FnArg`` types, but guard elision depends on them).  The cache is
flushed lazily whenever the edit engine has bumped the global mutation epoch
since the last compile, so no entry can outlive an in-place tree mutation;
within an epoch, structurally identical procedures (e.g. one ``@instr``
called from many scheduled kernels) share one compiled callable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..backend.lowering import affine_decompose, np_dtype_for, provably_nonneg
from ..errors import ExoError
from ..ir import nodes as N
from ..ir.build import collect_syms_written, struct_hash, used_syms_expr, walk
from ..ir.externs import extern_by_name
from ..ir.syms import Sym
from ..ir.types import ScalarType, TensorType
from .interpreter import InterpError, _Interp

__all__ = [
    "CompileError",
    "CompiledProc",
    "compile_proc",
    "compiled_source",
    "clear_compile_cache",
]


class CompileError(ExoError):
    """The procedure cannot be lowered to NumPy at all (the caller should run
    the tree interpreter instead)."""


class _CannotLower(Exception):
    """Internal: this statement needs the per-statement interpreter fallback."""


class _NoVec(Exception):
    """Internal: this loop cannot be vectorised; use the scalar lowering."""


# ---------------------------------------------------------------------------
# Runtime support referenced from generated code
# ---------------------------------------------------------------------------


def _rt_oob(buf: str, detail: str = "negative index") -> None:
    raise InterpError(f"out-of-bounds access to {buf} ({detail})")


def _intlike(v) -> bool:
    if isinstance(v, (bool, int, np.integer)):
        return True
    return isinstance(v, np.ndarray) and v.dtype.kind in "bui"


def _rt_div(a, b):
    """Object-language division: floor for integer operands, true otherwise
    (elementwise for arrays) — the interpreter's ``_binop`` rule."""
    if _intlike(a) and _intlike(b):
        return a // b
    return a / b


def _rt_stride(arr, dim: int) -> int:
    if not isinstance(arr, np.ndarray) or arr.ndim == 0:
        return 1
    return arr.strides[dim] // arr.itemsize


def _rt_astensor(v):
    return v if isinstance(v, np.ndarray) else np.asarray(v)


class _RunContext:
    """Per-execution state shared by a compiled procedure, its compiled
    callees, and any per-statement interpreter fallbacks (one config-state
    dict for everybody)."""

    __slots__ = ("interp",)

    def __init__(self, config_state: Optional[Dict] = None):
        self.interp = _Interp(config_state)

    def fb(self, stmt: N.Stmt, env: Dict[Sym, object]) -> None:
        """Execute one original statement node through the tree interpreter."""
        self.interp.exec_stmt(stmt, env)

    def cfg_read(self, key, label: str):
        state = self.interp.config_state
        if key not in state:
            raise InterpError(f"read of configuration field {label} before any write")
        return state[key]


class CompiledProc:
    """A procedure lowered to a Python/NumPy callable.

    ``source`` is the generated Python text (useful for debugging and tested
    directly), ``fallback_stmts`` counts statements that run through the tree
    interpreter, ``vector_loops`` counts loops lowered to whole-array NumPy
    statements.
    """

    __slots__ = ("name", "source", "fn", "fallback_stmts", "vector_loops")

    def __init__(self, name: str, source: str, fn, fallback_stmts: int, vector_loops: int):
        self.name = name
        self.source = source
        self.fn = fn
        self.fallback_stmts = fallback_stmts
        self.vector_loops = vector_loops

    def run(self, ctx: _RunContext, argvals: Sequence[object]) -> None:
        try:
            self.fn(ctx, *argvals)
        except IndexError as exc:
            raise InterpError(f"out-of-bounds access while executing compiled {self.name}: {exc}") from exc


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

_CACHE: Dict[Tuple[int, int, int], CompiledProc] = {}
_CACHE_EPOCH = [N.mutation_epoch()]
_CACHE_LIMIT = 512
_IN_PROGRESS: Set[int] = set()


def _alias_sig(root: N.ProcDef) -> int:
    """Hash of the first-occurrence order of each distinct symbol.

    ``struct_hash`` compares symbols by *name*; two trees can hash equally yet
    bind same-named symbols differently.  Combining the hash with this
    signature makes the cache key alpha-exact.  Memoised per mutation epoch on
    the root (roots are never mutated in place between epoch bumps).
    """
    cached = getattr(root, "_alias_sig_cache", None)
    epoch = N.mutation_epoch()
    if cached is not None and cached[0] == epoch:
        return cached[1]
    first: Dict[Sym, int] = {}

    def key_of(sym: Sym) -> int:
        if sym not in first:
            first[sym] = len(first)
        return first[sym]

    sig: List[int] = []
    for a in root.args:
        sig.append(key_of(a.name))
    for n, _ in walk(root):
        if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr, N.Assign, N.Reduce, N.Alloc, N.WindowStmt)):
            sig.append(key_of(n.name))
        elif isinstance(n, N.For):
            sig.append(key_of(n.iter))
    h = hash(tuple(sig))
    root._alias_sig_cache = (epoch, h)
    return h


def _arg_type_token(root: N.ProcDef) -> int:
    """Hash of the declared argument types.

    ``struct_hash`` deliberately ignores expression result types (and with
    them ``FnArg.typ``), but the compiled code *does* depend on them — e.g. a
    ``size`` argument elides negative-index guards that an ``index`` argument
    must keep — so argument types are a separate cache-key component.
    """
    parts: List[object] = []
    for a in root.args:
        t = a.typ
        if isinstance(t, TensorType):
            parts.append(("t", t.base.name, t.is_window, tuple(struct_hash(e) for e in t.shape)))
        else:
            parts.append(("s", t.name))
    return hash(tuple(parts))


def compile_proc(procedure) -> CompiledProc:
    """Compile a :class:`Procedure` (or raw ``ProcDef``) to NumPy, memoised.

    Raises :class:`CompileError` when the procedure cannot be lowered at all.
    """
    root = getattr(procedure, "_root", procedure)
    # the documented contract: an epoch bump (one per atomic edit) invalidates
    # the cache, so entries can never outlive an in-place tree mutation.
    # Bumps happen while *scheduling*, compilation while *running*, so this
    # rarely discards a warm cache mid-test.
    epoch = N.mutation_epoch()
    if _CACHE_EPOCH[0] != epoch:
        _CACHE.clear()
        _CACHE_EPOCH[0] = epoch
    key = (struct_hash(root), _alias_sig(root), _arg_type_token(root))
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    if id(root) in _IN_PROGRESS:
        raise CompileError(f"recursive call cycle through {root.name}")
    _IN_PROGRESS.add(id(root))
    try:
        engine = _Lowerer(root).compile()
    except CompileError:
        raise
    except Exception as exc:  # defensive: never let lowering bugs kill a run
        raise CompileError(f"cannot lower {root.name}: {type(exc).__name__}: {exc}") from exc
    finally:
        _IN_PROGRESS.discard(id(root))
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = engine
    return engine


def compiled_source(procedure) -> str:
    """The generated Python source for a procedure (compiles if needed)."""
    return compile_proc(procedure).source


def clear_compile_cache() -> None:
    _CACHE.clear()


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name) or "v"


def _free_syms(s: N.Stmt) -> Set[Sym]:
    """Symbols a statement needs from the enclosing scope (reads, writes and
    shape references, minus anything the statement itself binds)."""
    free: Set[Sym] = set()
    bound: Set[Sym] = set()
    for n, _ in walk(s):
        if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr)):
            free.add(n.name)
        elif isinstance(n, (N.Assign, N.Reduce)):
            free.add(n.name)
        elif isinstance(n, N.Alloc):
            bound.add(n.name)
            if isinstance(n.typ, TensorType):
                for e in n.typ.shape:
                    free |= used_syms_expr(e)
        elif isinstance(n, N.For):
            bound.add(n.iter)
        elif isinstance(n, N.WindowStmt):
            bound.add(n.name)
    return free - bound


class _Vec:
    """A lowered sub-expression inside a vectorised loop body."""

    __slots__ = ("src", "vec", "atom")

    def __init__(self, src: str, vec: bool, atom: bool = False):
        self.src = src
        self.vec = vec  # does it evaluate to a whole-array value?
        self.atom = atom  # may it be a *view* of a buffer (needs copy on bind)?


class _Lowerer:
    def __init__(self, root: N.ProcDef):
        self.root = root
        self.lines: List[str] = []
        self.indent = 1
        self.consts: List[object] = []
        self.const_ix: Dict[int, int] = {}
        self.bound: Dict[Sym, Tuple[str, str]] = {}  # sym -> (pyname, kind)
        self.window_base: Dict[Sym, Sym] = {}  # window sym -> root base buffer
        self.scalar_cast: Dict[Sym, int] = {}  # alloc'd scalars: const-ix of np type
        self.nonneg: Set[Sym] = set()
        self.cells: Set[Sym] = set()
        self.ntemp = 0
        self.n_fallback = 0
        self.n_vec = 0

    # -- small utilities ---------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self.ntemp += 1
        return f"__t{self.ntemp}"

    def const(self, obj) -> int:
        ix = self.const_ix.get(id(obj))
        if ix is None:
            ix = len(self.consts)
            self.consts.append(obj)
            self.const_ix[id(obj)] = ix
        return ix

    def bind(self, sym: Sym, kind: str) -> str:
        if sym in self.bound:
            name = self.bound[sym][0]
            self.bound[sym] = (name, kind)
            return name
        name = f"{_sanitize(sym.name)}_{len(self.bound)}"
        self.bound[sym] = (name, kind)
        return name

    # -- entry -------------------------------------------------------------------

    def compile(self) -> CompiledProc:
        root = self.root
        self.cells = self._find_cell_syms(root)
        params: List[str] = []
        for a in root.args:
            if isinstance(a.typ, TensorType):
                kind = "tensor"
            elif a.typ.is_indexable():
                kind = "index"
            else:
                kind = "scalar"
            params.append(self.bind(a.name, kind))
            if isinstance(a.typ, ScalarType) and a.typ.name == "size":
                self.nonneg.add(a.name)
        self.lower_stmts(root.body)
        if not self.lines:
            self.emit("pass")
        source = f"def __kernel(__ctx, {', '.join(params)}):\n" + "\n".join(self.lines)
        ns = {
            "np": np,
            "__K": self.consts,
            "_oob": _rt_oob,
            "_div": _rt_div,
            "_stride": _rt_stride,
            "_astensor": _rt_astensor,
        }
        code = compile(source, f"<repro.compiled:{root.name}>", "exec")
        exec(code, ns)
        return CompiledProc(root.name, source, ns["__kernel"], self.n_fallback, self.n_vec)

    @staticmethod
    def _find_cell_syms(root: N.ProcDef) -> Set[Sym]:
        """Scalar allocations that must be represented as 0-d arrays because
        they are windowed, strided, or passed to a tensor parameter."""
        scalars = set()
        for n, _ in walk(root):
            if isinstance(n, N.Alloc) and isinstance(n.typ, ScalarType):
                scalars.add(n.name)
        cells: Set[Sym] = set()
        for n, _ in walk(root):
            if isinstance(n, (N.WindowExpr, N.StrideExpr)) and n.name in scalars:
                cells.add(n.name)
            elif isinstance(n, N.Call):
                cdef = getattr(n.proc, "_root", n.proc)
                for fa, actual in zip(cdef.args, n.args):
                    if (
                        isinstance(fa.typ, TensorType)
                        and isinstance(actual, N.Read)
                        and not actual.idx
                        and actual.name in scalars
                    ):
                        cells.add(actual.name)
        return cells

    # -- statements --------------------------------------------------------------

    def lower_stmts(self, stmts: Sequence[N.Stmt]) -> None:
        for s in stmts:
            mark = len(self.lines)
            try:
                self.lower_stmt(s)
            except _CannotLower:
                del self.lines[mark:]
                self.emit_fallback(s)

    def lower_stmt(self, s: N.Stmt) -> None:
        if isinstance(s, (N.Assign, N.Reduce)):
            self.stmt_assign(s, aug=isinstance(s, N.Reduce))
        elif isinstance(s, N.Alloc):
            self.stmt_alloc(s)
        elif isinstance(s, N.For):
            self.stmt_for(s)
        elif isinstance(s, N.If):
            self.stmt_if(s)
        elif isinstance(s, N.Pass):
            self.emit("pass")
        elif isinstance(s, N.Call):
            self.stmt_call(s)
        elif isinstance(s, N.WindowStmt):
            src = self.window_expr(s.rhs)
            base = self.window_base.get(s.rhs.name, s.rhs.name)
            self.emit(f"{self.bind(s.name, 'tensor')} = {src}")
            self.window_base[s.name] = base
        elif isinstance(s, N.WriteConfig):
            key = self.const((id(s.config), s.field_name))
            rhs = self.value_expr(s.rhs)
            self.emit(f"__ctx.interp.config_state[__K[{key}]] = {rhs}")
        else:
            raise _CannotLower(type(s).__name__)

    def guarded_indices(self, buf_sym: Sym, idx_exprs: Sequence[N.Expr]) -> List[str]:
        """Render scalar index expressions, inserting a negative-index guard
        for any index that is not provably non-negative (positive overflow is
        caught by NumPy's own IndexError)."""
        srcs: List[str] = []
        guards: List[str] = []
        for e in idx_exprs:
            src = self.int_expr(e)
            if provably_nonneg(e, self.nonneg):
                srcs.append(src)
            else:
                t = self.temp()
                self.emit(f"{t} = {src}")
                guards.append(t)
                srcs.append(t)
        if guards:
            cond = " or ".join(f"{g} < 0" for g in guards)
            self.emit(f"if {cond}:")
            self.emit(f"    _oob({buf_sym.name!r})")
        return srcs

    def stmt_assign(self, s, aug: bool) -> None:
        info = self.bound.get(s.name)
        if info is None:
            raise _CannotLower("write to unbound symbol")
        name, kind = info
        if kind in ("tensor", "cell"):
            if s.idx:
                idxs = self.guarded_indices(s.name, s.idx)
                target = f"{name}[{', '.join(idxs)}]"
            else:
                target = f"{name}[()]"
            rhs = self.value_expr(s.rhs)
            self.emit(f"{target} {'+=' if aug else '='} {rhs}")
            return
        # plain scalar (or index) local / argument
        if s.idx:
            raise _CannotLower("indexed write to scalar")
        rhs = self.value_expr(s.rhs)
        expr = f"{name} + ({rhs})" if aug else rhs
        cast = self.scalar_cast.get(s.name)
        if cast is not None:
            # mirror the interpreter's dtype rounding on scalar allocations
            expr = f"__K[{cast}]({expr})"
        self.emit(f"{name} = {expr}")

    def stmt_alloc(self, s: N.Alloc) -> None:
        if isinstance(s.typ, TensorType):
            name = self.bind(s.name, "tensor")
            dt = self.const(np_dtype_for(s.typ).type)
            dims = "".join(f"int({self.int_expr(d)}), " for d in s.typ.shape)
            self.emit(f"{name} = np.zeros(({dims}), dtype=__K[{dt}])")
            return
        dt_type = np_dtype_for(s.typ).type
        if s.name in self.cells:
            name = self.bind(s.name, "cell")
            self.emit(f"{name} = np.zeros((), dtype=__K[{self.const(dt_type)}])")
            return
        name = self.bind(s.name, "scalar")
        self.scalar_cast[s.name] = self.const(dt_type)
        zero = "0.0" if np.dtype(dt_type).kind == "f" else "0"
        self.emit(f"{name} = {zero}")

    def stmt_for(self, s: N.For) -> None:
        lo_t, hi_t = self.temp(), self.temp()
        self.emit(f"{lo_t} = int({self.int_expr(s.lo)})")
        self.emit(f"{hi_t} = int({self.int_expr(s.hi)})")
        if self._try_vectorize(s, lo_t, hi_t):
            self.n_vec += 1
            return
        name = self.bind(s.iter, "index")
        if provably_nonneg(s.lo, self.nonneg):
            self.nonneg.add(s.iter)
        else:
            self.nonneg.discard(s.iter)
        self.emit(f"for {name} in range({lo_t}, {hi_t}):")
        self.indent += 1
        mark = len(self.lines)
        self.lower_stmts(s.body)
        if len(self.lines) == mark:
            self.emit("pass")
        self.indent -= 1

    def stmt_if(self, s: N.If) -> None:
        cond = self.value_expr(s.cond)
        self.emit(f"if {cond}:")
        self.indent += 1
        mark = len(self.lines)
        self.lower_stmts(s.body)
        if len(self.lines) == mark:
            self.emit("pass")
        self.indent -= 1
        if s.orelse:
            self.emit("else:")
            self.indent += 1
            mark = len(self.lines)
            self.lower_stmts(s.orelse)
            if len(self.lines) == mark:
                self.emit("pass")
            self.indent -= 1

    def stmt_call(self, s: N.Call) -> None:
        cdef = getattr(s.proc, "_root", s.proc)
        try:
            callee = compile_proc(cdef)
        except CompileError as exc:
            raise _CannotLower(str(exc)) from None
        args_src = ["__ctx"]
        for fa, actual in zip(cdef.args, s.args):
            if isinstance(fa.typ, TensorType):
                args_src.append(self.tensor_arg_expr(actual))
            else:
                args_src.append(self.value_expr(actual))
        self.emit(f"__K[{self.const(callee.fn)}]({', '.join(args_src)})")

    def tensor_arg_expr(self, actual: N.Expr) -> str:
        if isinstance(actual, N.Read) and not actual.idx:
            info = self.bound.get(actual.name)
            if info is None:
                raise _CannotLower("unbound tensor argument")
            if info[1] in ("tensor", "cell"):
                return info[0]
            raise _CannotLower("scalar passed as tensor argument")
        if isinstance(actual, N.WindowExpr):
            return self.window_expr(actual)
        return f"_astensor({self.value_expr(actual)})"

    def emit_fallback(self, s: N.Stmt) -> None:
        """Per-construct fallback: run the original statement node through the
        tree interpreter with the current in-scope environment."""
        self.n_fallback += 1
        free = _free_syms(s)
        missing = [sym for sym in free if sym not in self.bound]
        if missing:
            raise CompileError(
                f"{self.root.name}: statement references out-of-scope symbols {missing}"
            )
        pairs = [
            f"__K[{self.const(sym)}]: {info[0]}"
            for sym, info in self.bound.items()
            if sym in free
        ]
        env = self.temp()
        self.emit(f"{env} = {{{', '.join(pairs)}}}")
        self.emit(f"__ctx.fb(__K[{self.const(s)}], {env})")
        if isinstance(s, N.Alloc):
            kind = "tensor" if isinstance(s.typ, TensorType) else "cell"
            self.emit(f"{self.bind(s.name, kind)} = {env}[__K[{self.const(s.name)}]]")
        elif isinstance(s, N.WindowStmt):
            self.emit(f"{self.bind(s.name, 'tensor')} = {env}[__K[{self.const(s.name)}]]")
            if s.rhs is not None:
                self.window_base[s.name] = self.window_base.get(s.rhs.name, s.rhs.name)
        else:
            for sym in collect_syms_written(s):
                info = self.bound.get(sym)
                if info is not None and info[1] in ("scalar", "index"):
                    self.emit(f"{info[0]} = {env}[__K[{self.const(sym)}]]")

    # -- expressions (scalar contexts) --------------------------------------------

    def int_expr(self, e: N.Expr) -> str:
        return self._expr(e, int_ctx=True)

    def value_expr(self, e: N.Expr) -> str:
        return self._expr(e, int_ctx=False)

    def _expr(self, e: N.Expr, int_ctx: bool) -> str:
        if isinstance(e, N.Const):
            if isinstance(e.val, bool):
                return "True" if e.val else "False"
            return repr(e.val)
        if isinstance(e, N.Read):
            info = self.bound.get(e.name)
            if info is None:
                raise _CannotLower(f"read of unbound symbol {e.name}")
            name, kind = info
            if kind == "tensor":
                if not e.idx:
                    return name
                idxs = self.guarded_indices(e.name, e.idx)
                return f"{name}[{', '.join(idxs)}]"
            if kind == "cell":
                if e.idx:
                    idxs = self.guarded_indices(e.name, e.idx)
                    return f"{name}[{', '.join(idxs)}]"
                return f"{name}[()]"
            if e.idx:
                raise _CannotLower("indexed read of scalar")
            return name
        if isinstance(e, N.BinOp):
            lhs = self._expr(e.lhs, int_ctx)
            rhs = self._expr(e.rhs, int_ctx)
            if e.op == "/":
                return f"(({lhs}) // ({rhs}))" if int_ctx else f"_div({lhs}, {rhs})"
            if e.op in ("and", "or"):
                return f"(bool({lhs}) {e.op} bool({rhs}))"
            return f"({lhs} {e.op} {rhs})"
        if isinstance(e, N.USub):
            return f"(-{self._expr(e.arg, int_ctx)})"
        if isinstance(e, N.Extern):
            impl = self.const(extern_by_name(e.fname).impl)
            args = ", ".join(self._expr(a, False) for a in e.args)
            return f"__K[{impl}]({args})"
        if isinstance(e, N.StrideExpr):
            info = self.bound.get(e.name)
            if info is None:
                raise _CannotLower("stride of unbound symbol")
            return f"_stride({info[0]}, {e.dim})"
        if isinstance(e, N.ReadConfig):
            key = self.const((id(e.config), e.field_name))
            label = f"{e.config.name()}.{e.field_name}"
            return f"__ctx.cfg_read(__K[{key}], {label!r})"
        if isinstance(e, N.WindowExpr):
            return self.window_expr(e)
        raise _CannotLower(type(e).__name__)

    def window_expr(self, w: N.WindowExpr) -> str:
        info = self.bound.get(w.name)
        if info is None:
            raise _CannotLower("window of unbound symbol")
        name, kind = info
        if kind == "cell":
            # the interpreter's scalar-window special case: x[0:1] -> 1-vector
            if (
                len(w.idx) == 1
                and isinstance(w.idx[0], N.Interval)
                and isinstance(w.idx[0].lo, N.Const)
                and w.idx[0].lo.val == 0
                and isinstance(w.idx[0].hi, N.Const)
                and w.idx[0].hi.val == 1
            ):
                return f"{name}.reshape(1)"
            raise _CannotLower("window of scalar cell")
        if kind != "tensor":
            raise _CannotLower("window of scalar")
        parts: List[str] = []
        guards: List[str] = []

        def rendered(e: N.Expr) -> str:
            src = self.int_expr(e)
            if provably_nonneg(e, self.nonneg):
                return src
            t = self.temp()
            self.emit(f"{t} = {src}")
            guards.append(t)
            return t

        for d in w.idx:
            if isinstance(d, N.Interval):
                parts.append(f"{rendered(d.lo)}:{rendered(d.hi)}")
            else:
                parts.append(rendered(d.pt))
        if guards:
            cond = " or ".join(f"{g} < 0" for g in guards)
            self.emit(f"if {cond}:")
            self.emit(f"    _oob({w.name.name!r})")
        return f"{name}[{', '.join(parts)}]"

    # -- vectorisation ------------------------------------------------------------

    def _try_vectorize(self, s: N.For, lo_t: str, hi_t: str) -> bool:
        mark = len(self.lines)
        try:
            pre, body = self._vec_lower(s, lo_t, hi_t)
        except (_NoVec, _CannotLower):
            del self.lines[mark:]  # discard any partial emission from analysis
            return False
        self.emit(f"if {hi_t} > {lo_t}:")
        self.indent += 1
        for line in pre:
            self.emit(line)
        for line in body:
            self.emit(line)
        self.indent -= 1
        return True

    def _vec_lower(self, s: N.For, lo_t: str, hi_t: str) -> Tuple[List[str], List[str]]:
        """Lower an innermost map/reduction loop to whole-array statements.

        Returns ``(pre, body)`` line lists (offset temps + bounds guards, then
        the vector statements) or raises ``_NoVec``.  The rules:

        * the body may contain only scalar allocations, assignments and
          reductions (plus ``pass``);
        * every buffer index must be affine in the iterator with a constant
          non-negative coefficient and a loop-invariant offset;
        * a buffer that is written is either accessed *only* through one
          iterator-dependent index pattern (an elementwise map — exact), or
          reduced at an invariant index and never read (a ``.sum()``);
        * scalars allocated in the body become vector temporaries (classic
          scalar expansion); outer scalars may only be sum-reduced.
        """
        iv = s.iter
        body_written = collect_syms_written(s.body)
        if iv in body_written:
            raise _NoVec
        reads_in_body = {
            n.name
            for st in s.body
            for n, _ in walk(st)
            if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr))
        }

        vtemps: Dict[Sym, str] = {}  # alloc'd scalar -> local pyname
        vtemp_vec: Dict[Sym, bool] = {}  # does the temp currently hold a vector?
        vtemp_syms: Set[Sym] = set()
        work: List[N.Stmt] = []
        for st in s.body:
            if isinstance(st, N.Pass):
                continue
            if isinstance(st, N.Alloc):
                if isinstance(st.typ, TensorType) or st.name in self.cells:
                    raise _NoVec
                vtemp_syms.add(st.name)
                continue
            if isinstance(st, (N.Assign, N.Reduce)):
                work.append(st)
                continue
            raise _NoVec
        if not work:
            raise _NoVec

        # first-access discipline for expanded scalars: written (by Assign)
        # before ever read, and never used as an index
        seen_write: Set[Sym] = set()
        for st in work:
            stmt_reads = {
                n.name
                for src in (list(st.idx) + [st.rhs] if st.idx else [st.rhs])
                for n, _ in walk(src)
                if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr))
            }
            for sym in stmt_reads & vtemp_syms:
                if sym not in seen_write:
                    raise _NoVec
            if st.name in vtemp_syms:
                if isinstance(st, N.Assign):
                    seen_write.add(st.name)
                elif st.name not in seen_write:
                    raise _NoVec

        # outer scalars may only be sum-accumulated
        acc_syms: Set[Sym] = set()
        for sym in body_written:
            info = self.bound.get(sym)
            if sym in vtemp_syms or info is None:
                continue
            if info[1] in ("scalar", "index"):
                if sym in reads_in_body:
                    raise _NoVec
                for st in work:
                    if st.name is sym and isinstance(st, N.Assign):
                        raise _NoVec
                acc_syms.add(sym)

        pre: List[str] = []
        body_lines: List[str] = []
        off_cache: Dict[str, str] = {}
        slice_cache: Dict[Tuple[Sym, Tuple], str] = {}
        elem_cache: Dict[Tuple[Sym, Tuple], str] = {}
        guarded: Set[Tuple[Sym, Tuple]] = set()
        accesses: List[Tuple[Sym, Tuple, bool]] = []  # (buf, sig, is_write)
        need_iota = [False]

        def off_temp(off_src: str) -> str:
            t = off_cache.get(off_src)
            if t is None:
                t = self.temp()
                off_cache[off_src] = t
                pre.append(f"{t} = {off_src}")
            return t

        def dims_sig(idx_exprs: Sequence[N.Expr]) -> Tuple:
            dims = []
            for e in idx_exprs:
                dec = affine_decompose(e, iv)
                if dec is None:
                    raise _NoVec
                c, off = dec
                if c < 0:
                    raise _NoVec
                if c != 0 and any(cd for cd, _, _ in dims):
                    # iterator in two dimensions of one access (a diagonal):
                    # independent slices would turn it into an outer product
                    raise _NoVec
                if off is None:
                    off_src, off_nonneg = "0", True
                else:
                    osyms = used_syms_expr(off)
                    if osyms & body_written or osyms & vtemp_syms:
                        raise _NoVec
                    # no indirect addressing in offsets (their lowering would
                    # need guard emission, which the vector plan hoists)
                    for n, _ in walk(off):
                        if isinstance(n, N.Read) and n.idx or isinstance(n, N.WindowExpr):
                            raise _NoVec
                    off_src = self.int_expr(off)
                    off_nonneg = provably_nonneg(off, self.nonneg)
                dims.append((c, off_src, off_nonneg))
            return tuple(dims)

        def elem_src(buf: Sym, sig: Tuple) -> str:
            key = (buf, sig)
            hit = elem_cache.get(key)
            if hit is not None:
                return hit
            name = self.bound[buf][0]
            idxs = []
            bad = []
            for c, off_src, off_nonneg in sig:
                t = off_temp(off_src)
                idxs.append(t)
                if not off_nonneg:
                    bad.append(t)
            if bad and key not in guarded:
                guarded.add(key)
                pre.append(f"if {' or '.join(f'{t} < 0' for t in bad)}:")
                pre.append(f"    _oob({buf.name!r})")
            src = f"{name}[{', '.join(idxs)}]" if sig else f"{name}[()]"
            elem_cache[key] = src
            return src

        def slice_src(buf: Sym, sig: Tuple) -> str:
            key = (buf, sig)
            hit = slice_cache.get(key)
            if hit is not None:
                return hit
            name = self.bound[buf][0]
            parts = []
            for d, (c, off_src, off_nonneg) in enumerate(sig):
                if c == 0:
                    t = off_temp(off_src)
                    parts.append(t)
                    if not off_nonneg:
                        pre.append(f"if {t} < 0:")
                        pre.append(f"    _oob({buf.name!r})")
                    continue
                base = "" if off_src == "0" else f"{off_temp(off_src)} + "
                if c == 1:
                    start, last = f"{base}{lo_t}", f"{base}{hi_t} - 1"
                    stop, step = f"{base}{hi_t}", ""
                else:
                    start = f"{base}{c} * {lo_t}"
                    last = f"{base}{c} * ({hi_t} - 1)"
                    stop, step = f"{last} + 1", f":{c}"
                pre.append(f"if ({start}) < 0 or ({last}) >= {name}.shape[{d}]:")
                pre.append(f"    _oob({buf.name!r}, 'vector access out of range')")
                parts.append(f"{start}:{stop}{step}")
            src = f"{name}[{', '.join(parts)}]"
            slice_cache[key] = src
            return src

        def vec_expr(e: N.Expr) -> _Vec:
            if isinstance(e, N.Const):
                if isinstance(e.val, bool):
                    return _Vec("True" if e.val else "False", False)
                return _Vec(repr(e.val), False)
            if isinstance(e, N.Read):
                sym = e.name
                if sym is iv and not e.idx:
                    need_iota[0] = True
                    return _Vec("__iota", True, atom=True)
                if sym in vtemps:
                    if e.idx:
                        raise _NoVec
                    # a temp assigned a loop-invariant RHS is still a scalar
                    isv = vtemp_vec.get(sym, False)
                    return _Vec(vtemps[sym], isv, atom=isv)
                if sym in vtemp_syms:  # read before any write: rejected above
                    raise _NoVec
                info = self.bound.get(sym)
                if info is None:
                    raise _NoVec
                name, kind = info
                if kind in ("scalar", "index"):
                    if e.idx or sym in acc_syms:
                        raise _NoVec
                    return _Vec(name, False)
                if kind == "cell":
                    if e.idx:
                        raise _NoVec
                    accesses.append((sym, (), False))
                    return _Vec(f"{name}[()]", False)
                if not e.idx:
                    raise _NoVec
                sig = dims_sig(e.idx)
                if any(c for c, _, _ in sig):
                    accesses.append((sym, sig, False))
                    return _Vec(slice_src(sym, sig), True, atom=True)
                accesses.append((sym, sig, False))
                return _Vec(elem_src(sym, sig), False)
            if isinstance(e, N.BinOp):
                if e.op in ("and", "or"):
                    raise _NoVec
                l, r = vec_expr(e.lhs), vec_expr(e.rhs)
                vec = l.vec or r.vec
                if e.op == "/":
                    return _Vec(f"_div({l.src}, {r.src})", vec)
                return _Vec(f"({l.src} {e.op} {r.src})", vec)
            if isinstance(e, N.USub):
                x = vec_expr(e.arg)
                return _Vec(f"(-{x.src})", x.vec)
            if isinstance(e, N.Extern):
                subs = [vec_expr(a) for a in e.args]
                defn = extern_by_name(e.fname)
                if any(x.vec for x in subs):
                    # the registry's whole-array template (np_template); an
                    # extern registered without one blocks vectorisation and
                    # the loop runs through the scalar lowering instead
                    if defn.np_template is None:
                        raise _NoVec
                    return _Vec(defn.np_template.format(*[x.src for x in subs]), True)
                impl = self.const(defn.impl)
                return _Vec(f"__K[{impl}]({', '.join(x.src for x in subs)})", False)
            raise _NoVec

        for st in work:
            aug = isinstance(st, N.Reduce)
            tgt = st.name
            if tgt in vtemp_syms:
                r = vec_expr(st.rhs)
                name = vtemps.get(tgt)
                if name is None:
                    name = f"__v{len(vtemps)}"
                if aug:
                    body_lines.append(f"{name} = {name} + ({r.src})")
                    vtemp_vec[tgt] = vtemp_vec.get(tgt, False) or r.vec
                else:
                    # unary + copies: a bare slice must not stay a live view
                    # of a buffer that later statements may overwrite
                    src = f"(+{r.src})" if r.atom else r.src
                    body_lines.append(f"{name} = {src}")
                    vtemp_vec[tgt] = r.vec
                vtemps[tgt] = name
                continue
            if tgt in acc_syms:
                r = vec_expr(st.rhs)
                if not r.vec:
                    raise _NoVec
                name = self.bound[tgt][0]
                expr = f"{name} + ({r.src}).sum()"
                cast = self.scalar_cast.get(tgt)
                if cast is not None:
                    expr = f"__K[{cast}]({expr})"
                body_lines.append(f"{name} = {expr}")
                continue
            info = self.bound.get(tgt)
            if info is None:
                raise _NoVec
            name, kind = info
            if kind == "cell":
                sig: Tuple = ()
            elif kind == "tensor":
                if not st.idx:
                    raise _NoVec
                sig = dims_sig(st.idx)
            else:
                raise _NoVec
            r = vec_expr(st.rhs)
            if any(c for c, _, _ in sig):
                accesses.append((tgt, sig, True))
                body_lines.append(f"{slice_src(tgt, sig)} {'+=' if aug else '='} {r.src}")
            else:
                if not aug or not r.vec:
                    raise _NoVec
                accesses.append((tgt, sig, True))
                tgt_src = elem_src(tgt, sig) if kind == "tensor" else f"{name}[()]"
                body_lines.append(f"{tgt_src} += ({r.src}).sum(dtype={name}.dtype)")

        # windows alias their base buffer: if any buffer in an alias group is
        # written while the group is accessed under more than one name, the
        # per-symbol analysis below would miss the dependence — reject
        per_base: Dict[Sym, Tuple[Set[Sym], List[bool]]] = {}
        for sym, _, is_write in accesses:
            syms, writes = per_base.setdefault(self.window_base.get(sym, sym), (set(), []))
            syms.add(sym)
            writes.append(is_write)
        for syms, writes in per_base.values():
            if len(syms) > 1 and any(writes):
                raise _NoVec

        # dependence validation per written buffer
        per_buf: Dict[Sym, List[Tuple[Tuple, bool]]] = {}
        for sym, sig, is_write in accesses:
            per_buf.setdefault(sym, []).append((sig, is_write))
        for sym, accs in per_buf.items():
            write_sigs = {sig for sig, w in accs if w}
            if not write_sigs:
                continue
            idep = {sig for sig in write_sigs if any(c for c, _, _ in sig)}
            iindep = write_sigs - idep
            if idep and iindep:
                raise _NoVec
            if len(idep) > 1:
                raise _NoVec
            read_sigs = {sig for sig, w in accs if not w}
            if read_sigs:
                if iindep:
                    raise _NoVec  # partial sums would be observable
                (wsig,) = idep
                if any(rs != wsig for rs in read_sigs):
                    raise _NoVec

        if need_iota[0]:
            pre.append(f"__iota = np.arange({lo_t}, {hi_t})")
        return pre, body_lines
