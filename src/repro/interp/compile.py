"""Compiled execution engine: lower object code to NumPy and run it natively.

The reference interpreter (:mod:`repro.interp.interpreter`) re-dispatches on
every IR node of every iteration — ~0.3M scalar ops/s — which pins functional
equivalence checks to toy sizes.  This module instead *compiles* a procedure
once: the object code is lowered to generated Python source in which

* loop nests become ``range`` loops,
* innermost loops whose bodies are assignments/reductions with dense affine
  accesses are vectorised into whole-array NumPy statements
  (``y[0:n] += alpha * x[0:n]``), with loop-carried scalars expanded into
  vector temporaries and invariant-index reductions turned into ``.sum()``;
  affine ``if`` guards (masked ``@instr`` bodies) lower to peeled sub-range
  slices,
* call sites are *inlined* at compile time (``@instr`` bodies included) with
  fresh symbols and window/affine index composition, so the chunked loops
  scheduled kernels produce become ordinary affine loop nests
  (:func:`_inline_procedure`; calls the inliner declines compile recursively
  as opaque callees, and ``REPRO_EXEC_INLINE=0`` or ``inline=False`` disables
  inlining entirely),
* chunked loop nests left by inlining (``w*io + ii`` accesses over
  constant-width register temporaries) are folded across the *outer* loop
  into full-range strided/2-D whole-array statements — register temps expand
  to ``(chunks, lanes)`` matrices, regions become basic slices or
  bounds-checked ``as_strided`` views, invariant-index reductions become
  ``.sum(axis=0)`` (``_vec_lower_outer``), and
* windows become NumPy views.

The generated source is ``exec``-ed once and the callable cached.

Backend selection and fallback rules
------------------------------------
``run_proc(..., backend=...)`` selects the engine: ``"compiled"`` (the
default), ``"interp"`` (the tree-walking reference), or ``"differential"``
(run both and cross-check every tensor argument).  Within the compiled
engine, any *statement* the lowerer cannot handle (exotic window shapes,
uncompilable callees, constructs added to the IR later) automatically falls
back to the tree interpreter for just that statement: the generated code
packages the in-scope environment into a symbol dict, executes the original
statement node through ``_Interp.exec_stmt``, and writes scalar results back.
If a whole procedure cannot be lowered, ``run_proc`` silently runs the tree
interpreter instead, so ``backend="compiled"`` is always safe to request.

Semantics parity
----------------
The scalar lowering mirrors the interpreter operation-for-operation (same
NumPy scalar arithmetic, same integer-division rule, same dtype rounding on
scalar allocations); vectorised elementwise statements are bit-identical to
the sequential loop.  Only invariant-index reductions differ: NumPy's pairwise
summation reorders floating-point addition, which stays well within
``check_equiv`` tolerances (and is usually *more* accurate); the outer-loop
fold of chunked reductions (``.sum(axis=0)``) reorders in the same way.
Inlining is semantics-preserving by construction: tensor parameters are
by-reference views (index composition hits the same elements), scalar
parameters are only substituted when the actual is pure and the callee never
writes them, and window actuals must have provably non-negative bounds and
extents provably covering the callee's declared shape, so no
interpreter-side bounds error is skipped.  Negative buffer
indices raise :class:`InterpError` in both engines; positive out-of-bounds
accesses surface as :class:`InterpError` via NumPy's ``IndexError`` (checked
up front, per loop, for vectorised slices).  Like Exo's C backend, the engine
assumes distinct buffer arguments do not alias.

Caching
-------
Compiled callables are cached keyed by the PR-1 structural hash
(:func:`repro.ir.build.struct_hash`) plus an alpha-identity signature (the
order of first occurrence of each distinct symbol, since ``struct_hash``
compares symbols by name only) plus an argument-type token (``struct_hash``
ignores ``FnArg`` types, but guard elision depends on them) plus the resolved
inlining knob (the two settings generate different code) plus the resolved
``par``-loop thread count (the dispatch call sites embed it; see
:mod:`repro.interp.parallel`).  The cache is
flushed lazily whenever the edit engine has bumped the global mutation epoch
since the last compile, so no entry can outlive an in-place tree mutation;
within an epoch, structurally identical procedures (e.g. one ``@instr``
called from many scheduled kernels) share one compiled callable.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..backend.lowering import (
    InlineError,
    affine_decompose,
    biaffine_decompose,
    np_dtype_for,
    provably_nonneg,
    substitute_call_body,
)
from ..analysis.effects import accesses_of
from ..errors import ExoError
from ..ir import nodes as N
from ..ir.build import (
    alpha_rename_stmts,
    collect_allocs,
    collect_syms_written,
    struct_hash,
    structurally_equal,
    subst_expr,
    subst_stmts,
    used_syms_expr,
    walk,
)
from ..ir.externs import extern_by_name
from ..ir.syms import Sym
from ..ir.types import ScalarType, TensorType
from .interpreter import InterpError, _Interp
from .parallel import par_for, resolve_num_threads

__all__ = [
    "CompileError",
    "CompiledProc",
    "compile_proc",
    "compiled_source",
    "clear_compile_cache",
]


class CompileError(ExoError):
    """The procedure cannot be lowered to NumPy at all (the caller should run
    the tree interpreter instead)."""


class _CannotLower(Exception):
    """Internal: this statement needs the per-statement interpreter fallback."""


class _NoVec(Exception):
    """Internal: this loop cannot be vectorised; use the scalar lowering."""


# ---------------------------------------------------------------------------
# Runtime support referenced from generated code
# ---------------------------------------------------------------------------


def _rt_oob(buf: str, detail: str = "negative index") -> None:
    raise InterpError(f"out-of-bounds access to {buf} ({detail})")


def _intlike(v) -> bool:
    if isinstance(v, (bool, int, np.integer)):
        return True
    return isinstance(v, np.ndarray) and v.dtype.kind in "bui"


def _rt_div(a, b):
    """Object-language division: floor for integer operands, true otherwise
    (elementwise for arrays) — the interpreter's ``_binop`` rule."""
    if _intlike(a) and _intlike(b):
        return a // b
    return a / b


def _rt_stride(arr, dim: int) -> int:
    if not isinstance(arr, np.ndarray) or arr.ndim == 0:
        return 1
    return arr.strides[dim] // arr.itemsize


def _rt_astensor(v):
    return v if isinstance(v, np.ndarray) else np.asarray(v)


def _rt_strided2(arr, base: int, n: int, w: int, a: int, b: int, buf: str):
    """A bounds-checked ``(n, w)`` view of 1-D ``arr`` whose element ``(i, j)``
    is ``arr[base + a*i + b*j]`` — the access region of a chunked loop nest
    ``buf[a*io + b*ii + base]`` folded across the outer loop.  Rows are
    guaranteed disjoint by the caller's dependence analysis before the view is
    ever written through."""
    if base < 0 or base + a * (n - 1) + b * (w - 1) >= arr.shape[0]:
        _rt_oob(buf, "vector access out of range")
    s = arr.strides[0]
    return np.lib.stride_tricks.as_strided(arr[base:], shape=(n, w), strides=(a * s, b * s))


class _RunContext:
    """Per-execution state shared by a compiled procedure, its compiled
    callees, and any per-statement interpreter fallbacks (one config-state
    dict for everybody)."""

    __slots__ = ("interp",)

    def __init__(self, config_state: Optional[Dict] = None):
        self.interp = _Interp(config_state)

    def fb(self, stmt: N.Stmt, env: Dict[Sym, object]) -> None:
        """Execute one original statement node through the tree interpreter."""
        self.interp.exec_stmt(stmt, env)

    def cfg_read(self, key, label: str):
        state = self.interp.config_state
        if key not in state:
            raise InterpError(f"read of configuration field {label} before any write")
        return state[key]


class CompiledProc:
    """A procedure lowered to a Python/NumPy callable.

    ``source`` is the generated Python text (useful for debugging and tested
    directly), ``fallback_stmts`` counts statements that run through the tree
    interpreter, ``vector_loops`` counts loops lowered to whole-array NumPy
    statements (innermost or chunked outer loops), ``inlined_calls`` counts
    call sites substituted by the cross-procedure inliner before lowering,
    and ``par_loops`` counts ``pragma == "par"`` loops lowered to multicore
    chunk dispatch (:func:`repro.interp.parallel.par_for`).
    """

    __slots__ = (
        "name",
        "source",
        "fn",
        "fallback_stmts",
        "vector_loops",
        "inlined_calls",
        "par_loops",
    )

    def __init__(
        self,
        name: str,
        source: str,
        fn,
        fallback_stmts: int,
        vector_loops: int,
        inlined_calls: int = 0,
        par_loops: int = 0,
    ):
        self.name = name
        self.source = source
        self.fn = fn
        self.fallback_stmts = fallback_stmts
        self.vector_loops = vector_loops
        self.inlined_calls = inlined_calls
        self.par_loops = par_loops

    def stats(self) -> Dict[str, int]:
        """The compile statistics as a plain dict (benchmark plumbing)."""
        return {
            "vector_loops": self.vector_loops,
            "fallback_stmts": self.fallback_stmts,
            "inlined_calls": self.inlined_calls,
            "par_loops": self.par_loops,
        }

    def run(self, ctx: _RunContext, argvals: Sequence[object]) -> None:
        try:
            self.fn(ctx, *argvals)
        except IndexError as exc:
            raise InterpError(f"out-of-bounds access while executing compiled {self.name}: {exc}") from exc


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

# The compiled-code cache is content-addressed (structural hash + alpha
# signature + argument types + inliner flag), so entries stay valid across
# edits — editing never mutates a published root in place (see
# ``struct_hash``'s contract in ir.build).  A lock guards the map itself so
# concurrent threads (e.g. schedule-service workers) can compile and run
# procedures in parallel; compilation happens *outside* the lock, so two
# threads may race to compile the same key and one result wins — wasted work,
# never a wrong answer.
_CACHE: Dict[Tuple[int, int, int, bool, int], CompiledProc] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_LIMIT = 512
# recursion detection is per call stack, hence per thread
_TLS = threading.local()


def _in_progress() -> Set[int]:
    ids = getattr(_TLS, "in_progress", None)
    if ids is None:
        ids = _TLS.in_progress = set()
    return ids


def _alias_sig(root: N.ProcDef) -> int:
    """Hash of the first-occurrence order of each distinct symbol.

    ``struct_hash`` compares symbols by *name*; two trees can hash equally yet
    bind same-named symbols differently.  Combining the hash with this
    signature makes the cache key alpha-exact.  Memoised on the root —
    permanently, like the structural hash, because published roots are never
    mutated in place.
    """
    cached = getattr(root, "_alias_sig_cache", None)
    if cached is not None:
        return cached
    first: Dict[Sym, int] = {}

    def key_of(sym: Sym) -> int:
        if sym not in first:
            first[sym] = len(first)
        return first[sym]

    sig: List[int] = []
    for a in root.args:
        sig.append(key_of(a.name))
    for n, _ in walk(root):
        if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr, N.Assign, N.Reduce, N.Alloc, N.WindowStmt)):
            sig.append(key_of(n.name))
        elif isinstance(n, N.For):
            sig.append(key_of(n.iter))
    h = hash(tuple(sig))
    root._alias_sig_cache = h
    return h


def _arg_type_token(root: N.ProcDef) -> int:
    """Hash of the declared argument types.

    ``struct_hash`` deliberately ignores expression result types (and with
    them ``FnArg.typ``), but the compiled code *does* depend on them — e.g. a
    ``size`` argument elides negative-index guards that an ``index`` argument
    must keep — so argument types are a separate cache-key component.
    """
    parts: List[object] = []
    for a in root.args:
        t = a.typ
        if isinstance(t, TensorType):
            parts.append(("t", t.base.name, t.is_window, tuple(struct_hash(e) for e in t.shape)))
        else:
            parts.append(("s", t.name))
    return hash(tuple(parts))


def _inline_enabled(flag: Optional[bool]) -> bool:
    """Resolve the cross-procedure inlining knob: an explicit ``inline=``
    argument wins, then the ``REPRO_EXEC_INLINE`` environment variable
    (``"0"`` disables), default on."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("REPRO_EXEC_INLINE", "1") != "0"


def compile_proc(
    procedure, *, inline: Optional[bool] = None, threads: Optional[int] = None
) -> CompiledProc:
    """Compile a :class:`Procedure` (or raw ``ProcDef``) to NumPy, memoised.

    ``inline`` controls the cross-procedure inliner (see
    :func:`_inline_procedure`); ``None`` defers to ``REPRO_EXEC_INLINE``.
    ``threads`` is the worker count ``par`` loops dispatch over (``None``
    defers to ``REPRO_NUM_THREADS`` / the CPU count); the resolved count is
    embedded in the generated dispatch calls and is therefore part of the
    cache key.  Raises :class:`CompileError` when the procedure cannot be
    lowered at all.
    """
    root = getattr(procedure, "_root", procedure)
    inl = _inline_enabled(inline)
    nthreads = resolve_num_threads(threads)
    key = (struct_hash(root), _alias_sig(root), _arg_type_token(root), inl, nthreads)
    with _CACHE_LOCK:
        hit = _CACHE.get(key)
    if hit is not None:
        return hit
    in_progress = _in_progress()
    if id(root) in in_progress:
        raise CompileError(f"recursive call cycle through {root.name}")
    in_progress.add(id(root))
    try:
        work, n_inlined = (_inline_procedure(root) if inl else (root, 0))
        engine = _Lowerer(work, inline=inl, threads=nthreads).compile()
        engine.inlined_calls = n_inlined
    except CompileError:
        raise
    except Exception as exc:  # defensive: never let lowering bugs kill a run
        raise CompileError(f"cannot lower {root.name}: {type(exc).__name__}: {exc}") from exc
    finally:
        in_progress.discard(id(root))
    with _CACHE_LOCK:
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[key] = engine
    return engine


def compiled_source(
    procedure, *, inline: Optional[bool] = None, threads: Optional[int] = None
) -> str:
    """The generated Python source for a procedure (compiles if needed)."""
    return compile_proc(procedure, inline=inline, threads=threads).source


def clear_compile_cache() -> None:
    with _CACHE_LOCK:
        _CACHE.clear()


# ---------------------------------------------------------------------------
# Cross-procedure inlining (compile-time)
# ---------------------------------------------------------------------------

# Soft budget on the statement count added by inlining: once exhausted,
# remaining call sites stay calls (which still compile recursively).  Set far
# above any real scheduled kernel; this only guards pathological expansion.
_INLINE_STMT_BUDGET = 20_000


def _pure_scalar_actual(e: N.Expr) -> bool:
    """May a scalar actual be substituted textually into the callee body?

    Substitution re-evaluates the expression at every read site, so it must
    be pure and cheap: constants, (possibly indexed) reads, and arithmetic
    over them.  (Externs and config reads keep the call path instead.)
    """
    if isinstance(e, N.Const):
        return True
    if isinstance(e, N.Read):
        return all(_pure_scalar_actual(i) for i in e.idx)
    if isinstance(e, N.BinOp):
        return _pure_scalar_actual(e.lhs) and _pure_scalar_actual(e.rhs)
    if isinstance(e, N.USub):
        return _pure_scalar_actual(e.arg)
    if isinstance(e, N.StrideExpr):
        return True
    return False


def _extent_covers(lo: N.Expr, hi: N.Expr, shape_expr: N.Expr) -> bool:
    """Can we prove the window interval ``lo:hi`` spans at least
    ``shape_expr`` elements?

    The interpreter materialises windows as NumPy views, so a callee access
    past the window *extent* raises even when it stays inside the base
    buffer; composed (inlined) accesses only check the base.  Inlining is
    therefore only allowed when the extent provably covers the callee's
    declared parameter shape.  Two proofs are attempted: structural equality
    ``hi == lo + shape`` (the form ``vectorize``'s ``divide_loop`` windows
    take), and constant-difference comparison with identical symbolic
    residuals (symbols compared by identity).
    """
    for cand in (N.BinOp("+", lo, shape_expr), N.BinOp("+", shape_expr, lo)):
        if structurally_equal(hi, cand):
            return True
    ch, rh = _split_const_off(hi)
    cl, rl = _split_const_off(lo)
    cs, rs = _split_const_off(shape_expr)
    if rs is not None:
        return False
    if (rh is None) != (rl is None):
        return False
    if rh is not None and not structurally_equal(rh, rl):
        return False
    return ch - cl >= cs


def _stmt_count(stmts: Sequence[N.Stmt]) -> int:
    n = 0
    for s in stmts:
        n += 1
        if isinstance(s, N.For):
            n += _stmt_count(s.body)
        elif isinstance(s, N.If):
            n += _stmt_count(s.body) + _stmt_count(s.orelse)
    return n


def _inline_procedure(root: N.ProcDef) -> Tuple[N.ProcDef, int]:
    """Substitute compiled callee bodies (including ``@instr`` bodies) into
    ``root`` at compile time.

    Calls are inlined bottom-up: each callee's body is itself inlined first
    (memoised per callee), then alpha-renamed per call site and substituted
    with window/affine index composition
    (:func:`repro.backend.lowering.substitute_call_body`).  A call site is
    *declined* — left as a call, which still compiles recursively — when:

    * a tensor actual is not a whole-buffer read or a window expression
      (e.g. a scalar cell passed as a 1-element tensor),
    * a window actual has a bound not provably non-negative (the interpreter
      rejects negative window bounds at call time; inlining would lose that
      check),
    * a scalar actual is not a pure cheap expression, the callee writes the
      scalar parameter, or the actual (or a window bound) reads a buffer the
      call can write through a tensor actual — substitution re-evaluates the
      expression at every read site, so by-value call semantics would be
      lost to aliasing,
    * the statement budget is exhausted, or the call graph is cyclic.

    Returns the (possibly new) root and the number of call sites substituted,
    counting sites inside expanded callee bodies.
    """
    budget = [_INLINE_STMT_BUDGET - _stmt_count(root.body)]
    # callee ProcDef id -> (inlined body template, nested inline count, size,
    # symbols the template writes)
    memo: Dict[int, Optional[Tuple[List[N.Stmt], int, int, Set[Sym]]]] = {}
    in_progress: Set[int] = set()

    def callee_template(cdef: N.ProcDef):
        if id(cdef) in memo:
            return memo[id(cdef)]
        if id(cdef) in in_progress:
            memo[id(cdef)] = None  # call cycle: stop inlining through it
            return None
        in_progress.add(id(cdef))
        try:
            tensors = {a.name for a in cdef.args if isinstance(a.typ, TensorType)}
            nonneg = {
                a.name
                for a in cdef.args
                if isinstance(a.typ, ScalarType) and a.typ.name == "size"
            }
            counter = [0]
            body = xform_stmts(cdef.body, tensors, nonneg, {}, counter)
            memo[id(cdef)] = (body, counter[0], _stmt_count(body), collect_syms_written(body))
        finally:
            in_progress.discard(id(cdef))
        return memo[id(cdef)]

    def try_inline_call(
        s: N.Call, tensors: Set[Sym], nonneg: Set[Sym], wbase: Dict[Sym, Sym], counter
    ) -> Optional[List[N.Stmt]]:
        cdef = getattr(s.proc, "_root", s.proc)
        if len(cdef.args) != len(s.args):
            return None
        tpl = callee_template(cdef)
        if tpl is None:
            return None
        body_tpl, nested, size, written = tpl
        # every tensor actual's base buffer is conservatively writable by the
        # call (collect_syms_written cannot see writes the callee makes
        # through its own non-inlined calls)
        writable = {
            wbase.get(actual.name, actual.name)
            for fa, actual in zip(cdef.args, s.args)
            if isinstance(fa.typ, TensorType) and isinstance(actual, (N.Read, N.WindowExpr))
        }

        def aliases_writable(e: N.Expr) -> bool:
            return any(wbase.get(sym, sym) in writable for sym in used_syms_expr(e))

        scalar_map = {
            fa.name: actual
            for fa, actual in zip(cdef.args, s.args)
            if not isinstance(fa.typ, TensorType)
        }
        for fa, actual in zip(cdef.args, s.args):
            if isinstance(fa.typ, TensorType):
                if isinstance(actual, N.WindowExpr):
                    if actual.name not in tensors:
                        return None
                    for d in actual.idx:
                        lo = d.lo if isinstance(d, N.Interval) else d.pt
                        if not provably_nonneg(lo, nonneg):
                            return None
                        # bounds are re-evaluated at every composed access
                        if aliases_writable(lo) or (isinstance(d, N.Interval) and aliases_writable(d.hi)):
                            return None
                    # the window extent must provably cover the callee's
                    # declared shape: the interpreter errors on accesses past
                    # the window VIEW, composed accesses only past the base
                    intervals = [d for d in actual.idx if isinstance(d, N.Interval)]
                    if len(intervals) != len(fa.typ.shape):
                        return None
                    for d, se in zip(intervals, fa.typ.shape):
                        if not _extent_covers(d.lo, d.hi, subst_expr(se, scalar_map)):
                            return None
                elif isinstance(actual, N.Read) and not actual.idx:
                    # whole-buffer actuals need no extent check: composed
                    # accesses hit the same array with the same indices
                    if actual.name not in tensors:
                        return None
                else:
                    return None
            else:
                if fa.name in written or not _pure_scalar_actual(actual):
                    return None
                # the interpreter evaluates the actual ONCE at call time; the
                # substituted expression re-reads at every use, so it must
                # not observe the call's own writes
                if aliases_writable(actual):
                    return None
        if size > budget[0]:
            return None
        fresh = alpha_rename_stmts(body_tpl)
        try:
            out = substitute_call_body(cdef.args, s.args, fresh)
        except InlineError:
            return None
        budget[0] -= size
        counter[0] += 1 + nested
        return out

    def xform_stmts(
        stmts: Sequence[N.Stmt], tensors: Set[Sym], nonneg: Set[Sym], wbase: Dict[Sym, Sym], counter
    ) -> List[N.Stmt]:
        out: List[N.Stmt] = []
        for s in stmts:
            if isinstance(s, N.Call):
                repl = try_inline_call(s, tensors, nonneg, wbase, counter)
                if repl is not None:
                    out.extend(repl)
                else:
                    out.append(s)
                continue
            if isinstance(s, N.For):
                if provably_nonneg(s.lo, nonneg):
                    nonneg.add(s.iter)
                body = xform_stmts(s.body, tensors, nonneg, wbase, counter)
                if (
                    isinstance(s.lo, N.Const)
                    and s.lo.val == 0
                    and isinstance(s.hi, N.Const)
                    and s.hi.val == 1
                ):
                    # collapse constant trip-1 loops (`divide_loop` residue):
                    # they otherwise hide chunked nests from the outer-loop
                    # vectoriser one level up
                    out.extend(subst_stmts(body, {s.iter: N.Const(0)}))
                    continue
                out.append(N.For(s.iter, s.lo, s.hi, body, s.pragma))
                continue
            if isinstance(s, N.If):
                out.append(
                    N.If(
                        s.cond,
                        xform_stmts(s.body, tensors, nonneg, wbase, counter),
                        xform_stmts(s.orelse, tensors, nonneg, wbase, counter),
                    )
                )
                continue
            if isinstance(s, N.Alloc) and isinstance(s.typ, TensorType):
                tensors.add(s.name)
            elif isinstance(s, N.WindowStmt):
                tensors.add(s.name)
                if s.rhs is not None:
                    wbase[s.name] = wbase.get(s.rhs.name, s.rhs.name)
            out.append(s)
        return out

    tensors = {a.name for a in root.args if isinstance(a.typ, TensorType)}
    nonneg = {
        a.name for a in root.args if isinstance(a.typ, ScalarType) and a.typ.name == "size"
    }
    counter = [0]
    body = xform_stmts(root.body, tensors, nonneg, {}, counter)
    if counter[0] == 0:
        return root, 0
    return N.ProcDef(root.name, root.args, root.preds, body, root.instr), counter[0]


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name) or "v"


def _free_syms(s: N.Stmt) -> Set[Sym]:
    """Symbols a statement needs from the enclosing scope (reads, writes and
    shape references, minus anything the statement itself binds)."""
    free: Set[Sym] = set()
    bound: Set[Sym] = set()
    for n, _ in walk(s):
        if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr)):
            free.add(n.name)
        elif isinstance(n, (N.Assign, N.Reduce)):
            free.add(n.name)
        elif isinstance(n, N.Alloc):
            bound.add(n.name)
            if isinstance(n.typ, TensorType):
                for e in n.typ.shape:
                    free |= used_syms_expr(e)
        elif isinstance(n, N.For):
            bound.add(n.iter)
        elif isinstance(n, N.WindowStmt):
            bound.add(n.name)
    return free - bound


def _split_const_off(e: Optional[N.Expr]) -> Tuple[int, Optional[N.Expr]]:
    """Split an offset expression into ``(constant, residual)`` along its
    additive structure (the residual is ``None`` for a pure constant).  The
    outer-loop vectoriser compares accesses by (residual, constant) to prove
    chunked regions disjoint within one period of the outer stride."""
    if e is None:
        return 0, None
    if isinstance(e, N.Const) and isinstance(e.val, (int, np.integer)) and not isinstance(e.val, bool):
        return int(e.val), None
    if isinstance(e, N.BinOp) and e.op in ("+", "-"):
        cl, rl = _split_const_off(e.lhs)
        cr, rr = _split_const_off(e.rhs)
        c = cl + cr if e.op == "+" else cl - cr
        if rr is None:
            rest = rl
        elif rl is None:
            rest = rr if e.op == "+" else N.USub(rr)
        else:
            rest = N.BinOp(e.op, rl, rr)
        return c, rest
    if isinstance(e, N.USub):
        c, r = _split_const_off(e.arg)
        return -c, (None if r is None else N.USub(r))
    return 0, e


def _join_kind(a: str, b: str) -> str:
    """Join two 2-D operand axis kinds: 's'calar, 'r'ow (lanes), 'c'olumn
    (chunks), 'f'ull (chunks x lanes)."""
    if a == "s":
        return b
    if b == "s":
        return a
    if a == b:
        return a
    return "f"


class _Vec:
    """A lowered sub-expression inside a vectorised loop body."""

    __slots__ = ("src", "vec", "atom")

    def __init__(self, src: str, vec: bool, atom: bool = False):
        self.src = src
        self.vec = vec  # does it evaluate to a whole-array value?
        self.atom = atom  # may it be a *view* of a buffer (needs copy on bind)?


class _Lowerer:
    def __init__(self, root: N.ProcDef, inline: bool = True, threads: int = 1):
        self.root = root
        self.inline = inline  # propagate the knob to recursively compiled callees
        self.threads = threads  # par-loop dispatch width (also in the cache key)
        self.in_par = False  # inside a par chunk body: nested pars stay serial
        self.lines: List[str] = []
        self.indent = 1
        self.consts: List[object] = []
        self.const_ix: Dict[int, int] = {}
        self.bound: Dict[Sym, Tuple[str, str]] = {}  # sym -> (pyname, kind)
        self.window_base: Dict[Sym, Sym] = {}  # window sym -> root base buffer
        self.scalar_cast: Dict[Sym, int] = {}  # alloc'd scalars: const-ix of np type
        self.nonneg: Set[Sym] = set()
        self.cells: Set[Sym] = set()
        self.ntemp = 0
        self.n_fallback = 0
        self.n_vec = 0
        self.n_par = 0

    # -- small utilities ---------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self.ntemp += 1
        return f"__t{self.ntemp}"

    def const(self, obj) -> int:
        ix = self.const_ix.get(id(obj))
        if ix is None:
            ix = len(self.consts)
            self.consts.append(obj)
            self.const_ix[id(obj)] = ix
        return ix

    def bind(self, sym: Sym, kind: str) -> str:
        if sym in self.bound:
            name = self.bound[sym][0]
            self.bound[sym] = (name, kind)
            return name
        name = f"{_sanitize(sym.name)}_{len(self.bound)}"
        self.bound[sym] = (name, kind)
        return name

    # -- entry -------------------------------------------------------------------

    def compile(self) -> CompiledProc:
        root = self.root
        self.cells = self._find_cell_syms(root)
        params: List[str] = []
        for a in root.args:
            if isinstance(a.typ, TensorType):
                kind = "tensor"
            elif a.typ.is_indexable():
                kind = "index"
            else:
                kind = "scalar"
            params.append(self.bind(a.name, kind))
            if isinstance(a.typ, ScalarType) and a.typ.name == "size":
                self.nonneg.add(a.name)
        self.lower_stmts(root.body)
        if not self.lines:
            self.emit("pass")
        source = f"def __kernel(__ctx, {', '.join(params)}):\n" + "\n".join(self.lines)
        ns = {
            "np": np,
            "__K": self.consts,
            "_oob": _rt_oob,
            "_div": _rt_div,
            "_stride": _rt_stride,
            "_astensor": _rt_astensor,
            "_strided2": _rt_strided2,
            "_par_for": par_for,
        }
        code = compile(source, f"<repro.compiled:{root.name}>", "exec")
        exec(code, ns)
        return CompiledProc(
            root.name, source, ns["__kernel"], self.n_fallback, self.n_vec, par_loops=self.n_par
        )

    @staticmethod
    def _find_cell_syms(root: N.ProcDef) -> Set[Sym]:
        """Scalar allocations that must be represented as 0-d arrays because
        they are windowed, strided, or passed to a tensor parameter."""
        scalars = set()
        for n, _ in walk(root):
            if isinstance(n, N.Alloc) and isinstance(n.typ, ScalarType):
                scalars.add(n.name)
        cells: Set[Sym] = set()
        for n, _ in walk(root):
            if isinstance(n, (N.WindowExpr, N.StrideExpr)) and n.name in scalars:
                cells.add(n.name)
            elif isinstance(n, N.Call):
                cdef = getattr(n.proc, "_root", n.proc)
                for fa, actual in zip(cdef.args, n.args):
                    if (
                        isinstance(fa.typ, TensorType)
                        and isinstance(actual, N.Read)
                        and not actual.idx
                        and actual.name in scalars
                    ):
                        cells.add(actual.name)
        return cells

    # -- statements --------------------------------------------------------------

    def lower_stmts(self, stmts: Sequence[N.Stmt]) -> None:
        for s in stmts:
            mark = len(self.lines)
            try:
                self.lower_stmt(s)
            except _CannotLower:
                del self.lines[mark:]
                self.emit_fallback(s)

    def lower_stmt(self, s: N.Stmt) -> None:
        if isinstance(s, (N.Assign, N.Reduce)):
            self.stmt_assign(s, aug=isinstance(s, N.Reduce))
        elif isinstance(s, N.Alloc):
            self.stmt_alloc(s)
        elif isinstance(s, N.For):
            self.stmt_for(s)
        elif isinstance(s, N.If):
            self.stmt_if(s)
        elif isinstance(s, N.Pass):
            self.emit("pass")
        elif isinstance(s, N.Call):
            self.stmt_call(s)
        elif isinstance(s, N.WindowStmt):
            src = self.window_expr(s.rhs)
            base = self.window_base.get(s.rhs.name, s.rhs.name)
            self.emit(f"{self.bind(s.name, 'tensor')} = {src}")
            self.window_base[s.name] = base
        elif isinstance(s, N.WriteConfig):
            key = self.const((id(s.config), s.field_name))
            rhs = self.value_expr(s.rhs)
            self.emit(f"__ctx.interp.config_state[__K[{key}]] = {rhs}")
        else:
            raise _CannotLower(type(s).__name__)

    def guarded_indices(self, buf_sym: Sym, idx_exprs: Sequence[N.Expr]) -> List[str]:
        """Render scalar index expressions, inserting a negative-index guard
        for any index that is not provably non-negative (positive overflow is
        caught by NumPy's own IndexError)."""
        srcs: List[str] = []
        guards: List[str] = []
        for e in idx_exprs:
            src = self.int_expr(e)
            if provably_nonneg(e, self.nonneg):
                srcs.append(src)
            else:
                t = self.temp()
                self.emit(f"{t} = {src}")
                guards.append(t)
                srcs.append(t)
        if guards:
            cond = " or ".join(f"{g} < 0" for g in guards)
            self.emit(f"if {cond}:")
            self.emit(f"    _oob({buf_sym.name!r})")
        return srcs

    def stmt_assign(self, s, aug: bool) -> None:
        info = self.bound.get(s.name)
        if info is None:
            raise _CannotLower("write to unbound symbol")
        name, kind = info
        if kind in ("tensor", "cell"):
            if s.idx:
                idxs = self.guarded_indices(s.name, s.idx)
                target = f"{name}[{', '.join(idxs)}]"
            else:
                target = f"{name}[()]"
            rhs = self.value_expr(s.rhs)
            self.emit(f"{target} {'+=' if aug else '='} {rhs}")
            return
        # plain scalar (or index) local / argument
        if s.idx:
            raise _CannotLower("indexed write to scalar")
        rhs = self.value_expr(s.rhs)
        expr = f"{name} + ({rhs})" if aug else rhs
        cast = self.scalar_cast.get(s.name)
        if cast is not None:
            # mirror the interpreter's dtype rounding on scalar allocations
            expr = f"__K[{cast}]({expr})"
        self.emit(f"{name} = {expr}")

    def stmt_alloc(self, s: N.Alloc) -> None:
        if isinstance(s.typ, TensorType):
            name = self.bind(s.name, "tensor")
            dt = self.const(np_dtype_for(s.typ).type)
            dims = "".join(f"int({self.int_expr(d)}), " for d in s.typ.shape)
            self.emit(f"{name} = np.zeros(({dims}), dtype=__K[{dt}])")
            return
        dt_type = np_dtype_for(s.typ).type
        if s.name in self.cells:
            name = self.bind(s.name, "cell")
            self.emit(f"{name} = np.zeros((), dtype=__K[{self.const(dt_type)}])")
            return
        name = self.bind(s.name, "scalar")
        self.scalar_cast[s.name] = self.const(dt_type)
        zero = "0.0" if np.dtype(dt_type).kind == "f" else "0"
        self.emit(f"{name} = {zero}")

    def stmt_for(self, s: N.For) -> None:
        lo_t, hi_t = self.temp(), self.temp()
        self.emit(f"{lo_t} = int({self.int_expr(s.lo)})")
        self.emit(f"{hi_t} = int({self.int_expr(s.hi)})")
        if s.pragma == "par" and not self.in_par and self._try_parallel(s, lo_t, hi_t):
            self.n_par += 1
            return
        if self._try_vectorize(s, lo_t, hi_t):
            self.n_vec += 1
            return
        if self._try_vectorize_outer(s, lo_t, hi_t):
            self.n_vec += 1
            return
        name = self.bind(s.iter, "index")
        if provably_nonneg(s.lo, self.nonneg):
            self.nonneg.add(s.iter)
        else:
            self.nonneg.discard(s.iter)
        self.emit(f"for {name} in range({lo_t}, {hi_t}):")
        self.indent += 1
        mark = len(self.lines)
        self.lower_stmts(s.body)
        if len(self.lines) == mark:
            self.emit("pass")
        self.indent -= 1

    def stmt_if(self, s: N.If) -> None:
        cond = self.value_expr(s.cond)
        self.emit(f"if {cond}:")
        self.indent += 1
        mark = len(self.lines)
        self.lower_stmts(s.body)
        if len(self.lines) == mark:
            self.emit("pass")
        self.indent -= 1
        if s.orelse:
            self.emit("else:")
            self.indent += 1
            mark = len(self.lines)
            self.lower_stmts(s.orelse)
            if len(self.lines) == mark:
                self.emit("pass")
            self.indent -= 1

    def stmt_call(self, s: N.Call) -> None:
        cdef = getattr(s.proc, "_root", s.proc)
        try:
            callee = compile_proc(cdef, inline=self.inline, threads=self.threads)
        except CompileError as exc:
            raise _CannotLower(str(exc)) from None
        args_src = ["__ctx"]
        for fa, actual in zip(cdef.args, s.args):
            if isinstance(fa.typ, TensorType):
                args_src.append(self.tensor_arg_expr(actual))
            else:
                args_src.append(self.value_expr(actual))
        self.emit(f"__K[{self.const(callee.fn)}]({', '.join(args_src)})")

    def tensor_arg_expr(self, actual: N.Expr) -> str:
        if isinstance(actual, N.Read) and not actual.idx:
            info = self.bound.get(actual.name)
            if info is None:
                raise _CannotLower("unbound tensor argument")
            if info[1] in ("tensor", "cell"):
                return info[0]
            raise _CannotLower("scalar passed as tensor argument")
        if isinstance(actual, N.WindowExpr):
            return self.window_expr(actual)
        return f"_astensor({self.value_expr(actual)})"

    def emit_fallback(self, s: N.Stmt) -> None:
        """Per-construct fallback: run the original statement node through the
        tree interpreter with the current in-scope environment."""
        self.n_fallback += 1
        free = _free_syms(s)
        missing = [sym for sym in free if sym not in self.bound]
        if missing:
            raise CompileError(
                f"{self.root.name}: statement references out-of-scope symbols {missing}"
            )
        pairs = [
            f"__K[{self.const(sym)}]: {info[0]}"
            for sym, info in self.bound.items()
            if sym in free
        ]
        env = self.temp()
        self.emit(f"{env} = {{{', '.join(pairs)}}}")
        self.emit(f"__ctx.fb(__K[{self.const(s)}], {env})")
        if isinstance(s, N.Alloc):
            kind = "tensor" if isinstance(s.typ, TensorType) else "cell"
            self.emit(f"{self.bind(s.name, kind)} = {env}[__K[{self.const(s.name)}]]")
        elif isinstance(s, N.WindowStmt):
            self.emit(f"{self.bind(s.name, 'tensor')} = {env}[__K[{self.const(s.name)}]]")
            if s.rhs is not None:
                self.window_base[s.name] = self.window_base.get(s.rhs.name, s.rhs.name)
        else:
            for sym in collect_syms_written(s):
                info = self.bound.get(sym)
                if info is not None and info[1] in ("scalar", "index"):
                    self.emit(f"{info[0]} = {env}[__K[{self.const(sym)}]]")

    # -- expressions (scalar contexts) --------------------------------------------

    def int_expr(self, e: N.Expr) -> str:
        return self._expr(e, int_ctx=True)

    def value_expr(self, e: N.Expr) -> str:
        return self._expr(e, int_ctx=False)

    def _expr(self, e: N.Expr, int_ctx: bool) -> str:
        if isinstance(e, N.Const):
            if isinstance(e.val, bool):
                return "True" if e.val else "False"
            return repr(e.val)
        if isinstance(e, N.Read):
            info = self.bound.get(e.name)
            if info is None:
                raise _CannotLower(f"read of unbound symbol {e.name}")
            name, kind = info
            if kind == "tensor":
                if not e.idx:
                    return name
                idxs = self.guarded_indices(e.name, e.idx)
                return f"{name}[{', '.join(idxs)}]"
            if kind == "cell":
                if e.idx:
                    idxs = self.guarded_indices(e.name, e.idx)
                    return f"{name}[{', '.join(idxs)}]"
                return f"{name}[()]"
            if e.idx:
                raise _CannotLower("indexed read of scalar")
            return name
        if isinstance(e, N.BinOp):
            lhs = self._expr(e.lhs, int_ctx)
            rhs = self._expr(e.rhs, int_ctx)
            if e.op == "/":
                return f"(({lhs}) // ({rhs}))" if int_ctx else f"_div({lhs}, {rhs})"
            if e.op in ("and", "or"):
                return f"(bool({lhs}) {e.op} bool({rhs}))"
            return f"({lhs} {e.op} {rhs})"
        if isinstance(e, N.USub):
            return f"(-{self._expr(e.arg, int_ctx)})"
        if isinstance(e, N.Extern):
            impl = self.const(extern_by_name(e.fname).impl)
            args = ", ".join(self._expr(a, False) for a in e.args)
            return f"__K[{impl}]({args})"
        if isinstance(e, N.StrideExpr):
            info = self.bound.get(e.name)
            if info is None:
                raise _CannotLower("stride of unbound symbol")
            return f"_stride({info[0]}, {e.dim})"
        if isinstance(e, N.ReadConfig):
            key = self.const((id(e.config), e.field_name))
            label = f"{e.config.name()}.{e.field_name}"
            return f"__ctx.cfg_read(__K[{key}], {label!r})"
        if isinstance(e, N.WindowExpr):
            return self.window_expr(e)
        raise _CannotLower(type(e).__name__)

    def window_expr(self, w: N.WindowExpr) -> str:
        info = self.bound.get(w.name)
        if info is None:
            raise _CannotLower("window of unbound symbol")
        name, kind = info
        if kind == "cell":
            # the interpreter's scalar-window special case: x[0:1] -> 1-vector
            if (
                len(w.idx) == 1
                and isinstance(w.idx[0], N.Interval)
                and isinstance(w.idx[0].lo, N.Const)
                and w.idx[0].lo.val == 0
                and isinstance(w.idx[0].hi, N.Const)
                and w.idx[0].hi.val == 1
            ):
                return f"{name}.reshape(1)"
            raise _CannotLower("window of scalar cell")
        if kind != "tensor":
            raise _CannotLower("window of scalar")
        parts: List[str] = []
        guards: List[str] = []

        def rendered(e: N.Expr) -> str:
            src = self.int_expr(e)
            if provably_nonneg(e, self.nonneg):
                return src
            t = self.temp()
            self.emit(f"{t} = {src}")
            guards.append(t)
            return t

        for d in w.idx:
            if isinstance(d, N.Interval):
                parts.append(f"{rendered(d.lo)}:{rendered(d.hi)}")
            else:
                parts.append(rendered(d.pt))
        if guards:
            cond = " or ".join(f"{g} < 0" for g in guards)
            self.emit(f"if {cond}:")
            self.emit(f"    _oob({w.name.name!r})")
        return f"{name}[{', '.join(parts)}]"

    # -- parallel dispatch --------------------------------------------------------

    def _try_parallel(self, s: N.For, lo_t: str, hi_t: str) -> bool:
        """Lower a ``pragma == "par"`` loop to chunked multicore dispatch.

        Returns False (and records a ``par->seq`` fallback event) when the
        body cannot be dispatched safely, in which case the loop lowers
        through the ordinary sequential path."""
        mark = len(self.lines)
        try:
            self._par_lower(s, lo_t, hi_t)
            return True
        except (_NoVec, _CannotLower) as exc:
            del self.lines[mark:]
            from ..guard import record_fallback

            record_fallback(
                self.root.name,
                "par->seq",
                "par-unlowerable",
                detail=str(exc) or type(exc).__name__,
            )
            return False

    def _par_lower(self, s: N.For, lo_t: str, hi_t: str) -> None:
        """Emit ``def <chunk>(lo, hi, *privs): <sequential loop>`` plus a
        ``_par_for`` dispatch call.

        The chunk body is the *ordinary sequential lowering* of the same loop
        over a parametric sub-range — including its vectorisation — so each
        chunk runs the exact whole-array code the sequential build runs,
        just on a slice of the iteration space.  Buffers whose body accesses
        are all reductions at iteration-invariant cells are privatized (each
        chunk accumulates into a zeroed copy; :func:`par_for` combines the
        partials in chunk order); buffers whose writes are indexed by the
        iterator stay shared (iterations touch disjoint cells — the
        ``parallelize_loop`` safety check proved it).  Anything else declines.
        """
        it = s.iter
        body = list(s.body)
        body_written = collect_syms_written(body)
        if it in body_written:
            raise _NoVec("par loop writes its own iterator")
        for st in body:
            for n, _ in walk(st):
                if isinstance(n, (N.WriteConfig, N.ReadConfig)):
                    # the shared config-state dict is not synchronised
                    raise _NoVec("par body touches configuration state")
        local = {a.name for a in collect_allocs(body)}
        by_buf: Dict[Sym, List] = {}
        for a in accesses_of(body):
            if a.buf in local or a.buf is it:
                continue
            by_buf.setdefault(a.buf, []).append(a)

        priv_arrays: List[Sym] = []
        priv_scalars: List[Sym] = []
        outer_written = [sym for sym in body_written if sym in self.bound]
        for sym in sorted(outer_written, key=lambda sm: self.bound[sm][0]):
            kind = self.bound[sym][1]
            lst = by_buf.get(sym, [])
            allreduce = bool(lst) and all(a.kind == "reduce" for a in lst)
            if kind in ("tensor", "cell"):
                writes = [a for a in lst if a.is_write()]
                reads = [a for a in lst if a.kind == "read"]
                disjoint = bool(writes) and all(
                    a.idx is not None and any(it in used_syms_expr(ix) for ix in a.idx)
                    for a in writes
                )
                if disjoint and all(a.idx is not None for a in reads):
                    continue  # shared: distinct iterations touch distinct cells
                if allreduce:
                    priv_arrays.append(sym)  # privatize + ordered combine
                    continue
                raise _NoVec(f"cannot prove writes to {sym.name} race-free")
            if kind == "scalar" and allreduce:
                priv_scalars.append(sym)
                continue
            raise _NoVec(f"scalar {sym.name} written non-reductively in par body")

        lo_sym, hi_sym = Sym("__plo"), Sym("__phi")
        priv_names = [self.bound[sym][0] for sym in priv_arrays]
        params = [self.bind(lo_sym, "index"), self.bind(hi_sym, "index")] + priv_names
        if provably_nonneg(s.lo, self.nonneg):
            # chunk bounds lie inside [lo, hi), so both inherit lo's sign
            self.nonneg.add(lo_sym)
            self.nonneg.add(hi_sym)
        fn_t = self.temp()
        self.emit(f"def {fn_t}({', '.join(params)}):")
        self.indent += 1
        for sym in priv_scalars:
            # each chunk accumulates its delta from zero; par_for's caller
            # (below) folds the deltas back in chunk order
            name = self.bound[sym][0]
            cast = self.scalar_cast.get(sym)
            zero = "0" if cast is not None and np.dtype(self.consts[cast]).kind != "f" else "0.0"
            self.emit(f"{name} = {zero}")
        inner = N.For(it, N.Read(lo_sym, []), N.Read(hi_sym, []), body, "seq")
        prev_in_par, self.in_par = self.in_par, True
        try:
            self.stmt_for(inner)
        finally:
            self.in_par = prev_in_par
        rets = "".join(f"{self.bound[sym][0]}, " for sym in priv_scalars)
        self.emit(f"return ({rets})")
        self.indent -= 1
        res_t = self.temp()
        arrs = "".join(f"{nm}, " for nm in priv_names)
        self.emit(
            f"{res_t} = _par_for({fn_t}, {lo_t}, {hi_t}, {self.threads}, "
            f"({arrs}), {self.root.name!r}, {bool(priv_arrays or priv_scalars)})"
        )
        for j, sym in enumerate(priv_scalars):
            name = self.bound[sym][0]
            cast = self.scalar_cast.get(sym)
            chunk_t = self.temp()
            self.emit(f"for {chunk_t} in {res_t}:")
            expr = f"{name} + {chunk_t}[{j}]"
            if cast is not None:
                expr = f"__K[{cast}]({expr})"
            self.emit(f"    {name} = {expr}")

    # -- vectorisation ------------------------------------------------------------

    def _try_vectorize(self, s: N.For, lo_t: str, hi_t: str) -> bool:
        mark = len(self.lines)
        try:
            pre, body = self._vec_lower(s, lo_t, hi_t)
        except (_NoVec, _CannotLower):
            del self.lines[mark:]  # discard any partial emission from analysis
            return False
        self.emit(f"if {hi_t} > {lo_t}:")
        self.indent += 1
        for line in pre:
            self.emit(line)
        for line in body:
            self.emit(line)
        self.indent -= 1
        return True

    def _vec_lower(self, s: N.For, lo_t: str, hi_t: str) -> Tuple[List[str], List[str]]:
        """Lower an innermost map/reduction loop to whole-array statements.

        Returns ``(pre, body)`` line lists (offset temps + bounds guards, then
        the vector statements) or raises ``_NoVec``.  The rules:

        * the body may contain only scalar allocations, assignments and
          reductions (plus ``pass``);
        * every buffer index must be affine in the iterator with a constant
          non-negative coefficient and a loop-invariant offset;
        * a buffer that is written is either accessed *only* through one
          iterator-dependent index pattern (an elementwise map — exact), or
          reduced at an invariant index and never read (a ``.sum()``);
        * scalars allocated in the body become vector temporaries (classic
          scalar expansion); outer scalars may only be sum-reduced.
        """
        iv = s.iter
        body_written = collect_syms_written(s.body)
        if iv in body_written:
            raise _NoVec
        reads_in_body = {
            n.name
            for st in s.body
            for n, _ in walk(st)
            if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr))
        }

        vtemps: Dict[Sym, str] = {}  # alloc'd scalar -> local pyname
        vtemp_vec: Dict[Sym, bool] = {}  # does the temp currently hold a vector?
        vtemp_syms: Set[Sym] = set()
        # (stmt, clip) where clip is None or ("lt"|"ge", bound expr): the
        # statement only runs for iterations below / from `bound` — the
        # lowering of affine `if` guards (masked @instr bodies) as peeled
        # sub-ranges of the whole-array statements
        work: List[Tuple[N.Stmt, Optional[Tuple[str, N.Expr]]]] = []
        for st in s.body:
            if isinstance(st, N.Pass):
                continue
            if isinstance(st, N.Alloc):
                if isinstance(st.typ, TensorType) or st.name in self.cells:
                    raise _NoVec
                vtemp_syms.add(st.name)
                continue
            if isinstance(st, (N.Assign, N.Reduce)):
                work.append((st, None))
                continue
            if isinstance(st, N.If) and not st.orelse:
                clip = self._clip_from_cond(st.cond, iv)
                if clip is None:
                    raise _NoVec
                inner = [x for x in st.body if not isinstance(x, N.Pass)]
                if not inner or not all(isinstance(x, (N.Assign, N.Reduce)) for x in inner):
                    raise _NoVec
                for x in inner:
                    work.append((x, clip))
                continue
            raise _NoVec
        if not work:
            raise _NoVec

        # first-access discipline for expanded scalars: written (by Assign)
        # before ever read, and never used as an index.  Guarded statements
        # may not touch expanded scalars at all: a clipped vector temporary
        # would be misaligned against the full-range ones.
        seen_write: Set[Sym] = set()
        for st, clip in work:
            stmt_reads = {
                n.name
                for src in (list(st.idx) + [st.rhs] if st.idx else [st.rhs])
                for n, _ in walk(src)
                if isinstance(n, (N.Read, N.WindowExpr, N.StrideExpr))
            }
            if clip is not None:
                if st.name in vtemp_syms or stmt_reads & vtemp_syms:
                    raise _NoVec
                bsyms = used_syms_expr(clip[1])
                if bsyms & body_written or bsyms & vtemp_syms:
                    raise _NoVec
                for n, _ in walk(clip[1]):
                    if isinstance(n, N.Read) and n.idx or isinstance(n, N.WindowExpr):
                        raise _NoVec
            for sym in stmt_reads & vtemp_syms:
                if sym not in seen_write:
                    raise _NoVec
            if st.name in vtemp_syms:
                if isinstance(st, N.Assign):
                    seen_write.add(st.name)
                elif st.name not in seen_write:
                    raise _NoVec

        # outer scalars may only be sum-accumulated
        acc_syms: Set[Sym] = set()
        for sym in body_written:
            info = self.bound.get(sym)
            if sym in vtemp_syms or info is None:
                continue
            if info[1] in ("scalar", "index"):
                if sym in reads_in_body:
                    raise _NoVec
                for st, _clip in work:
                    if st.name is sym and isinstance(st, N.Assign):
                        raise _NoVec
                acc_syms.add(sym)

        pre: List[str] = []
        body_lines: List[str] = []
        off_cache: Dict[str, str] = {}
        slice_cache: Dict[Tuple, str] = {}
        elem_cache: Dict[Tuple, str] = {}
        guarded: Set[Tuple] = set()
        accesses: List[Tuple[Sym, Tuple, bool]] = []  # (buf, sig, is_write)
        need_iota = [False]
        clip_rng: Dict[Tuple[str, str], Tuple[str, str]] = {}
        # per-statement lowering context: the iteration sub-range and the line
        # sink for bounds guards (the shared `pre` for full-range statements, a
        # conditional block for clipped ones)
        cur = {"rng": (lo_t, hi_t), "sink": pre, "clipped": False}

        def off_temp(off_src: str) -> str:
            t = off_cache.get(off_src)
            if t is None:
                t = self.temp()
                off_cache[off_src] = t
                pre.append(f"{t} = {off_src}")
            return t

        def rng_for(clip: Optional[Tuple[str, N.Expr]]) -> Tuple[str, str]:
            if clip is None:
                return (lo_t, hi_t)
            kind, bexpr = clip
            bsrc = self.int_expr(bexpr)
            key = (kind, bsrc)
            hit = clip_rng.get(key)
            if hit is not None:
                return hit
            bt = self.temp()
            pre.append(f"{bt} = int({bsrc})")
            if kind == "lt":
                t = self.temp()
                pre.append(f"{t} = min({hi_t}, {bt})")
                rng = (lo_t, t)
            else:
                t = self.temp()
                pre.append(f"{t} = max({lo_t}, {bt})")
                rng = (t, hi_t)
            clip_rng[key] = rng
            return rng

        def dims_sig(idx_exprs: Sequence[N.Expr]) -> Tuple:
            dims = []
            for e in idx_exprs:
                dec = affine_decompose(e, iv)
                if dec is None:
                    raise _NoVec
                c, off = dec
                if c < 0:
                    raise _NoVec
                if c != 0 and any(cd for cd, _, _ in dims):
                    # iterator in two dimensions of one access (a diagonal):
                    # independent slices would turn it into an outer product
                    raise _NoVec
                if off is None:
                    off_src, off_nonneg = "0", True
                else:
                    osyms = used_syms_expr(off)
                    if osyms & body_written or osyms & vtemp_syms:
                        raise _NoVec
                    # no indirect addressing in offsets (their lowering would
                    # need guard emission, which the vector plan hoists)
                    for n, _ in walk(off):
                        if isinstance(n, N.Read) and n.idx or isinstance(n, N.WindowExpr):
                            raise _NoVec
                    off_src = self.int_expr(off)
                    off_nonneg = provably_nonneg(off, self.nonneg)
                dims.append((c, off_src, off_nonneg))
            return tuple(dims)

        def elem_src(buf: Sym, sig: Tuple) -> str:
            sink = cur["sink"]
            key = (buf, sig, cur["rng"])
            hit = elem_cache.get(key)
            if hit is not None:
                return hit
            name = self.bound[buf][0]
            idxs = []
            bad = []
            for c, off_src, off_nonneg in sig:
                t = off_temp(off_src)
                idxs.append(t)
                if not off_nonneg:
                    bad.append(t)
            if bad and key not in guarded:
                guarded.add(key)
                sink.append(f"if {' or '.join(f'{t} < 0' for t in bad)}:")
                sink.append(f"    _oob({buf.name!r})")
            src = f"{name}[{', '.join(idxs)}]" if sig else f"{name}[()]"
            elem_cache[key] = src
            return src

        def slice_src(buf: Sym, sig: Tuple) -> str:
            lo_r, hi_r = cur["rng"]
            sink = cur["sink"]
            key = (buf, sig, (lo_r, hi_r))
            hit = slice_cache.get(key)
            if hit is not None:
                return hit
            name = self.bound[buf][0]
            parts = []
            for d, (c, off_src, off_nonneg) in enumerate(sig):
                if c == 0:
                    t = off_temp(off_src)
                    parts.append(t)
                    if not off_nonneg:
                        sink.append(f"if {t} < 0:")
                        sink.append(f"    _oob({buf.name!r})")
                    continue
                base = "" if off_src == "0" else f"{off_temp(off_src)} + "
                if c == 1:
                    start, last = f"{base}{lo_r}", f"{base}{hi_r} - 1"
                    stop, step = f"{base}{hi_r}", ""
                else:
                    start = f"{base}{c} * {lo_r}"
                    last = f"{base}{c} * ({hi_r} - 1)"
                    stop, step = f"{last} + 1", f":{c}"
                sink.append(f"if ({start}) < 0 or ({last}) >= {name}.shape[{d}]:")
                sink.append(f"    _oob({buf.name!r}, 'vector access out of range')")
                parts.append(f"{start}:{stop}{step}")
            src = f"{name}[{', '.join(parts)}]"
            slice_cache[key] = src
            return src

        def vec_expr(e: N.Expr) -> _Vec:
            if isinstance(e, N.Const):
                if isinstance(e.val, bool):
                    return _Vec("True" if e.val else "False", False)
                return _Vec(repr(e.val), False)
            if isinstance(e, N.Read):
                sym = e.name
                if sym is iv and not e.idx:
                    if cur["clipped"]:
                        raise _NoVec  # iota is built for the full range only
                    need_iota[0] = True
                    return _Vec("__iota", True, atom=True)
                if sym in vtemps:
                    if e.idx:
                        raise _NoVec
                    # a temp assigned a loop-invariant RHS is still a scalar
                    isv = vtemp_vec.get(sym, False)
                    return _Vec(vtemps[sym], isv, atom=isv)
                if sym in vtemp_syms:  # read before any write: rejected above
                    raise _NoVec
                info = self.bound.get(sym)
                if info is None:
                    raise _NoVec
                name, kind = info
                if kind in ("scalar", "index"):
                    if e.idx or sym in acc_syms:
                        raise _NoVec
                    return _Vec(name, False)
                if kind == "cell":
                    if e.idx:
                        raise _NoVec
                    accesses.append((sym, (), False))
                    return _Vec(f"{name}[()]", False)
                if not e.idx:
                    raise _NoVec
                sig = dims_sig(e.idx)
                if any(c for c, _, _ in sig):
                    accesses.append((sym, sig, False))
                    return _Vec(slice_src(sym, sig), True, atom=True)
                accesses.append((sym, sig, False))
                return _Vec(elem_src(sym, sig), False)
            if isinstance(e, N.BinOp):
                if e.op in ("and", "or"):
                    raise _NoVec
                l, r = vec_expr(e.lhs), vec_expr(e.rhs)
                vec = l.vec or r.vec
                if e.op == "/":
                    return _Vec(f"_div({l.src}, {r.src})", vec)
                return _Vec(f"({l.src} {e.op} {r.src})", vec)
            if isinstance(e, N.USub):
                x = vec_expr(e.arg)
                return _Vec(f"(-{x.src})", x.vec)
            if isinstance(e, N.Extern):
                subs = [vec_expr(a) for a in e.args]
                defn = extern_by_name(e.fname)
                if any(x.vec for x in subs):
                    # the registry's whole-array template (np_template); an
                    # extern registered without one blocks vectorisation and
                    # the loop runs through the scalar lowering instead
                    rendered = defn.np_apply([x.src for x in subs])
                    if rendered is None:
                        raise _NoVec
                    return _Vec(rendered, True)
                impl = self.const(defn.impl)
                return _Vec(f"__K[{impl}]({', '.join(x.src for x in subs)})", False)
            raise _NoVec

        for st, clip in work:
            aug = isinstance(st, N.Reduce)
            tgt = st.name
            stmt_sink: List[str] = pre if clip is None else []
            stmt_lines: List[str] = []
            cur["rng"] = rng_for(clip)
            cur["sink"] = stmt_sink
            cur["clipped"] = clip is not None
            if tgt in vtemp_syms:
                r = vec_expr(st.rhs)
                name = vtemps.get(tgt)
                if name is None:
                    name = f"__v{len(vtemps)}"
                if aug:
                    stmt_lines.append(f"{name} = {name} + ({r.src})")
                    vtemp_vec[tgt] = vtemp_vec.get(tgt, False) or r.vec
                else:
                    # unary + copies: a bare slice must not stay a live view
                    # of a buffer that later statements may overwrite
                    src = f"(+{r.src})" if r.atom else r.src
                    stmt_lines.append(f"{name} = {src}")
                    vtemp_vec[tgt] = r.vec
                vtemps[tgt] = name
            elif tgt in acc_syms:
                r = vec_expr(st.rhs)
                if not r.vec:
                    raise _NoVec
                name = self.bound[tgt][0]
                expr = f"{name} + ({r.src}).sum()"
                cast = self.scalar_cast.get(tgt)
                if cast is not None:
                    expr = f"__K[{cast}]({expr})"
                stmt_lines.append(f"{name} = {expr}")
            else:
                info = self.bound.get(tgt)
                if info is None:
                    raise _NoVec
                name, kind = info
                if kind == "cell":
                    sig: Tuple = ()
                elif kind == "tensor":
                    if not st.idx:
                        raise _NoVec
                    sig = dims_sig(st.idx)
                else:
                    raise _NoVec
                r = vec_expr(st.rhs)
                if any(c for c, _, _ in sig):
                    accesses.append((tgt, sig, True))
                    stmt_lines.append(f"{slice_src(tgt, sig)} {'+=' if aug else '='} {r.src}")
                else:
                    if not aug or not r.vec:
                        raise _NoVec
                    accesses.append((tgt, sig, True))
                    tgt_src = elem_src(tgt, sig) if kind == "tensor" else f"{name}[()]"
                    stmt_lines.append(f"{tgt_src} += ({r.src}).sum(dtype={name}.dtype)")
            if clip is None:
                body_lines.extend(stmt_lines)
            else:
                # peeled sub-range: guards and the statement only run when the
                # clipped range is non-empty
                lo_r, hi_r = cur["rng"]
                body_lines.append(f"if {hi_r} > {lo_r}:")
                for line in stmt_sink:
                    body_lines.append(f"    {line}")
                for line in stmt_lines:
                    body_lines.append(f"    {line}")
        cur["rng"] = (lo_t, hi_t)
        cur["sink"] = pre
        cur["clipped"] = False

        # windows alias their base buffer: if any buffer in an alias group is
        # written while the group is accessed under more than one name, the
        # per-symbol analysis below would miss the dependence — reject
        per_base: Dict[Sym, Tuple[Set[Sym], List[bool]]] = {}
        for sym, _, is_write in accesses:
            syms, writes = per_base.setdefault(self.window_base.get(sym, sym), (set(), []))
            syms.add(sym)
            writes.append(is_write)
        for syms, writes in per_base.values():
            if len(syms) > 1 and any(writes):
                raise _NoVec

        # dependence validation per written buffer
        per_buf: Dict[Sym, List[Tuple[Tuple, bool]]] = {}
        for sym, sig, is_write in accesses:
            per_buf.setdefault(sym, []).append((sig, is_write))
        for sym, accs in per_buf.items():
            write_sigs = {sig for sig, w in accs if w}
            if not write_sigs:
                continue
            idep = {sig for sig in write_sigs if any(c for c, _, _ in sig)}
            iindep = write_sigs - idep
            if idep and iindep:
                raise _NoVec
            if len(idep) > 1:
                raise _NoVec
            read_sigs = {sig for sig, w in accs if not w}
            if read_sigs:
                if iindep:
                    raise _NoVec  # partial sums would be observable
                (wsig,) = idep
                if any(rs != wsig for rs in read_sigs):
                    raise _NoVec

        if need_iota[0]:
            pre.append(f"__iota = np.arange({lo_t}, {hi_t})")
        return pre, body_lines

    # -- outer-loop (chunked) vectorisation ---------------------------------------

    def _try_vectorize_outer(self, s: N.For, lo_t: str, hi_t: str) -> bool:
        mark = len(self.lines)
        try:
            pre, body = self._vec_lower_outer(s, lo_t, hi_t)
        except (_NoVec, _CannotLower):
            del self.lines[mark:]  # discard any partial emission from analysis
            return False
        self.emit(f"if {hi_t} > {lo_t}:")
        self.indent += 1
        for line in pre:
            self.emit(line)
        for line in body:
            self.emit(line)
        self.indent -= 1
        return True

    def _vec_lower_outer(self, s: N.For, lo_t: str, hi_t: str) -> Tuple[List[str], List[str]]:
        """Fold a chunked loop nest across its *outer* loop.

        After cross-procedure inlining, scheduled kernels are outer loops over
        chunks whose bodies are vector-register allocations plus constant-trip
        leaf loops accessing ``a*io + b*ii + off`` (the shape ``divide_loop``
        plus ``@instr`` substitution produces).  This lowering vectorises both
        levels at once:

        * constant-shape register temporaries expand to ``(chunks, lanes)``
          matrices (allocated zeroed once — each row is one iteration's
          private register, so per-iteration zero-fill semantics hold);
        * each leaf-loop statement becomes one whole-array statement over a
          2-D region of the base buffer — basic slicing when the outer and
          inner iterators stride different dimensions, a bounds-checked
          ``as_strided`` view when one dimension mixes both;
        * invariant-index reductions become ``.sum(axis=0)`` /  ``.sum()``.

        Safety: all accesses to a written buffer must stride the same
        dimension with the same coefficient and stay within one period of it
        (rows of distinct outer iterations are then disjoint), and every
        write/read signature pair must be identical or provably disjoint
        within a row (whole-statement evaluation then matches the sequential
        interleaving).  Anything else raises ``_NoVec`` and the loop falls
        back to the scalar (or inner-only vectorised) lowering.
        """
        iv_o = s.iter
        body_written = collect_syms_written(s.body)
        if iv_o in body_written:
            raise _NoVec

        # ---- classify the body ---------------------------------------------
        # plan entries carry a leaf-loop group id: statements of the SAME
        # leaf loop interleave per lane sequentially, so conflicting writes
        # within a group need extra validation; across groups the statement
        # barrier of the fold preserves order
        temps: Dict[Sym, Tuple[str, int, int]] = {}  # sym -> (pyname, lanes, dtype ix)
        plan: List[Tuple[Optional[Sym], int, N.Stmt, int]] = []
        gid = 0
        for st in s.body:
            if isinstance(st, N.Pass):
                continue
            if isinstance(st, N.Alloc):
                if (
                    isinstance(st.typ, TensorType)
                    and len(st.typ.shape) == 1
                    and isinstance(st.typ.shape[0], N.Const)
                    and isinstance(st.typ.shape[0].val, (int, np.integer))
                    and not isinstance(st.typ.shape[0].val, bool)
                    and int(st.typ.shape[0].val) >= 1
                    and st.name not in self.cells
                ):
                    temps[st.name] = (
                        f"__w{len(temps)}",
                        int(st.typ.shape[0].val),
                        self.const(np_dtype_for(st.typ).type),
                    )
                    continue
                raise _NoVec
            if isinstance(st, N.For):
                if not (isinstance(st.lo, N.Const) and st.lo.val == 0):
                    raise _NoVec
                if not (
                    isinstance(st.hi, N.Const)
                    and isinstance(st.hi.val, (int, np.integer))
                    and not isinstance(st.hi.val, bool)
                ):
                    raise _NoVec
                W = int(st.hi.val)
                if W <= 0:
                    continue
                if st.iter is iv_o:
                    raise _NoVec
                gid += 1
                for inner in st.body:
                    if isinstance(inner, N.Pass):
                        continue
                    if not isinstance(inner, (N.Assign, N.Reduce)):
                        raise _NoVec
                    plan.append((st.iter, W, inner, gid))
                continue
            if isinstance(st, (N.Assign, N.Reduce)):
                gid += 1
                plan.append((None, 1, st, gid))
                continue
            raise _NoVec
        if not plan:
            raise _NoVec
        # written scalars cannot be expanded at this level
        for sym in body_written:
            if sym in temps:
                continue
            info = self.bound.get(sym)
            if info is None:
                raise _NoVec
            if info[1] in ("scalar", "index"):
                raise _NoVec

        pre: List[str] = []
        body_lines: List[str] = []
        off_cache: Dict[str, str] = {}
        iotas: Dict[str, str] = {}
        region_cache: Dict[Tuple, Tuple[str, str, bool]] = {}
        # (sym, dims, lane count, is_write, is_reduce, leaf-loop group)
        accesses: List[Tuple[Sym, Tuple, int, bool, bool, int]] = []
        temp_accesses: List[Tuple[Sym, Tuple, int, bool, bool, int]] = []
        cur_gid = [0]  # group of the statement being lowered
        nt = self.temp()
        pre.append(f"{nt} = {hi_t} - {lo_t}")
        for _sym, (tname, lanes, dt) in temps.items():
            pre.append(f"{tname} = np.zeros(({nt}, {lanes}), dtype=__K[{dt}])")

        def off_temp(off_src: str) -> str:
            t = off_cache.get(off_src)
            if t is None:
                t = self.temp()
                off_cache[off_src] = t
                pre.append(f"{t} = {off_src}")
            return t

        def iota_o() -> str:
            t = iotas.get("o")
            if t is None:
                t = self.temp()
                iotas["o"] = t
                pre.append(f"{t} = np.arange({lo_t}, {hi_t})")
            return t

        def iota_i(W: int) -> str:
            t = iotas.get(f"i{W}")
            if t is None:
                t = self.temp()
                iotas[f"i{W}"] = t
                pre.append(f"{t} = np.arange(0, {W})")
            return t

        def dims_of(idx_exprs: Sequence[N.Expr], ii: Optional[Sym]) -> Tuple:
            """Per-dimension signature (a, b, const, resid src, off src,
            off provably non-negative) of a bi-affine access."""
            dims = []
            for e in idx_exprs:
                dec = biaffine_decompose(e, iv_o, ii)
                if dec is None:
                    raise _NoVec
                a, b, off = dec
                if a < 0 or b < 0:
                    raise _NoVec
                if off is None:
                    c, resid_src, off_src, off_nonneg = 0, "", "0", True
                else:
                    osyms = used_syms_expr(off)
                    if osyms & body_written or any(o in temps for o in osyms):
                        raise _NoVec
                    for n, _ in walk(off):
                        if isinstance(n, N.Read) and n.idx or isinstance(n, N.WindowExpr):
                            raise _NoVec
                    c, resid = _split_const_off(off)
                    resid_src = self.int_expr(resid) if resid is not None else ""
                    off_src = self.int_expr(off)
                    off_nonneg = provably_nonneg(off, self.nonneg)
                dims.append((a, b, c, resid_src, off_src, off_nonneg))
            return tuple(dims)

        def temp_region(sym: Sym, dims: Tuple, W: int) -> Tuple[str, str, bool]:
            tname, lanes, _dt = temps[sym]
            if len(dims) != 1:
                raise _NoVec
            a, b, c, resid_src, _off, _nn = dims[0]
            if a != 0 or resid_src != "":
                raise _NoVec  # rows are per-iteration private registers
            if b == 0 or W == 1:
                # single lane (including trip-1 leaf loops): keep the region
                # 1-D so it composes with other (chunks,)-shaped operands
                if c < 0 or c >= lanes:
                    raise _NoVec
                return (f"{tname}[:, {c}]", "c", True)
            last = c + b * (W - 1)
            if c < 0 or last >= lanes:
                raise _NoVec
            step = f":{b}" if b != 1 else ""
            return (f"{tname}[:, {c}:{last + 1}{step}]", "f", True)

        def buf_region(sym: Sym, dims: Tuple, W: int) -> Tuple[str, str, bool]:
            """(source, axis kind, plain-target?) for a buffer access region;
            binds view temporaries and emits bounds guards on first use."""
            key = (sym, dims, W)
            hit = region_cache.get(key)
            if hit is not None:
                return hit
            name, bkind = self.bound[sym]
            if bkind == "cell":
                if dims:
                    raise _NoVec
                res = (f"{name}[()]", "s", True)
                region_cache[key] = res
                return res
            if bkind != "tensor":
                raise _NoVec
            da = [d for d, t in enumerate(dims) if t[0] != 0]
            db = [d for d, t in enumerate(dims) if t[1] != 0]
            if len(da) > 1 or len(db) > 1:
                raise _NoVec
            guards: List[str] = []
            if da and db and da[0] == db[0]:
                # one dimension mixes both iterators: strided (chunks, lanes)
                # view of the (innermost) dimension via _strided2
                d = da[0]
                if d != len(dims) - 1:
                    raise _NoVec
                a, b, _c, _resid, off_src, _nn = dims[d]
                base_parts = []
                for t in dims[:-1]:
                    pt = off_temp(t[4])
                    if not t[5]:
                        guards.append(f"if {pt} < 0:")
                        guards.append(f"    _oob({sym.name!r})")
                    base_parts.append(pt)
                base = name if not base_parts else f"{name}[{', '.join(base_parts)}, :]"
                o0 = off_temp(off_src)
                vt = self.temp()
                pre.extend(guards)
                pre.append(
                    f"{vt} = _strided2({base}, {o0} + {a} * {lo_t}, {nt}, {W}, {a}, {b}, {sym.name!r})"
                )
                if W == 1:
                    # trip-1 leaf loop: flatten the (chunks, 1) view so it
                    # composes with (chunks,)-shaped operands
                    vtf = self.temp()
                    pre.append(f"{vtf} = {vt}[:, 0]")
                    res = (vtf, "c", False)
                else:
                    res = (vt, "f", False)
                region_cache[key] = res
                return res
            parts: List[str] = []
            axes: List[str] = []
            for d, (a, b, _c, _resid, off_src, off_nonneg) in enumerate(dims):
                if a == 0 and b == 0:
                    pt = off_temp(off_src)
                    if not off_nonneg:
                        guards.append(f"if {pt} < 0:")
                        guards.append(f"    _oob({sym.name!r})")
                    parts.append(pt)
                    continue
                base = "" if off_src == "0" else f"{off_temp(off_src)} + "
                if a != 0:
                    if a == 1:
                        start, last = f"{base}{lo_t}", f"{base}{hi_t} - 1"
                        stop, step = f"{base}{hi_t}", ""
                    else:
                        start = f"{base}{a} * {lo_t}"
                        last = f"{base}{a} * ({hi_t} - 1)"
                        stop, step = f"{last} + 1", f":{a}"
                    axes.append("o")
                else:
                    start = f"{off_temp(off_src)}" if off_src != "0" else "0"
                    last = f"{start} + {b * (W - 1)}" if b * (W - 1) else start
                    stop = f"{last} + 1"
                    step = f":{b}" if b != 1 else ""
                    axes.append("i")
                guards.append(f"if ({start}) < 0 or ({last}) >= {name}.shape[{d}]:")
                guards.append(f"    _oob({sym.name!r}, 'vector access out of range')")
                parts.append(f"{start}:{stop}{step}")
            pre.extend(guards)
            src = f"{name}[{', '.join(parts)}]"
            if axes == ["o", "i"] or axes == ["i", "o"]:
                vt = self.temp()
                pre.append(f"{vt} = {src}{'.T' if axes == ['i', 'o'] else ''}")
                if W == 1:
                    # trip-1 leaf loop: flatten the (chunks, 1) view so it
                    # composes with (chunks,)-shaped operands
                    vtf = self.temp()
                    pre.append(f"{vtf} = {vt}[:, 0]")
                    res = (vtf, "c", False)
                else:
                    res = (vt, "f", False)
            elif axes == ["o"]:
                vt = self.temp()
                pre.append(f"{vt} = {src}")
                res = (vt, "c", False)
            elif axes == ["i"]:
                res = (src, "r", True)
            else:
                res = (src, "s", True)
            region_cache[key] = res
            return res

        def vx(e: N.Expr, ii: Optional[Sym], W: int) -> Tuple[str, str]:
            """Lower an expression to (source, axis kind).  'c' sources are
            reshaped to (chunks, 1) whenever the statement has a lane axis so
            NumPy broadcasting matches the loop-nest semantics."""

            def col(src: str) -> Tuple[str, str]:
                return (f"{src}[:, None]" if W > 1 else src, "c")

            if isinstance(e, N.Const):
                if isinstance(e.val, bool):
                    return ("True" if e.val else "False", "s")
                return (repr(e.val), "s")
            if isinstance(e, N.Read):
                sym = e.name
                if sym is iv_o and not e.idx:
                    return col(iota_o())
                if ii is not None and sym is ii and not e.idx:
                    return (iota_i(W), "r")
                if sym in temps:
                    if not e.idx:
                        raise _NoVec
                    tdims = dims_of(e.idx, ii)
                    src, kind, _plain = temp_region(sym, tdims, W)
                    temp_accesses.append((sym, tdims, W, False, False, cur_gid[0]))
                    return col(src) if kind == "c" else (src, kind)
                info = self.bound.get(sym)
                if info is None:
                    raise _NoVec
                name, bkind = info
                if bkind in ("scalar", "index"):
                    if e.idx:
                        raise _NoVec
                    return (name, "s")
                if bkind == "cell":
                    if e.idx:
                        raise _NoVec
                    accesses.append((sym, (), 1, False, False, cur_gid[0]))
                    return (f"{name}[()]", "s")
                if not e.idx:
                    raise _NoVec
                dims = dims_of(e.idx, ii)
                src, kind, _plain = buf_region(sym, dims, W)
                accesses.append((sym, dims, W, False, False, cur_gid[0]))
                return col(src) if kind == "c" else (src, kind)
            if isinstance(e, N.BinOp):
                if e.op in ("and", "or"):
                    raise _NoVec
                l, lk = vx(e.lhs, ii, W)
                r, rk = vx(e.rhs, ii, W)
                kind = _join_kind(lk, rk)
                if e.op == "/":
                    return (f"_div({l}, {r})", kind)
                return (f"({l} {e.op} {r})", kind)
            if isinstance(e, N.USub):
                src, kind = vx(e.arg, ii, W)
                return (f"(-{src})", kind)
            if isinstance(e, N.Extern):
                subs = [vx(a, ii, W) for a in e.args]
                defn = extern_by_name(e.fname)
                if any(kind != "s" for _src, kind in subs):
                    rendered = defn.np_apply([src for src, _kind in subs])
                    if rendered is None:
                        raise _NoVec
                    out_kind = "s"
                    for _src, kind in subs:
                        out_kind = _join_kind(out_kind, kind)
                    return (rendered, out_kind)
                impl = self.const(defn.impl)
                return (f"__K[{impl}]({', '.join(src for src, _kind in subs)})", "s")
            raise _NoVec

        # ---- statement lowering --------------------------------------------
        for ii, W, st, g in plan:
            cur_gid[0] = g
            aug = isinstance(st, N.Reduce)
            tgt = st.name
            if tgt in temps:
                if not st.idx:
                    raise _NoVec
                tdims = dims_of(st.idx, ii)
                src, kind, _plain = temp_region(tgt, tdims, W)
                if kind == "c" and W > 1:
                    raise _NoVec  # every lane would write the same element
                temp_accesses.append((tgt, tdims, W, True, aug, cur_gid[0]))
                rhs, _rk = vx(st.rhs, ii, W)
                body_lines.append(f"{src} {'+=' if aug else '='} {rhs}")
                continue
            info = self.bound.get(tgt)
            if info is None:
                raise _NoVec
            name, bkind = info
            if bkind == "cell":
                dims: Tuple = ()
            elif bkind == "tensor":
                if not st.idx:
                    raise _NoVec
                dims = dims_of(st.idx, ii)
            else:
                raise _NoVec
            varying = any(t[0] for t in dims)
            src, kind, _plain = buf_region(tgt, dims, W)
            accesses.append((tgt, dims, W, True, aug, cur_gid[0]))
            rhs, rk = vx(st.rhs, ii, W)
            if varying:
                # varying regions are always view temps ('c'/'f'): write
                # through the view
                if kind == "c" and W > 1:
                    raise _NoVec  # every lane would write the same element
                if aug:
                    body_lines.append(f"{src} += {rhs}")
                else:
                    body_lines.append(f"{src}[...] = {rhs}")
                continue
            # invariant region: only whole-range sum reductions are sound
            if not aug or rk not in ("c", "f"):
                raise _NoVec
            if kind == "s":
                # a lane-invariant rhs is added once per LANE per chunk by the
                # sequential loop: scale the chunk sum by the lane count
                mult = f"{W} * " if rk == "c" and W > 1 else ""
                body_lines.append(f"{src} += {mult}({rhs}).sum(dtype={name}.dtype)")
            elif kind == "r":
                body_lines.append(f"{src} += ({rhs}).sum(axis=0, dtype={name}.dtype)")
            else:
                raise _NoVec

        # ---- dependence validation -----------------------------------------
        # windows alias their base buffer (same rule as the 1-D vectoriser)
        per_base: Dict[Sym, Tuple[Set[Sym], List[bool]]] = {}
        for sym, _dims, _W, is_write, _aug, _g in accesses:
            syms, writes = per_base.setdefault(self.window_base.get(sym, sym), (set(), []))
            syms.add(sym)
            writes.append(is_write)
        for syms, writes in per_base.values():
            if len(syms) > 1 and any(writes):
                raise _NoVec

        per_buf: Dict[Sym, List[Tuple]] = {}
        for acc in accesses:
            per_buf.setdefault(acc[0], []).append(acc)

        def a_dim_of(acc) -> Optional[int]:
            ds = [d for d, t in enumerate(acc[1]) if t[0] != 0]
            return ds[0] if len(ds) == 1 else None

        def same_sig(x, y) -> bool:
            return x[1] == y[1] and x[2] == y[2]

        def row_disjoint(x, y) -> bool:
            # provably disjoint footprints within one outer iteration
            for tx, ty in zip(x[1], y[1]):
                if tx[3] != ty[3]:
                    continue  # incomparable residual offsets in this dim
                lo1, hi1 = tx[2], tx[2] + tx[1] * (x[2] - 1) + 1
                lo2, hi2 = ty[2], ty[2] + ty[1] * (y[2] - 1) + 1
                if hi1 <= lo2 or hi2 <= lo1:
                    return True
            return False

        for sym, accs in per_buf.items():
            writes = [a for a in accs if a[3]]
            if not writes:
                continue
            inv_writes = [a for a in writes if not any(t[0] for t in a[1])]
            if inv_writes:
                # invariant-index reductions: every access to the buffer must
                # be such a reduce (sum reordering is the only divergence,
                # within check_equiv tolerances like the 1-D .sum() lowering)
                if len(inv_writes) != len(accs) or any(not a[4] for a in inv_writes):
                    raise _NoVec
                continue
            d0 = a_dim_of(writes[0])
            if d0 is None:
                raise _NoVec
            ref = writes[0][1][d0]
            for acc in accs:
                if a_dim_of(acc) != d0:
                    raise _NoVec
                t = acc[1][d0]
                if t[0] != ref[0] or t[3] != ref[3]:
                    raise _NoVec  # different outer stride or residual offset
            a_val = ref[0]
            cmin = min(acc[1][d0][2] for acc in accs)
            for acc in accs:
                t = acc[1][d0]
                span = t[1] * (acc[2] - 1) + 1
                if (t[2] - cmin) + span > a_val:
                    raise _NoVec  # escapes one period: rows would overlap
            reads = [a for a in accs if not a[3]]
            for w in writes:
                for r_ in reads:
                    if same_sig(w, r_) or row_disjoint(w, r_):
                        continue
                    raise _NoVec
            # statements of one leaf loop interleave per lane sequentially:
            # two writes in the SAME group must hit identical or disjoint
            # lanes, or the fold reverses their per-lane ordering (across
            # groups the statement barrier preserves order)
            for i, w1 in enumerate(writes):
                for w2 in writes[i + 1 :]:
                    if w1[5] != w2[5] or same_sig(w1, w2) or row_disjoint(w1, w2):
                        continue
                    raise _NoVec

        # register temps: rows are per-iteration private, but lane-shifted
        # write/read pairs within a row (e.g. w[i+1] = w[i]) would lose the
        # sequential propagation when folded — require identical lane
        # signatures or provably disjoint lane intervals, like buffers
        per_temp: Dict[Sym, List[Tuple]] = {}
        for acc in temp_accesses:
            per_temp.setdefault(acc[0], []).append(acc)
        for accs in per_temp.values():
            t_writes = [a for a in accs if a[3]]
            for w in t_writes:
                for r_ in (a for a in accs if not a[3]):
                    if same_sig(w, r_) or row_disjoint(w, r_):
                        continue
                    raise _NoVec
            for i, w1 in enumerate(t_writes):
                for w2 in t_writes[i + 1 :]:
                    if w1[5] != w2[5] or same_sig(w1, w2) or row_disjoint(w1, w2):
                        continue
                    raise _NoVec

        return pre, body_lines

    @staticmethod
    def _clip_from_cond(cond: N.Expr, iv: Sym) -> Optional[Tuple[str, N.Expr]]:
        """Derive an iteration sub-range from an affine guard condition.

        Returns ``("lt", B)`` when the guard is equivalent to ``iv < B`` or
        ``("ge", B)`` for ``iv >= B`` (``B`` loop-invariant), or ``None`` when
        the condition is not a single affine comparison with unit coefficient.
        This is how masked ``@instr`` bodies (``if base + i < bound: ...``)
        lower to peeled whole-array statements instead of scalar loops.
        """
        if not isinstance(cond, N.BinOp) or cond.op not in ("<", "<=", ">", ">="):
            return None
        dl = affine_decompose(cond.lhs, iv)
        dr = affine_decompose(cond.rhs, iv)
        if dl is None or dr is None:
            return None
        (cl, ol), (cr, orr) = dl, dr

        def sub(a: Optional[N.Expr], b: Optional[N.Expr]) -> N.Expr:
            if b is None:
                return a if a is not None else N.Const(0)
            if a is None:
                return N.USub(b)
            return N.BinOp("-", a, b)

        def add1(e: N.Expr) -> N.Expr:
            return N.BinOp("+", e, N.Const(1))

        if cl == 1 and cr == 0:
            # (iv + ol) OP orr  ->  iv OP (orr - ol)
            bound = sub(orr, ol)
            if cond.op == "<":
                return ("lt", bound)
            if cond.op == "<=":
                return ("lt", add1(bound))
            if cond.op == ">":
                return ("ge", add1(bound))
            return ("ge", bound)
        if cl == 0 and cr == 1:
            # ol OP (iv + orr)  ->  mirrored
            bound = sub(ol, orr)
            if cond.op == "<":
                return ("ge", add1(bound))
            if cond.op == "<=":
                return ("ge", bound)
            if cond.op == ">":
                return ("lt", bound)
            return ("lt", add1(bound))
        return None
