"""Multicore execution support for ``par`` loops.

``parallelize_loop`` stamps ``For.pragma = "par"`` only after
``loop_iterations_commute`` proves distinct iterations carry no dependence.
This module is the runtime half of honouring that annotation in the compiled
NumPy engine: the lowerer (:mod:`repro.interp.compile`) wraps a ``par`` loop's
body into a chunk function ``body(lo, hi, *private_buffers)`` and calls
:func:`par_for` here, which partitions the iteration space and dispatches the
chunks over a shared :class:`~concurrent.futures.ThreadPoolExecutor` (NumPy
releases the GIL inside its C loops, so chunks genuinely overlap).

Thread-count resolution
-----------------------
:func:`resolve_num_threads`: an explicit ``run_proc(threads=...)`` argument
wins, then the ``REPRO_NUM_THREADS`` environment variable, then
``os.cpu_count()`` (capped at :data:`MAX_THREADS`).  The resolved count
participates in the compiled-code cache key — the dispatch call sites embed
it — so two thread settings never share an executable.

Determinism
-----------
* **Maps** (no cross-iteration accumulation): iterations write disjoint
  elements, so results are bit-identical to the sequential run for every
  thread count.  The chunk count may track the thread count (``threads == 1``
  runs one full-range chunk — exactly the sequential code).
* **Reductions** (privatized buffers / scalars): each chunk accumulates into
  a private zeroed copy and the partial results are combined *in chunk index
  order* on the calling thread.  The partition is therefore **fixed** at
  :data:`PAR_CHUNKS` chunks independent of the thread count, which makes the
  combined result bit-identical across ``threads ∈ {1, 2, 8, ...}`` (only
  *which worker* runs a chunk varies — never the chunk boundaries or the
  combine order).

Nested parallelism
------------------
A chunk body may call other compiled procedures that contain ``par`` loops of
their own.  Dispatching those onto the same pool from inside a worker would
deadlock it under oversubscription, so :func:`par_for` keeps a thread-local
nesting depth and runs nested dispatches serially on the worker thread.

Fault sites
-----------
``thread-pool-exhausted`` (:mod:`repro.guard.faults`) fires at the executor
acquisition: the dispatch degrades to running the chunks serially on the
calling thread — same partition, same combine order, same results — and
records a ``par->serial`` :class:`~repro.guard.events.FallbackEvent`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExoError

__all__ = [
    "MAX_THREADS",
    "PAR_CHUNKS",
    "par_for",
    "par_stats",
    "reset_par_stats",
    "resolve_num_threads",
]

ENV_VAR = "REPRO_NUM_THREADS"

#: hard ceiling on the worker count (oversubscription past this only adds
#: scheduler churn; the chunk partition never exceeds PAR_CHUNKS anyway)
MAX_THREADS = 16

#: fixed chunk count for loops with privatized reductions — independent of
#: the thread count so the ordered combine is bit-identical across settings
PAR_CHUNKS = 16


class ThreadCountError(ExoError):
    """An invalid thread-count request (argument or environment)."""


def _parse_count(raw, source: str) -> int:
    try:
        n = int(raw)
    except (TypeError, ValueError):
        raise ThreadCountError(f"{source} must be a positive integer, got {raw!r}") from None
    if n < 1:
        raise ThreadCountError(f"{source} must be >= 1, got {n}")
    return min(n, MAX_THREADS)


def resolve_num_threads(threads: Optional[int] = None) -> int:
    """Resolve the effective worker count for ``par`` loop dispatch.

    Precedence: explicit ``threads`` argument, then ``REPRO_NUM_THREADS``,
    then ``os.cpu_count()``.  The result is clamped to
    ``[1, MAX_THREADS]``; invalid values raise :class:`ThreadCountError`
    loudly (a typo'd environment must not silently serialize a benchmark).
    """
    if threads is not None:
        return _parse_count(threads, "threads=")
    raw = os.environ.get(ENV_VAR)
    if raw is not None and raw.strip():
        return _parse_count(raw.strip(), ENV_VAR)
    return min(os.cpu_count() or 1, MAX_THREADS)


# ---------------------------------------------------------------------------
# The shared executor
# ---------------------------------------------------------------------------

_pool_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_pool_workers = 0

# nesting depth per thread: >0 means we are already inside a chunk worker
_tls = threading.local()


def _get_pool(workers: int) -> ThreadPoolExecutor:
    """The shared executor, grown (never shrunk) to at least ``workers``."""
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers < workers:
            old = _pool
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-par"
            )
            _pool_workers = workers
            if old is not None:
                old.shutdown(wait=False)
        return _pool


# ---------------------------------------------------------------------------
# Telemetry (surfaced through repro.interp.exec_stats()["parallel"])
# ---------------------------------------------------------------------------

_stats_lock = threading.Lock()
_stats: Dict[str, int] = {
    "par_loops": 0,  # par_for dispatches executed
    "chunks": 0,  # chunk bodies executed (serial or threaded)
    "threads_max": 0,  # widest concurrency any dispatch used
    "serial_degrades": 0,  # dispatches forced serial (fault / nesting)
}


def par_stats() -> Dict[str, int]:
    """Per-process parallel-execution counters (copies; thread-safe)."""
    with _stats_lock:
        return dict(_stats)


def reset_par_stats() -> None:
    with _stats_lock:
        for k in _stats:
            _stats[k] = 0


def _record(chunks: int, threads_used: int, degraded: bool) -> None:
    with _stats_lock:
        _stats["par_loops"] += 1
        _stats["chunks"] += chunks
        _stats["threads_max"] = max(_stats["threads_max"], threads_used)
        if degraded:
            _stats["serial_degrades"] += 1


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def _chunk_bounds(lo: int, hi: int, nchunks: int) -> List[Tuple[int, int]]:
    n = hi - lo
    return [(lo + (n * c) // nchunks, lo + (n * (c + 1)) // nchunks) for c in range(nchunks)]


def par_for(
    body,
    lo: int,
    hi: int,
    nthreads: int,
    priv_arrays: Sequence[np.ndarray] = (),
    name: str = "",
    fixed: bool = False,
) -> List[tuple]:
    """Run ``body(chunk_lo, chunk_hi, *private_copies)`` over ``[lo, hi)``.

    ``priv_arrays`` are the shared reduction buffers the loop body accumulates
    into: each chunk receives a zeroed private copy per buffer, and after all
    chunks complete the partials are added back into the shared buffer in
    chunk index order (deterministic).  Returns the per-chunk return values of
    ``body`` in chunk order — the generated code combines privatized *scalar*
    accumulators from them, again in order.

    ``fixed`` pins the partition at :data:`PAR_CHUNKS` chunks regardless of
    the thread count; the lowerer sets it whenever the loop carries *any*
    privatized accumulator (buffer or scalar), because the partition then
    shapes the combine and must not vary with the thread setting.

    Exceptions from chunk bodies (bounds guards, interpreter fallbacks)
    propagate to the caller; partial writes to privatized copies are discarded
    with them, shared-buffer writes are disjoint per iteration by the
    ``parallelize_loop`` safety check.
    """
    n = hi - lo
    if n <= 0:
        _record(0, 1, False)
        return []

    deterministic = fixed or bool(priv_arrays)
    serial = nthreads <= 1
    degraded = False
    if getattr(_tls, "depth", 0) > 0:
        # nested dispatch from inside a worker: run serially to keep the
        # shared pool deadlock-free under oversubscription
        degraded = not serial
        serial = True
    if not serial:
        from ..guard import faults, record_fallback

        if faults.should_fire("thread-pool-exhausted"):
            record_fallback(
                name,
                "par->serial",
                "thread-pool-exhausted",
                detail=f"no worker threads available for {n} iterations; ran serially",
            )
            serial = True
            degraded = True

    # reductions use a fixed partition so the ordered combine is identical
    # for every thread count; maps are bitwise-insensitive to the partition
    if deterministic:
        nchunks = min(n, PAR_CHUNKS)
    elif serial:
        nchunks = 1
    else:
        nchunks = min(n, 4 * nthreads)
    bounds = _chunk_bounds(lo, hi, nchunks)
    privs = [tuple(np.zeros_like(a) for a in priv_arrays) for _ in bounds]

    def run_chunk(c: int):
        depth = getattr(_tls, "depth", 0)
        _tls.depth = depth + 1
        try:
            return body(bounds[c][0], bounds[c][1], *privs[c])
        finally:
            _tls.depth = depth

    if serial or nchunks == 1:
        results = [run_chunk(c) for c in range(nchunks)]
        used = 1
    else:
        used = min(nthreads, nchunks)
        pool = _get_pool(nthreads)
        # each worker walks a contiguous span of chunks so the concurrency
        # is bounded by the *requested* thread count even when the shared
        # pool has grown wider for another caller
        spans = _chunk_bounds(0, nchunks, used)
        futures = [pool.submit(lambda s: [run_chunk(c) for c in range(*s)], sp) for sp in spans]
        results = [r for f in futures for r in f.result()]

    for k, arr in enumerate(priv_arrays):
        for c in range(nchunks):
            arr += privs[c][k]
    _record(nchunks, used, degraded)
    return results
