"""The user-facing :class:`Procedure` object.

A ``Procedure`` wraps one version of an object program.  Scheduling primitives
take a ``Procedure`` (plus cursors and other arguments) and return a *new*
``Procedure``; the new version records its provenance — the previous version
and a forwarding function — so that cursors created against older versions can
be re-bound with :meth:`Procedure.forward` (the branching time model of
Section 5.1).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..cursors.cursor import (
    ArgCursor,
    BlockCursor,
    Cursor,
    ExprCursor,
    GapCursor,
    InvalidCursor,
    StmtCursor,
    _find,
    _find_loop,
    make_expr_cursor,
    make_stmt_cursor,
)
from ..errors import InvalidCursorError, SchedulingError
from ..ir import nodes as N
from ..ir.build import copy_node, walk
from ..ir.printing import proc_str
from ..ir.types import ScalarType, TensorType, int_t

__all__ = ["Procedure"]


class Procedure:
    """One version of an object program, with provenance for forwarding."""

    #: Observers called as ``obs(proc, cursor)`` whenever forwarding a cursor
    #: into this procedure's frame produces an :class:`InvalidCursor`.  The
    #: schedule-trace recorder (:mod:`repro.api.trace`) subscribes here so an
    #: invalidation surfaces as a structured warning instead of being
    #: silently dropped by validity-checking library code.  The registry is
    #: thread-local: a recorder active in one thread (e.g. one schedule-service
    #: worker) never observes invalidations from schedules running in another.
    _observer_state = threading.local()

    class _ObserverList:
        """Class-attribute shim presenting the thread-local observer list with
        plain list methods (``append``/``remove``/iteration)."""

        __slots__ = ()

        @staticmethod
        def _list() -> List[Callable]:
            state = Procedure._observer_state
            lst = getattr(state, "observers", None)
            if lst is None:
                lst = state.observers = []
            return lst

        def append(self, obs: Callable) -> None:
            self._list().append(obs)

        def remove(self, obs: Callable) -> None:
            self._list().remove(obs)

        def __iter__(self):
            return iter(self._list())

        def __len__(self) -> int:
            return len(self._list())

        def __bool__(self) -> bool:
            return bool(self._list())

    _invalidation_observers = _ObserverList()

    def __init__(
        self,
        root: N.ProcDef,
        *,
        provenance: Optional[tuple] = None,
        instr_info: Optional[N.InstrInfo] = None,
    ):
        if instr_info is not None:
            root.instr = instr_info
        self._root = root
        # provenance: (parent Procedure, forward function on descriptors)
        self._provenance = provenance
        # the EditTrace of atomic edits that produced this version (None for
        # root versions); recorded by the EditSession engine in _derive
        self._edit_trace = None

    # -- basic accessors ---------------------------------------------------------

    def name(self) -> str:
        return self._root.name

    def is_instr(self) -> bool:
        return self._root.instr is not None

    def edit_epoch(self) -> int:
        """This version's lineage epoch: the number of atomic edits between
        the original ``@proc`` definition and this version (0 for a freshly
        parsed procedure).  Per-procedure — editing one procedure never moves
        another's epoch (see :mod:`repro.ir.nodes`)."""
        return N.edit_epoch(self._root)

    def instr_str(self) -> Optional[str]:
        return self._root.instr.c_instr if self._root.instr else None

    def args(self) -> List[ArgCursor]:
        return [ArgCursor(self, i) for i in range(len(self._root.args))]

    def arg_names(self) -> List[str]:
        return [a.name.name for a in self._root.args]

    def get_arg(self, name: str) -> ArgCursor:
        for i, a in enumerate(self._root.args):
            if a.name.name == name:
                return ArgCursor(self, i)
        raise InvalidCursorError(f"no argument named {name!r}")

    def preds(self) -> List[N.Expr]:
        return list(self._root.preds)

    def body(self) -> BlockCursor:
        return BlockCursor(self, (), "body", 0, len(self._root.body))

    def __str__(self) -> str:
        return proc_str(self._root)

    def __repr__(self) -> str:
        return f"<Procedure {self.name()}>"

    # -- searching ---------------------------------------------------------------

    def find(self, pattern: str, many: bool = False):
        """Find object code matching ``pattern`` (see :mod:`repro.frontend.pattern`)."""
        return _find(self, (), pattern, many)

    def find_loop(self, name: str, many: bool = False):
        """Find the loop whose iteration variable is named ``name``."""
        return _find_loop(self, (), name, many)

    def find_alloc_or_arg(self, name: str):
        """Find the allocation or argument introducing buffer ``name``."""
        for i, a in enumerate(self._root.args):
            if a.name.name == name:
                return ArgCursor(self, i)
        return self.find(f"{name}: _")

    def find_all(self, pattern: str):
        return self.find(pattern, many=True)

    # -- forwarding ---------------------------------------------------------------

    def _lineage(self) -> List["Procedure"]:
        chain = [self]
        while chain[-1]._provenance is not None:
            chain.append(chain[-1]._provenance[0])
        return chain

    def forward(self, cursor: Cursor):
        """Forward ``cursor`` (created against an ancestor version of this
        procedure) into this procedure's reference frame."""
        if isinstance(cursor, InvalidCursor):
            return InvalidCursor(self)
        if not isinstance(cursor, Cursor):
            raise TypeError(f"expected a Cursor, got {type(cursor).__name__}")
        if cursor._proc is self:
            return cursor
        # collect forwarding functions from cursor's proc to self
        chain: List[Callable] = []
        p = self
        while p is not None and p is not cursor._proc:
            if p._provenance is None:
                p = None
                break
            parent, fwd = p._provenance
            chain.append(fwd)
            p = parent
        if p is None:
            raise InvalidCursorError(
                "cursor does not belong to an ancestor version of this procedure"
            )
        desc = cursor._descriptor()
        for fwd in reversed(chain):
            if desc is None:
                break
            desc = fwd(desc)
        result = self._cursor_from_descriptor(desc)
        if isinstance(result, InvalidCursor) and Procedure._invalidation_observers:
            for obs in list(Procedure._invalidation_observers):
                obs(self, cursor)
        return result

    def _cursor_from_descriptor(self, desc):
        if desc is None:
            return InvalidCursor(self)
        kind = desc[0]
        try:
            if kind == "node":
                from ..ir.build import get_node

                node = get_node(self._root, desc[1])
                if isinstance(node, N.Stmt):
                    return make_stmt_cursor(self, desc[1])
                return make_expr_cursor(self, desc[1])
            if kind == "block":
                _, owner, attr, lo, hi = desc
                return BlockCursor(self, owner, attr, lo, hi)
            if kind == "gap":
                _, owner, attr, idx = desc
                return GapCursor(self, owner, attr, idx)
            if kind == "arg":
                return ArgCursor(self, desc[1])
        except (IndexError, AttributeError, KeyError):
            return InvalidCursor(self)
        return InvalidCursor(self)

    def _derive(self, new_root: N.ProcDef, forward_fn: Callable, edit_trace=None) -> "Procedure":
        """Create the successor version of this procedure.

        Called by :meth:`repro.ir.edit.EditSession.finish`; ``edit_trace`` is
        the finished trace of atomic edits, kept as provenance so metrics and
        future caching layers can inspect how a version was produced."""
        new = Procedure(new_root, provenance=(self, forward_fn))
        new._edit_trace = edit_trace
        return new

    def edit_trace(self):
        """The trace of atomic edits that produced this version (or ``None``
        for a root version)."""
        return self._edit_trace

    def atomic_edit_count(self) -> int:
        """Number of atomic edits between this version and its parent."""
        return 0 if self._edit_trace is None else len(self._edit_trace)

    # -- the fluent entry points of the combinator API -----------------------------

    @staticmethod
    def _as_schedule(obj):
        from ..api.schedule import Schedule

        return obj if isinstance(obj, Schedule) else None

    def apply(self, schedule, knobs: Optional[dict] = None, *, cache=None, **knob_kwargs):
        """Apply a first-class :class:`~repro.api.schedule.Schedule` to this
        procedure: ``p.apply(sched, tile_y=16)``.  Keyword arguments (or the
        ``knobs`` dict) bind the schedule's named knobs; ``cache`` is an
        optional :class:`~repro.api.cache.ReplayCache`."""
        sched = self._as_schedule(schedule)
        if sched is None:
            raise TypeError(
                f"Procedure.apply: expected a Schedule, got {type(schedule).__name__}"
            )
        return sched.apply(self, knobs, cache=cache, **knob_kwargs)

    def __rshift__(self, schedule):
        """``p >> sched`` — apply a schedule with default knob values."""
        sched = self._as_schedule(schedule)
        if sched is None:
            return NotImplemented
        return sched.apply(self)

    # -- convenience methods mirroring the Exo API used in the paper ---------------

    def add_assertion(self, cond: str) -> "Procedure":
        """Return a copy of this procedure with an extra assertion."""
        from ..frontend.parser import parse_expr_fragment
        from ..ir.edit import EditSession

        new_root = copy_node_proc(self._root)
        new_root.preds = list(new_root.preds) + [parse_expr_fragment(cond, new_root)]
        session = EditSession(self)
        session.set_root(new_root)
        return session.finish()

    def partial_eval(self, *vals, **kwvals) -> "Procedure":
        """Specialise leading size/index/bool arguments to constant values."""
        binding: Dict[str, object] = {}
        if vals:
            # positional values bind, in order, to the control arguments:
            # non-tensor args of an indexable (size/index/int) or bool type
            candidates = [
                a for a in self._root.args
                if isinstance(a.typ, ScalarType) and (a.typ.is_indexable() or a.typ.is_bool())
            ]
            if len(vals) > len(candidates):
                raise SchedulingError(
                    f"partial_eval: {len(vals)} positional values but only "
                    f"{len(candidates)} control arguments"
                )
            for a, v in zip(candidates, vals):
                binding[a.name.name] = v
        binding.update(kwvals)
        if not binding:
            raise SchedulingError("partial_eval: nothing to specialise")

        new_root = copy_node_proc(self._root)
        sub_env = {}
        new_args = []
        for a in new_root.args:
            if a.name.name in binding:
                val = binding[a.name.name]
                sub_env[a.name] = N.Const(val, int_t)
            else:
                new_args.append(a)
        from ..ir.build import substitute_reads

        new_root.args = new_args
        new_root.preds = [substitute_reads(p, sub_env) for p in new_root.preds]
        new_root.body = [substitute_reads(s, sub_env) for s in new_root.body]
        for a in new_root.args:
            if isinstance(a.typ, TensorType):
                a.typ = TensorType(
                    a.typ.base,
                    [substitute_reads(e, sub_env) for e in a.typ.shape],
                    a.typ.is_window,
                )
        from ..ir.edit import EditSession
        from ..primitives.simplify_ops import _simplify_root

        new_root = _simplify_root(new_root)
        session = EditSession(self)
        session.set_root(new_root)
        return session.finish()

    def transpose(self) -> "Procedure":  # pragma: no cover - convenience only
        raise NotImplementedError("transpose is not part of the reproduced primitive set")

    # -- equality / hashing --------------------------------------------------------

    def __hash__(self):
        return id(self._root)

    def __eq__(self, other):
        return self is other


def copy_node_proc(root: N.ProcDef) -> N.ProcDef:
    """Deep-copy a procedure definition (sharing symbols)."""
    new = copy_node(root)
    # copy argument list and types (copy_node handles child fields generically,
    # but FnArg/ProcDef fields are not in the navigable child set)
    new_args = []
    for a in root.args:
        typ = a.typ
        if isinstance(typ, TensorType):
            typ = TensorType(typ.base, [copy_node(e) for e in typ.shape], typ.is_window)
        new_args.append(N.FnArg(a.name, typ, a.mem))
    new.args = new_args
    new.preds = [copy_node(p) for p in root.preds]
    new.body = [copy_node(s) for s in root.body]
    new.name = root.name
    new.instr = root.instr
    return new
