"""Core public API of the scheduling language."""

from ..errors import (
    BackendError,
    ExoError,
    InvalidCursorError,
    ParseError,
    SchedulingError,
)
from .procedure import Procedure

__all__ = [
    "Procedure",
    "ExoError",
    "SchedulingError",
    "InvalidCursorError",
    "ParseError",
    "BackendError",
]
