"""Lines-of-code and rewrite-count metrics (Figures 6c, 9, 13c)."""

from .loc import count_loc, function_loc, generated_c_loc, module_loc, schedule_loc

__all__ = ["count_loc", "function_loc", "module_loc", "schedule_loc", "generated_c_loc"]
