"""Lines-of-code counting.

Figure 6c compares library / Exo / Exo 2 schedule sizes, Figure 9a breaks down
the scheduling library and kernel code, and Figure 13c counts blur/unsharp
schedules.  We count non-blank, non-comment source lines, the same convention
the paper uses.
"""

from __future__ import annotations

import inspect
import textwrap
from typing import Iterable, Union

__all__ = ["count_loc", "function_loc", "module_loc", "schedule_loc", "generated_c_loc"]


def count_loc(source: str) -> int:
    """Count non-blank, non-comment lines in a source string.

    Docstrings count as comments, including multi-line docstrings whose
    closing triple-quote ends a text line rather than standing alone — the
    convention every schedule in this repo uses.
    """
    n = 0
    in_doc = None  # the delimiter of the docstring we are inside, if any
    for raw in source.splitlines():
        line = raw.strip()
        if in_doc is not None:
            if in_doc in line:
                rest = line.split(in_doc, 1)[1].strip()
                in_doc = None
                # code after the closing quotes on the same line still counts
                if rest and not rest.startswith("#"):
                    n += 1
            continue
        if not line:
            continue
        if line.startswith('"""') or line.startswith("'''"):
            quote = line[:3]
            # docstring closed on the same line it opened
            if line.count(quote) >= 2 and len(line) > 3:
                continue
            in_doc = quote
            continue
        if line.startswith("#"):
            continue
        n += 1
    return n


def function_loc(fn) -> int:
    """Count the source lines of a Python function (a schedule or library op)."""
    src = textwrap.dedent(inspect.getsource(fn))
    return count_loc(src)


def module_loc(module) -> int:
    """Count the source lines of a Python module (a scheduling library file)."""
    src = inspect.getsource(module)
    return count_loc(src)


def schedule_loc(fns: Iterable) -> int:
    """Total lines across several schedule functions."""
    return sum(function_loc(f) for f in fns)


def generated_c_loc(procedures) -> int:
    """Lines of C generated for the given procedures."""
    from ..backend.codegen import compile_to_c

    return count_loc(compile_to_c(procedures))
