"""Performance model for scheduled object code.

The paper evaluates on real hardware (AVX2/AVX-512 Xeons and Gemmini on
FireSim).  Offline, we substitute a deterministic cycle-cost model that walks
the scheduled object code with concrete sizes and charges:

* scalar arithmetic, address generation and loop overhead per iteration,
* one issue slot per vector instruction call (``@instr`` cost),
* DRAM traffic per byte moved (the roofline term that dominates at large
  sizes),
* a heavy, fence-like cost per configuration-register write (what makes
  Gemmini configuration hoisting matter),
* a fixed per-call overhead (what generic BLAS libraries pay much more of).

Absolute numbers are not meaningful; ratios between schedules (and against the
analytic library baselines of :mod:`repro.perf.baselines`) reproduce the
paper's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir import nodes as N
from ..ir.externs import extern_by_name
from ..ir.memories import MemoryKind
from ..ir.types import TensorType

__all__ = ["MachineSpec", "CostReport", "CostModel", "AVX2_SPEC", "AVX512_SPEC", "GEMMINI_SPEC"]


@dataclass
class MachineSpec:
    """Calibration constants of a modelled machine."""

    name: str
    freq_ghz: float = 3.2
    dram_bytes_per_cycle: float = 8.0
    scratch_bytes_per_cycle: float = 64.0
    scalar_op_cost: float = 1.0
    vector_issue_cost: float = 1.0
    loop_overhead: float = 1.0
    config_write_cost: float = 40.0
    call_overhead: float = 30.0


AVX2_SPEC = MachineSpec("AVX2", freq_ghz=3.2, dram_bytes_per_cycle=8.0)
AVX512_SPEC = MachineSpec("AVX512", freq_ghz=3.2, dram_bytes_per_cycle=12.0)
GEMMINI_SPEC = MachineSpec(
    "Gemmini", freq_ghz=1.0, dram_bytes_per_cycle=16.0, config_write_cost=80.0, call_overhead=100.0
)


@dataclass
class CostReport:
    """Accumulated costs of one execution of a procedure."""

    compute_cycles: float = 0.0
    dram_bytes: float = 0.0
    scratch_bytes: float = 0.0
    config_writes: int = 0
    instr_calls: int = 0
    scalar_ops: float = 0.0

    def merge_scaled(self, other: "CostReport", factor: float) -> None:
        self.compute_cycles += other.compute_cycles * factor
        self.dram_bytes += other.dram_bytes * factor
        self.scratch_bytes += other.scratch_bytes * factor
        self.config_writes += int(other.config_writes * factor)
        self.instr_calls += int(other.instr_calls * factor)
        self.scalar_ops += other.scalar_ops * factor


class CostModel:
    """Walks object code with concrete sizes and produces a :class:`CostReport`."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec

    # -- public API ------------------------------------------------------------

    def report(self, procedure, size_env: Dict[str, int]) -> CostReport:
        root = procedure._root if hasattr(procedure, "_root") else procedure
        env: Dict[object, float] = {}
        mem_env: Dict[object, str] = {}
        for a in root.args:
            if a.name.name in size_env:
                env[a.name] = size_env[a.name.name]
            if isinstance(a.typ, TensorType):
                mem_env[a.name] = (a.mem.kind if a.mem else MemoryKind.DRAM, a.typ.base.bits // 8)
        rep = CostReport()
        self._stmts_cost(root.body, env, mem_env, rep)
        return rep

    def runtime_cycles(self, procedure, size_env: Dict[str, int]) -> float:
        rep = self.report(procedure, size_env)
        mem_cycles = rep.dram_bytes / self.spec.dram_bytes_per_cycle
        mem_cycles += rep.scratch_bytes / self.spec.scratch_bytes_per_cycle
        return self.spec.call_overhead + max(rep.compute_cycles, mem_cycles)

    def runtime_seconds(self, procedure, size_env: Dict[str, int]) -> float:
        return self.runtime_cycles(procedure, size_env) / (self.spec.freq_ghz * 1e9)

    # -- expression evaluation ---------------------------------------------------

    def _eval(self, e: N.Expr, env) -> Optional[float]:
        if isinstance(e, N.Const):
            return float(e.val) if not isinstance(e.val, bool) else float(bool(e.val))
        if isinstance(e, N.Read) and not e.idx:
            return env.get(e.name)
        if isinstance(e, N.USub):
            v = self._eval(e.arg, env)
            return None if v is None else -v
        if isinstance(e, N.BinOp):
            a, b = self._eval(e.lhs, env), self._eval(e.rhs, env)
            if a is None or b is None:
                return None
            try:
                if e.op == "+":
                    return a + b
                if e.op == "-":
                    return a - b
                if e.op == "*":
                    return a * b
                if e.op == "/":
                    return float(int(a) // int(b)) if b else None
                if e.op == "%":
                    return float(int(a) % int(b)) if b else None
                if e.op in ("<", "<=", ">", ">=", "==", "!="):
                    return float({"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b, "==": a == b, "!=": a != b}[e.op])
            except (ValueError, ZeroDivisionError):
                return None
        return None

    def _expr_cost(self, e: N.Expr, env, mem_env, rep: CostReport) -> None:
        """Charge for evaluating a value expression (reads + arithmetic)."""
        if isinstance(e, N.Read):
            if e.idx:
                kind, width = mem_env.get(e.name, (MemoryKind.DRAM, 4))
                self._charge_access(kind, width, 1, rep)
                rep.compute_cycles += 0.5 * self.spec.scalar_op_cost  # address generation
            return
        if isinstance(e, N.BinOp):
            rep.compute_cycles += self.spec.scalar_op_cost
            rep.scalar_ops += 1
            self._expr_cost(e.lhs, env, mem_env, rep)
            self._expr_cost(e.rhs, env, mem_env, rep)
            return
        if isinstance(e, N.USub):
            self._expr_cost(e.arg, env, mem_env, rep)
            return
        if isinstance(e, N.Extern):
            rep.compute_cycles += extern_by_name(e.fname).cost
            for a in e.args:
                self._expr_cost(a, env, mem_env, rep)
            return
        if isinstance(e, N.ReadConfig):
            rep.compute_cycles += 0.5
            return

    def _charge_access(self, kind: str, width: int, count: float, rep: CostReport) -> None:
        if kind in (MemoryKind.DRAM, MemoryKind.STACK, MemoryKind.STATIC):
            rep.dram_bytes += width * count
        elif kind in (MemoryKind.SCRATCHPAD, MemoryKind.ACCUMULATOR):
            rep.scratch_bytes += width * count
        # vector registers are free

    # -- statements ----------------------------------------------------------------

    def _stmts_cost(self, stmts, env, mem_env, rep: CostReport) -> None:
        for s in stmts:
            self._stmt_cost(s, env, mem_env, rep)

    def _stmt_cost(self, s: N.Stmt, env, mem_env, rep: CostReport) -> None:
        spec = self.spec
        if isinstance(s, (N.Assign, N.Reduce)):
            kind, width = mem_env.get(s.name, (MemoryKind.DRAM, 4))
            self._charge_access(kind, width, 1, rep)
            rep.compute_cycles += spec.scalar_op_cost
            rep.scalar_ops += 1
            self._expr_cost(s.rhs, env, mem_env, rep)
            return
        if isinstance(s, N.Alloc):
            if isinstance(s.typ, TensorType):
                mem_env[s.name] = (s.mem.kind, s.typ.base.bits // 8)
            else:
                mem_env[s.name] = (s.mem.kind, s.typ.bits // 8)
            return
        if isinstance(s, N.For):
            lo = self._eval(s.lo, env) or 0.0
            hi = self._eval(s.hi, env)
            if hi is None:
                hi = lo + 1.0  # unknown bound: assume a single iteration
            trips = max(0.0, hi - lo)
            if trips == 0:
                return
            body_rep = CostReport()
            body_env = dict(env)
            body_env[s.iter] = (lo + hi - 1) / 2.0  # average iteration (triangular loops)
            self._stmts_cost(s.body, body_env, mem_env, body_rep)
            rep.merge_scaled(body_rep, trips)
            rep.compute_cycles += spec.loop_overhead * trips
            return
        if isinstance(s, N.If):
            cond = self._eval(s.cond, env)
            rep.compute_cycles += 1.0
            if cond is None:
                then_rep, else_rep = CostReport(), CostReport()
                self._stmts_cost(s.body, env, mem_env, then_rep)
                self._stmts_cost(s.orelse, env, mem_env, else_rep)
                rep.merge_scaled(then_rep, 0.5)
                rep.merge_scaled(else_rep, 0.5)
            elif cond:
                self._stmts_cost(s.body, env, mem_env, rep)
            else:
                self._stmts_cost(s.orelse, env, mem_env, rep)
            return
        if isinstance(s, N.Pass):
            return
        if isinstance(s, N.WindowStmt):
            rep.compute_cycles += 0.5
            mem_env[s.name] = mem_env.get(s.rhs.name, (MemoryKind.DRAM, 4))
            return
        if isinstance(s, N.WriteConfig):
            rep.config_writes += 1
            rep.compute_cycles += spec.config_write_cost
            return
        if isinstance(s, N.Call):
            self._call_cost(s, env, mem_env, rep)
            return

    def _call_cost(self, call: N.Call, env, mem_env, rep: CostReport) -> None:
        callee = call.proc
        cdef = callee._root if hasattr(callee, "_root") else callee
        if cdef.instr is not None:
            rep.instr_calls += 1
            rep.compute_cycles += cdef.instr.cost * self.spec.vector_issue_cost
            # charge DRAM traffic for window arguments living in DRAM-like memories
            for fn_arg, actual in zip(cdef.args, call.args):
                if isinstance(actual, N.WindowExpr):
                    kind, width = mem_env.get(actual.name, (MemoryKind.DRAM, 4))
                    count = 1.0
                    for d in actual.idx:
                        if isinstance(d, N.Interval):
                            lo = self._eval(d.lo, env)
                            hi = self._eval(d.hi, env)
                            if lo is not None and hi is not None:
                                count *= max(0.0, hi - lo)
                    self._charge_access(kind, width, count, rep)
            # configuration writes inside the instruction body
            from ..ir.build import walk

            for n, _ in walk(cdef):
                if isinstance(n, N.WriteConfig):
                    rep.config_writes += 1
                    rep.compute_cycles += self.spec.config_write_cost
            return
        # ordinary procedure call: recurse with bound size arguments
        sub_env: Dict[object, float] = {}
        sub_mem: Dict[object, tuple] = {}
        for fn_arg, actual in zip(cdef.args, call.args):
            if isinstance(fn_arg.typ, TensorType):
                if isinstance(actual, (N.Read, N.WindowExpr)):
                    sub_mem[fn_arg.name] = mem_env.get(actual.name, (MemoryKind.DRAM, fn_arg.typ.base.bits // 8))
            else:
                v = self._eval(actual, env)
                if v is not None:
                    sub_env[fn_arg.name] = v
        rep.compute_cycles += 2.0  # call overhead
        self._stmts_cost(cdef.body, sub_env, sub_mem, rep)
