"""Analytic baseline models for the comparator libraries.

The paper compares Exo 2 generated kernels against Intel MKL, OpenBLAS, BLIS,
Halide, the original Exo, and Gemmini's hand-written library.  Offline we model
each comparator as a tuned library running on the same machine spec:

``runtime = dispatch_overhead + packing_overhead(size)
          + max(flops / flops_per_cycle, bytes / dram_bytes_per_cycle) * efficiency``

The constants are calibrated to the qualitative behaviour the paper reports:
all libraries approach the same bandwidth/compute roofline at large sizes
(ratios → ~1), while generic libraries pay dispatch/packing overheads that
dominate at small sizes (ratios > 1 in Exo 2's favour, largest for the
smallest inputs — compare Figures 8 and 14–19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .model import MachineSpec

__all__ = ["LibraryModel", "library_model", "BASELINES"]


@dataclass
class LibraryModel:
    """An analytic comparator-library performance model."""

    name: str
    dispatch_overhead: float  # cycles per call
    packing_overhead_per_kb: float  # extra cycles per KiB touched (setup/packing)
    efficiency: float  # multiplier on the roofline time (>= 1.0)
    simd_width_bits: int = 256

    def flops_per_cycle(self, precision: str) -> float:
        lanes = self.simd_width_bits // (32 if precision == "f32" else 64)
        return 2.0 * lanes  # one FMA per cycle

    def runtime_cycles(self, spec: MachineSpec, *, flops: float, bytes_moved: float, precision: str = "f32") -> float:
        compute = flops / self.flops_per_cycle(precision)
        memory = bytes_moved / spec.dram_bytes_per_cycle
        roofline = max(compute, memory) * self.efficiency
        packing = self.packing_overhead_per_kb * (bytes_moved / 1024.0)
        return self.dispatch_overhead + packing + roofline

    def runtime_seconds(self, spec: MachineSpec, **kw) -> float:
        return self.runtime_cycles(spec, **kw) / (spec.freq_ghz * 1e9)


def _mk_baselines(simd_width_bits: int) -> Dict[str, LibraryModel]:
    return {
        # MKL: lowest overhead of the vendor libraries, excellent large-size throughput
        "MKL": LibraryModel("MKL", dispatch_overhead=220.0, packing_overhead_per_kb=1.0, efficiency=1.00, simd_width_bits=simd_width_bits),
        # OpenBLAS: slightly larger dispatch overhead and packing costs
        "OpenBLAS": LibraryModel("OpenBLAS", dispatch_overhead=420.0, packing_overhead_per_kb=1.6, efficiency=1.02, simd_width_bits=simd_width_bits),
        # BLIS: framework dispatch cost close to OpenBLAS
        "BLIS": LibraryModel("BLIS", dispatch_overhead=430.0, packing_overhead_per_kb=1.5, efficiency=1.02, simd_width_bits=simd_width_bits),
        # Halide: ahead-of-time pipelines, modest boundary handling overhead
        "Halide": LibraryModel("Halide", dispatch_overhead=120.0, packing_overhead_per_kb=0.4, efficiency=1.05, simd_width_bits=simd_width_bits),
        # Original Exo: same code-generation model as Exo 2, no library overhead
        "Exo": LibraryModel("Exo", dispatch_overhead=30.0, packing_overhead_per_kb=0.0, efficiency=1.00, simd_width_bits=simd_width_bits),
        # Gemmini's hand-written standard library (paper: ~3.5x slower than Exo)
        "GemminiLib": LibraryModel("GemminiLib", dispatch_overhead=2000.0, packing_overhead_per_kb=6.0, efficiency=3.5, simd_width_bits=simd_width_bits),
    }


BASELINES: Dict[int, Dict[str, LibraryModel]] = {
    256: _mk_baselines(256),
    512: _mk_baselines(512),
}


def library_model(name: str, simd_width_bits: int = 256) -> LibraryModel:
    """Look up a comparator-library model for a given SIMD width."""
    return BASELINES[simd_width_bits][name]
