"""Performance modelling: cost model for scheduled code + comparator baselines."""

from .baselines import BASELINES, LibraryModel, library_model
from .model import (
    AVX2_SPEC,
    AVX512_SPEC,
    GEMMINI_SPEC,
    CostModel,
    CostReport,
    MachineSpec,
)

__all__ = [
    "BASELINES",
    "LibraryModel",
    "library_model",
    "AVX2_SPEC",
    "AVX512_SPEC",
    "GEMMINI_SPEC",
    "CostModel",
    "CostReport",
    "MachineSpec",
]
