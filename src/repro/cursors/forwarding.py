"""Atomic edits and cursor forwarding.

Every scheduling primitive decomposes its effect on the AST into a sequence of
*atomic edits* (Section 5.2 of the paper): insertion, deletion, replacement,
movement, and wrapping of statement ranges.  Each atomic edit carries **both**
halves of the transformation:

* ``apply(root)`` — produce the rewritten tree (functional update, sharing
  unchanged subtrees), and
* ``forward(desc)`` — the canonical forwarding function mapping cursor
  locations in the pre-edit tree to locations in the post-edit tree (or
  invalidating them).

Deriving both from the same edit object is what keeps the rewritten AST and
the forwarding semantics from drifting apart.  The forwarding function of a
primitive is the composition of its atomic edits' functions, and
``Procedure.forward`` composes those across the whole provenance chain.

Atomic edits are **not** constructed by scheduling primitives directly;
they are recorded by :class:`repro.ir.edit.EditSession`, the transactional
edit engine every primitive goes through.

Cursor locations are normalised to *descriptors*:

* ``("node", path)`` — statement or expression cursors
* ``("block", owner_path, attr, lo, hi)`` — statement-block cursors
* ``("gap", owner_path, attr, idx)`` — gap cursors (before statement ``idx``)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..ir.build import Path, _shallow_copy, get_node, replace_stmts, set_node

__all__ = [
    "BlockRewrite",
    "MoveEdit",
    "ExprEdit",
    "FieldEdit",
    "RootEdit",
    "EditTrace",
    "identity_forward",
]


Desc = Tuple  # descriptor tuples as documented above

InnerMap = Callable[[int, Path], Optional[Tuple[int, Path]]]


def identity_forward(desc: Desc) -> Desc:
    return desc


@dataclass
class BlockRewrite:
    """Replace ``n_old`` statements at ``lo`` of a statement list with
    ``n_new`` new statements.

    ``inner_map(offset, rest)`` optionally maps locations inside the replaced
    range (``offset`` relative to ``lo``, ``rest`` the remaining path below
    that statement) to their new location ``(new_offset, new_rest)``; returning
    ``None`` invalidates the cursor.  When no ``inner_map`` is given, cursors
    inside the range survive only if the range length is unchanged (the
    "replacement in place" heuristic from the paper).
    """

    owner_path: Path
    attr: str
    lo: int
    n_old: int
    n_new: int
    inner_map: Optional[InnerMap] = None
    new_stmts: Optional[List] = None

    def apply(self, root):
        """Apply this rewrite to ``root``, returning the new tree."""
        if self.new_stmts is None:
            raise ValueError("this BlockRewrite carries no replacement statements")
        return replace_stmts(root, self.owner_path, self.attr, self.lo, self.n_old, self.new_stmts)

    def _delta(self) -> int:
        return self.n_new - self.n_old

    def _map_inner(self, offset: int, rest: Path):
        if self.inner_map is not None:
            return self.inner_map(offset, rest)
        if self.n_old == self.n_new:
            return (offset, rest)
        return None

    def forward(self, desc: Desc) -> Optional[Desc]:
        kind = desc[0]
        if kind == "node":
            return self._forward_node(desc)
        if kind == "block":
            return self._forward_block(desc)
        if kind == "gap":
            return self._forward_gap(desc)
        return desc

    # -- helpers ---------------------------------------------------------------

    def _through(self, path: Path):
        """If ``path`` passes through the edited statement list, split it into
        (index in list, rest); otherwise return None."""
        k = len(self.owner_path)
        if len(path) <= k:
            return None
        if tuple(path[:k]) != tuple(self.owner_path):
            return None
        attr, idx = path[k]
        if attr != self.attr or idx is None:
            return None
        return idx, tuple(path[k + 1 :])

    def _rebuild(self, idx: int, rest: Path) -> Path:
        return tuple(self.owner_path) + ((self.attr, idx),) + tuple(rest)

    def _forward_node(self, desc):
        path = desc[1]
        hit = self._through(path)
        if hit is None:
            return desc
        j, rest = hit
        if j < self.lo:
            return desc
        if j >= self.lo + self.n_old:
            return ("node", self._rebuild(j + self._delta(), rest))
        mapped = self._map_inner(j - self.lo, rest)
        if mapped is None:
            return None
        new_off, new_rest = mapped
        return ("node", self._rebuild(self.lo + new_off, new_rest))

    def _forward_block(self, desc):
        _, owner, attr, lo, hi = desc
        if tuple(owner) == tuple(self.owner_path) and attr == self.attr:
            if hi <= self.lo:
                return desc
            if lo >= self.lo + self.n_old:
                d = self._delta()
                return ("block", owner, attr, lo + d, hi + d)
            # overlapping the rewritten range
            if lo >= self.lo and hi <= self.lo + self.n_old:
                if self.n_old == self.n_new:
                    return desc
                if self.n_new == 0:
                    return None
                return ("block", owner, attr, self.lo, self.lo + self.n_new)
            # partially overlapping: clip heuristically
            d = self._delta()
            new_hi = max(hi + d, self.lo + self.n_new)
            return ("block", owner, attr, min(lo, self.lo), new_hi)
        # the owner path itself may pass through the edited block
        fwd_owner = self._forward_node(("node", owner))
        if fwd_owner is None:
            return None
        return ("block", fwd_owner[1], attr, lo, hi)

    def _forward_gap(self, desc):
        _, owner, attr, idx = desc
        if tuple(owner) == tuple(self.owner_path) and attr == self.attr:
            if idx <= self.lo:
                return desc
            if idx >= self.lo + self.n_old:
                return ("gap", owner, attr, idx + self._delta())
            return ("gap", owner, attr, self.lo)
        fwd_owner = self._forward_node(("node", owner))
        if fwd_owner is None:
            return None
        return ("gap", fwd_owner[1], attr, idx)


@dataclass
class MoveEdit:
    """Move ``n`` statements from a source block position to a destination gap.

    Destination coordinates are expressed in the tree *after* removal of the
    source statements (which is also how the edit is applied).
    """

    src_owner: Path
    src_attr: str
    src_idx: int
    n: int
    dst_owner: Path
    dst_attr: str
    dst_idx: int

    def apply(self, root):
        """Apply the move to ``root``: remove the source statements, then
        insert them at the destination gap (whose coordinates are expressed in
        the post-removal tree)."""
        src_parent = get_node(root, self.src_owner)
        moved = list(getattr(src_parent, self.src_attr))[self.src_idx : self.src_idx + self.n]
        root = replace_stmts(root, self.src_owner, self.src_attr, self.src_idx, self.n, [])
        return replace_stmts(root, self.dst_owner, self.dst_attr, self.dst_idx, 0, moved)

    def forward(self, desc: Desc) -> Optional[Desc]:
        delete = BlockRewrite(self.src_owner, self.src_attr, self.src_idx, self.n, 0)
        insert = BlockRewrite(self.dst_owner, self.dst_attr, self.dst_idx, 0, self.n)

        kind = desc[0]
        if kind == "node":
            hit = delete._through(desc[1])
            if hit is not None:
                j, rest = hit
                if self.src_idx <= j < self.src_idx + self.n:
                    # inside the moved range: relocate to the destination
                    new_path = (
                        tuple(self.dst_owner)
                        + ((self.dst_attr, self.dst_idx + (j - self.src_idx)),)
                        + tuple(rest)
                    )
                    return ("node", new_path)
        if kind == "block":
            _, owner, attr, lo, hi = desc
            if (
                tuple(owner) == tuple(self.src_owner)
                and attr == self.src_attr
                and lo >= self.src_idx
                and hi <= self.src_idx + self.n
            ):
                off = lo - self.src_idx
                return ("block", self.dst_owner, self.dst_attr, self.dst_idx + off, self.dst_idx + off + (hi - lo))
        out = delete.forward(desc)
        if out is None:
            return None
        return insert.forward(out)


@dataclass
class ExprEdit:
    """Replace the expression at ``path`` with ``new_expr``.

    Expression replacement does not change the statement structure of the
    tree, so descriptors forward unchanged (cursors below the replaced
    expression re-resolve heuristically, matching the historical behaviour of
    expression-level rewrites).
    """

    path: Path
    new_expr: object

    def apply(self, root):
        return set_node(root, self.path, self.new_expr)

    def forward(self, desc: Desc) -> Optional[Desc]:
        return desc


@dataclass
class FieldEdit:
    """Set a non-structural field (``pragma``, ``mem``, ``body`` wholesale,
    …) of the node at ``path``.  Descriptors forward unchanged."""

    path: Path
    attr: str
    value: object

    def apply(self, root):
        node = _shallow_copy(get_node(root, self.path))
        setattr(node, self.attr, self.value)
        return set_node(root, self.path, node)

    def forward(self, desc: Desc) -> Optional[Desc]:
        return desc


@dataclass
class RootEdit:
    """Swap in a rebuilt procedure root wholesale.

    Used by whole-procedure rewrites (access re-indexing, simplification,
    precision changes) that do not track fine-grained forwarding; ``fwd``
    defaults to the identity heuristic, which keeps cursors alive wherever the
    statement structure is unchanged.
    """

    new_root: object
    fwd: Callable[[Desc], Optional[Desc]] = identity_forward

    def apply(self, root):
        return self.new_root

    def forward(self, desc: Desc) -> Optional[Desc]:
        return self.fwd(desc)


@dataclass
class EditTrace:
    """An ordered list of atomic edits recorded by an edit session.

    Coordinates of each edit are relative to the tree produced by the previous
    edits (i.e. in application order).
    """

    edits: List[object] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.edits)

    def add(self, edit) -> None:
        self.edits.append(edit)

    def forward_fn(self) -> Callable[[Desc], Optional[Desc]]:
        edits = list(self.edits)

        def fwd(desc: Desc) -> Optional[Desc]:
            for e in edits:
                if desc is None:
                    return None
                desc = e.forward(desc)
            return desc

        return fwd
