"""Cursors: multiple, stable, relative references into object code.

A cursor points to a statement, a block of statements, a gap between
statements, an expression, or a procedure argument of a *specific version* of
a procedure (its "time coordinate"); its "spatial coordinate" is a path of
``(field, index)`` steps from the procedure root (Section 5.2).

Cursors support:

* navigation — ``parent``, ``next``, ``prev``, ``before``, ``after``,
  ``body``, ``orelse``, ``expand``, …
* inspection — ``name``, ``hi``, ``lo``, ``rhs``, ``value``, ``mem``, …
* searching — ``find`` / ``find_loop`` restricted to the cursor's subtree
* forwarding — ``proc.forward(cursor)`` re-binds a cursor onto a later
  version of the procedure.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import InvalidCursorError
from ..ir import nodes as N
from ..ir.build import Path, get_node
from ..ir.printing import block_str, expr_str, stmt_lines
from ..ir.types import TensorType

__all__ = [
    "Cursor",
    "InvalidCursor",
    "StmtCursor",
    "BlockCursor",
    "GapCursor",
    "ExprCursor",
    "ArgCursor",
    "ForCursor",
    "IfCursor",
    "AssignCursor",
    "ReduceCursor",
    "AllocCursor",
    "CallCursor",
    "PassCursor",
    "WindowStmtCursor",
    "WriteConfigCursor",
    "ReadCursor",
    "WindowExprCursor",
    "LiteralCursor",
    "BinOpCursor",
    "UnaryMinusCursor",
    "ExternCursor",
    "StrideExprCursor",
    "ReadConfigCursor",
    "make_stmt_cursor",
    "make_expr_cursor",
    "is_invalid",
]


class Cursor:
    """Base class of all cursors."""

    def __init__(self, proc):
        self._proc = proc

    def proc(self):
        """The procedure version this cursor points into (its time coordinate)."""
        return self._proc

    def is_valid(self) -> bool:
        return True

    def _root(self):
        return self._proc._root

    # descriptor <-> cursor conversion used by forwarding -----------------------
    def _descriptor(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def __bool__(self) -> bool:
        return self.is_valid()


def is_invalid(cursor) -> bool:
    """True if ``cursor`` is an :class:`InvalidCursor` (usable as a predicate)."""
    return isinstance(cursor, InvalidCursor) or not cursor.is_valid()


class InvalidCursor(Cursor):
    """The result of navigating off the edge of the program, or of forwarding
    a cursor whose target no longer exists."""

    def __init__(self, proc=None):
        super().__init__(proc)

    def is_valid(self) -> bool:
        return False

    def _descriptor(self):
        return None

    def __getattr__(self, item):
        # Any navigation/inspection on an invalid cursor raises.
        def _raise(*_args, **_kwargs):
            raise InvalidCursorError("operation on an invalid cursor")

        if item.startswith("_"):
            raise AttributeError(item)
        return _raise

    def __eq__(self, other):
        return isinstance(other, InvalidCursor)

    def __hash__(self):
        return hash("InvalidCursor")

    def __repr__(self):
        return "InvalidCursor()"


# ---------------------------------------------------------------------------
# Node-pointing cursors (statements & expressions)
# ---------------------------------------------------------------------------


class _NodeCursor(Cursor):
    def __init__(self, proc, path: Path):
        super().__init__(proc)
        self._path = tuple(path)

    def _node(self):
        return get_node(self._root(), self._path)

    def path(self) -> Path:
        """The spatial coordinate (exposed for analyses & debugging)."""
        return self._path

    def depth(self) -> int:
        return len(self._path)

    def __eq__(self, other):
        return (
            isinstance(other, _NodeCursor)
            and self._proc is other._proc
            and self._path == other._path
        )

    def __hash__(self):
        return hash((id(self._proc), self._path))

    def _descriptor(self):
        return ("node", self._path)

    # -- navigation shared by statements and expressions -----------------------

    def parent(self):
        """The closest enclosing *statement* cursor (raises at the top level)."""
        path = self._path[:-1]
        while path:
            node = get_node(self._root(), path)
            if isinstance(node, N.Stmt):
                return make_stmt_cursor(self._proc, path)
            path = path[:-1]
        raise InvalidCursorError("cursor has no parent statement")


class StmtCursor(_NodeCursor):
    """Cursor to a single statement."""

    # -- sibling / gap navigation ----------------------------------------------

    def _owner(self) -> Tuple[Path, str, int]:
        attr, idx = self._path[-1]
        return self._path[:-1], attr, idx

    def _sibling_count(self) -> int:
        owner_path, attr, _ = self._owner()
        return len(getattr(get_node(self._root(), owner_path), attr))

    def next(self, dist: int = 1):
        owner_path, attr, idx = self._owner()
        j = idx + dist
        if 0 <= j < self._sibling_count():
            return make_stmt_cursor(self._proc, owner_path + ((attr, j),))
        return InvalidCursor(self._proc)

    def prev(self, dist: int = 1):
        return self.next(-dist)

    def before(self) -> "GapCursor":
        owner_path, attr, idx = self._owner()
        return GapCursor(self._proc, owner_path, attr, idx)

    def after(self) -> "GapCursor":
        owner_path, attr, idx = self._owner()
        return GapCursor(self._proc, owner_path, attr, idx + 1)

    def as_block(self) -> "BlockCursor":
        owner_path, attr, idx = self._owner()
        return BlockCursor(self._proc, owner_path, attr, idx, idx + 1)

    def expand(self, delta_lo: Optional[int] = None, delta_hi: Optional[int] = None) -> "BlockCursor":
        """Expand to a block including ``delta_lo`` statements before and
        ``delta_hi`` after (``None`` = as many as possible)."""
        return self.as_block().expand(delta_lo, delta_hi)

    # -- searching ---------------------------------------------------------------

    def find(self, pattern: str, many: bool = False):
        return _find(self._proc, self._path, pattern, many)

    def find_loop(self, name: str, many: bool = False):
        return _find_loop(self._proc, self._path, name, many)

    def find_all(self, pattern: str):
        return self.find(pattern, many=True)

    # -- misc ---------------------------------------------------------------------

    def body(self) -> "BlockCursor":
        raise InvalidCursorError(f"{type(self).__name__} has no body")

    def __repr__(self):
        lines = stmt_lines([self._node()])
        return f"<{type(self).__name__}: {lines[0].strip() if lines else '?'} ...>"

    def __str__(self):
        return block_str([self._node()])


class ForCursor(StmtCursor):
    """Cursor to a ``for`` loop."""

    def name(self) -> str:
        return self._node().iter.name

    def iter_sym(self):
        return self._node().iter

    def lo(self) -> "ExprCursor":
        return make_expr_cursor(self._proc, self._path + (("lo", None),))

    def hi(self) -> "ExprCursor":
        return make_expr_cursor(self._proc, self._path + (("hi", None),))

    def body(self) -> "BlockCursor":
        return BlockCursor(self._proc, self._path, "body", 0, len(self._node().body))

    def is_parallel(self) -> bool:
        return self._node().pragma == "par"


class IfCursor(StmtCursor):
    """Cursor to an ``if`` statement."""

    def cond(self) -> "ExprCursor":
        return make_expr_cursor(self._proc, self._path + (("cond", None),))

    def body(self) -> "BlockCursor":
        return BlockCursor(self._proc, self._path, "body", 0, len(self._node().body))

    def orelse(self) -> "BlockCursor":
        node = self._node()
        if not node.orelse:
            return BlockCursor(self._proc, self._path, "orelse", 0, 0)
        return BlockCursor(self._proc, self._path, "orelse", 0, len(node.orelse))

    def has_orelse(self) -> bool:
        return bool(self._node().orelse)


class _WriteCursor(StmtCursor):
    def name(self) -> str:
        return self._node().name.name

    def buf_sym(self):
        return self._node().name

    def idx(self) -> List["ExprCursor"]:
        return [
            make_expr_cursor(self._proc, self._path + (("idx", i),))
            for i in range(len(self._node().idx))
        ]

    def rhs(self) -> "ExprCursor":
        return make_expr_cursor(self._proc, self._path + (("rhs", None),))


class AssignCursor(_WriteCursor):
    """Cursor to an assignment ``x[i] = e``."""


class ReduceCursor(_WriteCursor):
    """Cursor to a reduction ``x[i] += e``."""


class AllocCursor(StmtCursor):
    """Cursor to a buffer allocation."""

    def name(self) -> str:
        return self._node().name.name

    def buf_sym(self):
        return self._node().name

    def mem(self):
        return self._node().mem

    def typ(self):
        return self._node().typ

    def base_type(self):
        return self._node().typ.basetype()

    def shape(self) -> List["ExprCursor"]:
        typ = self._node().typ
        if not isinstance(typ, TensorType):
            return []
        # shape expressions live inside the type; expose them as plain exprs
        return [_FrozenExprCursor(self._proc, e) for e in typ.shape]

    def is_scalar(self) -> bool:
        return not isinstance(self._node().typ, TensorType)


class CallCursor(StmtCursor):
    """Cursor to a call of another procedure."""

    def subproc(self):
        return self._node().proc

    def name(self) -> str:
        p = self._node().proc
        return p.name() if callable(getattr(p, "name", None)) else p.name

    def args(self) -> List["ExprCursor"]:
        return [
            make_expr_cursor(self._proc, self._path + (("args", i),))
            for i in range(len(self._node().args))
        ]


class PassCursor(StmtCursor):
    """Cursor to a ``pass`` statement."""


class WindowStmtCursor(StmtCursor):
    """Cursor to a window-binding statement ``w = A[...]``."""

    def name(self) -> str:
        return self._node().name.name

    def rhs(self) -> "ExprCursor":
        return make_expr_cursor(self._proc, self._path + (("rhs", None),))


class WriteConfigCursor(StmtCursor):
    """Cursor to a configuration write ``cfg.field = e``."""

    def config(self):
        return self._node().config

    def field(self) -> str:
        return self._node().field_name

    def rhs(self) -> "ExprCursor":
        return make_expr_cursor(self._proc, self._path + (("rhs", None),))


_STMT_CURSOR_TYPES = {
    N.For: ForCursor,
    N.If: IfCursor,
    N.Assign: AssignCursor,
    N.Reduce: ReduceCursor,
    N.Alloc: AllocCursor,
    N.Call: CallCursor,
    N.Pass: PassCursor,
    N.WindowStmt: WindowStmtCursor,
    N.WriteConfig: WriteConfigCursor,
}


def make_stmt_cursor(proc, path: Path) -> StmtCursor:
    node = get_node(proc._root, path)
    cls = _STMT_CURSOR_TYPES.get(type(node), StmtCursor)
    return cls(proc, path)


# ---------------------------------------------------------------------------
# Expression cursors
# ---------------------------------------------------------------------------


class ExprCursor(_NodeCursor):
    """Cursor to an expression."""

    def typ(self):
        return getattr(self._node(), "typ", None)

    def parent_expr(self):
        path = self._path[:-1]
        node = get_node(self._root(), path) if path else None
        if isinstance(node, N.Expr):
            return make_expr_cursor(self._proc, path)
        return InvalidCursor(self._proc)

    def __repr__(self):
        return f"<{type(self).__name__}: {expr_str(self._node())}>"

    def __str__(self):
        return expr_str(self._node())


class ReadCursor(ExprCursor):
    def name(self) -> str:
        return self._node().name.name

    def buf_sym(self):
        return self._node().name

    def idx(self) -> List[ExprCursor]:
        return [
            make_expr_cursor(self._proc, self._path + (("idx", i),))
            for i in range(len(self._node().idx))
        ]

    def is_scalar_read(self) -> bool:
        return not self._node().idx


class WindowExprCursor(ExprCursor):
    def name(self) -> str:
        return self._node().name.name

    def buf_sym(self):
        return self._node().name


class LiteralCursor(ExprCursor):
    def value(self):
        return self._node().val


class BinOpCursor(ExprCursor):
    def op(self) -> str:
        return self._node().op

    def lhs(self) -> ExprCursor:
        return make_expr_cursor(self._proc, self._path + (("lhs", None),))

    def rhs(self) -> ExprCursor:
        return make_expr_cursor(self._proc, self._path + (("rhs", None),))


class UnaryMinusCursor(ExprCursor):
    def arg(self) -> ExprCursor:
        return make_expr_cursor(self._proc, self._path + (("arg", None),))


class ExternCursor(ExprCursor):
    def name(self) -> str:
        return self._node().fname

    def args(self) -> List[ExprCursor]:
        return [
            make_expr_cursor(self._proc, self._path + (("args", i),))
            for i in range(len(self._node().args))
        ]


class StrideExprCursor(ExprCursor):
    def name(self) -> str:
        return self._node().name.name

    def dim(self) -> int:
        return self._node().dim


class ReadConfigCursor(ExprCursor):
    def config(self):
        return self._node().config

    def field(self) -> str:
        return self._node().field_name


class _FrozenExprCursor(ExprCursor):
    """An expression cursor that holds its node directly (used for expressions
    that live outside the navigable tree, e.g. tensor-shape expressions)."""

    def __init__(self, proc, node):
        Cursor.__init__(self, proc)
        self._path = ()
        self.__node = node

    def _node(self):
        return self.__node

    def _descriptor(self):
        return None


_EXPR_CURSOR_TYPES = {
    N.Read: ReadCursor,
    N.WindowExpr: WindowExprCursor,
    N.Const: LiteralCursor,
    N.BinOp: BinOpCursor,
    N.USub: UnaryMinusCursor,
    N.Extern: ExternCursor,
    N.StrideExpr: StrideExprCursor,
    N.ReadConfig: ReadConfigCursor,
    N.Interval: ExprCursor,
    N.Point: ExprCursor,
}


def make_expr_cursor(proc, path: Path) -> ExprCursor:
    node = get_node(proc._root, path)
    cls = _EXPR_CURSOR_TYPES.get(type(node), ExprCursor)
    return cls(proc, path)


# ---------------------------------------------------------------------------
# Block and gap cursors
# ---------------------------------------------------------------------------


class BlockCursor(Cursor):
    """Cursor to a contiguous range of statements in one statement list."""

    def __init__(self, proc, owner_path: Path, attr: str, lo: int, hi: int):
        super().__init__(proc)
        self._owner_path = tuple(owner_path)
        self._attr = attr
        self._lo = lo
        self._hi = hi

    # -- basic protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return self._hi - self._lo

    def __iter__(self) -> Iterator[StmtCursor]:
        for i in range(self._lo, self._hi):
            yield make_stmt_cursor(self._proc, self._owner_path + ((self._attr, i),))

    def __getitem__(self, i: int) -> StmtCursor:
        items = list(self)
        return items[i]

    def __eq__(self, other):
        return (
            isinstance(other, BlockCursor)
            and self._proc is other._proc
            and (self._owner_path, self._attr, self._lo, self._hi)
            == (other._owner_path, other._attr, other._lo, other._hi)
        )

    def __hash__(self):
        return hash((id(self._proc), self._owner_path, self._attr, self._lo, self._hi))

    def _descriptor(self):
        return ("block", self._owner_path, self._attr, self._lo, self._hi)

    def _stmts(self) -> List[N.Stmt]:
        owner = get_node(self._root(), self._owner_path)
        return list(getattr(owner, self._attr))[self._lo : self._hi]

    # -- navigation ----------------------------------------------------------------

    def parent(self) -> StmtCursor:
        if not self._owner_path:
            raise InvalidCursorError("block at procedure top level has no parent")
        return make_stmt_cursor(self._proc, self._owner_path)

    def expand(self, delta_lo: Optional[int] = None, delta_hi: Optional[int] = None) -> "BlockCursor":
        owner = get_node(self._root(), self._owner_path)
        n = len(getattr(owner, self._attr))
        lo = 0 if delta_lo is None else max(0, self._lo - delta_lo)
        hi = n if delta_hi is None else min(n, self._hi + delta_hi)
        return BlockCursor(self._proc, self._owner_path, self._attr, lo, hi)

    def before(self) -> "GapCursor":
        return GapCursor(self._proc, self._owner_path, self._attr, self._lo)

    def after(self) -> "GapCursor":
        return GapCursor(self._proc, self._owner_path, self._attr, self._hi)

    def anchor(self) -> StmtCursor:
        """The first statement of the block."""
        if len(self) == 0:
            raise InvalidCursorError("empty block has no anchor")
        return self[0]

    # -- searching -----------------------------------------------------------------

    def find(self, pattern: str, many: bool = False):
        results = []
        for c in self:
            found = _find(self._proc, c._path, pattern, True)
            results.extend(found)
        if many:
            return results
        if not results:
            raise InvalidCursorError(f"pattern {pattern!r} not found in block")
        return results[0]

    def find_loop(self, name: str, many: bool = False):
        results = []
        for c in self:
            results.extend(_find_loop(self._proc, c._path, name, True))
        if many:
            return results
        if not results:
            raise InvalidCursorError(f"loop {name!r} not found in block")
        return results[0]

    def __repr__(self):
        return f"<BlockCursor of {len(self)} stmts>"

    def __str__(self):
        return block_str(self._stmts())


class GapCursor(Cursor):
    """Cursor to the gap before statement ``idx`` in a statement list."""

    def __init__(self, proc, owner_path: Path, attr: str, idx: int):
        super().__init__(proc)
        self._owner_path = tuple(owner_path)
        self._attr = attr
        self._idx = idx

    def _descriptor(self):
        return ("gap", self._owner_path, self._attr, self._idx)

    def __eq__(self, other):
        return (
            isinstance(other, GapCursor)
            and self._proc is other._proc
            and (self._owner_path, self._attr, self._idx) == (other._owner_path, other._attr, other._idx)
        )

    def __hash__(self):
        return hash((id(self._proc), self._owner_path, self._attr, self._idx))

    def parent(self) -> StmtCursor:
        if not self._owner_path:
            raise InvalidCursorError("gap at procedure top level has no parent")
        return make_stmt_cursor(self._proc, self._owner_path)

    def anchor(self):
        """The statement after this gap (or before it, at the end of a list)."""
        owner = get_node(self._root(), self._owner_path)
        n = len(getattr(owner, self._attr))
        idx = self._idx if self._idx < n else n - 1
        if idx < 0:
            return InvalidCursor(self._proc)
        return make_stmt_cursor(self._proc, self._owner_path + ((self._attr, idx),))

    def stmt_before(self):
        if self._idx == 0:
            return InvalidCursor(self._proc)
        return make_stmt_cursor(self._proc, self._owner_path + ((self._attr, self._idx - 1),))

    def stmt_after(self):
        owner = get_node(self._root(), self._owner_path)
        if self._idx >= len(getattr(owner, self._attr)):
            return InvalidCursor(self._proc)
        return make_stmt_cursor(self._proc, self._owner_path + ((self._attr, self._idx),))

    def index(self) -> int:
        return self._idx

    def __repr__(self):
        return f"<GapCursor at index {self._idx}>"


# ---------------------------------------------------------------------------
# Argument cursors
# ---------------------------------------------------------------------------


class ArgCursor(Cursor):
    """Cursor to a procedure argument."""

    def __init__(self, proc, idx: int):
        super().__init__(proc)
        self._idx = idx

    def _arg(self) -> N.FnArg:
        return self._root().args[self._idx]

    def _descriptor(self):
        return ("arg", self._idx)

    def name(self) -> str:
        return self._arg().name.name

    def sym(self):
        return self._arg().name

    def typ(self):
        return self._arg().typ

    def mem(self):
        return self._arg().mem

    def is_size(self) -> bool:
        typ = self._arg().typ
        return getattr(typ, "name", None) == "size"

    def is_tensor(self) -> bool:
        return isinstance(self._arg().typ, TensorType)

    def shape(self) -> List[ExprCursor]:
        typ = self._arg().typ
        if not isinstance(typ, TensorType):
            return []
        return [_FrozenExprCursor(self._proc, e) for e in typ.shape]

    def __eq__(self, other):
        return isinstance(other, ArgCursor) and self._proc is other._proc and self._idx == other._idx

    def __hash__(self):
        return hash((id(self._proc), "arg", self._idx))

    def __repr__(self):
        return f"<ArgCursor {self.name()}>"


# ---------------------------------------------------------------------------
# Searching helpers (shared between Procedure and cursor classes)
# ---------------------------------------------------------------------------


def _find(proc, base_path: Path, pattern: str, many: bool):
    from ..frontend.pattern import find_pattern_matches

    matches, occurrence = find_pattern_matches(proc._root, base_path, pattern)
    cursors: List[Cursor] = []
    for m in matches:
        if m.kind == "expr":
            cursors.append(make_expr_cursor(proc, m.path))
        else:
            if m.length == 1:
                cursors.append(make_stmt_cursor(proc, m.owner_path + ((m.attr, m.start),)))
            else:
                cursors.append(BlockCursor(proc, m.owner_path, m.attr, m.start, m.start + m.length))
    if occurrence is not None:
        if occurrence >= len(cursors):
            raise InvalidCursorError(
                f"pattern {pattern!r}: requested occurrence #{occurrence} but only {len(cursors)} matches"
            )
        cursors = [cursors[occurrence]]
        if not many:
            return cursors[0]
    if many:
        return cursors
    if not cursors:
        raise InvalidCursorError(f"pattern {pattern!r} did not match")
    return cursors[0]


def _loop_names_below(proc, base_path: Path) -> List[str]:
    """Iteration-variable names of every loop at or below ``base_path``."""
    from ..ir.build import walk

    root = get_node(proc._root, tuple(base_path))
    names = []
    seen = set()
    for node, _ in walk(root):
        if isinstance(node, N.For) and node.iter.name not in seen:
            seen.add(node.iter.name)
            names.append(node.iter.name)
    return names


class LoopNotFoundError(InvalidCursorError):
    """``find_loop`` failed.  The near-miss suggestion ("did you mean 'j'?")
    requires walking every loop in scope and running difflib over the names —
    pure waste when a caller catches the error and recovers (``to_loop_cursor``
    and ``at(...)`` fall back to pattern search, and library code probes
    optional loops in ``try/except`` all the time).  The walk is therefore
    deferred to :meth:`__str__`: it only ever runs when the failure actually
    surfaces as a rendered message."""

    def __init__(self, proc, base_path: Path, name: str, fallback: str):
        super().__init__(fallback)
        self._proc = proc
        self._base_path = tuple(base_path)
        self._name = name
        self._fallback = fallback
        self._rendered: Optional[str] = None

    def _render(self) -> str:
        import difflib

        try:
            names = _loop_names_below(self._proc, self._base_path)
        except Exception:  # pragma: no cover - defensive
            return self._fallback
        if self._name in names:
            return self._fallback  # the name exists; the failure is an occurrence selector
        close = difflib.get_close_matches(self._name, names, n=3, cutoff=0.4) or sorted(names)[:4]
        if close:
            suggestion = ", ".join(repr(n) for n in close)
            return f"no loop {self._name!r}; did you mean {suggestion}?"
        return f"no loop {self._name!r}; the scope contains no loops"

    def __str__(self) -> str:
        if self._rendered is None:
            self._rendered = self._render()
        return self._rendered

    def __reduce__(self):
        # the lazy walk cannot cross a process boundary (the procedure does
        # not travel with the exception): render eagerly and pickle as the
        # base class with the final message
        return (InvalidCursorError, (str(self),))


def _find_loop(proc, base_path: Path, name: str, many: bool):
    name, _, occ = name.partition("#")
    name = name.strip()
    pattern = f"for {name} in _: _"
    if occ.strip():
        pattern += f" #{occ.strip()}"
    try:
        return _find(proc, base_path, pattern, many)
    except InvalidCursorError as err:
        # Raise a lazy error: the suggestion walk stays guarded behind the
        # *surfaced*-failure branch (message rendering), so recovered lookups
        # never pay for it.
        raise LoopNotFoundError(proc, base_path, name, str(err)) from None
