"""Blur and unsharp schedules as first-class :class:`Schedule` values
(Figure 12), plus the legacy call-style entry points.

``blur_schedule()`` / ``unsharp_schedule()`` build the whole pipeline out of
the Schedule-valued Halide library with named knobs (``tile_y``, ``tile_x``,
``vec``), so one value covers the entire tile-size/vector-width sweep::

    s = blur_schedule()
    p = make_blur() >> s                            # defaults (32, 256, 16)
    variants = [s.apply(make_blur(), tile_y=t) for t in (16, 32, 64)]

``schedule_blur`` / ``schedule_unsharp`` keep their original signatures as
thin shims that apply the Schedule with the given knob values.
"""

from __future__ import annotations

from ..api import S, knob, try_
from ..api.schedule import Schedule, Seq
from ..ir.memories import DRAM_STACK
from .kernels import make_blur, make_unsharp
from .library import (
    compute_store_at,
    parallel,
    store_in,
    tile,
    vectorize_stage,
)

__all__ = [
    "blur_schedule",
    "unsharp_schedule",
    "blur_space",
    "unsharp_space",
    "schedule_blur",
    "schedule_unsharp",
]


def blur_schedule(machine=None, *, fuse_stages: bool = False) -> Schedule:
    """The Exo 2 blur schedule of Figure 12 as a composable value.

    Knobs: ``tile_y`` (default 32), ``tile_x`` (256), ``vec`` (16).
    ``fuse_stages`` adds the experimental ``compute_at`` fusion of Figure 10
    under a ``try_`` combinator; the default keeps the stages breadth-first
    (tiled, parallelised, vectorised), which is what the reproduced
    performance comparison measures (see EXPERIMENTS.md)."""
    tile_y, tile_x, vec = knob("tile_y", 32), knob("tile_x", 256), knob("vec", 16)
    steps = [tile("out", "y", "x", "yi", "xi", tile_y, tile_x)]
    if fuse_stages:
        steps.append(try_(compute_store_at("blur_x", "out", "x")))
    steps += [
        parallel("y"),
        vectorize_stage("blur_x", "xi", vec, machine),
        vectorize_stage("out", "xi", vec, machine),
        store_in("blur_x", DRAM_STACK),
        S.cleanup(),
    ]
    return Seq.of(*steps)


def unsharp_schedule(machine=None, *, fuse_stages: bool = False) -> Schedule:
    """Unsharp masking as a Schedule value: tile the output, optionally fuse
    the blur stages into the tile, vectorise the inner loops.  Knobs as in
    :func:`blur_schedule`."""
    tile_y, tile_x, vec = knob("tile_y", 32), knob("tile_x", 256), knob("vec", 16)
    steps = [tile("out", "y", "x", "yi", "xi", tile_y, tile_x)]
    if fuse_stages:
        for producer in ("blur_y", "blur_x"):
            steps.append(try_(compute_store_at(producer, "out", "x")))
    steps.append(parallel("y"))
    for stage in ("blur_x", "blur_y", "out"):
        steps.append(vectorize_stage(stage, "xi", vec, machine))
    steps += [
        store_in("blur_x", DRAM_STACK),
        store_in("blur_y", DRAM_STACK),
        S.cleanup(),
    ]
    return Seq.of(*steps)


def blur_space(*, tiles: bool = True, threads: bool = False):
    """The tunable domain of :func:`blur_schedule` for the autotuner.

    ``tiles=False`` restricts the sweep to the vector width, leaving the tile
    knobs at their defaults — with the tiling steps then knob-invariant, the
    tuner's shared-prefix split applies them once and every other candidate
    hits the replay cache for that prefix.  ``threads=True`` adds the
    reserved ``num_threads`` execution knob (the schedule's ``parallel("y")``
    step makes the row loop a real multicore ``par`` loop).
    """
    from ..tune import Param, Space, threads_param

    params = [Param("vec", (4, 8, 16))]
    if tiles:
        params = [Param("tile_y", (16, 32, 64)), Param("tile_x", (128, 256, 512))] + params
    if threads:
        params.append(threads_param())
    return Space(*params)


def unsharp_space(*, tiles: bool = True, threads: bool = False):
    """The tunable domain of :func:`unsharp_schedule` (same axes as blur)."""
    return blur_space(tiles=tiles, threads=threads)


def schedule_blur(machine=None, tile_y: int = 32, tile_x: int = 256, vec: int = 16, fuse_stages: bool = False):
    """Legacy entry point: build and apply :func:`blur_schedule`."""
    sched = blur_schedule(machine, fuse_stages=fuse_stages)
    return sched.apply(make_blur(), tile_y=tile_y, tile_x=tile_x, vec=vec)


def schedule_unsharp(machine=None, tile_y: int = 32, tile_x: int = 256, vec: int = 16, fuse_stages: bool = False):
    """Legacy entry point: build and apply :func:`unsharp_schedule`."""
    sched = unsharp_schedule(machine, fuse_stages=fuse_stages)
    return sched.apply(make_unsharp(), tile_y=tile_y, tile_x=tile_x, vec=vec)
