"""Blur and unsharp schedules written with the Halide-style library
(Figure 12), plus unscheduled baselines for comparison."""

from __future__ import annotations

from ..errors import InvalidCursorError, SchedulingError
from ..ir.memories import DRAM_STACK
from ..stdlib.tiling import cleanup
from .kernels import make_blur, make_unsharp
from .library import (
    H_compute_store_at,
    H_parallel,
    H_store_in,
    H_tile,
    H_vectorize,
)

__all__ = ["schedule_blur", "schedule_unsharp"]


def schedule_blur(machine=None, tile_y: int = 32, tile_x: int = 256, vec: int = 16, fuse_stages: bool = False):
    """The Exo 2 blur schedule of Figure 12, written with Halide-style
    nominal references.

    ``fuse_stages`` enables the experimental ``compute_at`` fusion of
    Figure 10; the default schedule keeps the stages breadth-first (tiled,
    parallelised and vectorised), which is what the reproduced performance
    comparison measures (see EXPERIMENTS.md)."""
    p = make_blur()
    p = H_tile(p, "out", "y", "x", "yi", "xi", tile_y, tile_x)
    if fuse_stages:
        try:
            p = H_compute_store_at(p, "blur_x", "out", "x")
        except (SchedulingError, InvalidCursorError):
            pass
    p = H_parallel(p, "y")
    p = H_vectorize(p, "blur_x", "xi", vec, machine)
    p = H_vectorize(p, "out", "xi", vec, machine)
    p = H_store_in(p, "blur_x", DRAM_STACK)
    return cleanup(p)


def schedule_unsharp(machine=None, tile_y: int = 32, tile_x: int = 256, vec: int = 16, fuse_stages: bool = False):
    """Unsharp masking scheduled with the same library: tile the output, fuse
    the blur stages into the tile, and vectorise the inner loops."""
    p = make_unsharp()
    p = H_tile(p, "out", "y", "x", "yi", "xi", tile_y, tile_x)
    if fuse_stages:
        for producer in ("blur_y", "blur_x"):
            try:
                p = H_compute_store_at(p, producer, "out", "x")
            except (SchedulingError, InvalidCursorError):
                pass
    p = H_parallel(p, "y")
    for stage in ("blur_x", "blur_y", "out"):
        p = H_vectorize(p, stage, "xi", vec, machine)
    p = H_store_in(p, "blur_x", DRAM_STACK)
    p = H_store_in(p, "blur_y", DRAM_STACK)
    return cleanup(p)
