"""Halide reproduction: blur/unsharp kernels, the Halide scheduling library
(nominal references on top of cursors, expressed as first-class Schedule
values), and their schedules (Section 6.3.2)."""

from .kernels import make_blur, make_unsharp
from .library import (
    H_compute_at,
    H_compute_store_at,
    H_parallel,
    H_store_in,
    H_tile,
    H_vectorize,
    compute_at,
    compute_store_at,
    parallel,
    producer_loop_nest,
    store_in,
    tile,
    vectorize_stage,
)
from .schedules import (
    blur_schedule,
    blur_space,
    schedule_blur,
    schedule_unsharp,
    unsharp_schedule,
    unsharp_space,
)

__all__ = [
    "make_blur",
    "make_unsharp",
    # Schedule-valued library
    "tile",
    "parallel",
    "vectorize_stage",
    "store_in",
    "compute_at",
    "compute_store_at",
    "blur_schedule",
    "unsharp_schedule",
    "blur_space",
    "unsharp_space",
    # deprecated shims + helpers
    "H_tile",
    "H_parallel",
    "H_vectorize",
    "H_store_in",
    "H_compute_at",
    "H_compute_store_at",
    "producer_loop_nest",
    "schedule_blur",
    "schedule_unsharp",
]
