"""Halide reproduction: blur/unsharp kernels, the H_* scheduling library
(nominal references on top of cursors), and their schedules (Section 6.3.2)."""

from .kernels import make_blur, make_unsharp
from .library import (
    H_compute_at,
    H_compute_store_at,
    H_parallel,
    H_store_in,
    H_tile,
    H_vectorize,
    producer_loop_nest,
)
from .schedules import schedule_blur, schedule_unsharp

__all__ = [
    "make_blur",
    "make_unsharp",
    "H_tile",
    "H_parallel",
    "H_vectorize",
    "H_store_in",
    "H_compute_at",
    "H_compute_store_at",
    "producer_loop_nest",
    "schedule_blur",
    "schedule_unsharp",
]
