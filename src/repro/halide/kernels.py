"""Image-processing kernels: 3×3 box blur and unsharp masking (Section 6.3.2).

The object code is the two-stage (producer/consumer) form that the Halide
algorithm of Figure 11 lowers to in Exo's explicit-loop IR: ``blur_x`` is a
full-image intermediate buffer computed before ``blur_y``.  Input images are
restricted to whole multiples of the tile size, as in the paper.
"""

from __future__ import annotations

from ..frontend.decorators import proc_from_source

__all__ = ["make_blur", "make_unsharp"]


def make_blur():
    """3×3 box blur, separable producer/consumer form."""
    return proc_from_source(
        """
def blur(H: size, W: size, inp: f32[H + 2, W + 2] @ DRAM, out: f32[H, W] @ DRAM):
    assert H % 32 == 0
    assert W % 256 == 0
    blur_x: f32[H + 2, W] @ DRAM
    for y in seq(0, H + 2):
        for x in seq(0, W):
            blur_x[y, x] = (inp[y, x] + inp[y, x + 1] + inp[y, x + 2]) / 3.0
    for y in seq(0, H):
        for x in seq(0, W):
            out[y, x] = (blur_x[y, x] + blur_x[y + 1, x] + blur_x[y + 2, x]) / 3.0
"""
    )


def make_unsharp():
    """Unsharp masking: sharpen by subtracting a blurred copy.

    ``out = (1 + amount) * inp - amount * blur(inp)`` with a separable 3×3
    blur, again in producer/consumer form.
    """
    return proc_from_source(
        """
def unsharp(H: size, W: size, amount: f32, inp: f32[H + 2, W + 2] @ DRAM, out: f32[H, W] @ DRAM):
    assert H % 32 == 0
    assert W % 256 == 0
    blur_x: f32[H + 2, W] @ DRAM
    blur_y: f32[H, W] @ DRAM
    for y in seq(0, H + 2):
        for x in seq(0, W):
            blur_x[y, x] = (inp[y, x] + inp[y, x + 1] + inp[y, x + 2]) / 3.0
    for y in seq(0, H):
        for x in seq(0, W):
            blur_y[y, x] = (blur_x[y, x] + blur_x[y + 1, x] + blur_x[y + 2, x]) / 3.0
    for y in seq(0, H):
        for x in seq(0, W):
            out[y, x] = (1.0 + amount) * inp[y + 1, x + 1] - amount * blur_y[y, x]
"""
    )
